file(REMOVE_RECURSE
  "CMakeFiles/logirec_baselines.dir/agcn.cc.o"
  "CMakeFiles/logirec_baselines.dir/agcn.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/amf.cc.o"
  "CMakeFiles/logirec_baselines.dir/amf.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/baseline_util.cc.o"
  "CMakeFiles/logirec_baselines.dir/baseline_util.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/bprmf.cc.o"
  "CMakeFiles/logirec_baselines.dir/bprmf.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/cml.cc.o"
  "CMakeFiles/logirec_baselines.dir/cml.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/gdcf.cc.o"
  "CMakeFiles/logirec_baselines.dir/gdcf.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/hgcf.cc.o"
  "CMakeFiles/logirec_baselines.dir/hgcf.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/hyperml.cc.o"
  "CMakeFiles/logirec_baselines.dir/hyperml.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/lightgcn.cc.o"
  "CMakeFiles/logirec_baselines.dir/lightgcn.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/model_zoo.cc.o"
  "CMakeFiles/logirec_baselines.dir/model_zoo.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/neumf.cc.o"
  "CMakeFiles/logirec_baselines.dir/neumf.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/sml.cc.o"
  "CMakeFiles/logirec_baselines.dir/sml.cc.o.d"
  "CMakeFiles/logirec_baselines.dir/transc.cc.o"
  "CMakeFiles/logirec_baselines.dir/transc.cc.o.d"
  "liblogirec_baselines.a"
  "liblogirec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
