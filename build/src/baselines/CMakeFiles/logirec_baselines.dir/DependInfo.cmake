
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/agcn.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/agcn.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/agcn.cc.o.d"
  "/root/repo/src/baselines/amf.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/amf.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/amf.cc.o.d"
  "/root/repo/src/baselines/baseline_util.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/baseline_util.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/baseline_util.cc.o.d"
  "/root/repo/src/baselines/bprmf.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/bprmf.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/bprmf.cc.o.d"
  "/root/repo/src/baselines/cml.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/cml.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/cml.cc.o.d"
  "/root/repo/src/baselines/gdcf.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/gdcf.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/gdcf.cc.o.d"
  "/root/repo/src/baselines/hgcf.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/hgcf.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/hgcf.cc.o.d"
  "/root/repo/src/baselines/hyperml.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/hyperml.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/hyperml.cc.o.d"
  "/root/repo/src/baselines/lightgcn.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/lightgcn.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/lightgcn.cc.o.d"
  "/root/repo/src/baselines/model_zoo.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/model_zoo.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/model_zoo.cc.o.d"
  "/root/repo/src/baselines/neumf.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/neumf.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/neumf.cc.o.d"
  "/root/repo/src/baselines/sml.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/sml.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/sml.cc.o.d"
  "/root/repo/src/baselines/transc.cc" "src/baselines/CMakeFiles/logirec_baselines.dir/transc.cc.o" "gcc" "src/baselines/CMakeFiles/logirec_baselines.dir/transc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/logirec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logirec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/logirec_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/hyper/CMakeFiles/logirec_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/logirec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/logirec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/logirec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logirec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
