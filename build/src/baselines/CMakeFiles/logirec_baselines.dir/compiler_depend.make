# Empty compiler generated dependencies file for logirec_baselines.
# This may be replaced when dependencies are built.
