file(REMOVE_RECURSE
  "liblogirec_baselines.a"
)
