# Empty dependencies file for logirec_math.
# This may be replaced when dependencies are built.
