
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/mlp.cc" "src/math/CMakeFiles/logirec_math.dir/mlp.cc.o" "gcc" "src/math/CMakeFiles/logirec_math.dir/mlp.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/math/CMakeFiles/logirec_math.dir/stats.cc.o" "gcc" "src/math/CMakeFiles/logirec_math.dir/stats.cc.o.d"
  "/root/repo/src/math/vec.cc" "src/math/CMakeFiles/logirec_math.dir/vec.cc.o" "gcc" "src/math/CMakeFiles/logirec_math.dir/vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logirec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
