file(REMOVE_RECURSE
  "CMakeFiles/logirec_math.dir/mlp.cc.o"
  "CMakeFiles/logirec_math.dir/mlp.cc.o.d"
  "CMakeFiles/logirec_math.dir/stats.cc.o"
  "CMakeFiles/logirec_math.dir/stats.cc.o.d"
  "CMakeFiles/logirec_math.dir/vec.cc.o"
  "CMakeFiles/logirec_math.dir/vec.cc.o.d"
  "liblogirec_math.a"
  "liblogirec_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
