file(REMOVE_RECURSE
  "liblogirec_math.a"
)
