# Empty dependencies file for logirec_eval.
# This may be replaced when dependencies are built.
