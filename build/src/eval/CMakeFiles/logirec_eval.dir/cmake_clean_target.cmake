file(REMOVE_RECURSE
  "liblogirec_eval.a"
)
