file(REMOVE_RECURSE
  "CMakeFiles/logirec_eval.dir/evaluator.cc.o"
  "CMakeFiles/logirec_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/logirec_eval.dir/metrics.cc.o"
  "CMakeFiles/logirec_eval.dir/metrics.cc.o.d"
  "CMakeFiles/logirec_eval.dir/significance.cc.o"
  "CMakeFiles/logirec_eval.dir/significance.cc.o.d"
  "liblogirec_eval.a"
  "liblogirec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
