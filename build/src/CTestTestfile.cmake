# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("math")
subdirs("hyper")
subdirs("opt")
subdirs("data")
subdirs("graph")
subdirs("eval")
subdirs("core")
subdirs("baselines")
