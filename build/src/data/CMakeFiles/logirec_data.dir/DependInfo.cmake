
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/logirec_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/logirec_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/logirec_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/logirec_data.dir/io.cc.o.d"
  "/root/repo/src/data/movielens.cc" "src/data/CMakeFiles/logirec_data.dir/movielens.cc.o" "gcc" "src/data/CMakeFiles/logirec_data.dir/movielens.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/logirec_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/logirec_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/taxonomy.cc" "src/data/CMakeFiles/logirec_data.dir/taxonomy.cc.o" "gcc" "src/data/CMakeFiles/logirec_data.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logirec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
