# Empty compiler generated dependencies file for logirec_data.
# This may be replaced when dependencies are built.
