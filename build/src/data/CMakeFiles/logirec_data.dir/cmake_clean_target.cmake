file(REMOVE_RECURSE
  "liblogirec_data.a"
)
