file(REMOVE_RECURSE
  "CMakeFiles/logirec_data.dir/dataset.cc.o"
  "CMakeFiles/logirec_data.dir/dataset.cc.o.d"
  "CMakeFiles/logirec_data.dir/io.cc.o"
  "CMakeFiles/logirec_data.dir/io.cc.o.d"
  "CMakeFiles/logirec_data.dir/movielens.cc.o"
  "CMakeFiles/logirec_data.dir/movielens.cc.o.d"
  "CMakeFiles/logirec_data.dir/synthetic.cc.o"
  "CMakeFiles/logirec_data.dir/synthetic.cc.o.d"
  "CMakeFiles/logirec_data.dir/taxonomy.cc.o"
  "CMakeFiles/logirec_data.dir/taxonomy.cc.o.d"
  "liblogirec_data.a"
  "liblogirec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
