file(REMOVE_RECURSE
  "CMakeFiles/logirec_opt.dir/optimizer.cc.o"
  "CMakeFiles/logirec_opt.dir/optimizer.cc.o.d"
  "liblogirec_opt.a"
  "liblogirec_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
