# Empty compiler generated dependencies file for logirec_opt.
# This may be replaced when dependencies are built.
