file(REMOVE_RECURSE
  "liblogirec_opt.a"
)
