file(REMOVE_RECURSE
  "CMakeFiles/logirec_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/logirec_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/logirec_graph.dir/propagation.cc.o"
  "CMakeFiles/logirec_graph.dir/propagation.cc.o.d"
  "liblogirec_graph.a"
  "liblogirec_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
