# Empty compiler generated dependencies file for logirec_graph.
# This may be replaced when dependencies are built.
