file(REMOVE_RECURSE
  "liblogirec_graph.a"
)
