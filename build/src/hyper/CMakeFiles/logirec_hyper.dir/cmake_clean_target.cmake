file(REMOVE_RECURSE
  "liblogirec_hyper.a"
)
