file(REMOVE_RECURSE
  "CMakeFiles/logirec_hyper.dir/hyperplane.cc.o"
  "CMakeFiles/logirec_hyper.dir/hyperplane.cc.o.d"
  "CMakeFiles/logirec_hyper.dir/lorentz.cc.o"
  "CMakeFiles/logirec_hyper.dir/lorentz.cc.o.d"
  "CMakeFiles/logirec_hyper.dir/maps.cc.o"
  "CMakeFiles/logirec_hyper.dir/maps.cc.o.d"
  "CMakeFiles/logirec_hyper.dir/poincare.cc.o"
  "CMakeFiles/logirec_hyper.dir/poincare.cc.o.d"
  "liblogirec_hyper.a"
  "liblogirec_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
