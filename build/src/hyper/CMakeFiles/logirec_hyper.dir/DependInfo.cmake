
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyper/hyperplane.cc" "src/hyper/CMakeFiles/logirec_hyper.dir/hyperplane.cc.o" "gcc" "src/hyper/CMakeFiles/logirec_hyper.dir/hyperplane.cc.o.d"
  "/root/repo/src/hyper/lorentz.cc" "src/hyper/CMakeFiles/logirec_hyper.dir/lorentz.cc.o" "gcc" "src/hyper/CMakeFiles/logirec_hyper.dir/lorentz.cc.o.d"
  "/root/repo/src/hyper/maps.cc" "src/hyper/CMakeFiles/logirec_hyper.dir/maps.cc.o" "gcc" "src/hyper/CMakeFiles/logirec_hyper.dir/maps.cc.o.d"
  "/root/repo/src/hyper/poincare.cc" "src/hyper/CMakeFiles/logirec_hyper.dir/poincare.cc.o" "gcc" "src/hyper/CMakeFiles/logirec_hyper.dir/poincare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/logirec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logirec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
