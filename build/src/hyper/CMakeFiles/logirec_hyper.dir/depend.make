# Empty dependencies file for logirec_hyper.
# This may be replaced when dependencies are built.
