file(REMOVE_RECURSE
  "CMakeFiles/logirec_util.dir/csv.cc.o"
  "CMakeFiles/logirec_util.dir/csv.cc.o.d"
  "CMakeFiles/logirec_util.dir/flags.cc.o"
  "CMakeFiles/logirec_util.dir/flags.cc.o.d"
  "CMakeFiles/logirec_util.dir/logging.cc.o"
  "CMakeFiles/logirec_util.dir/logging.cc.o.d"
  "CMakeFiles/logirec_util.dir/parallel.cc.o"
  "CMakeFiles/logirec_util.dir/parallel.cc.o.d"
  "CMakeFiles/logirec_util.dir/rng.cc.o"
  "CMakeFiles/logirec_util.dir/rng.cc.o.d"
  "CMakeFiles/logirec_util.dir/status.cc.o"
  "CMakeFiles/logirec_util.dir/status.cc.o.d"
  "CMakeFiles/logirec_util.dir/string_util.cc.o"
  "CMakeFiles/logirec_util.dir/string_util.cc.o.d"
  "CMakeFiles/logirec_util.dir/table_printer.cc.o"
  "CMakeFiles/logirec_util.dir/table_printer.cc.o.d"
  "liblogirec_util.a"
  "liblogirec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
