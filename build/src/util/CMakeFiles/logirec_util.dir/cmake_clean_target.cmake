file(REMOVE_RECURSE
  "liblogirec_util.a"
)
