# Empty dependencies file for logirec_util.
# This may be replaced when dependencies are built.
