# Empty compiler generated dependencies file for logirec_core.
# This may be replaced when dependencies are built.
