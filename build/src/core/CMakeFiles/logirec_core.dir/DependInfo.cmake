
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/embedding.cc" "src/core/CMakeFiles/logirec_core.dir/embedding.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/embedding.cc.o.d"
  "/root/repo/src/core/hgcn.cc" "src/core/CMakeFiles/logirec_core.dir/hgcn.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/hgcn.cc.o.d"
  "/root/repo/src/core/logic_losses.cc" "src/core/CMakeFiles/logirec_core.dir/logic_losses.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/logic_losses.cc.o.d"
  "/root/repo/src/core/logirec_model.cc" "src/core/CMakeFiles/logirec_core.dir/logirec_model.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/logirec_model.cc.o.d"
  "/root/repo/src/core/negative_sampler.cc" "src/core/CMakeFiles/logirec_core.dir/negative_sampler.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/negative_sampler.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/core/CMakeFiles/logirec_core.dir/persistence.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/persistence.cc.o.d"
  "/root/repo/src/core/train_util.cc" "src/core/CMakeFiles/logirec_core.dir/train_util.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/train_util.cc.o.d"
  "/root/repo/src/core/weighting.cc" "src/core/CMakeFiles/logirec_core.dir/weighting.cc.o" "gcc" "src/core/CMakeFiles/logirec_core.dir/weighting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/logirec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hyper/CMakeFiles/logirec_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/logirec_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/logirec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/logirec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/logirec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logirec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
