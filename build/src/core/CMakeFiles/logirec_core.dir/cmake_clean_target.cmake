file(REMOVE_RECURSE
  "liblogirec_core.a"
)
