file(REMOVE_RECURSE
  "CMakeFiles/logirec_core.dir/embedding.cc.o"
  "CMakeFiles/logirec_core.dir/embedding.cc.o.d"
  "CMakeFiles/logirec_core.dir/hgcn.cc.o"
  "CMakeFiles/logirec_core.dir/hgcn.cc.o.d"
  "CMakeFiles/logirec_core.dir/logic_losses.cc.o"
  "CMakeFiles/logirec_core.dir/logic_losses.cc.o.d"
  "CMakeFiles/logirec_core.dir/logirec_model.cc.o"
  "CMakeFiles/logirec_core.dir/logirec_model.cc.o.d"
  "CMakeFiles/logirec_core.dir/negative_sampler.cc.o"
  "CMakeFiles/logirec_core.dir/negative_sampler.cc.o.d"
  "CMakeFiles/logirec_core.dir/persistence.cc.o"
  "CMakeFiles/logirec_core.dir/persistence.cc.o.d"
  "CMakeFiles/logirec_core.dir/train_util.cc.o"
  "CMakeFiles/logirec_core.dir/train_util.cc.o.d"
  "CMakeFiles/logirec_core.dir/weighting.cc.o"
  "CMakeFiles/logirec_core.dir/weighting.cc.o.d"
  "liblogirec_core.a"
  "liblogirec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
