# Empty dependencies file for taxonomy_mining.
# This may be replaced when dependencies are built.
