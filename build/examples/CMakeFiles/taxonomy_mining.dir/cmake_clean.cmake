file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_mining.dir/taxonomy_mining.cpp.o"
  "CMakeFiles/taxonomy_mining.dir/taxonomy_mining.cpp.o.d"
  "taxonomy_mining"
  "taxonomy_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
