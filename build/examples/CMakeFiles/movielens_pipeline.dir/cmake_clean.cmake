file(REMOVE_RECURSE
  "CMakeFiles/movielens_pipeline.dir/movielens_pipeline.cpp.o"
  "CMakeFiles/movielens_pipeline.dir/movielens_pipeline.cpp.o.d"
  "movielens_pipeline"
  "movielens_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movielens_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
