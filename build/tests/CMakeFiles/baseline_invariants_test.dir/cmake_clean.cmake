file(REMOVE_RECURSE
  "CMakeFiles/baseline_invariants_test.dir/baselines/baseline_invariants_test.cc.o"
  "CMakeFiles/baseline_invariants_test.dir/baselines/baseline_invariants_test.cc.o.d"
  "baseline_invariants_test"
  "baseline_invariants_test.pdb"
  "baseline_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
