# Empty compiler generated dependencies file for baseline_invariants_test.
# This may be replaced when dependencies are built.
