# Empty compiler generated dependencies file for logirec_model_test.
# This may be replaced when dependencies are built.
