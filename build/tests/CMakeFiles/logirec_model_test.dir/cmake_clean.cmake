file(REMOVE_RECURSE
  "CMakeFiles/logirec_model_test.dir/core/logirec_model_test.cc.o"
  "CMakeFiles/logirec_model_test.dir/core/logirec_model_test.cc.o.d"
  "logirec_model_test"
  "logirec_model_test.pdb"
  "logirec_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
