file(REMOVE_RECURSE
  "CMakeFiles/early_stopping_test.dir/core/early_stopping_test.cc.o"
  "CMakeFiles/early_stopping_test.dir/core/early_stopping_test.cc.o.d"
  "early_stopping_test"
  "early_stopping_test.pdb"
  "early_stopping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_stopping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
