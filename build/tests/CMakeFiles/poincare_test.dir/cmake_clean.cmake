file(REMOVE_RECURSE
  "CMakeFiles/poincare_test.dir/hyper/poincare_test.cc.o"
  "CMakeFiles/poincare_test.dir/hyper/poincare_test.cc.o.d"
  "poincare_test"
  "poincare_test.pdb"
  "poincare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poincare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
