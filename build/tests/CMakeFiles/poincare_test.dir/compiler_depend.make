# Empty compiler generated dependencies file for poincare_test.
# This may be replaced when dependencies are built.
