file(REMOVE_RECURSE
  "CMakeFiles/movielens_test.dir/data/movielens_test.cc.o"
  "CMakeFiles/movielens_test.dir/data/movielens_test.cc.o.d"
  "movielens_test"
  "movielens_test.pdb"
  "movielens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movielens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
