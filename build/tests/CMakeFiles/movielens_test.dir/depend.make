# Empty dependencies file for movielens_test.
# This may be replaced when dependencies are built.
