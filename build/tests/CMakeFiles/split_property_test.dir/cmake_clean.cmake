file(REMOVE_RECURSE
  "CMakeFiles/split_property_test.dir/data/split_property_test.cc.o"
  "CMakeFiles/split_property_test.dir/data/split_property_test.cc.o.d"
  "split_property_test"
  "split_property_test.pdb"
  "split_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
