# Empty compiler generated dependencies file for split_property_test.
# This may be replaced when dependencies are built.
