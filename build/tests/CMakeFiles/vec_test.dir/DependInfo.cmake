
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/vec_test.cc" "tests/CMakeFiles/vec_test.dir/math/vec_test.cc.o" "gcc" "tests/CMakeFiles/vec_test.dir/math/vec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/logirec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/logirec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logirec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/logirec_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/hyper/CMakeFiles/logirec_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/logirec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/logirec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/logirec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logirec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
