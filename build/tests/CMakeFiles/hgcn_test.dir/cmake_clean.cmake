file(REMOVE_RECURSE
  "CMakeFiles/hgcn_test.dir/core/hgcn_test.cc.o"
  "CMakeFiles/hgcn_test.dir/core/hgcn_test.cc.o.d"
  "hgcn_test"
  "hgcn_test.pdb"
  "hgcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
