# Empty compiler generated dependencies file for hgcn_test.
# This may be replaced when dependencies are built.
