file(REMOVE_RECURSE
  "CMakeFiles/metrics_extra_test.dir/eval/metrics_extra_test.cc.o"
  "CMakeFiles/metrics_extra_test.dir/eval/metrics_extra_test.cc.o.d"
  "metrics_extra_test"
  "metrics_extra_test.pdb"
  "metrics_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
