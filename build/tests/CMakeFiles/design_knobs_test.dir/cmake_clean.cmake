file(REMOVE_RECURSE
  "CMakeFiles/design_knobs_test.dir/core/design_knobs_test.cc.o"
  "CMakeFiles/design_knobs_test.dir/core/design_knobs_test.cc.o.d"
  "design_knobs_test"
  "design_knobs_test.pdb"
  "design_knobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_knobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
