# Empty dependencies file for design_knobs_test.
# This may be replaced when dependencies are built.
