file(REMOVE_RECURSE
  "CMakeFiles/logic_losses_test.dir/core/logic_losses_test.cc.o"
  "CMakeFiles/logic_losses_test.dir/core/logic_losses_test.cc.o.d"
  "logic_losses_test"
  "logic_losses_test.pdb"
  "logic_losses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_losses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
