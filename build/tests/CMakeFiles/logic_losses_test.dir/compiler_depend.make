# Empty compiler generated dependencies file for logic_losses_test.
# This may be replaced when dependencies are built.
