# Empty compiler generated dependencies file for lorentz_test.
# This may be replaced when dependencies are built.
