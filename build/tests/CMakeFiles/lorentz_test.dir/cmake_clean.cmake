file(REMOVE_RECURSE
  "CMakeFiles/lorentz_test.dir/hyper/lorentz_test.cc.o"
  "CMakeFiles/lorentz_test.dir/hyper/lorentz_test.cc.o.d"
  "lorentz_test"
  "lorentz_test.pdb"
  "lorentz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lorentz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
