# Empty compiler generated dependencies file for core_misc_test.
# This may be replaced when dependencies are built.
