# Empty compiler generated dependencies file for logirec_cli.
# This may be replaced when dependencies are built.
