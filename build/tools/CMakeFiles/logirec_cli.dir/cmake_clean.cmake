file(REMOVE_RECURSE
  "CMakeFiles/logirec_cli.dir/logirec_cli.cc.o"
  "CMakeFiles/logirec_cli.dir/logirec_cli.cc.o.d"
  "logirec"
  "logirec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logirec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
