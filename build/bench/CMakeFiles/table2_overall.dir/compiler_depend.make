# Empty compiler generated dependencies file for table2_overall.
# This may be replaced when dependencies are built.
