# Empty compiler generated dependencies file for micro_hyperbolic.
# This may be replaced when dependencies are built.
