file(REMOVE_RECURSE
  "CMakeFiles/micro_hyperbolic.dir/micro_hyperbolic.cc.o"
  "CMakeFiles/micro_hyperbolic.dir/micro_hyperbolic.cc.o.d"
  "micro_hyperbolic"
  "micro_hyperbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hyperbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
