# Empty compiler generated dependencies file for table4_hyperparams.
# This may be replaced when dependencies are built.
