file(REMOVE_RECURSE
  "CMakeFiles/fig5_user_stats.dir/fig5_user_stats.cc.o"
  "CMakeFiles/fig5_user_stats.dir/fig5_user_stats.cc.o.d"
  "fig5_user_stats"
  "fig5_user_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_user_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
