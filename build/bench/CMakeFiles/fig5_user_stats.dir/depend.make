# Empty dependencies file for fig5_user_stats.
# This may be replaced when dependencies are built.
