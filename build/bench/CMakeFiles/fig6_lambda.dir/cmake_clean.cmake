file(REMOVE_RECURSE
  "CMakeFiles/fig6_lambda.dir/fig6_lambda.cc.o"
  "CMakeFiles/fig6_lambda.dir/fig6_lambda.cc.o.d"
  "fig6_lambda"
  "fig6_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
