# Empty compiler generated dependencies file for fig6_lambda.
# This may be replaced when dependencies are built.
