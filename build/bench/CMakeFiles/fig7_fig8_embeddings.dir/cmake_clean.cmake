file(REMOVE_RECURSE
  "CMakeFiles/fig7_fig8_embeddings.dir/fig7_fig8_embeddings.cc.o"
  "CMakeFiles/fig7_fig8_embeddings.dir/fig7_fig8_embeddings.cc.o.d"
  "fig7_fig8_embeddings"
  "fig7_fig8_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fig8_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
