# Empty dependencies file for fig7_fig8_embeddings.
# This may be replaced when dependencies are built.
