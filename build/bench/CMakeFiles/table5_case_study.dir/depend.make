# Empty dependencies file for table5_case_study.
# This may be replaced when dependencies are built.
