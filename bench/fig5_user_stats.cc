// Regenerates Fig. 5 on the CD-like dataset:
//  (a) user distribution across the number of interacted tag types — a
//      peaked histogram with a long tail of diverse users;
//  (b) the relation between a user's number of interacted tag types and
//      the distance of their trained embedding to the origin — a negative
//      correlation (specific users sit far from the origin), which
//      motivates the granularity weighting GR_u.
// Emits both series as CSV and prints an ASCII histogram + correlation.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/logirec_model.h"
#include "hyper/lorentz.h"
#include "math/stats.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace logirec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs");
  flags.AddString("csv", "fig5_user_stats.csv", "output CSV path");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  const auto bd = bench::MakeBenchDataset("cd", flags.GetDouble("scale"));
  core::LogiRecConfig config;
  config.epochs = flags.GetInt("epochs");
  core::LogiRecModel model(config);
  LOGIREC_CHECK(model.Fit(bd.dataset, bd.split).ok());
  const core::UserWeighting* w = model.weighting();
  LOGIREC_CHECK(w != nullptr);

  const math::Vec origin =
      hyper::LorentzOrigin(model.final_user().cols());
  std::vector<double> tag_types(bd.dataset.num_users);
  std::vector<double> dist_to_origin(bd.dataset.num_users);
  std::map<int, int> histogram;
  for (int u = 0; u < bd.dataset.num_users; ++u) {
    tag_types[u] = w->TagTypeCount(u);
    dist_to_origin[u] =
        hyper::LorentzDistance(origin, model.final_user().Row(u));
    ++histogram[w->TagTypeCount(u)];
  }

  std::printf("=== Fig. 5(a): user distribution across # tag types (CD) "
              "===\n");
  int max_count = 1;
  for (const auto& [k, c] : histogram) max_count = std::max(max_count, c);
  for (const auto& [k, c] : histogram) {
    const int bar = (60 * c) / max_count;
    std::printf("%3d tags | %-60s %d\n", k, std::string(bar, '#').c_str(), c);
  }

  std::printf("\n=== Fig. 5(b): # tag types vs distance to origin ===\n");
  // Bucketed means, like the paper's scatter trend.
  std::map<int, math::RunningStat> buckets;
  for (int u = 0; u < bd.dataset.num_users; ++u) {
    buckets[static_cast<int>(tag_types[u])].Add(dist_to_origin[u]);
  }
  for (const auto& [k, stat] : buckets) {
    std::printf("%3d tags -> mean distance %.3f (n=%d)\n", k, stat.mean(),
                stat.count());
  }
  const double pearson =
      math::PearsonCorrelation(tag_types, dist_to_origin);
  const double spearman =
      math::SpearmanCorrelation(tag_types, dist_to_origin);
  std::printf("\ncorrelation(#tag types, distance-to-origin): pearson=%.3f "
              "spearman=%.3f\n",
              pearson, spearman);
  std::printf("Paper's claim: NEGATIVE correlation (specific users far "
              "from origin): %s\n",
              spearman < 0 ? "REPRODUCED" : "NOT reproduced");

  CsvTable csv;
  csv.header = {"user", "tag_types", "distance_to_origin", "con", "gr",
                "alpha"};
  for (int u = 0; u < bd.dataset.num_users; ++u) {
    csv.rows.push_back({StrFormat("%d", u), StrFormat("%.0f", tag_types[u]),
                        StrFormat("%.4f", dist_to_origin[u]),
                        StrFormat("%.4f", w->Con(u)),
                        StrFormat("%.4f", w->Gr(u)),
                        StrFormat("%.4f", w->Alpha(u))});
  }
  LOGIREC_CHECK(WriteCsv(flags.GetString("csv"), csv).ok());
  std::printf("per-user series written to %s\n",
              flags.GetString("csv").c_str());
  return 0;
}
