// Training throughput bench: times the legacy sequential stream
// (ParallelMode::kSequential at 1 thread, the seed behavior) against the
// deterministic sharded pipeline (ParallelMode::kDeterministic at 1, 2,
// and N threads) for each model, and writes BENCH_training.json — the
// tracked perf trajectory of the training hot path.
//
// Reported numbers come from the Trainer's own telemetry: EpochStats
// .seconds covers training work only (validation probes are split into
// probe_seconds), so epochs/sec and edges/sec measure exactly the epoch
// driver + TrainOnBatch + propagation.
//
// Regression gate (--baseline): compares each model's *speedup*
// (deterministic epochs/sec at N threads over the same run's sequential
// epochs/sec at 1 thread) against the committed baseline. The ratio is
// measured inside one run on one machine, so the gate is robust to CI
// hardware variance.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/trainer.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace logirec::bench {
namespace {

/// Sums the Trainer's per-epoch telemetry: training time with probe time
/// split out, exactly as EpochStats reports them.
struct SecondsObserver final : core::TrainObserver {
  double train_seconds = 0.0;
  double probe_seconds = 0.0;
  int epochs = 0;
  void OnEpochEnd(const core::EpochStats& stats) override {
    train_seconds += stats.seconds;
    probe_seconds += stats.probe_seconds;
    ++epochs;
  }
};

struct RunStats {
  std::string label;  // e.g. "seq@1" or "det@8"
  double seconds = 0.0;
  double epochs_per_sec = 0.0;
  double edges_per_sec = 0.0;
};

struct ModelReport {
  std::string model;
  std::vector<RunStats> runs;
  double speedup = 0.0;  // det at max threads over seq at 1 thread
};

/// Fits once and reports throughput from the Trainer's telemetry. The
/// caller repeats this and keeps the fastest run — training work is
/// deterministic per (mode, threads), so the best of R repeats is the
/// least-noise estimate on a shared machine.
RunStats TrainOnce(const std::string& name, core::TrainConfig config,
                   const BenchDataset& bd, core::ParallelMode mode,
                   int threads, long num_edges) {
  config.parallel_mode = mode;
  config.num_threads = threads;
  SecondsObserver obs;
  config.observer = &obs;
  auto model = baselines::MakeModel(name, config);
  LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
  const Status st = (*model)->Fit(bd.dataset, bd.split);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());

  RunStats stats;
  stats.label = StrFormat(
      "%s@%d", mode == core::ParallelMode::kSequential ? "seq" : "det",
      threads);
  stats.seconds = obs.train_seconds;
  const double s = std::max(obs.train_seconds, 1e-12);
  stats.epochs_per_sec = obs.epochs / s;
  stats.edges_per_sec = static_cast<double>(num_edges) * obs.epochs / s;
  return stats;
}

RunStats BestOf(const std::string& name, const core::TrainConfig& config,
                const BenchDataset& bd, core::ParallelMode mode, int threads,
                long num_edges, int repeats) {
  RunStats best = TrainOnce(name, config, bd, mode, threads, num_edges);
  for (int r = 1; r < repeats; ++r) {
    RunStats run = TrainOnce(name, config, bd, mode, threads, num_edges);
    if (run.epochs_per_sec > best.epochs_per_sec) best = run;
  }
  return best;
}

ModelReport BenchModel(const std::string& name,
                       const core::TrainConfig& config,
                       const BenchDataset& bd, int max_threads,
                       int repeats) {
  long num_edges = 0;
  for (const auto& items : bd.split.train) num_edges += items.size();

  ModelReport report;
  report.model = name;
  report.runs.push_back(BestOf(name, config, bd,
                               core::ParallelMode::kSequential, 1,
                               num_edges, repeats));
  std::vector<int> thread_counts = {1, 2};
  if (max_threads > 2) thread_counts.push_back(max_threads);
  for (int t : thread_counts) {
    report.runs.push_back(BestOf(name, config, bd,
                                 core::ParallelMode::kDeterministic, t,
                                 num_edges, repeats));
  }
  report.speedup = report.runs.back().epochs_per_sec /
                   std::max(report.runs.front().epochs_per_sec, 1e-12);
  return report;
}

void WriteJson(const std::string& path, const BenchDataset& bd,
               const core::TrainConfig& config, int max_threads,
               const std::vector<ModelReport>& reports) {
  std::ostringstream out;
  long num_edges = 0;
  for (const auto& items : bd.split.train) num_edges += items.size();
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
             "\"train_edges\": %ld, \"dim\": %d, \"layers\": %d, "
             "\"epochs\": %d, \"max_threads\": %d, \"host_cores\": %u}",
             bd.dataset.name.c_str(), bd.dataset.num_users,
             bd.dataset.num_items, num_edges, config.dim, config.layers,
             config.epochs, max_threads,
             std::thread::hardware_concurrency())
      << ",\n  \"models\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModelReport& r = reports[i];
    out << StrFormat("    {\"model\": \"%s\", \"speedup\": %.3f,\n",
                     r.model.c_str(), r.speedup)
        << "     \"runs\": [";
    for (size_t j = 0; j < r.runs.size(); ++j) {
      const RunStats& run = r.runs[j];
      out << StrFormat(
          "%s{\"mode\": \"%s\", \"seconds\": %.3f, "
          "\"epochs_per_sec\": %.3f, \"edges_per_sec\": %.1f}",
          j == 0 ? "" : ",\n              ", run.label.c_str(), run.seconds,
          run.epochs_per_sec, run.edges_per_sec);
    }
    out << "]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

/// Minimal extraction of per-model speedups from a BENCH_training.json
/// produced by WriteJson (not a general JSON parser).
std::map<std::string, double> ReadBaselineSpeedups(const std::string& path) {
  std::ifstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, double> speedups;
  size_t pos = 0;
  const std::string model_key = "\"model\": \"";
  const std::string speedup_key = "\"speedup\": ";
  while ((pos = text.find(model_key, pos)) != std::string::npos) {
    pos += model_key.size();
    const size_t name_end = text.find('"', pos);
    LOGIREC_CHECK(name_end != std::string::npos);
    const std::string name = text.substr(pos, name_end - pos);
    const size_t spos = text.find(speedup_key, name_end);
    LOGIREC_CHECK_MSG(spos != std::string::npos,
                      "baseline missing speedup for " + name);
    speedups[name] = std::stod(text.substr(spos + speedup_key.size()));
    pos = name_end;
  }
  return speedups;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("models", "LogiRec,LogiRec++,HGCF,LightGCN,BPRMF,CML",
                  "comma-separated model names, or 'all' for the full zoo");
  flags.AddString("dataset", "cd", "benchmark dataset preset");
  flags.AddDouble("scale", 0.4, "dataset scale factor");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("layers", 3, "GCN layers");
  flags.AddInt("epochs", 8, "training epochs per timed run");
  flags.AddInt("repeats", 3,
               "timed fits per (mode, threads) config; the fastest run is "
               "reported");
  flags.AddInt("threads", 0,
               "max worker count for the widest run (0 = hardware)");
  flags.AddString("out", "BENCH_training.json", "output JSON path");
  flags.AddString("baseline", "",
                  "committed BENCH_training.json to gate against (empty = "
                  "no gate)");
  flags.AddDouble("max-regression", 0.30,
                  "fail if a model's speedup drops more than this "
                  "fraction below the baseline");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.layers = flags.GetInt("layers");
  config.epochs = flags.GetInt("epochs");
  config.seed = 7;

  int max_threads = flags.GetInt("threads");
  if (max_threads <= 0) {
    max_threads =
        std::max(1u, std::thread::hardware_concurrency());
  }

  const BenchDataset bd =
      MakeBenchDataset(flags.GetString("dataset"), flags.GetDouble("scale"));
  std::vector<std::string> models;
  if (flags.GetString("models") == "all") {
    models = baselines::AllModelNames();
  } else {
    models = Split(flags.GetString("models"), ',');
  }

  std::printf(
      "train_throughput: %s users=%d items=%d dim=%d layers=%d epochs=%d "
      "max_threads=%d\n",
      bd.dataset.name.c_str(), bd.dataset.num_users, bd.dataset.num_items,
      config.dim, config.layers, config.epochs, max_threads);
  std::printf("%-10s %12s %12s %12s %12s %9s\n", "model", "seq@1 ep/s",
              "det@1 ep/s", "det@2 ep/s",
              StrFormat("det@%d ep/s", max_threads).c_str(), "speedup");

  std::vector<ModelReport> reports;
  for (const std::string& name : models) {
    reports.push_back(
        BenchModel(name, config, bd, max_threads, flags.GetInt("repeats")));
    const ModelReport& r = reports.back();
    std::printf("%-10s", r.model.c_str());
    for (const RunStats& run : r.runs) {
      std::printf(" %12.2f", run.epochs_per_sec);
    }
    std::printf(" %8.2fx\n", r.speedup);
  }

  WriteJson(flags.GetString("out"), bd, config, max_threads, reports);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  if (!flags.GetString("baseline").empty()) {
    const auto baseline = ReadBaselineSpeedups(flags.GetString("baseline"));
    const double max_regression = flags.GetDouble("max-regression");
    bool failed = false;
    for (const ModelReport& r : reports) {
      auto it = baseline.find(r.model);
      if (it == baseline.end()) continue;
      const double floor = it->second * (1.0 - max_regression);
      if (r.speedup < floor) {
        std::printf(
            "REGRESSION %s: speedup %.2fx < %.2fx (baseline %.2fx - %.0f%% "
            "tolerance)\n",
            r.model.c_str(), r.speedup, floor, it->second,
            100.0 * max_regression);
        failed = true;
      }
    }
    if (failed) return 1;
    std::printf("regression gate passed (tolerance %.0f%%)\n",
                100.0 * flags.GetDouble("max-regression"));
  }
  return 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
