// Regenerates Table III: ablations of LogiRec++ on the four datasets —
// w/o L_Mem, w/o L_Hie, w/o L_Ex, w/o HGCN, w/o LRM (= LogiRec), and
// w/o Hyper (Euclidean projection). The reproduced shape: the full model
// wins; removing the HGCN hurts most; removing L_Ex hurts least among the
// three logic losses; w/o Hyper trails the hyperbolic variants.

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "core/logirec_model.h"
#include "eval/evaluator.h"
#include "math/stats.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace logirec;

namespace {

struct Variant {
  std::string label;
  std::function<void(core::LogiRecConfig*)> apply;
};

std::vector<Variant> Variants() {
  return {
      {"LogiRec++", [](core::LogiRecConfig*) {}},
      {"- w/o. L_Mem",
       [](core::LogiRecConfig* c) { c->use_membership = false; }},
      {"- w/o. L_Hie",
       [](core::LogiRecConfig* c) { c->use_hierarchy = false; }},
      {"- w/o. L_Ex",
       [](core::LogiRecConfig* c) { c->use_exclusion = false; }},
      {"- w/o. HGCN", [](core::LogiRecConfig* c) { c->use_hgcn = false; }},
      {"- w/o. LRM", [](core::LogiRecConfig* c) { c->use_mining = false; }},
      {"- w/o. Hyper",
       [](core::LogiRecConfig* c) { c->use_hyperbolic = false; }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs per model");
  flags.AddInt("seeds", 2, "repeated runs per cell");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddString("datasets", "ciao,cd,clothing,book", "comma list");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  const int seeds = flags.GetInt("seeds");
  std::printf("=== Table III: ablation results (%%, mean±std over %d "
              "seeds) ===\n",
              seeds);
  Timer total;
  for (const std::string& ds_name : Split(flags.GetString("datasets"), ',')) {
    const auto bd = bench::MakeBenchDataset(ds_name, flags.GetDouble("scale"));
    std::printf("\n--- %s ---\n", bd.dataset.name.c_str());
    TablePrinter table(
        {"Method", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"});

    eval::Evaluator evaluator(&bd.split, bd.dataset.num_items);
    for (const Variant& variant : Variants()) {
      std::map<std::string, math::RunningStat> stats;
      for (int s = 0; s < seeds; ++s) {
        core::LogiRecConfig config;
        config.dim = flags.GetInt("dim");
        config.epochs = flags.GetInt("epochs");
        static_cast<core::TrainConfig&>(config) = bench::TuneForDataset(
            "LogiRec++", bd.dataset.name, config);
        config.seed = 1000 + 37 * s;
        variant.apply(&config);
        core::LogiRecModel model(config);
        LOGIREC_CHECK(model.Fit(bd.dataset, bd.split).ok());
        const auto result = evaluator.Evaluate(model);
        for (const std::string& key : bench::MetricKeys()) {
          stats[key].Add(result.Get(key));
        }
      }
      std::vector<std::string> row = {variant.label};
      for (const std::string& key : bench::MetricKeys()) {
        row.push_back(
            StrFormat("%.2f±%.2f", stats[key].mean(), stats[key].stddev()));
      }
      table.AddRow(row);
      std::fprintf(stderr, "[table3] %s / %s done\n", ds_name.c_str(),
                   variant.label.c_str());
    }
    table.Print();
  }
  std::printf("\n[table3] total time %.1fs\n", total.ElapsedSeconds());
  return 0;
}
