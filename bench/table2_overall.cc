// Regenerates Table II: overall Recall@{10,20} / NDCG@{10,20} for all 13
// baselines plus LogiRec and LogiRec++ on the four benchmark datasets,
// with a Wilcoxon signed-rank significance marker (*) on LogiRec++ vs the
// best baseline, as in the paper.
//
// Absolute numbers differ from the paper (synthetic 1/40-scale data); the
// reproduced claim is the *shape*: LogiRec++ > LogiRec > all baselines,
// graph/hyperbolic baselines (HRCF/AGCN/HGCF/LightGCN) above the classic
// metric/MF family, and the largest relative gains on the tag-rich sparse
// datasets.

#include <cstdio>

#include "bench_common.h"
#include "eval/significance.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace logirec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs per model");
  flags.AddInt("seeds", 2, "repeated runs per cell");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddDouble("lr", 0.05, "learning rate");
  flags.AddInt("batch", 256, "triplets per optimization step");
  flags.AddDouble("margin", 1.0, "LMNN hinge margin");
  flags.AddString("datasets", "ciao,cd,clothing,book", "comma list");
  flags.AddString("models", "", "comma list (default: all 15)");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.epochs = flags.GetInt("epochs");
  config.learning_rate = flags.GetDouble("lr");
  config.batch_size = flags.GetInt("batch");
  config.margin = flags.GetDouble("margin");
  const int seeds = flags.GetInt("seeds");

  std::vector<std::string> models = baselines::AllModelNames();
  if (!flags.GetString("models").empty()) {
    models = Split(flags.GetString("models"), ',');
  }

  std::printf("=== Table II: overall performance (%%, mean±std over %d "
              "seeds) ===\n",
              seeds);
  Timer total;
  for (const std::string& ds_name : Split(flags.GetString("datasets"), ',')) {
    const auto bd = bench::MakeBenchDataset(ds_name, flags.GetDouble("scale"));
    std::printf("\n--- %s (%d users, %d items, %zu interactions) ---\n",
                bd.dataset.name.c_str(), bd.dataset.num_users,
                bd.dataset.num_items, bd.dataset.interactions.size());

    TablePrinter table(
        {"Method", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"});
    std::map<std::string, bench::RepeatedResult> results;
    for (const std::string& model : models) {
      Timer timer;
      results[model] =
          bench::RunRepeated(model, config, bd.dataset, bd.split, seeds);
      const auto& r = results[model];
      table.AddRow({model, r.Format("Recall@10"), r.Format("Recall@20"),
                    r.Format("NDCG@10"), r.Format("NDCG@20")});
      std::fprintf(stderr, "[table2] %s/%s done in %.1fs\n", ds_name.c_str(),
                   model.c_str(), timer.ElapsedSeconds());
    }
    table.Print();

    // Wilcoxon: LogiRec++ vs the best baseline by Recall@10.
    if (results.count("LogiRec++")) {
      std::string best;
      double best_score = -1.0;
      for (const auto& [name, r] : results) {
        if (name == "LogiRec" || name == "LogiRec++") continue;
        if (r.mean.at("Recall@10") > best_score) {
          best_score = r.mean.at("Recall@10");
          best = name;
        }
      }
      if (!best.empty()) {
        const auto& a = results["LogiRec++"].last_run;
        const auto& b = results[best].last_run;
        for (const std::string& key : {"Recall@10", "NDCG@10"}) {
          const auto w = eval::WilcoxonSignedRank(a.per_user.at(key),
                                                  b.per_user.at(key));
          std::printf(
              "Wilcoxon LogiRec++ vs %s on %s: z=%.2f p=%.4f%s\n",
              best.c_str(), key.c_str(), w.z_score, w.p_value,
              w.p_value < 0.05 ? "  (* significant)" : "");
        }
        const double gain =
            100.0 * (results["LogiRec++"].mean.at("Recall@10") - best_score) /
            best_score;
        std::printf("LogiRec++ improvement over best baseline (%s), "
                    "Recall@10: %+.2f%%\n",
                    best.c_str(), gain);
      }
    }
  }
  std::printf("\n[table2] total time %.1fs\n", total.ElapsedSeconds());
  return 0;
}
