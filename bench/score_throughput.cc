// Full-catalog ranking throughput bench: times the pre-kernel scalar
// scoring path (per-user allocating ScoreItems + heap Top-K, kept here as
// the reference) against the batched kernel pipeline (ScoreItemsInto in
// ranking mode + nth_element Top-K over reused buffers) for every model,
// and writes BENCH_scoring.json — the tracked perf trajectory of the
// ranking hot path.
//
// Regression gate (--baseline): compares each model's *speedup* (kernel
// users/sec divided by the same run's scalar users/sec) against the
// committed baseline. The ratio is measured inside one run on one
// machine, so the gate is robust to CI hardware variance, while still
// being exactly a users/sec regression check after normalizing out
// machine speed.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <queue>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace logirec::bench {
namespace {

/// The pre-kernel heap-based Top-K, kept verbatim so the scalar reference
/// path stays the seed implementation even as eval::TopK evolves.
std::vector<int> HeapTopK(const std::vector<double>& scores, int k) {
  using Entry = std::pair<double, int>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    if (scores[i] == neg_inf) continue;
    if (static_cast<int>(heap.size()) < k) {
      heap.push({scores[i], i});
    } else if (!heap.empty() && cmp({scores[i], i}, heap.top())) {
      heap.pop();
      heap.push({scores[i], i});
    }
  }
  std::vector<int> out(heap.size());
  for (int i = static_cast<int>(heap.size()) - 1; i >= 0; --i) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

struct PathStats {
  double cold_users_per_sec = 0.0;
  double warm_users_per_sec = 0.0;
  double ns_per_item = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct ModelReport {
  std::string model;
  PathStats scalar;
  PathStats kernel;
  double speedup = 0.0;  // kernel warm users/sec over scalar warm
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(), samples->begin() + idx, samples->end());
  return (*samples)[idx];
}

/// Runs `pass(u)` for every user once per repeat (plus one cold pass) and
/// aggregates throughput + per-user latency percentiles.
template <typename PerUser>
PathStats TimePath(int num_users, int num_items, int repeats,
                   const PerUser& pass) {
  PathStats stats;
  Timer cold;
  for (int u = 0; u < num_users; ++u) pass(u);
  const double cold_s = cold.ElapsedSeconds();
  stats.cold_users_per_sec = num_users / std::max(cold_s, 1e-12);

  std::vector<double> per_user_us;
  per_user_us.reserve(static_cast<size_t>(num_users) * repeats);
  double warm_s = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer pass_timer;
    for (int u = 0; u < num_users; ++u) {
      Timer user_timer;
      pass(u);
      per_user_us.push_back(user_timer.ElapsedSeconds() * 1e6);
    }
    warm_s += pass_timer.ElapsedSeconds();
  }
  const double warm_users = static_cast<double>(num_users) * repeats;
  stats.warm_users_per_sec = warm_users / std::max(warm_s, 1e-12);
  stats.ns_per_item =
      warm_s * 1e9 / std::max(warm_users * num_items, 1.0);
  stats.p50_us = Percentile(&per_user_us, 0.50);
  stats.p99_us = Percentile(&per_user_us, 0.99);
  return stats;
}

ModelReport BenchModel(const std::string& name,
                       const core::TrainConfig& config,
                       const BenchDataset& bd, int repeats, int top_k,
                       int max_users) {
  auto model = baselines::MakeModel(name, config);
  LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
  const Status st = (*model)->Fit(bd.dataset, bd.split);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  const core::Recommender& rec = **model;

  // Throughput depends on the catalog size, not on how many users we
  // sample, so cap the measured users to keep slow models (NeuMF runs an
  // MLP per item) from dominating the bench's wall time.
  const int num_users = std::min(bd.dataset.num_users, max_users);
  const int num_items = bd.dataset.num_items;

  ModelReport report;
  report.model = name;

  // Seed scalar path: allocate a fresh score vector per user, rank with
  // the heap — exactly what Evaluator::Evaluate did before the kernels.
  report.scalar = TimePath(num_users, num_items, repeats, [&](int u) {
    std::vector<double> scores(num_items);
    rec.ScoreItems(u, &scores);
    const std::vector<int> ranked = HeapTopK(scores, top_k);
    LOGIREC_CHECK(!ranked.empty());
  });

  // Kernel path: batched ranking-mode scoring into a reused buffer,
  // nth_element Top-K over reused index buffers.
  std::vector<double> scores(num_items);
  std::vector<int> scratch, ranked;
  report.kernel = TimePath(num_users, num_items, repeats, [&](int u) {
    rec.ScoreItemsInto(u, math::Span(scores), eval::ScoreMode::kRanking);
    eval::TopKInto(math::ConstSpan(scores), top_k, &scratch, &ranked);
    LOGIREC_CHECK(!ranked.empty());
  });

  report.speedup =
      report.kernel.warm_users_per_sec /
      std::max(report.scalar.warm_users_per_sec, 1e-12);
  return report;
}

std::string FormatPath(const PathStats& s) {
  return StrFormat(
      "{\"cold_users_per_sec\": %.1f, \"warm_users_per_sec\": %.1f, "
      "\"ns_per_item\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f}",
      s.cold_users_per_sec, s.warm_users_per_sec, s.ns_per_item, s.p50_us,
      s.p99_us);
}

void WriteJson(const std::string& path, const BenchDataset& bd,
               const core::TrainConfig& config, int repeats, int top_k,
               const std::vector<ModelReport>& reports) {
  std::ostringstream out;
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
             "\"dim\": %d, \"epochs\": %d, \"repeats\": %d, \"top_k\": %d}",
             bd.dataset.name.c_str(), bd.dataset.num_users,
             bd.dataset.num_items, config.dim, config.epochs, repeats, top_k)
      << ",\n  \"models\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModelReport& r = reports[i];
    out << StrFormat("    {\"model\": \"%s\", \"speedup\": %.3f,\n",
                     r.model.c_str(), r.speedup)
        << "     \"scalar\": " << FormatPath(r.scalar) << ",\n"
        << "     \"kernel\": " << FormatPath(r.kernel) << "}"
        << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

/// Minimal extraction of per-model speedups from a BENCH_scoring.json
/// produced by WriteJson (not a general JSON parser).
std::map<std::string, double> ReadBaselineSpeedups(const std::string& path) {
  std::ifstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, double> speedups;
  size_t pos = 0;
  const std::string model_key = "\"model\": \"";
  const std::string speedup_key = "\"speedup\": ";
  while ((pos = text.find(model_key, pos)) != std::string::npos) {
    pos += model_key.size();
    const size_t name_end = text.find('"', pos);
    LOGIREC_CHECK(name_end != std::string::npos);
    const std::string name = text.substr(pos, name_end - pos);
    const size_t spos = text.find(speedup_key, name_end);
    LOGIREC_CHECK_MSG(spos != std::string::npos,
                      "baseline missing speedup for " + name);
    speedups[name] = std::stod(text.substr(spos + speedup_key.size()));
    pos = name_end;
  }
  return speedups;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("models", "all",
                  "comma-separated model names, or 'all' for the full zoo");
  flags.AddString("dataset", "cd", "benchmark dataset preset");
  flags.AddDouble("scale", 0.4, "dataset scale factor");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("epochs", 3,
               "training epochs (ranking speed is independent of fit "
               "quality, so keep this small)");
  flags.AddInt("repeats", 5, "warm timing passes over all users");
  flags.AddInt("max-users", 512,
               "cap on measured users per pass (throughput is set by the "
               "catalog size, not the user sample)");
  flags.AddInt("topk", 20, "ranking cutoff");
  flags.AddString("out", "BENCH_scoring.json", "output JSON path");
  flags.AddString("baseline", "",
                  "committed BENCH_scoring.json to gate against (empty = "
                  "no gate)");
  flags.AddDouble("max-regression", 0.30,
                  "fail if a model's speedup drops more than this "
                  "fraction below the baseline");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.epochs = flags.GetInt("epochs");
  config.seed = 7;

  const BenchDataset bd =
      MakeBenchDataset(flags.GetString("dataset"), flags.GetDouble("scale"));
  std::vector<std::string> models;
  if (flags.GetString("models") == "all") {
    models = baselines::AllModelNames();
  } else {
    models = Split(flags.GetString("models"), ',');
  }
  const int repeats = flags.GetInt("repeats");
  const int top_k = flags.GetInt("topk");

  std::printf("score_throughput: %s users=%d items=%d dim=%d repeats=%d\n",
              bd.dataset.name.c_str(), bd.dataset.num_users,
              bd.dataset.num_items, config.dim, repeats);
  std::printf("%-10s %14s %14s %9s %9s %9s\n", "model", "scalar u/s",
              "kernel u/s", "speedup", "p50 us", "p99 us");

  std::vector<ModelReport> reports;
  for (const std::string& name : models) {
    reports.push_back(BenchModel(name, config, bd, repeats, top_k,
                                 flags.GetInt("max-users")));
    const ModelReport& r = reports.back();
    std::printf("%-10s %14.1f %14.1f %8.2fx %9.2f %9.2f\n", r.model.c_str(),
                r.scalar.warm_users_per_sec, r.kernel.warm_users_per_sec,
                r.speedup, r.kernel.p50_us, r.kernel.p99_us);
  }

  WriteJson(flags.GetString("out"), bd, config, repeats, top_k, reports);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  if (!flags.GetString("baseline").empty()) {
    const auto baseline = ReadBaselineSpeedups(flags.GetString("baseline"));
    const double max_regression = flags.GetDouble("max-regression");
    bool failed = false;
    for (const ModelReport& r : reports) {
      auto it = baseline.find(r.model);
      if (it == baseline.end()) continue;
      const double floor = it->second * (1.0 - max_regression);
      if (r.speedup < floor) {
        std::printf(
            "REGRESSION %s: speedup %.2fx < %.2fx (baseline %.2fx - %.0f%% "
            "tolerance)\n",
            r.model.c_str(), r.speedup, floor, it->second,
            100.0 * max_regression);
        failed = true;
      }
    }
    if (failed) return 1;
    std::printf("regression gate passed (tolerance %.0f%%)\n",
                100.0 * flags.GetDouble("max-regression"));
  }
  return 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
