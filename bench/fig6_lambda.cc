// Regenerates Fig. 6: Recall@10 and NDCG@10 of LogiRec++ as the logic
// regularizer weight lambda sweeps {0, 0.01, 0.1, 1.0, 1.5}, against the
// best baseline (HRCF) as a horizontal reference, on all four datasets.
// The reproduced shape: lambda = 0 underuses the tags, very large lambda
// over-regularizes, an interior lambda is best, and LogiRec++ stays above
// the baseline across most of the range.

#include <cstdio>

#include "bench_common.h"
#include "core/logirec_model.h"
#include "eval/evaluator.h"
#include "util/flags.h"

using namespace logirec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs");
  flags.AddString("baseline", "HRCF", "reference baseline");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  // The paper sweeps {0, 0.01, 0.1, 1.0, 1.5}; rescaled x4 here because
  // per-step application at batch 256 weakens lambda accordingly.
  const std::vector<double> lambdas = {0.0, 0.04, 0.4, 4.0, 6.0};
  core::TrainConfig config;
  config.epochs = flags.GetInt("epochs");

  std::printf("=== Fig. 6: performance vs lambda (LogiRec++ series, %s "
              "reference) ===\n",
              flags.GetString("baseline").c_str());
  Timer total;
  for (const std::string& ds_name : bench::DatasetNames()) {
    const auto bd = bench::MakeBenchDataset(ds_name, flags.GetDouble("scale"));
    eval::Evaluator evaluator(&bd.split, bd.dataset.num_items);

    const auto baseline = bench::RunRepeated(
        flags.GetString("baseline"), config, bd.dataset, bd.split, 1);
    std::printf("\n--- %s ---\n", bd.dataset.name.c_str());
    std::printf("%-12s  Recall@10  NDCG@10\n", "");
    std::printf("%-12s  %9.2f  %7.2f   (reference)\n",
                flags.GetString("baseline").c_str(),
                baseline.mean.at("Recall@10"), baseline.mean.at("NDCG@10"));

    for (double lambda : lambdas) {
      core::LogiRecConfig lc;
      lc.epochs = config.epochs;
      lc.lambda = lambda;
      core::LogiRecModel model(lc);
      LOGIREC_CHECK(model.Fit(bd.dataset, bd.split).ok());
      const auto result = evaluator.Evaluate(model);
      std::printf("lambda=%-5.2f  %9.2f  %7.2f%s\n", lambda,
                  result.Get("Recall@10"), result.Get("NDCG@10"),
                  result.Get("Recall@10") > baseline.mean.at("Recall@10")
                      ? "  > baseline"
                      : "");
    }
  }
  std::printf("\n[fig6] total time %.1fs\n", total.ElapsedSeconds());
  return 0;
}
