// Regenerates Figs. 7 & 8: item-embedding visualizations on the CD- and
// Book-like datasets for AGCN, HRCF, LogiRec, and LogiRec++.
//
// The figures' claim is that items from exclusive tag pairs are well
// separated by all strong models, but only LogiRec++ also separates the
// *less exclusive* pairs (tags with overlapping audiences). We reproduce
// that quantitatively with two scores per pair group (behaviourally
// overlapping = "less exclusive" vs clean = "more exclusive"):
//   * the separation ratio  mean-inter / mean-intra tag distance, and
//   * kNN tag purity, which is scale-free across the models' different
//     geometries and is the score the summary claims are based on.
// A 2D tangent-space PCA projection of every model's item embeddings is
// also dumped to CSV for external plotting.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "hyper/lorentz.h"
#include "hyper/poincare.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace logirec;

namespace {

/// Item-item distance in the model's item space.
double ItemDistance(const core::Recommender& model, int a, int b) {
  const math::Matrix* emb = model.ItemEmbeddings();
  switch (model.item_space()) {
    case core::Recommender::ItemSpace::kLorentz:
      return hyper::LorentzDistance(emb->Row(a), emb->Row(b));
    case core::Recommender::ItemSpace::kPoincare:
      return hyper::PoincareDistance(emb->Row(a), emb->Row(b));
    default:
      return math::Distance(emb->Row(a), emb->Row(b));
  }
}

/// Rows of the embedding mapped into a flat chart for PCA: log_o for
/// Lorentz embeddings, identity otherwise.
math::Vec FlatRow(const core::Recommender& model, int item) {
  const math::Matrix* emb = model.ItemEmbeddings();
  if (model.item_space() == core::Recommender::ItemSpace::kLorentz) {
    const math::Vec z = hyper::LorentzLogOrigin(emb->Row(item));
    return math::Vec(z.begin() + 1, z.end());
  }
  return math::Vec(emb->Row(item).begin(), emb->Row(item).end());
}

/// 2-component PCA via power iteration with deflation.
std::vector<std::array<double, 2>> Pca2d(
    const std::vector<math::Vec>& rows) {
  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  math::Vec mean(d, 0.0);
  for (const auto& r : rows) {
    for (int k = 0; k < d; ++k) mean[k] += r[k] / n;
  }
  std::vector<math::Vec> centered(rows);
  for (auto& r : centered) {
    for (int k = 0; k < d; ++k) r[k] -= mean[k];
  }
  auto power_component = [&](const math::Vec* deflate) {
    math::Vec v(d, 0.0);
    for (int k = 0; k < d; ++k) v[k] = std::cos(k + 1.0);  // fixed init
    for (int iter = 0; iter < 60; ++iter) {
      math::Vec next(d, 0.0);
      for (const auto& r : centered) {
        double proj = math::Dot(r, v);
        if (deflate != nullptr) {
          proj -= math::Dot(r, *deflate) * math::Dot(*deflate, v);
        }
        math::Axpy(proj, r, math::Span(next));
      }
      if (deflate != nullptr) {
        const double along = math::Dot(next, *deflate);
        math::Axpy(-along, *deflate, math::Span(next));
      }
      const double norm = math::Norm(next);
      if (norm < 1e-12) break;
      math::ScaleInPlace(math::Span(next), 1.0 / norm);
      v = next;
    }
    return v;
  };
  const math::Vec pc1 = power_component(nullptr);
  const math::Vec pc2 = power_component(&pc1);
  std::vector<std::array<double, 2>> out(n);
  for (int i = 0; i < n; ++i) {
    out[i] = {math::Dot(centered[i], pc1), math::Dot(centered[i], pc2)};
  }
  return out;
}

/// Report per-model separation of exclusive sibling tag pairs.
void RunFigure(const std::string& ds_name, double scale, int epochs,
               int batch_size, const std::string& csv_path) {
  // The visualization experiment colours items BY TAG, so it needs clean
  // labels: with the generator's default label noise, mislabeled items
  // sit (correctly!) with their behavioural cluster but are counted under
  // the wrong colour, which rewards models that blindly follow labels.
  // The paper's figures carry no injected label noise either.
  data::SyntheticConfig config = ds_name == "book"
                                     ? data::BookLikeConfig(scale)
                                     : data::CdLikeConfig(scale);
  config.missing_tag_prob = 0.0;
  config.wrong_tag_prob = 0.0;
  bench::BenchDataset bd;
  bd.dataset = data::GenerateSynthetic(config);
  bd.split = data::TemporalSplit(bd.dataset);
  const auto relations = bd.dataset.ExtractRelations();

  // Items per tag (leaf assignment = first tag).
  std::vector<std::vector<int>> items_of_tag(bd.dataset.taxonomy.num_tags());
  for (int v = 0; v < bd.dataset.num_items; ++v) {
    if (!bd.dataset.item_tags[v].empty()) {
      items_of_tag[bd.dataset.item_tags[v][0]].push_back(v);
    }
  }

  // Behavioural overlap per exclusive pair: fraction of users of the
  // rarer tag who also interact with the other tag's items.
  std::vector<std::set<int>> users_of_tag(bd.dataset.taxonomy.num_tags());
  for (int u = 0; u < bd.dataset.num_users; ++u) {
    for (int v : bd.split.train[u]) {
      if (!bd.dataset.item_tags[v].empty()) {
        users_of_tag[bd.dataset.item_tags[v][0]].insert(u);
      }
    }
  }
  struct Pair {
    int a, b;
    double overlap;
  };
  std::vector<Pair> pairs;
  for (const data::ExclusionPair& e : relations.exclusions) {
    if (items_of_tag[e.a].size() < 4 || items_of_tag[e.b].size() < 4) {
      continue;
    }
    const auto& ua = users_of_tag[e.a];
    const auto& ub = users_of_tag[e.b];
    if (ua.empty() || ub.empty()) continue;
    int common = 0;
    for (int u : ua) common += ub.count(u);
    const double overlap =
        static_cast<double>(common) / std::min(ua.size(), ub.size());
    pairs.push_back({e.a, e.b, overlap});
  }
  if (pairs.empty()) {
    std::printf("(no eligible exclusive tag pairs on %s)\n", ds_name.c_str());
    return;
  }
  // Median split into "more exclusive" (low overlap) and "less exclusive".
  std::vector<double> overlaps;
  for (const Pair& p : pairs) overlaps.push_back(p.overlap);
  std::nth_element(overlaps.begin(), overlaps.begin() + overlaps.size() / 2,
                   overlaps.end());
  const double median = overlaps[overlaps.size() / 2];

  std::printf("\n--- %s: %zu exclusive tag pairs (median behavioural "
              "overlap %.2f) ---\n",
              bd.dataset.name.c_str(), pairs.size(), median);
  std::printf("%-10s  %-11s  %-11s  %-11s  %-11s\n", "Model", "ratio/more",
              "ratio/less", "purity/more", "purity/less");

  CsvTable csv;
  csv.header = {"model", "item", "leaf_tag", "x", "y"};

  for (const std::string& model_name :
       {"AGCN", "HRCF", "LogiRec", "LogiRec++"}) {
    core::TrainConfig config;
    config.epochs = epochs;
    config.batch_size = batch_size;
    auto model = baselines::MakeModel(model_name, config);
    LOGIREC_CHECK(model.ok());
    LOGIREC_CHECK((*model)->Fit(bd.dataset, bd.split).ok());
    LOGIREC_CHECK((*model)->ItemEmbeddings() != nullptr);

    auto group_ratio = [&](bool less_exclusive) {
      double ratio_sum = 0.0;
      int count = 0;
      for (const Pair& p : pairs) {
        if ((p.overlap > median) != less_exclusive) continue;
        // Intra: mean pairwise distance within each tag (capped sample).
        auto intra = [&](const std::vector<int>& items) {
          double sum = 0.0;
          int n = 0;
          const int cap = std::min<int>(items.size(), 12);
          for (int i = 0; i < cap; ++i) {
            for (int j = i + 1; j < cap; ++j) {
              sum += ItemDistance(**model, items[i], items[j]);
              ++n;
            }
          }
          return n > 0 ? sum / n : 0.0;
        };
        const double intra_mean =
            0.5 * (intra(items_of_tag[p.a]) + intra(items_of_tag[p.b]));
        double inter = 0.0;
        int n = 0;
        const int cap_a = std::min<int>(items_of_tag[p.a].size(), 12);
        const int cap_b = std::min<int>(items_of_tag[p.b].size(), 12);
        for (int i = 0; i < cap_a; ++i) {
          for (int j = 0; j < cap_b; ++j) {
            inter += ItemDistance(**model, items_of_tag[p.a][i],
                                  items_of_tag[p.b][j]);
            ++n;
          }
        }
        inter /= std::max(n, 1);
        if (intra_mean > 1e-9) {
          ratio_sum += inter / intra_mean;
          ++count;
        }
      }
      return count > 0 ? ratio_sum / count : 0.0;
    };

    // kNN label purity: scale-free across geometries (the raw distance
    // ratio is not — Euclidean and hyperbolic spaces distribute mass
    // differently). For each item in the pair's union: the fraction of
    // its 5 nearest union neighbours sharing its tag. 0.5 = fully mixed,
    // 1.0 = perfectly separated clusters (the paper's visual claim).
    auto group_purity = [&](bool less_exclusive) {
      double purity_sum = 0.0;
      int pair_count = 0;
      for (const Pair& p : pairs) {
        if ((p.overlap > median) != less_exclusive) continue;
        std::vector<std::pair<int, int>> pool;  // (item, tag)
        const int cap_a = std::min<int>(items_of_tag[p.a].size(), 15);
        const int cap_b = std::min<int>(items_of_tag[p.b].size(), 15);
        for (int i = 0; i < cap_a; ++i) {
          pool.push_back({items_of_tag[p.a][i], p.a});
        }
        for (int i = 0; i < cap_b; ++i) {
          pool.push_back({items_of_tag[p.b][i], p.b});
        }
        double item_purity = 0.0;
        for (size_t i = 0; i < pool.size(); ++i) {
          std::vector<std::pair<double, int>> neighbors;  // (dist, tag)
          for (size_t j = 0; j < pool.size(); ++j) {
            if (i == j) continue;
            neighbors.push_back(
                {ItemDistance(**model, pool[i].first, pool[j].first),
                 pool[j].second});
          }
          const size_t k = std::min<size_t>(5, neighbors.size());
          std::partial_sort(neighbors.begin(), neighbors.begin() + k,
                            neighbors.end());
          int same = 0;
          for (size_t n = 0; n < k; ++n) {
            same += (neighbors[n].second == pool[i].second);
          }
          item_purity += k > 0 ? static_cast<double>(same) / k : 0.0;
        }
        purity_sum += item_purity / pool.size();
        ++pair_count;
      }
      return pair_count > 0 ? purity_sum / pair_count : 0.0;
    };

    const double more_excl = group_ratio(false);
    const double less_excl = group_ratio(true);
    std::printf("%-10s  %11.3f  %11.3f  %11.3f  %11.3f\n",
                model_name.c_str(), more_excl, less_excl,
                group_purity(false), group_purity(true));

    // 2D projection dump.
    std::vector<math::Vec> flat;
    flat.reserve(bd.dataset.num_items);
    for (int v = 0; v < bd.dataset.num_items; ++v) {
      flat.push_back(FlatRow(**model, v));
    }
    const auto coords = Pca2d(flat);
    for (int v = 0; v < bd.dataset.num_items; ++v) {
      const int leaf =
          bd.dataset.item_tags[v].empty() ? -1 : bd.dataset.item_tags[v][0];
      csv.rows.push_back({model_name, StrFormat("%d", v),
                          StrFormat("%d", leaf),
                          StrFormat("%.5f", coords[v][0]),
                          StrFormat("%.5f", coords[v][1])});
    }
  }
  LOGIREC_CHECK(WriteCsv(csv_path, csv).ok());
  std::printf("2D projections written to %s\n", csv_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs");
  flags.AddInt("batch", 256, "triplets per optimization step");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  std::printf("=== Figs. 7-8: item-embedding separation by exclusive tag "
              "pairs ===\n");
  RunFigure("cd", flags.GetDouble("scale"), flags.GetInt("epochs"),
            flags.GetInt("batch"), "fig7_cd_embeddings.csv");
  RunFigure("book", flags.GetDouble("scale"), flags.GetInt("epochs"),
            flags.GetInt("batch"), "fig8_book_embeddings.csv");
  return 0;
}
