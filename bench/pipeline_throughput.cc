// Continuous-learning replay benchmark: warm-start fine-tune vs full
// retrain over the same window schedule, through the live server.
//
// Both runs replay the identical window slicing, seed and evaluation
// protocol (window t scored by the generation trained on windows < t,
// through ModelServer::Submit, before t is ingested), so the committed
// BENCH_pipeline.json is an apples-to-apples cost/quality comparison:
//
//   cost_ratio   full train-seconds / warm train-seconds per window
//                (the whole point of warm-starting: >= --min-cost-ratio)
//   ndcg_delta   warm mean NDCG@k - full mean NDCG@k (must stay within
//                the --max-ndcg-drop relative band)
//
// Gates (CI):
//   --min-cost-ratio   fail if warm is not this much cheaper (0 = off)
//   --max-ndcg-drop    fail if warm NDCG falls more than this fraction
//                      below full (quality tolerance band)
//   --baseline=PATH    apply the same two gates to a committed
//                      BENCH_pipeline.json without re-running
//   zero failed in-flight requests, always (both runs, eval + live load)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "pipeline/pipeline.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace logirec;

namespace {

void AppendRunJson(const std::string& label,
                   const pipeline::PipelineReport& report,
                   std::ostringstream* out) {
  *out << StrFormat(
      "  \"%s\": {\"bootstrap_train_seconds\": %.4f, "
      "\"total_train_seconds\": %.4f, \"mean_ndcg\": %.6f, "
      "\"mean_recall\": %.6f, \"eval_users\": %ld, \"eval_failures\": %ld, "
      "\"live_requests\": %ld, \"live_failures\": %ld, \"live_shed\": %ld,\n"
      "    \"windows\": [",
      label.c_str(), report.bootstrap_train_seconds,
      report.total_train_seconds, report.mean_ndcg, report.mean_recall,
      report.total_eval_users, report.total_eval_failures,
      report.live_requests, report.live_failures, report.live_shed);
  for (size_t i = 0; i < report.windows.size(); ++i) {
    const pipeline::WindowReport& w = report.windows[i];
    *out << StrFormat(
        "%s\n      {\"window\": %d, \"ndcg\": %.6f, \"recall\": %.6f, "
        "\"train_seconds\": %.4f, \"ingest_seconds\": %.4f, "
        "\"swap_seconds\": %.4f, \"appended\": %ld, \"train_size\": %ld}",
        i == 0 ? "" : ",", w.window, w.ndcg, w.recall, w.train_seconds,
        w.ingest_seconds, w.swap_seconds, w.ingest.appended, w.train_size);
  }
  *out << "\n    ]}";
}

double ExtractDouble(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = text.find(needle);
  LOGIREC_CHECK_MSG(pos != std::string::npos,
                    "baseline missing key " + key);
  return std::stod(text.substr(pos + needle.size()));
}

/// Applies the cost/quality gates to one (warm_seconds, full_seconds,
/// warm_ndcg, full_ndcg) tuple. Returns false (after printing) on a
/// violated gate.
bool CheckGates(const char* what, double warm_seconds, double full_seconds,
                double warm_ndcg, double full_ndcg, double min_cost_ratio,
                double max_ndcg_drop) {
  const double ratio =
      warm_seconds > 0.0 ? full_seconds / warm_seconds : 0.0;
  const double floor = full_ndcg * (1.0 - max_ndcg_drop);
  std::printf("%s: cost_ratio %.2fx (gate >= %.2fx), NDCG %.4f vs full "
              "%.4f (floor %.4f)\n",
              what, ratio, min_cost_ratio, warm_ndcg, full_ndcg, floor);
  bool ok = true;
  if (min_cost_ratio > 0.0 && ratio < min_cost_ratio) {
    std::printf("GATE FAILED (%s): warm-start is only %.2fx cheaper than "
                "full retrain (gate %.2fx)\n",
                what, ratio, min_cost_ratio);
    ok = false;
  }
  if (warm_ndcg < floor) {
    std::printf("GATE FAILED (%s): warm NDCG %.4f below the %.0f%% band "
                "of full retrain (%.4f)\n",
                what, warm_ndcg, 100.0 * (1.0 - max_ndcg_drop), floor);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "cd", "benchmark dataset preset");
  flags.AddDouble("scale", 0.4, "dataset scale factor");
  flags.AddInt("windows", 6, "replay windows");
  flags.AddInt("bootstrap", 2, "windows ingested before the bootstrap Fit");
  flags.AddString("model", "LogiRec++", "model-zoo name");
  flags.AddInt("epochs", 30, "bootstrap/full-retrain epochs");
  flags.AddInt("fine-tune-epochs", 3, "epochs per warm fine-tune");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("threads", 0, "training + serving threads (0 = hardware)");
  flags.AddInt("live-threads", 2, "background load threads");
  flags.AddInt("k", 20, "evaluation cutoff");
  flags.AddString("out", "BENCH_pipeline.json", "output JSON path");
  flags.AddDouble("min-cost-ratio", 0.0,
                  "fail if full/warm train-seconds is below this (0 = off)");
  flags.AddDouble("max-ndcg-drop", 0.10,
                  "fail if warm NDCG falls more than this fraction below "
                  "full retrain");
  flags.AddString("baseline", "",
                  "committed BENCH_pipeline.json to gate against instead "
                  "of re-running (empty = run the replay)");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const double min_cost_ratio = flags.GetDouble("min-cost-ratio");
  const double max_ndcg_drop = flags.GetDouble("max-ndcg-drop");

  const std::string baseline = flags.GetString("baseline");
  if (!baseline.empty()) {
    std::ifstream f(baseline);
    LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + baseline);
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();
    const double warm_seconds =
        ExtractDouble(text, "warm_train_seconds");
    const double full_seconds =
        ExtractDouble(text, "full_train_seconds");
    const double warm_ndcg = ExtractDouble(text, "warm_mean_ndcg");
    const double full_ndcg = ExtractDouble(text, "full_mean_ndcg");
    LOGIREC_CHECK_MSG(
        static_cast<long>(ExtractDouble(text, "total_failures")) == 0,
        "committed baseline records failed in-flight requests");
    return CheckGates("baseline", warm_seconds, full_seconds, warm_ndcg,
                      full_ndcg, min_cost_ratio, max_ndcg_drop)
               ? 0
               : 1;
  }

  const auto bd = bench::MakeBenchDataset(flags.GetString("dataset"),
                                          flags.GetDouble("scale"));
  std::printf("replay: %s, %d users, %d items, %zu interactions, "
              "%d windows (%d bootstrap)\n",
              bd.dataset.name.c_str(), bd.dataset.num_users,
              bd.dataset.num_items, bd.dataset.interactions.size(),
              flags.GetInt("windows"), flags.GetInt("bootstrap"));

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.epochs = flags.GetInt("epochs");
  config.num_threads = flags.GetInt("threads");
  config.seed = 7;

  pipeline::PipelineOptions options;
  options.num_windows = flags.GetInt("windows");
  options.bootstrap_windows = flags.GetInt("bootstrap");
  options.eval_k = flags.GetInt("k");
  options.live_load_threads = flags.GetInt("live-threads");
  options.trainer.model = flags.GetString("model");
  options.trainer.fine_tune_epochs = flags.GetInt("fine-tune-epochs");
  options.server.num_threads = flags.GetInt("threads");

  const std::string tmp =
      (std::filesystem::temp_directory_path() / "logirec_pipeline_bench")
          .string();
  pipeline::PipelineReport reports[2];
  const char* labels[2] = {"warm", "full"};
  for (int run = 0; run < 2; ++run) {
    options.full_retrain = (run == 1);
    options.snapshot_dir = tmp + "/" + labels[run];
    std::filesystem::create_directories(options.snapshot_dir);
    pipeline::PipelineDriver driver(options, config);
    auto report = driver.Run(bd.dataset);
    LOGIREC_CHECK_MSG(report.ok(), report.status().ToString());
    reports[run] = std::move(*report);
    std::printf("[%s] train %.2fs, NDCG@%d %.4f, Recall@%d %.4f, live "
                "%ld ok / %ld failed / %ld shed\n",
                labels[run], reports[run].total_train_seconds,
                options.eval_k, reports[run].mean_ndcg, options.eval_k,
                reports[run].mean_recall, reports[run].live_requests,
                reports[run].live_failures, reports[run].live_shed);
  }
  const pipeline::PipelineReport& warm = reports[0];
  const pipeline::PipelineReport& full = reports[1];

  const long total_failures =
      warm.total_eval_failures + warm.live_failures +
      full.total_eval_failures + full.live_failures;

  const std::string out = flags.GetString("out");
  std::ostringstream json;
  json << StrFormat(
      "{\n  \"meta\": {\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
      "\"interactions\": %zu, \"windows\": %d, \"bootstrap\": %d, "
      "\"model\": \"%s\", \"epochs\": %d, \"fine_tune_epochs\": %d, "
      "\"k\": %d},\n",
      bd.dataset.name.c_str(), bd.dataset.num_users, bd.dataset.num_items,
      bd.dataset.interactions.size(), options.num_windows,
      options.bootstrap_windows, options.trainer.model.c_str(),
      config.epochs, options.trainer.fine_tune_epochs, options.eval_k);
  json << StrFormat(
      "  \"comparison\": {\"warm_train_seconds\": %.4f, "
      "\"full_train_seconds\": %.4f, \"cost_ratio\": %.3f, "
      "\"warm_mean_ndcg\": %.6f, \"full_mean_ndcg\": %.6f, "
      "\"ndcg_delta\": %+.6f, \"total_failures\": %ld},\n",
      warm.total_train_seconds, full.total_train_seconds,
      warm.total_train_seconds > 0.0
          ? full.total_train_seconds / warm.total_train_seconds
          : 0.0,
      warm.mean_ndcg, full.mean_ndcg, warm.mean_ndcg - full.mean_ndcg,
      total_failures);
  AppendRunJson("warm", warm, &json);
  json << ",\n";
  AppendRunJson("full", full, &json);
  json << "\n}\n";
  std::ofstream f(out);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + out);
  f << json.str();
  std::printf("wrote %s\n", out.c_str());

  bool ok = CheckGates("live", warm.total_train_seconds,
                       full.total_train_seconds, warm.mean_ndcg,
                       full.mean_ndcg, min_cost_ratio, max_ndcg_drop);
  if (total_failures > 0) {
    std::printf("GATE FAILED: %ld failed in-flight requests\n",
                total_failures);
    ok = false;
  }
  return ok ? 0 : 1;
}
