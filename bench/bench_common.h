#ifndef LOGIREC_BENCH_BENCH_COMMON_H_
#define LOGIREC_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure regeneration harnesses. Each bench
// binary reproduces one table or figure of the paper; these helpers
// standardize dataset generation, repeated seeded runs, and mean±std
// formatting so the printed rows read like the originals.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "math/stats.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace logirec::bench {

/// The four metric columns of Tables II/III.
inline const std::vector<std::string>& MetricKeys() {
  static const std::vector<std::string> keys = {"Recall@10", "Recall@20",
                                                "NDCG@10", "NDCG@20"};
  return keys;
}

/// Mean ± std over repeated seeded runs, plus the per-user vectors of the
/// last run (for significance testing).
struct RepeatedResult {
  std::map<std::string, double> mean;
  std::map<std::string, double> std_dev;
  eval::EvalResult last_run;

  std::string Format(const std::string& key) const {
    return StrFormat("%.2f±%.2f", mean.at(key), std_dev.at(key));
  }
};

/// Per-dataset hyperparameters for LogiRec/LogiRec++, mirroring the
/// paper's per-dataset grid search (Section VI-A4: e.g. lambda = 0.1 on
/// Ciao/CD but 1.0 on Clothing/Book). Ciao is small and dense with a
/// shallow taxonomy, so it prefers a shallower GCN, a higher learning
/// rate, and a longer budget.
inline core::TrainConfig TuneForDataset(const std::string& model_name,
                                        const std::string& dataset_name,
                                        core::TrainConfig config) {
  if (model_name.rfind("LogiRec", 0) != 0) return config;
  const std::string key = ToLower(dataset_name);
  if (key.find("ciao") != std::string::npos) {
    config.layers = 2;
    config.learning_rate = 0.1;
    config.batch_size = 128;
    config.margin = 2.0;
    config.epochs *= 2;
  }
  return config;
}

/// Trains `model_name` on `dataset` once per seed and aggregates the four
/// metrics. The model's own seed is varied; the dataset stays fixed.
/// Applies TuneForDataset.
inline RepeatedResult RunRepeated(const std::string& model_name,
                                  core::TrainConfig config,
                                  const data::Dataset& dataset,
                                  const data::Split& split, int seeds) {
  config = TuneForDataset(model_name, dataset.name, config);
  eval::Evaluator evaluator(&split, dataset.num_items);
  std::map<std::string, math::RunningStat> stats;
  RepeatedResult out;
  for (int s = 0; s < seeds; ++s) {
    config.seed = 1000 + 37 * s;
    auto model = baselines::MakeModel(model_name, config);
    LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
    const Status st = (*model)->Fit(dataset, split);
    LOGIREC_CHECK_MSG(st.ok(), st.ToString());
    out.last_run = evaluator.Evaluate(**model);
    for (const std::string& key : MetricKeys()) {
      stats[key].Add(out.last_run.Get(key));
    }
  }
  for (const std::string& key : MetricKeys()) {
    out.mean[key] = stats[key].mean();
    out.std_dev[key] = stats[key].stddev();
  }
  return out;
}

/// Generates one of the four benchmark datasets and its temporal split.
struct BenchDataset {
  data::Dataset dataset;
  data::Split split;
};

inline BenchDataset MakeBenchDataset(const std::string& which,
                                     double scale) {
  BenchDataset out;
  auto ds = data::GenerateBenchmarkDataset(which, scale);
  LOGIREC_CHECK_MSG(ds.ok(), ds.status().ToString());
  out.dataset = std::move(*ds);
  out.split = data::TemporalSplit(out.dataset);
  return out;
}

/// The canonical dataset order of the paper's tables.
inline const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> names = {"ciao", "cd", "clothing",
                                                 "book"};
  return names;
}

}  // namespace logirec::bench

#endif  // LOGIREC_BENCH_BENCH_COMMON_H_
