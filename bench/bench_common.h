#ifndef LOGIREC_BENCH_BENCH_COMMON_H_
#define LOGIREC_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure regeneration harnesses. Each bench
// binary reproduces one table or figure of the paper; these helpers
// standardize dataset generation, repeated seeded runs, and mean±std
// formatting so the printed rows read like the originals.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "eval/compact.h"
#include "eval/evaluator.h"
#include "math/compact.h"
#include "math/matrix.h"
#include "math/stats.h"
#include "retrieval/embedding_scorer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace logirec::bench {

/// The four metric columns of Tables II/III.
inline const std::vector<std::string>& MetricKeys() {
  static const std::vector<std::string> keys = {"Recall@10", "Recall@20",
                                                "NDCG@10", "NDCG@20"};
  return keys;
}

/// Mean ± std over repeated seeded runs, plus the per-user vectors of the
/// last run (for significance testing).
struct RepeatedResult {
  std::map<std::string, double> mean;
  std::map<std::string, double> std_dev;
  eval::EvalResult last_run;

  std::string Format(const std::string& key) const {
    return StrFormat("%.2f±%.2f", mean.at(key), std_dev.at(key));
  }
};

/// Per-dataset hyperparameters for LogiRec/LogiRec++, mirroring the
/// paper's per-dataset grid search (Section VI-A4: e.g. lambda = 0.1 on
/// Ciao/CD but 1.0 on Clothing/Book). Ciao is small and dense with a
/// shallow taxonomy, so it prefers a shallower GCN, a higher learning
/// rate, and a longer budget.
inline core::TrainConfig TuneForDataset(const std::string& model_name,
                                        const std::string& dataset_name,
                                        core::TrainConfig config) {
  if (model_name.rfind("LogiRec", 0) != 0) return config;
  const std::string key = ToLower(dataset_name);
  if (key.find("ciao") != std::string::npos) {
    config.layers = 2;
    config.learning_rate = 0.1;
    config.batch_size = 128;
    config.margin = 2.0;
    config.epochs *= 2;
  }
  return config;
}

/// Trains `model_name` on `dataset` once per seed and aggregates the four
/// metrics. The model's own seed is varied; the dataset stays fixed.
/// Applies TuneForDataset.
inline RepeatedResult RunRepeated(const std::string& model_name,
                                  core::TrainConfig config,
                                  const data::Dataset& dataset,
                                  const data::Split& split, int seeds) {
  config = TuneForDataset(model_name, dataset.name, config);
  eval::Evaluator evaluator(&split, dataset.num_items);
  std::map<std::string, math::RunningStat> stats;
  RepeatedResult out;
  for (int s = 0; s < seeds; ++s) {
    config.seed = 1000 + 37 * s;
    auto model = baselines::MakeModel(model_name, config);
    LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
    const Status st = (*model)->Fit(dataset, split);
    LOGIREC_CHECK_MSG(st.ok(), st.ToString());
    out.last_run = evaluator.Evaluate(**model);
    for (const std::string& key : MetricKeys()) {
      stats[key].Add(out.last_run.Get(key));
    }
  }
  for (const std::string& key : MetricKeys()) {
    out.mean[key] = stats[key].mean();
    out.std_dev[key] = stats[key].stddev();
  }
  return out;
}

/// Generates one of the four benchmark datasets and its temporal split.
struct BenchDataset {
  data::Dataset dataset;
  data::Split split;
};

inline BenchDataset MakeBenchDataset(const std::string& which,
                                     double scale) {
  BenchDataset out;
  auto ds = data::GenerateBenchmarkDataset(which, scale);
  LOGIREC_CHECK_MSG(ds.ok(), ds.status().ToString());
  out.dataset = std::move(*ds);
  out.split = data::TemporalSplit(out.dataset);
  return out;
}

/// The canonical dataset order of the paper's tables.
inline const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> names = {"ciao", "cd", "clothing",
                                                 "book"};
  return names;
}

/// Nth-element percentile over a scratch sample buffer (reorders it).
/// Shared by the serving and retrieval throughput benches so their
/// latency columns are computed identically.
inline double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(), samples->begin() + idx, samples->end());
  return (*samples)[idx];
}

/// Uniform double in (0, 1) from the counter RNG: a pure function of
/// (seed, i), so schedules and synthetic catalogs are reproducible and
/// order-independent.
inline double CounterUniform(uint64_t seed, uint64_t i) {
  return (static_cast<double>(Rng::MixSeed(seed, i) >> 11) + 0.5) /
         static_cast<double>(1ULL << 53);
}

/// Rounds every coordinate of `m` to the nearest value representable at
/// `dtype` (identity for kF64; float narrowing for kF32; per-row
/// symmetric int8 quantize-then-dequantize for kInt8, the exact transform
/// math::Int8Catalog applies). Catalogs generated through this are
/// *exactly* representable at the target precision, so a compact catalog
/// or compact index built from them carries zero re-encoding error and
/// any recall delta a bench measures is attributable to kernel arithmetic
/// and index truncation, never to a second quantization.
inline void RoundTripDtype(math::Matrix* m, eval::ScorePrecision dtype) {
  if (dtype == eval::ScorePrecision::kF64) return;
  const int cols = m->cols();
  std::vector<int8_t> codes(cols);
  for (int r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    if (dtype == eval::ScorePrecision::kF32) {
      for (int c = 0; c < cols; ++c) {
        row[c] = static_cast<double>(static_cast<float>(row[c]));
      }
    } else {
      const float scale = math::QuantizeInt8Row(
          math::ConstSpan(row.data(), row.size()), codes.data());
      for (int c = 0; c < cols; ++c) {
        row[c] = static_cast<double>(scale) * codes[c];
      }
    }
  }
}

/// Synthetic embedding catalogs for the retrieval bench: one generator
/// per scoring geometry, all driven by the counter RNG (row r is a pure
/// function of (seed, r), identical at any generation order). The
/// trailing `dtype` round-trips rows through a compact storage precision
/// (RoundTripDtype above) — the serve, retrieval, and scale benches share
/// this one generation path for every precision they measure.
///
/// With `clusters > 0` rows come from a Gaussian mixture — cluster
/// centers at the requested scale, members offset by 0.35*scale noise —
/// which is the shape trained item tables actually have (items group by
/// genre/brand/taxonomy). `clusters == 0` gives the i.i.d. limit, the
/// structureless worst case for any ANN index.

/// Gaussian rows (Box–Muller over counter draws), optionally mixed over
/// `clusters` centers. Row r of the output is logical row r + row_offset
/// of the (seed, clusters) stream, so two calls with the same seed and
/// disjoint offsets draw from the SAME mixture (shared centers) without
/// overlapping rows — how the bench keeps queries aimed at catalog mass.
inline math::Matrix GaussianEmbeddings(
    int rows, int cols, uint64_t seed, double scale, int clusters = 0,
    int row_offset = 0,
    eval::ScorePrecision dtype = eval::ScorePrecision::kF64) {
  math::Matrix m(rows, cols);
  constexpr uint64_t kCenterSalt = 0x5851f42d4c957f2dULL;
  for (int r = 0; r < rows; ++r) {
    const uint64_t row = static_cast<uint64_t>(r) + row_offset;
    const int cluster =
        clusters > 0
            ? static_cast<int>(Rng::MixSeed(seed ^ kCenterSalt, row) %
                               static_cast<uint64_t>(clusters))
            : -1;
    const double noise = clusters > 0 ? 0.35 * scale : scale;
    for (int c = 0; c < cols; ++c) {
      const uint64_t k = row * cols + c;
      const double u1 = CounterUniform(seed, 2 * k);
      const double u2 = CounterUniform(seed, 2 * k + 1);
      double x =
          noise * std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      if (cluster >= 0) {
        const uint64_t ck =
            static_cast<uint64_t>(cluster) * cols + c;
        const double cu1 = CounterUniform(seed ^ kCenterSalt, 2 * ck);
        const double cu2 = CounterUniform(seed ^ kCenterSalt, 2 * ck + 1);
        x += scale * std::sqrt(-2.0 * std::log(cu1)) *
             std::cos(6.283185307179586 * cu2);
      }
      m.At(r, c) = x;
    }
  }
  RoundTripDtype(&m, dtype);
  return m;
}

/// Rows on the Lorentz hyperboloid: spatial coordinates Gaussian, time
/// coordinate x0 = sqrt(1 + ||x||^2) (curvature -1 convention).
inline math::Matrix LorentzEmbeddings(
    int rows, int cols, uint64_t seed, double scale, int clusters = 0,
    int row_offset = 0,
    eval::ScorePrecision dtype = eval::ScorePrecision::kF64) {
  LOGIREC_CHECK(cols >= 2);
  math::Matrix m =
      GaussianEmbeddings(rows, cols, seed, scale, clusters, row_offset);
  for (int r = 0; r < rows; ++r) {
    double sq = 0.0;
    for (int c = 1; c < cols; ++c) sq += m.At(r, c) * m.At(r, c);
    m.At(r, 0) = std::sqrt(1.0 + sq);
  }
  // Round-trip last: compact rows sit a rounding step off the exact
  // hyperboloid, the same deviation a narrowed trained model carries.
  RoundTripDtype(&m, dtype);
  return m;
}

/// Rows in the Poincare ball of the given radius (< 1): clustered
/// direction times a radius bounded away from the boundary, so the
/// conformal factor 1 - ||v||^2 stays well conditioned.
inline math::Matrix BallEmbeddings(
    int rows, int cols, uint64_t seed, double radius, int clusters = 0,
    int row_offset = 0,
    eval::ScorePrecision dtype = eval::ScorePrecision::kF64) {
  LOGIREC_CHECK(radius > 0.0 && radius < 1.0);
  math::Matrix m =
      GaussianEmbeddings(rows, cols, seed, 1.0, clusters, row_offset);
  for (int r = 0; r < rows; ++r) {
    double sq = 0.0;
    for (int c = 0; c < cols; ++c) sq += m.At(r, c) * m.At(r, c);
    const double norm = std::sqrt(std::max(sq, 1e-24));
    // Radius ~ radius * u^(1/cols): uniform in the ball, then shrunk.
    const double target =
        radius * std::pow(CounterUniform(seed ^ 0x9e3779b97f4a7c15ULL,
                                         static_cast<uint64_t>(r) + row_offset),
                          1.0 / cols);
    const double f = target / norm;
    for (int c = 0; c < cols; ++c) m.At(r, c) *= f;
  }
  RoundTripDtype(&m, dtype);
  return m;
}

/// The three scoring geometries the retrieval and scale benches sweep,
/// each tied to the zoo family it stands in for.
struct SpaceSpec {
  std::string name;
  retrieval::SurrogateKind kind = retrieval::SurrogateKind::kDot;
};

inline Result<SpaceSpec> ParseSpace(const std::string& name) {
  SpaceSpec spec;
  spec.name = name;
  if (name == "dot") {
    spec.kind = retrieval::SurrogateKind::kDot;
  } else if (name == "lorentz") {
    spec.kind = retrieval::SurrogateKind::kLorentzDot;
  } else if (name == "poincare") {
    spec.kind = retrieval::SurrogateKind::kNegPoincareGamma;
  } else {
    return Status::InvalidArgument("unknown space: " + name +
                                   " (want dot|lorentz|poincare)");
  }
  return spec;
}

/// One EmbeddingScorer per geometry over the mixture catalogs above.
/// Users are rows [items, items+users) of the same mixture stream as the
/// catalog (shared centers, disjoint rows), so queries aim where catalog
/// mass lives — like trained user embeddings do. `dtype` round-trips the
/// item catalog only: queries stay f64 and are narrowed at scoring time,
/// exactly as serving narrows live ranking queries.
inline retrieval::EmbeddingScorer MakeSpaceScorer(
    const SpaceSpec& space, int users, int items, int dim, uint64_t seed,
    int clusters, eval::ScorePrecision dtype = eval::ScorePrecision::kF64) {
  switch (space.kind) {
    case retrieval::SurrogateKind::kLorentzDot:
      return retrieval::EmbeddingScorer(
          LorentzEmbeddings(users, dim, seed, 0.4, clusters, items),
          LorentzEmbeddings(items, dim, seed, 0.4, clusters, 0, dtype),
          space.kind);
    case retrieval::SurrogateKind::kNegPoincareGamma:
      return retrieval::EmbeddingScorer(
          BallEmbeddings(users, dim, seed, 0.8, clusters, items),
          BallEmbeddings(items, dim, seed, 0.8, clusters, 0, dtype),
          space.kind);
    default:
      return retrieval::EmbeddingScorer(
          GaussianEmbeddings(users, dim, seed, 0.5, clusters, items),
          GaussianEmbeddings(items, dim, seed, 0.5, clusters, 0, dtype),
          space.kind);
  }
}

}  // namespace logirec::bench

#endif  // LOGIREC_BENCH_BENCH_COMMON_H_
