// Regenerates Table I: statistics of the four benchmark-like datasets
// (users, items, interactions, density, tags, and extracted logical
// relation counts). The synthetic generators mirror the paper's datasets
// at ~1/40 scale; see DESIGN.md for the substitution rationale.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace logirec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 1.0, "dataset scale factor");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  std::printf("=== Table I: Statistics of the datasets ===\n");
  TablePrinter table({"", "Ciao", "CD", "Clothing", "Book"});

  std::vector<data::DatasetStats> stats;
  for (const std::string& name : bench::DatasetNames()) {
    const auto bd = bench::MakeBenchDataset(name, flags.GetDouble("scale"));
    stats.push_back(data::ComputeStats(bd.dataset));
  }

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& s : stats) cells.push_back(getter(s));
    table.AddRow(cells);
  };
  row("# User", [](const auto& s) { return StrFormat("%d", s.num_users); });
  row("# Item", [](const auto& s) { return StrFormat("%d", s.num_items); });
  row("# Interaction",
      [](const auto& s) { return StrFormat("%ld", s.num_interactions); });
  row("Density(%)",
      [](const auto& s) { return StrFormat("%.4f", s.density_percent); });
  row("# Tag", [](const auto& s) { return StrFormat("%d", s.num_tags); });
  row("# Membership",
      [](const auto& s) { return StrFormat("%ld", s.num_memberships); });
  row("# Hierarchy",
      [](const auto& s) { return StrFormat("%ld", s.num_hierarchy); });
  row("# Exclusion",
      [](const auto& s) { return StrFormat("%ld", s.num_exclusions); });
  table.Print();

  std::printf(
      "\nShape checks vs the paper: Ciao is smallest & densest; Clothing "
      "has the most tags/exclusions; Book has the most interactions.\n");
  return 0;
}
