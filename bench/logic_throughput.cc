// Logic-relation kernel throughput bench: times the legacy per-relation
// scalar loop (core::LogicEngine in ParallelMode::kSequential — the same
// helpers in the same order as the pre-engine code) against the batched
// SoA slot-fill/ordered-fold kernels (kDeterministic at 1, 2, and N
// threads), plus the LogiRec++ mining refresh (UserWeighting construction
// and UpdateGranularity), and writes BENCH_logic.json — the tracked perf
// trajectory of the logic hot path.
//
// The tag-ball cache is invalidated before every timed call
// (MarkTagsDirty), matching training where every batch moves the tag
// centers. The det@1-vs-serial win therefore measures exactly what the
// engine changes: no per-relation heap allocation, per-tag instead of
// per-relation ball computation, and contiguous blocked distance kernels.
//
// Regression gate (--baseline): compares speedup *ratios* measured inside
// one run (batched-vs-serial and det@N-vs-det@1) against the committed
// baseline with a tolerance, so the gate is robust to CI hardware
// variance.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/embedding.h"
#include "core/logic_engine.h"
#include "core/weighting.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace logirec::bench {
namespace {

struct RunStats {
  std::string label;  // "serial", "det@1", ...
  double seconds = 0.0;
  double relations_per_sec = 0.0;
};

/// Times `iters` full logic passes (loss + gradients into fresh
/// accumulators, cache invalidated per call, as in training).
RunStats TimeLogicPass(core::LogicEngine* engine, const math::Matrix& items,
                       const math::Matrix& tags, core::ParallelMode mode,
                       int threads, int iters, const std::string& label) {
  math::Matrix gv, gt;
  gv.Reset(items.rows(), items.cols());
  gt.Reset(tags.rows(), tags.cols());
  // Warm-up: touch every buffer once outside the timed region.
  engine->MarkTagsDirty();
  engine->LossesAndGrads(items, tags, 2.0, mode, threads, 0, 0, &gv, &gt);

  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < iters; ++i) {
    gv.Reset(items.rows(), items.cols());
    gt.Reset(tags.rows(), tags.cols());
    engine->MarkTagsDirty();
    sink += engine->LossesAndGrads(items, tags, 2.0, mode, threads, i, 0,
                                   &gv, &gt);
  }
  RunStats stats;
  stats.label = label;
  stats.seconds = timer.ElapsedSeconds();
  stats.relations_per_sec = static_cast<double>(engine->relations_per_call()) *
                            iters / std::max(stats.seconds, 1e-12);
  LOGIREC_CHECK(sink >= 0.0);  // keep the work observable
  return stats;
}

RunStats BestOf(core::LogicEngine* engine, const math::Matrix& items,
                const math::Matrix& tags, core::ParallelMode mode,
                int threads, int iters, const std::string& label,
                int repeats) {
  RunStats best =
      TimeLogicPass(engine, items, tags, mode, threads, iters, label);
  for (int r = 1; r < repeats; ++r) {
    RunStats run =
        TimeLogicPass(engine, items, tags, mode, threads, iters, label);
    if (run.relations_per_sec > best.relations_per_sec) best = run;
  }
  return best;
}

/// Milliseconds per UpdateGranularity call (the per-epoch mining refresh).
double TimeMiningMs(core::UserWeighting* weighting, const math::Matrix& users,
                    int threads, int iters, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    for (int i = 0; i < iters; ++i) {
      weighting->UpdateGranularity(users, threads);
    }
    best = std::min(best, timer.ElapsedMillis() / iters);
  }
  return best;
}

/// One gated ratio, serialized with the same "model"/"speedup" keys as
/// BENCH_training.json so the string-scan baseline reader is shared.
struct RatioReport {
  std::string name;
  double speedup = 0.0;
  std::vector<RunStats> runs;
};

void WriteJson(const std::string& path, const BenchDataset& bd,
               const data::LogicalRelations& relations, int dim,
               int max_threads, int batch,
               const std::vector<RatioReport>& reports,
               double mining_ms_1, double mining_ms_n) {
  std::ostringstream out;
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
             "\"tags\": %d, \"memberships\": %zu, \"hierarchy\": %zu, "
             "\"exclusions\": %zu, \"intersections\": %zu, \"dim\": %d, "
             "\"logic_batch\": %d, \"max_threads\": %d, \"host_cores\": %u}",
             bd.dataset.name.c_str(), bd.dataset.num_users,
             bd.dataset.num_items, bd.dataset.taxonomy.num_tags(),
             relations.memberships.size(), relations.hierarchy.size(),
             relations.exclusions.size(), relations.intersections.size(),
             dim, batch, max_threads, std::thread::hardware_concurrency())
      << ",\n  \"mining\": "
      << StrFormat(
             "{\"update_granularity_ms_1t\": %.4f, "
             "\"update_granularity_ms_nt\": %.4f, \"threads_n\": %d}",
             mining_ms_1, mining_ms_n, max_threads)
      << ",\n  \"models\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const RatioReport& r = reports[i];
    out << StrFormat("    {\"model\": \"%s\", \"speedup\": %.3f,\n",
                     r.name.c_str(), r.speedup)
        << "     \"runs\": [";
    for (size_t j = 0; j < r.runs.size(); ++j) {
      out << StrFormat(
          "%s{\"mode\": \"%s\", \"seconds\": %.4f, "
          "\"relations_per_sec\": %.0f}",
          j == 0 ? "" : ",\n              ", r.runs[j].label.c_str(),
          r.runs[j].seconds, r.runs[j].relations_per_sec);
    }
    out << "]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

std::map<std::string, double> ReadBaselineSpeedups(const std::string& path) {
  std::ifstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, double> speedups;
  size_t pos = 0;
  const std::string model_key = "\"model\": \"";
  const std::string speedup_key = "\"speedup\": ";
  while ((pos = text.find(model_key, pos)) != std::string::npos) {
    pos += model_key.size();
    const size_t name_end = text.find('"', pos);
    LOGIREC_CHECK(name_end != std::string::npos);
    const std::string name = text.substr(pos, name_end - pos);
    const size_t spos = text.find(speedup_key, name_end);
    LOGIREC_CHECK_MSG(spos != std::string::npos,
                      "baseline missing speedup for " + name);
    speedups[name] = std::stod(text.substr(spos + speedup_key.size()));
    pos = name_end;
  }
  return speedups;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "cd", "benchmark dataset preset");
  flags.AddDouble("scale", 0.4, "dataset scale factor");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("iters", 200, "logic passes per timed run");
  flags.AddInt("repeats", 3,
               "timed runs per (mode, threads) config; fastest reported");
  flags.AddInt("threads", 0,
               "max worker count for the widest run (0 = hardware)");
  flags.AddInt("batch", 0, "relations per family per pass (0 = full pass)");
  flags.AddString("out", "BENCH_logic.json", "output JSON path");
  flags.AddString("baseline", "",
                  "committed BENCH_logic.json to gate against (empty = no "
                  "gate)");
  flags.AddDouble("max-regression", 0.30,
                  "fail if a speedup ratio drops more than this fraction "
                  "below the baseline");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  int max_threads = flags.GetInt("threads");
  if (max_threads <= 0) {
    max_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const int dim = flags.GetInt("dim");
  const int iters = flags.GetInt("iters");
  const int repeats = flags.GetInt("repeats");
  const int batch = flags.GetInt("batch");

  const BenchDataset bd =
      MakeBenchDataset(flags.GetString("dataset"), flags.GetDouble("scale"));
  const data::LogicalRelations relations =
      bd.dataset.ExtractRelations(/*overlap_tolerance=*/0,
                                  /*intersection_support=*/2);

  Rng rng(7);
  math::Matrix items(bd.dataset.num_items, dim);
  math::Matrix tags(bd.dataset.taxonomy.num_tags(), dim);
  core::InitPoincareRows(&items, &rng, 0.05);
  core::InitHyperplaneCenters(&tags, bd.dataset.taxonomy, &rng);

  core::LogicEngine::Options opts;
  opts.use_intersection = !relations.intersections.empty();
  opts.relation_batch = batch;
  core::LogicEngine engine(relations, opts);

  std::printf(
      "logic_throughput: %s relations=%ld (mem=%zu hie=%zu exc=%zu int=%zu) "
      "dim=%d iters=%d max_threads=%d\n",
      bd.dataset.name.c_str(), engine.total_relations(),
      relations.memberships.size(), relations.hierarchy.size(),
      relations.exclusions.size(), relations.intersections.size(), dim,
      iters, max_threads);

  // ---- logic kernels -------------------------------------------------
  const RunStats serial =
      BestOf(&engine, items, tags, core::ParallelMode::kSequential, 1, iters,
             "serial", repeats);
  std::vector<RunStats> det_runs;
  std::vector<int> thread_counts = {1, 2};
  if (max_threads > 2) thread_counts.push_back(max_threads);
  for (int t : thread_counts) {
    det_runs.push_back(BestOf(&engine, items, tags,
                              core::ParallelMode::kDeterministic, t, iters,
                              StrFormat("det@%d", t), repeats));
  }

  RatioReport kernels;  // batched SoA kernels vs the serial seed path
  kernels.name = "logic_kernels";
  kernels.runs.push_back(serial);
  kernels.runs.insert(kernels.runs.end(), det_runs.begin(), det_runs.end());
  kernels.speedup = det_runs.front().relations_per_sec /
                    std::max(serial.relations_per_sec, 1e-12);

  RatioReport parallel;  // thread scaling of the deterministic pass
  parallel.name = "logic_parallel";
  parallel.runs = det_runs;
  parallel.speedup = det_runs.back().relations_per_sec /
                     std::max(det_runs.front().relations_per_sec, 1e-12);

  for (const RunStats& run : kernels.runs) {
    std::printf("  %-8s %12.0f relations/s\n", run.label.c_str(),
                run.relations_per_sec);
  }
  std::printf("  batched det@1 vs serial: %.2fx; %s vs det@1: %.2fx\n",
              kernels.speedup, det_runs.back().label.c_str(),
              parallel.speedup);

  // ---- mining refresh ------------------------------------------------
  core::UserWeighting weighting(bd.dataset, bd.split.train, relations,
                                std::max(bd.dataset.taxonomy.num_levels(), 1),
                                max_threads);
  math::Matrix users(bd.dataset.num_users, dim + 1);
  core::InitLorentzRows(&users, &rng, 0.05);
  const int mining_iters = std::max(1, iters / 10);
  const double mining_ms_1 =
      TimeMiningMs(&weighting, users, 1, mining_iters, repeats);
  const double mining_ms_n =
      TimeMiningMs(&weighting, users, max_threads, mining_iters, repeats);
  std::printf("  mining UpdateGranularity: %.3f ms @1, %.3f ms @%d\n",
              mining_ms_1, mining_ms_n, max_threads);

  const std::vector<RatioReport> reports = {kernels, parallel};
  WriteJson(flags.GetString("out"), bd, relations, dim, max_threads, batch,
            reports, mining_ms_1, mining_ms_n);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  if (!flags.GetString("baseline").empty()) {
    const auto baseline = ReadBaselineSpeedups(flags.GetString("baseline"));
    const double max_regression = flags.GetDouble("max-regression");
    bool failed = false;
    for (const RatioReport& r : reports) {
      auto it = baseline.find(r.name);
      if (it == baseline.end()) continue;
      const double floor = it->second * (1.0 - max_regression);
      if (r.speedup < floor) {
        std::printf(
            "REGRESSION %s: speedup %.2fx < %.2fx (baseline %.2fx - %.0f%% "
            "tolerance)\n",
            r.name.c_str(), r.speedup, floor, it->second,
            100.0 * max_regression);
        failed = true;
      }
    }
    if (failed) return 1;
    std::printf("regression gate passed (tolerance %.0f%%)\n",
                100.0 * max_regression);
  }
  return 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
