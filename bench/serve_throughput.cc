// Serving throughput bench: trains a model set, snapshots each one to
// disk, restores it through serve::ServableModel (the same binary path
// logirec_serve uses), and measures both serving paths of the
// ModelServer on one host:
//
//   sync     Rank() on the caller's thread — exact scores, per-call
//            buffers; per-request latency percentiles + QPS.
//   batched  Submit() through the request batcher — ranking-surrogate
//            kernels, per-worker reused buffers, one generation acquire
//            per micro-batch; end-to-end QPS under a full queue.
//
// Both paths return bit-identical rankings (ScoreMode::kRanking
// contract), which the bench spot-checks before timing. Writes
// BENCH_serving.json — the tracked serving-perf trajectory.
//
// Gates:
//   --min-batch-speedup  fail if a gated model's batched QPS / sync QPS
//                        falls below this floor (the CI smoke gate).
//                        Gated models default to the hyperbolic scorers,
//                        where the ranking-surrogate batch path beats
//                        exact sync scoring; Euclidean dot-product
//                        models are reported ungated (sync is already
//                        near-optimal for them on one core).
//   --baseline           compare each model's batch_speedup against the
//                        committed BENCH_serving.json; both sides of the
//                        ratio come from one run on one machine, so the
//                        gate is robust to CI hardware variance.
//   --slo-p99-ms         fail if the open-loop sustained p99 exceeds this
//                        bound (and, with --baseline, if the committed
//                        JSON's sustained p99 does).
//
// Open-loop phases: after the closed-loop sync/batched measurements,
// each model is driven through TrySubmit() at fixed Poisson offered
// rates — sustained (--open-sustain-frac of measured batched capacity)
// for honest p50/p95/p99, then overload (--open-overload-frac, above
// capacity, small admission queue) where the server must stay live, shed
// deterministically with kUnavailable, lose no accepted request, and
// complete a mid-load generation swap. A closed-loop driver waits for
// completions and so throttles itself to the server's speed, hiding
// queueing delay; the open-loop schedule is drawn up front and never
// adapts, which is the regime the p99 numbers are honest in.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/snapshot.h"
#include "serve/latency_histogram.h"
#include "serve/servable.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace logirec::bench {
namespace {

struct SyncStats {
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct BatchedStats {
  double qps = 0.0;
  long batches = 0;
  long max_batch = 0;
  double p50_ms = 0.0;  // enqueue-to-completion, from the server's ring
  double p99_ms = 0.0;
};

struct OpenLoopConfig {
  int requests = 1024;
  double sustain_frac = 0.5;   // of measured batched capacity
  double overload_frac = 2.0;  // deliberately above capacity
  int max_queue = 128;         // admission bound for the open-loop server
};

struct OpenLoopStats {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  // completed over wall clock
  long submitted = 0;
  long accepted = 0;  // admitted and completed OK
  long shed = 0;      // rejected at admission (kUnavailable)
  double shed_rate = 0.0;
  // Client-observed submit-to-completion latency of accepted requests.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct ModelReport {
  std::string model;
  SyncStats sync;
  BatchedStats batched;
  double batch_speedup = 0.0;  // batched qps over sync qps
  OpenLoopStats open_sustained;
  OpenLoopStats open_overload;
};

struct ServablePair {
  std::shared_ptr<const serve::ServableModel> gen1;
  std::shared_ptr<const serve::ServableModel> gen2;  // for mid-load swap
};

/// Trains `name`, round-trips it through a binary snapshot, and returns
/// two restored servable generations — the bench measures exactly what a
/// production server would load, not the in-memory trained object, and
/// the overload phase swaps to generation 2 mid-load.
ServablePair MakeServables(const std::string& name,
                           const core::TrainConfig& config,
                           const BenchDataset& bd,
                           eval::ScorePrecision precision) {
  auto model = baselines::MakeModel(name, config);
  LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
  const Status fit = (*model)->Fit(bd.dataset, bd.split);
  LOGIREC_CHECK_MSG(fit.ok(), fit.ToString());

  core::SnapshotHeader header;
  header.dim = config.dim;
  header.layers = config.layers;
  header.num_users = bd.dataset.num_users;
  header.num_items = bd.dataset.num_items;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("logirec_serve_bench_" + name + ".snap"))
          .string();
  core::SnapshotDtype dtype = core::SnapshotDtype::kF64;
  if (precision == eval::ScorePrecision::kF32) {
    dtype = core::SnapshotDtype::kF32;
  } else if (precision == eval::ScorePrecision::kInt8) {
    dtype = core::SnapshotDtype::kInt8;
  }
  const Status wr = core::ModelSnapshot::Write(**model, header, path, dtype);
  LOGIREC_CHECK_MSG(wr.ok(), wr.ToString());
  retrieval::RetrievalOptions retrieval;
  retrieval.precision = precision;
  ServablePair pair;
  auto gen1 = serve::ServableModel::FromSnapshot(
      path, baselines::MakeModel, &bd.split, /*generation=*/1, retrieval);
  LOGIREC_CHECK_MSG(gen1.ok(), gen1.status().ToString());
  auto gen2 = serve::ServableModel::FromSnapshot(
      path, baselines::MakeModel, &bd.split, /*generation=*/2, retrieval);
  LOGIREC_CHECK_MSG(gen2.ok(), gen2.status().ToString());
  std::filesystem::remove(path);
  pair.gen1 = *gen1;
  pair.gen2 = *gen2;
  return pair;
}

/// One open-loop phase: the Poisson arrival schedule is drawn up front
/// from the counter RNG (deterministic per seed) and never adjusted to
/// the server's progress; a request behind schedule fires immediately.
/// Rejections must be explicit (kUnavailable -> counted as shed) and no
/// admitted request may be silently dropped — both are checked, not
/// assumed. When `mid_swap` is non-null it is published at the schedule
/// midpoint, from another thread, while requests are in flight.
OpenLoopStats RunOpenLoop(
    serve::ModelServer* server, int num_users, int requests, int top_k,
    double offered_qps, uint64_t seed,
    std::shared_ptr<const serve::ServableModel> mid_swap) {
  using Clock = std::chrono::steady_clock;
  LOGIREC_CHECK(requests > 0 && offered_qps > 0.0);
  std::vector<double> arrivals(requests);
  double t = 0.0;
  for (int i = 0; i < requests; ++i) {
    // Uniform in (0, 1), then inverse-CDF to an Exp(offered_qps)
    // inter-arrival gap.
    t += -std::log(CounterUniform(seed, i)) / offered_qps;
    arrivals[i] = t;
  }
  const auto at = [](Clock::time_point start, double seconds) {
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(seconds));
  };

  serve::LatencyHistogram latency;
  std::mutex mu;
  std::condition_variable cv;
  long completed = 0;  // guarded by mu
  std::atomic<long> accepted_ok{0};
  std::atomic<long> failed{0};
  long admitted = 0;
  long shed = 0;

  const auto start = Clock::now();
  std::thread swapper;
  if (mid_swap != nullptr) {
    const double midpoint = arrivals[requests / 2];
    swapper = std::thread([server, mid_swap, start, midpoint, at] {
      std::this_thread::sleep_until(at(start, midpoint));
      server->Swap(mid_swap);
    });
  }
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(at(start, arrivals[i]));
    const auto submit_time = Clock::now();
    const Status st = server->TrySubmit(
        i % num_users, top_k,
        [&latency, &mu, &cv, &completed, &accepted_ok, &failed,
         submit_time](serve::RankResponse response) {
          latency.Record(std::chrono::duration<double, std::milli>(
                             Clock::now() - submit_time)
                             .count());
          if (response.status.ok()) {
            accepted_ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          std::lock_guard<std::mutex> lock(mu);
          ++completed;
          cv.notify_one();
        });
    if (st.ok()) {
      ++admitted;
    } else {
      LOGIREC_CHECK_MSG(st.code() == StatusCode::kUnavailable,
                        st.ToString());
      ++shed;
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == admitted; });
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (swapper.joinable()) swapper.join();

  // The books must balance: every submission was either admitted (and
  // its callback fired) or explicitly shed — nothing vanished.
  LOGIREC_CHECK(admitted + shed == requests);
  LOGIREC_CHECK(accepted_ok.load() + failed.load() == admitted);
  LOGIREC_CHECK_MSG(failed.load() == 0,
                    "open-loop requests failed during the run");

  OpenLoopStats stats;
  stats.offered_qps = offered_qps;
  stats.achieved_qps = admitted / std::max(wall, 1e-12);
  stats.submitted = requests;
  stats.accepted = accepted_ok.load();
  stats.shed = shed;
  stats.shed_rate = static_cast<double>(shed) / requests;
  const serve::LatencyHistogram::Snapshot snap = latency.Take();
  stats.p50_ms = snap.p50_ms;
  stats.p95_ms = snap.p95_ms;
  stats.p99_ms = snap.p99_ms;
  stats.max_ms = snap.max_ms;
  return stats;
}

ModelReport BenchModel(const std::string& name,
                       const core::TrainConfig& config,
                       const BenchDataset& bd, int requests, int top_k,
                       const serve::ServerOptions& options,
                       const OpenLoopConfig& open_config,
                       eval::ScorePrecision precision) {
  const ServablePair servables = MakeServables(name, config, bd, precision);
  serve::ModelServer server(options);
  server.Swap(servables.gen1);
  const int num_users = bd.dataset.num_users;

  ModelReport report;
  report.model = name;

  // Spot-check the bit-identical contract between the two paths before
  // trusting the speedup: same users, same k, same item lists.
  for (int u = 0; u < std::min(num_users, 16); ++u) {
    std::vector<int> sync_items;
    const Status st = server.Rank(u, top_k, &sync_items);
    LOGIREC_CHECK_MSG(st.ok(), st.ToString());
    serve::RankResponse batched = server.Submit(u, top_k).get();
    LOGIREC_CHECK_MSG(batched.status.ok(), batched.status.ToString());
    LOGIREC_CHECK_MSG(sync_items == batched.items,
                      "sync/batched ranking mismatch for " + name);
  }

  // Sync path: one request at a time on this thread, warm pass first.
  std::vector<int> out;
  for (int r = 0; r < std::min(requests, 256); ++r) {
    LOGIREC_CHECK(server.Rank(r % num_users, top_k, &out).ok());
  }
  std::vector<double> per_request_us;
  per_request_us.reserve(requests);
  Timer sync_timer;
  for (int r = 0; r < requests; ++r) {
    Timer request_timer;
    LOGIREC_CHECK(server.Rank(r % num_users, top_k, &out).ok());
    per_request_us.push_back(request_timer.ElapsedSeconds() * 1e6);
  }
  const double sync_s = sync_timer.ElapsedSeconds();
  report.sync.qps = requests / std::max(sync_s, 1e-12);
  report.sync.p50_us = Percentile(&per_request_us, 0.50);
  report.sync.p95_us = Percentile(&per_request_us, 0.95);
  report.sync.p99_us = Percentile(&per_request_us, 0.99);

  // Batched path: keep the queue saturated so the dispatcher always has
  // a full micro-batch to drain — the offered-load regime batching is
  // for. Warm pass first, then time submit-all / drain-all.
  {
    std::vector<std::future<serve::RankResponse>> warm;
    for (int r = 0; r < std::min(requests, 256); ++r) {
      warm.push_back(server.Submit(r % num_users, top_k));
    }
    for (auto& f : warm) LOGIREC_CHECK(f.get().status.ok());
  }
  const serve::ServerStats before = server.Stats();
  std::vector<std::future<serve::RankResponse>> futures;
  futures.reserve(requests);
  Timer batched_timer;
  for (int r = 0; r < requests; ++r) {
    futures.push_back(server.Submit(r % num_users, top_k));
  }
  for (auto& f : futures) LOGIREC_CHECK(f.get().status.ok());
  const double batched_s = batched_timer.ElapsedSeconds();
  const serve::ServerStats after = server.Stats();
  report.batched.qps = requests / std::max(batched_s, 1e-12);
  report.batched.batches = after.batches_dispatched -
                           before.batches_dispatched;
  report.batched.max_batch = after.max_batch_size;
  report.batched.p50_ms = after.p50_ms;
  report.batched.p99_ms = after.p99_ms;

  report.batch_speedup =
      report.batched.qps / std::max(report.sync.qps, 1e-12);

  // Open-loop phases run on a fresh server with the small bounded queue:
  // the sustained rate measures honest latency below capacity, the
  // overload rate proves liveness + explicit shedding above it, with a
  // generation swap published mid-load.
  serve::ServerOptions open_options = options;
  open_options.max_queue = open_config.max_queue;
  serve::ModelServer open_server(open_options);
  open_server.Swap(servables.gen1);
  const double capacity = report.batched.qps;
  report.open_sustained = RunOpenLoop(
      &open_server, num_users, open_config.requests, top_k,
      open_config.sustain_frac * capacity, /*seed=*/101, nullptr);
  report.open_overload = RunOpenLoop(
      &open_server, num_users, open_config.requests, top_k,
      open_config.overload_frac * capacity, /*seed=*/202, servables.gen2);
  LOGIREC_CHECK_MSG(
      report.open_overload.shed > 0,
      "overload phase shed nothing — offered rate never exceeded capacity");
  // Liveness probe: after surviving overload the server still answers,
  // and on the generation the mid-load swap published.
  serve::RankResponse probe = open_server.Submit(0, top_k).get();
  LOGIREC_CHECK_MSG(probe.status.ok(), probe.status.ToString());
  LOGIREC_CHECK_MSG(probe.generation == 2,
                    "mid-load swap did not take effect");
  open_server.Stop();
  return report;
}

std::string OpenLoopJson(const OpenLoopStats& s) {
  return StrFormat(
      "{\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
      "\"submitted\": %ld, \"accepted\": %ld, \"shed\": %ld, "
      "\"shed_rate\": %.4f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"max_ms\": %.3f}",
      s.offered_qps, s.achieved_qps, s.submitted, s.accepted, s.shed,
      s.shed_rate, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms);
}

void WriteJson(const std::string& path, const BenchDataset& bd,
               const core::TrainConfig& config, int requests, int top_k,
               const serve::ServerOptions& options,
               const std::vector<ModelReport>& reports) {
  std::ostringstream out;
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
             "\"dim\": %d, \"requests\": %d, \"top_k\": %d, "
             "\"max_batch\": %d}",
             bd.dataset.name.c_str(), bd.dataset.num_users,
             bd.dataset.num_items, config.dim, requests, top_k,
             options.max_batch)
      << ",\n  \"models\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModelReport& r = reports[i];
    out << StrFormat("    {\"model\": \"%s\", \"batch_speedup\": %.3f,\n",
                     r.model.c_str(), r.batch_speedup)
        << StrFormat(
               "     \"sync\": {\"qps\": %.1f, \"p50_us\": %.2f, "
               "\"p95_us\": %.2f, \"p99_us\": %.2f},\n",
               r.sync.qps, r.sync.p50_us, r.sync.p95_us, r.sync.p99_us)
        << StrFormat(
               "     \"batched\": {\"qps\": %.1f, \"batches\": %ld, "
               "\"max_batch\": %ld, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
               r.batched.qps, r.batched.batches, r.batched.max_batch,
               r.batched.p50_ms, r.batched.p99_ms)
        << "     \"open_sustained\": " << OpenLoopJson(r.open_sustained)
        << ",\n     \"open_overload\": " << OpenLoopJson(r.open_overload)
        << "}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

struct BaselineEntry {
  double batch_speedup = 0.0;
  double sustained_p99_ms = -1.0;  // -1 = absent (pre-open-loop format)
};

/// Minimal extraction of per-model gate inputs from a BENCH_serving.json
/// produced by WriteJson (not a general JSON parser).
std::map<std::string, BaselineEntry> ReadBaseline(const std::string& path) {
  std::ifstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, BaselineEntry> entries;
  size_t pos = 0;
  const std::string model_key = "\"model\": \"";
  const std::string speedup_key = "\"batch_speedup\": ";
  const std::string sustained_key = "\"open_sustained\": ";
  const std::string p99_key = "\"p99_ms\": ";
  while ((pos = text.find(model_key, pos)) != std::string::npos) {
    pos += model_key.size();
    const size_t name_end = text.find('"', pos);
    LOGIREC_CHECK(name_end != std::string::npos);
    const std::string name = text.substr(pos, name_end - pos);
    const size_t next_model = text.find(model_key, name_end);
    BaselineEntry entry;
    const size_t spos = text.find(speedup_key, name_end);
    LOGIREC_CHECK_MSG(spos != std::string::npos && spos < next_model,
                      "baseline missing batch_speedup for " + name);
    entry.batch_speedup = std::stod(text.substr(spos + speedup_key.size()));
    const size_t opos = text.find(sustained_key, name_end);
    if (opos != std::string::npos && opos < next_model) {
      const size_t ppos = text.find(p99_key, opos);
      LOGIREC_CHECK_MSG(ppos != std::string::npos && ppos < next_model,
                        "baseline open_sustained missing p99_ms for " + name);
      entry.sustained_p99_ms =
          std::stod(text.substr(ppos + p99_key.size()));
    }
    entries[name] = entry;
    pos = name_end;
  }
  return entries;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("models", "BPRMF,HGCF,LogiRec++",
                  "comma-separated model names, or 'all' for the full zoo");
  flags.AddString("dataset", "cd", "benchmark dataset preset");
  flags.AddDouble("scale", 8.0,
                  "dataset scale factor (batching pays off on realistic "
                  "catalogs; tiny ones are queue-overhead bound)");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("epochs", 3,
               "training epochs (serving speed is independent of fit "
               "quality, so keep this small)");
  flags.AddInt("requests", 2048, "timed requests per path per model");
  flags.AddString("dtype", "f64",
                  "serving precision: snapshots are written at this dtype "
                  "and every servable generation restores at it (f64 = the "
                  "committed-baseline path; f32/int8 exercise the compact "
                  "serving pipeline end to end)");
  flags.AddInt("batch", 32, "request micro-batch cap");
  flags.AddInt("threads", 0, "scoring workers (0 = hardware)");
  flags.AddInt("topk", 10, "ranking cutoff");
  flags.AddString("out", "BENCH_serving.json", "output JSON path");
  flags.AddDouble("min-batch-speedup", 0.0,
                  "fail if a gated model's batched QPS / sync QPS is "
                  "below this floor (0 = no gate)");
  flags.AddString("gate-models", "HGCF,LogiRec++",
                  "models the min-batch-speedup floor applies to. The "
                  "batching win comes from the ranking-surrogate kernels, "
                  "so it holds for hyperbolic scorers; Euclidean "
                  "dot-product models (BPRMF) ride along as the "
                  "reference where sync is already near-optimal");
  flags.AddString("baseline", "",
                  "committed BENCH_serving.json to gate against (empty = "
                  "no gate)");
  flags.AddDouble("max-regression", 0.30,
                  "fail if a model's batch_speedup drops more than this "
                  "fraction below the baseline");
  flags.AddInt("open-requests", 1024,
               "requests per open-loop phase (sustained and overload)");
  flags.AddDouble("open-sustain-frac", 0.5,
                  "sustained offered rate as a fraction of the measured "
                  "batched capacity");
  flags.AddDouble("open-overload-frac", 2.0,
                  "overload offered rate as a fraction of capacity; must "
                  "exceed 1 so shedding is guaranteed");
  flags.AddInt("open-queue", 128,
               "admission-queue bound for the open-loop phases (small, so "
               "overload sheds instead of buffering)");
  flags.AddDouble("slo-p99-ms", 0.0,
                  "fail if the sustained open-loop p99 exceeds this bound "
                  "(0 = no gate); with --baseline the committed JSON's "
                  "sustained p99 must meet it too");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.epochs = flags.GetInt("epochs");
  config.seed = 7;

  eval::ScorePrecision precision;
  LOGIREC_CHECK_MSG(
      eval::ParseScorePrecision(flags.GetString("dtype"), &precision),
      "unknown --dtype: " + flags.GetString("dtype"));

  const BenchDataset bd =
      MakeBenchDataset(flags.GetString("dataset"), flags.GetDouble("scale"));
  std::vector<std::string> models;
  if (flags.GetString("models") == "all") {
    models = baselines::AllModelNames();
  } else {
    models = Split(flags.GetString("models"), ',');
  }
  const int requests = flags.GetInt("requests");
  const int top_k = flags.GetInt("topk");
  serve::ServerOptions options;
  options.max_batch = flags.GetInt("batch");
  options.num_threads = flags.GetInt("threads");
  options.default_k = top_k;

  OpenLoopConfig open_config;
  open_config.requests = flags.GetInt("open-requests");
  open_config.sustain_frac = flags.GetDouble("open-sustain-frac");
  open_config.overload_frac = flags.GetDouble("open-overload-frac");
  open_config.max_queue = flags.GetInt("open-queue");
  LOGIREC_CHECK_MSG(open_config.overload_frac > 1.0,
                    "--open-overload-frac must exceed 1");

  std::printf(
      "serve_throughput: %s users=%d items=%d dim=%d requests=%d batch=%d\n",
      bd.dataset.name.c_str(), bd.dataset.num_users, bd.dataset.num_items,
      config.dim, requests, options.max_batch);
  std::printf("%-10s %12s %12s %9s %10s %10s %10s %9s\n", "model",
              "sync qps", "batch qps", "speedup", "sync p99", "batch p99",
              "open p99", "shed");

  std::vector<ModelReport> reports;
  for (const std::string& name : models) {
    reports.push_back(BenchModel(name, config, bd, requests, top_k, options,
                                 open_config, precision));
    const ModelReport& r = reports.back();
    std::printf(
        "%-10s %12.1f %12.1f %8.2fx %8.2fus %8.2fms %8.2fms %8.1f%%\n",
        r.model.c_str(), r.sync.qps, r.batched.qps, r.batch_speedup,
        r.sync.p99_us, r.batched.p99_ms, r.open_sustained.p99_ms,
        100.0 * r.open_overload.shed_rate);
  }

  WriteJson(flags.GetString("out"), bd, config, requests, top_k, options,
            reports);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  bool failed = false;
  const double min_speedup = flags.GetDouble("min-batch-speedup");
  if (min_speedup > 0.0) {
    const std::vector<std::string> gated =
        Split(flags.GetString("gate-models"), ',');
    for (const ModelReport& r : reports) {
      if (std::find(gated.begin(), gated.end(), r.model) == gated.end()) {
        continue;
      }
      if (r.batch_speedup < min_speedup) {
        std::printf(
            "GATE FAILED %s: batched/sync speedup %.2fx < required %.2fx\n",
            r.model.c_str(), r.batch_speedup, min_speedup);
        failed = true;
      }
    }
    if (!failed) {
      std::printf("batch-speedup gate passed (floor %.2fx)\n", min_speedup);
    }
  }

  const double slo_p99 = flags.GetDouble("slo-p99-ms");
  if (slo_p99 > 0.0) {
    bool breached = false;
    for (const ModelReport& r : reports) {
      if (r.open_sustained.p99_ms > slo_p99) {
        std::printf(
            "SLO BREACH %s: sustained open-loop p99 %.2fms > %.2fms\n",
            r.model.c_str(), r.open_sustained.p99_ms, slo_p99);
        breached = true;
      }
      // Shed-rate correctness at sustained load: a server below capacity
      // must not be rejecting a meaningful share of admission attempts.
      if (r.open_sustained.shed_rate > 0.05) {
        std::printf(
            "SLO BREACH %s: sustained shed rate %.1f%% (server below "
            "capacity must admit)\n",
            r.model.c_str(), 100.0 * r.open_sustained.shed_rate);
        breached = true;
      }
    }
    if (!breached) {
      std::printf("p99 SLO gate passed (bound %.2fms)\n", slo_p99);
    }
    failed = failed || breached;
  }

  if (!flags.GetString("baseline").empty()) {
    const auto baseline = ReadBaseline(flags.GetString("baseline"));
    const double max_regression = flags.GetDouble("max-regression");
    bool regressed = false;
    for (const ModelReport& r : reports) {
      auto it = baseline.find(r.model);
      if (it == baseline.end()) continue;
      const double floor =
          it->second.batch_speedup * (1.0 - max_regression);
      if (r.batch_speedup < floor) {
        std::printf(
            "REGRESSION %s: batch_speedup %.2fx < %.2fx (baseline %.2fx - "
            "%.0f%% tolerance)\n",
            r.model.c_str(), r.batch_speedup, floor,
            it->second.batch_speedup, 100.0 * max_regression);
        regressed = true;
      }
      // The committed artifact itself must honor the SLO — a regression
      // cannot be hidden by committing a degraded baseline.
      if (slo_p99 > 0.0 && it->second.sustained_p99_ms > slo_p99) {
        std::printf(
            "BASELINE SLO BREACH %s: committed sustained p99 %.2fms > "
            "%.2fms\n",
            r.model.c_str(), it->second.sustained_p99_ms, slo_p99);
        regressed = true;
      }
    }
    if (!regressed) {
      std::printf("regression gate passed (tolerance %.0f%%)\n",
                  100.0 * max_regression);
    }
    failed = failed || regressed;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
