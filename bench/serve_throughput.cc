// Serving throughput bench: trains a model set, snapshots each one to
// disk, restores it through serve::ServableModel (the same binary path
// logirec_serve uses), and measures both serving paths of the
// ModelServer on one host:
//
//   sync     Rank() on the caller's thread — exact scores, per-call
//            buffers; per-request latency percentiles + QPS.
//   batched  Submit() through the request batcher — ranking-surrogate
//            kernels, per-worker reused buffers, one generation acquire
//            per micro-batch; end-to-end QPS under a full queue.
//
// Both paths return bit-identical rankings (ScoreMode::kRanking
// contract), which the bench spot-checks before timing. Writes
// BENCH_serving.json — the tracked serving-perf trajectory.
//
// Gates:
//   --min-batch-speedup  fail if a gated model's batched QPS / sync QPS
//                        falls below this floor (the CI smoke gate).
//                        Gated models default to the hyperbolic scorers,
//                        where the ranking-surrogate batch path beats
//                        exact sync scoring; Euclidean dot-product
//                        models are reported ungated (sync is already
//                        near-optimal for them on one core).
//   --baseline           compare each model's batch_speedup against the
//                        committed BENCH_serving.json; both sides of the
//                        ratio come from one run on one machine, so the
//                        gate is robust to CI hardware variance.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/snapshot.h"
#include "serve/servable.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace logirec::bench {
namespace {

struct SyncStats {
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct BatchedStats {
  double qps = 0.0;
  long batches = 0;
  long max_batch = 0;
  double p50_ms = 0.0;  // enqueue-to-completion, from the server's ring
  double p99_ms = 0.0;
};

struct ModelReport {
  std::string model;
  SyncStats sync;
  BatchedStats batched;
  double batch_speedup = 0.0;  // batched qps over sync qps
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(), samples->begin() + idx, samples->end());
  return (*samples)[idx];
}

/// Trains `name`, round-trips it through a binary snapshot, and returns
/// the restored servable generation — the bench measures exactly what a
/// production server would load, not the in-memory trained object.
std::shared_ptr<const serve::ServableModel> MakeServable(
    const std::string& name, const core::TrainConfig& config,
    const BenchDataset& bd) {
  auto model = baselines::MakeModel(name, config);
  LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
  const Status fit = (*model)->Fit(bd.dataset, bd.split);
  LOGIREC_CHECK_MSG(fit.ok(), fit.ToString());

  core::SnapshotHeader header;
  header.dim = config.dim;
  header.layers = config.layers;
  header.num_users = bd.dataset.num_users;
  header.num_items = bd.dataset.num_items;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("logirec_serve_bench_" + name + ".snap"))
          .string();
  const Status wr = core::ModelSnapshot::Write(**model, header, path);
  LOGIREC_CHECK_MSG(wr.ok(), wr.ToString());
  auto servable = serve::ServableModel::FromSnapshot(
      path, baselines::MakeModel, &bd.split, /*generation=*/1);
  std::filesystem::remove(path);
  LOGIREC_CHECK_MSG(servable.ok(), servable.status().ToString());
  return *servable;
}

ModelReport BenchModel(const std::string& name,
                       const core::TrainConfig& config,
                       const BenchDataset& bd, int requests, int top_k,
                       const serve::ServerOptions& options) {
  serve::ModelServer server(options);
  server.Swap(MakeServable(name, config, bd));
  const int num_users = bd.dataset.num_users;

  ModelReport report;
  report.model = name;

  // Spot-check the bit-identical contract between the two paths before
  // trusting the speedup: same users, same k, same item lists.
  for (int u = 0; u < std::min(num_users, 16); ++u) {
    std::vector<int> sync_items;
    const Status st = server.Rank(u, top_k, &sync_items);
    LOGIREC_CHECK_MSG(st.ok(), st.ToString());
    serve::RankResponse batched = server.Submit(u, top_k).get();
    LOGIREC_CHECK_MSG(batched.status.ok(), batched.status.ToString());
    LOGIREC_CHECK_MSG(sync_items == batched.items,
                      "sync/batched ranking mismatch for " + name);
  }

  // Sync path: one request at a time on this thread, warm pass first.
  std::vector<int> out;
  for (int r = 0; r < std::min(requests, 256); ++r) {
    LOGIREC_CHECK(server.Rank(r % num_users, top_k, &out).ok());
  }
  std::vector<double> per_request_us;
  per_request_us.reserve(requests);
  Timer sync_timer;
  for (int r = 0; r < requests; ++r) {
    Timer request_timer;
    LOGIREC_CHECK(server.Rank(r % num_users, top_k, &out).ok());
    per_request_us.push_back(request_timer.ElapsedSeconds() * 1e6);
  }
  const double sync_s = sync_timer.ElapsedSeconds();
  report.sync.qps = requests / std::max(sync_s, 1e-12);
  report.sync.p50_us = Percentile(&per_request_us, 0.50);
  report.sync.p95_us = Percentile(&per_request_us, 0.95);
  report.sync.p99_us = Percentile(&per_request_us, 0.99);

  // Batched path: keep the queue saturated so the dispatcher always has
  // a full micro-batch to drain — the offered-load regime batching is
  // for. Warm pass first, then time submit-all / drain-all.
  {
    std::vector<std::future<serve::RankResponse>> warm;
    for (int r = 0; r < std::min(requests, 256); ++r) {
      warm.push_back(server.Submit(r % num_users, top_k));
    }
    for (auto& f : warm) LOGIREC_CHECK(f.get().status.ok());
  }
  const serve::ServerStats before = server.Stats();
  std::vector<std::future<serve::RankResponse>> futures;
  futures.reserve(requests);
  Timer batched_timer;
  for (int r = 0; r < requests; ++r) {
    futures.push_back(server.Submit(r % num_users, top_k));
  }
  for (auto& f : futures) LOGIREC_CHECK(f.get().status.ok());
  const double batched_s = batched_timer.ElapsedSeconds();
  const serve::ServerStats after = server.Stats();
  report.batched.qps = requests / std::max(batched_s, 1e-12);
  report.batched.batches = after.batches_dispatched -
                           before.batches_dispatched;
  report.batched.max_batch = after.max_batch_size;
  report.batched.p50_ms = after.p50_ms;
  report.batched.p99_ms = after.p99_ms;

  report.batch_speedup =
      report.batched.qps / std::max(report.sync.qps, 1e-12);
  return report;
}

void WriteJson(const std::string& path, const BenchDataset& bd,
               const core::TrainConfig& config, int requests, int top_k,
               const serve::ServerOptions& options,
               const std::vector<ModelReport>& reports) {
  std::ostringstream out;
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
             "\"dim\": %d, \"requests\": %d, \"top_k\": %d, "
             "\"max_batch\": %d}",
             bd.dataset.name.c_str(), bd.dataset.num_users,
             bd.dataset.num_items, config.dim, requests, top_k,
             options.max_batch)
      << ",\n  \"models\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModelReport& r = reports[i];
    out << StrFormat("    {\"model\": \"%s\", \"batch_speedup\": %.3f,\n",
                     r.model.c_str(), r.batch_speedup)
        << StrFormat(
               "     \"sync\": {\"qps\": %.1f, \"p50_us\": %.2f, "
               "\"p95_us\": %.2f, \"p99_us\": %.2f},\n",
               r.sync.qps, r.sync.p50_us, r.sync.p95_us, r.sync.p99_us)
        << StrFormat(
               "     \"batched\": {\"qps\": %.1f, \"batches\": %ld, "
               "\"max_batch\": %ld, \"p50_ms\": %.3f, \"p99_ms\": %.3f}}",
               r.batched.qps, r.batched.batches, r.batched.max_batch,
               r.batched.p50_ms, r.batched.p99_ms)
        << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

/// Minimal extraction of per-model batch speedups from a
/// BENCH_serving.json produced by WriteJson (not a general JSON parser).
std::map<std::string, double> ReadBaselineSpeedups(const std::string& path) {
  std::ifstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, double> speedups;
  size_t pos = 0;
  const std::string model_key = "\"model\": \"";
  const std::string speedup_key = "\"batch_speedup\": ";
  while ((pos = text.find(model_key, pos)) != std::string::npos) {
    pos += model_key.size();
    const size_t name_end = text.find('"', pos);
    LOGIREC_CHECK(name_end != std::string::npos);
    const std::string name = text.substr(pos, name_end - pos);
    const size_t spos = text.find(speedup_key, name_end);
    LOGIREC_CHECK_MSG(spos != std::string::npos,
                      "baseline missing batch_speedup for " + name);
    speedups[name] = std::stod(text.substr(spos + speedup_key.size()));
    pos = name_end;
  }
  return speedups;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("models", "BPRMF,HGCF,LogiRec++",
                  "comma-separated model names, or 'all' for the full zoo");
  flags.AddString("dataset", "cd", "benchmark dataset preset");
  flags.AddDouble("scale", 8.0,
                  "dataset scale factor (batching pays off on realistic "
                  "catalogs; tiny ones are queue-overhead bound)");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("epochs", 3,
               "training epochs (serving speed is independent of fit "
               "quality, so keep this small)");
  flags.AddInt("requests", 2048, "timed requests per path per model");
  flags.AddInt("batch", 32, "request micro-batch cap");
  flags.AddInt("threads", 0, "scoring workers (0 = hardware)");
  flags.AddInt("topk", 10, "ranking cutoff");
  flags.AddString("out", "BENCH_serving.json", "output JSON path");
  flags.AddDouble("min-batch-speedup", 0.0,
                  "fail if a gated model's batched QPS / sync QPS is "
                  "below this floor (0 = no gate)");
  flags.AddString("gate-models", "HGCF,LogiRec++",
                  "models the min-batch-speedup floor applies to. The "
                  "batching win comes from the ranking-surrogate kernels, "
                  "so it holds for hyperbolic scorers; Euclidean "
                  "dot-product models (BPRMF) ride along as the "
                  "reference where sync is already near-optimal");
  flags.AddString("baseline", "",
                  "committed BENCH_serving.json to gate against (empty = "
                  "no gate)");
  flags.AddDouble("max-regression", 0.30,
                  "fail if a model's batch_speedup drops more than this "
                  "fraction below the baseline");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.epochs = flags.GetInt("epochs");
  config.seed = 7;

  const BenchDataset bd =
      MakeBenchDataset(flags.GetString("dataset"), flags.GetDouble("scale"));
  std::vector<std::string> models;
  if (flags.GetString("models") == "all") {
    models = baselines::AllModelNames();
  } else {
    models = Split(flags.GetString("models"), ',');
  }
  const int requests = flags.GetInt("requests");
  const int top_k = flags.GetInt("topk");
  serve::ServerOptions options;
  options.max_batch = flags.GetInt("batch");
  options.num_threads = flags.GetInt("threads");
  options.default_k = top_k;

  std::printf(
      "serve_throughput: %s users=%d items=%d dim=%d requests=%d batch=%d\n",
      bd.dataset.name.c_str(), bd.dataset.num_users, bd.dataset.num_items,
      config.dim, requests, options.max_batch);
  std::printf("%-10s %12s %12s %9s %10s %10s\n", "model", "sync qps",
              "batch qps", "speedup", "sync p99", "batch p99");

  std::vector<ModelReport> reports;
  for (const std::string& name : models) {
    reports.push_back(
        BenchModel(name, config, bd, requests, top_k, options));
    const ModelReport& r = reports.back();
    std::printf("%-10s %12.1f %12.1f %8.2fx %8.2fus %8.2fms\n",
                r.model.c_str(), r.sync.qps, r.batched.qps, r.batch_speedup,
                r.sync.p99_us, r.batched.p99_ms);
  }

  WriteJson(flags.GetString("out"), bd, config, requests, top_k, options,
            reports);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  bool failed = false;
  const double min_speedup = flags.GetDouble("min-batch-speedup");
  if (min_speedup > 0.0) {
    const std::vector<std::string> gated =
        Split(flags.GetString("gate-models"), ',');
    for (const ModelReport& r : reports) {
      if (std::find(gated.begin(), gated.end(), r.model) == gated.end()) {
        continue;
      }
      if (r.batch_speedup < min_speedup) {
        std::printf(
            "GATE FAILED %s: batched/sync speedup %.2fx < required %.2fx\n",
            r.model.c_str(), r.batch_speedup, min_speedup);
        failed = true;
      }
    }
    if (!failed) {
      std::printf("batch-speedup gate passed (floor %.2fx)\n", min_speedup);
    }
  }

  if (!flags.GetString("baseline").empty()) {
    const auto baseline = ReadBaselineSpeedups(flags.GetString("baseline"));
    const double max_regression = flags.GetDouble("max-regression");
    bool regressed = false;
    for (const ModelReport& r : reports) {
      auto it = baseline.find(r.model);
      if (it == baseline.end()) continue;
      const double floor = it->second * (1.0 - max_regression);
      if (r.batch_speedup < floor) {
        std::printf(
            "REGRESSION %s: batch_speedup %.2fx < %.2fx (baseline %.2fx - "
            "%.0f%% tolerance)\n",
            r.model.c_str(), r.batch_speedup, floor, it->second,
            100.0 * max_regression);
        regressed = true;
      }
    }
    if (!regressed) {
      std::printf("regression gate passed (tolerance %.0f%%)\n",
                  100.0 * max_regression);
    }
    failed = failed || regressed;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
