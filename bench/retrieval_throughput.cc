// Retrieval throughput bench: sublinear ANN indexes (IVF, HNSW) vs the
// exact blocked-kernel scan, on large synthetic catalogs in each scoring
// geometry the model zoo serves through a ranking surrogate:
//
//   dot       Gaussian embeddings, inner-product scoring (BPRMF family)
//   lorentz   hyperboloid embeddings, Lorentz inner product (HGCF/LogiRec)
//   poincare  Poincare-ball embeddings, -gamma scoring (HyperML)
//
// For every space the bench measures the exact-scan oracle (full kRanking
// scan + TopKInto — the same code path serving falls back to), then each
// index: build time, single-thread query QPS, latency percentiles, and
// recall@k against the oracle. Candidates are exactly reranked, so any
// recall loss is purely "the true item was never generated", never a
// scoring approximation. Writes BENCH_retrieval.json — the tracked
// recall/throughput trajectory.
//
// Gates:
//   --min-recall     fail if either index's recall@k falls below this in
//                    any space (CI smoke: 0.95).
//   --min-speedup    fail if either index's QPS / exact-scan QPS falls
//                    below this in any space (CI smoke: 3.0). Both sides
//                    of the ratio come from one run on one machine.
//   --baseline       compare against the committed BENCH_retrieval.json:
//                    the committed artifact must itself meet --min-recall
//                    and --min-speedup (a degraded baseline cannot hide),
//                    and each index's live speedup must stay within
//                    --max-regression of the committed one.
//
// Determinism: with --det-items > 0 the bench also builds each index at
// thread counts {1, 2, 8} on a reduced catalog and CHECKs the structural
// fingerprints match — seed => identical index, regardless of hardware
// parallelism.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "retrieval/embedding_scorer.h"
#include "retrieval/retriever.h"
#include "util/flags.h"

namespace logirec::bench {
namespace {

using retrieval::EmbeddingScorer;
using retrieval::SurrogateKind;

struct PathStats {
  double build_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double recall = 1.0;
  double speedup = 1.0;  // qps over the exact scan's qps
};

struct SpaceReport {
  std::string space;
  double exact_qps = 0.0;
  double exact_p50_us = 0.0;
  double exact_p99_us = 0.0;
  PathStats ivf;
  PathStats hnsw;
};

/// Times `queries` retrievals (cycling over the scorer's users) through
/// `retriever` (null = the exact-scan fallback), returning QPS +
/// percentiles and filling `results` per query for the recall pass.
template <typename Retrieve>
void TimeQueries(int queries, int num_users, Retrieve&& retrieve,
                 std::vector<std::vector<int>>* results, double* qps,
                 double* p50_us, double* p99_us) {
  results->assign(queries, {});
  // Warm pass: touch every buffer and fault the index in.
  std::vector<int> warm;
  for (int q = 0; q < std::min(queries, 64); ++q) {
    retrieve(q % num_users, &warm);
  }
  std::vector<double> per_query_us;
  per_query_us.reserve(queries);
  Timer total;
  for (int q = 0; q < queries; ++q) {
    Timer one;
    retrieve(q % num_users, &(*results)[q]);
    per_query_us.push_back(one.ElapsedSeconds() * 1e6);
  }
  const double wall = total.ElapsedSeconds();
  *qps = queries / std::max(wall, 1e-12);
  *p50_us = Percentile(&per_query_us, 0.50);
  *p99_us = Percentile(&per_query_us, 0.99);
}

double RecallAgainst(const std::vector<std::vector<int>>& truth,
                     const std::vector<std::vector<int>>& got) {
  LOGIREC_CHECK(truth.size() == got.size());
  long hit = 0, total = 0;
  for (size_t q = 0; q < truth.size(); ++q) {
    const std::set<int> got_set(got[q].begin(), got[q].end());
    for (int v : truth[q]) hit += got_set.count(v) > 0 ? 1 : 0;
    total += static_cast<long>(truth[q].size());
  }
  return total == 0 ? 1.0 : static_cast<double>(hit) / total;
}

/// Thread-count determinism: same seed must yield bit-identical index
/// structure at 1, 2, and 8 build threads (reduced catalog size).
void CheckDeterminism(const SpaceSpec& space, int items, int dim,
                      int clusters, const retrieval::IvfOptions& ivf_base,
                      const retrieval::HnswOptions& hnsw_base,
                      eval::ScorePrecision dtype) {
  EmbeddingScorer scorer = MakeSpaceScorer(space, /*users=*/8, items, dim,
                                           /*seed=*/4242, clusters, dtype);
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  uint64_t ivf_fp = 0, hnsw_fp = 0;
  bool first = true;
  for (int threads : {1, 2, 8}) {
    retrieval::IvfOptions ivf = ivf_base;
    ivf.num_threads = threads;
    retrieval::HnswOptions hnsw = hnsw_base;
    hnsw.num_threads = threads;
    const uint64_t i_fp = retrieval::IvfIndex::Build(spec, ivf)->Fingerprint();
    const uint64_t h_fp =
        retrieval::HnswIndex::Build(spec, hnsw)->Fingerprint();
    if (first) {
      ivf_fp = i_fp;
      hnsw_fp = h_fp;
      first = false;
    }
    LOGIREC_CHECK_MSG(i_fp == ivf_fp,
                      "IVF fingerprint differs at " +
                          std::to_string(threads) + " threads");
    LOGIREC_CHECK_MSG(h_fp == hnsw_fp,
                      "HNSW fingerprint differs at " +
                          std::to_string(threads) + " threads");
  }
  std::printf("  determinism ok (%d items, threads 1/2/8: ivf %016llx "
              "hnsw %016llx)\n",
              items, static_cast<unsigned long long>(ivf_fp),
              static_cast<unsigned long long>(hnsw_fp));
}

SpaceReport BenchSpace(const SpaceSpec& space, int users, int items, int dim,
                       int clusters, int queries, int top_k,
                       const retrieval::IvfOptions& ivf_options,
                       const retrieval::HnswOptions& hnsw_options,
                       int threads, eval::ScorePrecision dtype) {
  EmbeddingScorer scorer = MakeSpaceScorer(space, users, items, dim,
                                           /*seed=*/1717, clusters, dtype);
  SpaceReport report;
  report.space = space.name;

  eval::RetrieveScratch scratch;
  std::vector<std::vector<int>> truth, got;

  // Exact oracle: the RetrieveInto fallback (full kRanking scan +
  // TopKInto) — the identical code serving uses with --retrieval=exact.
  TimeQueries(
      queries, users,
      [&](int user, std::vector<int>* out) {
        scorer.RetrieveInto(user, top_k, nullptr, &scratch, out);
      },
      &truth, &report.exact_qps, &report.exact_p50_us, &report.exact_p99_us);

  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  {
    retrieval::IvfOptions options = ivf_options;
    options.num_threads = threads;
    Timer build;
    auto index = retrieval::IvfIndex::Build(spec, options);
    report.ivf.build_s = build.ElapsedSeconds();
    TimeQueries(
        queries, users,
        [&](int user, std::vector<int>* out) {
          index->RetrieveTopK(scorer, user, top_k, top_k, nullptr, &scratch,
                              out);
        },
        &got, &report.ivf.qps, &report.ivf.p50_us, &report.ivf.p99_us);
    report.ivf.recall = RecallAgainst(truth, got);
    report.ivf.speedup = report.ivf.qps / std::max(report.exact_qps, 1e-12);
  }
  {
    retrieval::HnswOptions options = hnsw_options;
    options.num_threads = threads;
    Timer build;
    auto index = retrieval::HnswIndex::Build(spec, options);
    report.hnsw.build_s = build.ElapsedSeconds();
    TimeQueries(
        queries, users,
        [&](int user, std::vector<int>* out) {
          index->RetrieveTopK(scorer, user, top_k, top_k, nullptr, &scratch,
                              out);
        },
        &got, &report.hnsw.qps, &report.hnsw.p50_us, &report.hnsw.p99_us);
    report.hnsw.recall = RecallAgainst(truth, got);
    report.hnsw.speedup =
        report.hnsw.qps / std::max(report.exact_qps, 1e-12);
  }
  return report;
}

std::string PathJson(const PathStats& s) {
  return StrFormat(
      "{\"build_s\": %.3f, \"qps\": %.1f, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f, \"recall\": %.4f, \"speedup\": %.3f}",
      s.build_s, s.qps, s.p50_us, s.p99_us, s.recall, s.speedup);
}

void WriteJson(const std::string& path, int users, int items, int dim,
               int clusters, int queries, int top_k,
               const retrieval::IvfOptions& ivf_options,
               const retrieval::HnswOptions& hnsw_options,
               const std::vector<SpaceReport>& reports) {
  std::ostringstream out;
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"users\": %d, \"items\": %d, \"dim\": %d, \"clusters\": %d, "
             "\"queries\": %d, \"top_k\": %d, \"nprobe\": %d, "
             "\"ef_search\": %d, \"M\": %d}",
             users, items, dim, clusters, queries, top_k, ivf_options.nprobe,
             hnsw_options.ef_search, hnsw_options.M)
      << ",\n  \"spaces\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const SpaceReport& r = reports[i];
    out << StrFormat("    {\"space\": \"%s\",\n", r.space.c_str())
        << StrFormat(
               "     \"exact\": {\"qps\": %.1f, \"p50_us\": %.2f, "
               "\"p99_us\": %.2f},\n",
               r.exact_qps, r.exact_p50_us, r.exact_p99_us)
        << "     \"ivf\": " << PathJson(r.ivf) << ",\n"
        << "     \"hnsw\": " << PathJson(r.hnsw) << "}"
        << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

struct BaselineEntry {
  double ivf_recall = 0.0;
  double ivf_speedup = 0.0;
  double hnsw_recall = 0.0;
  double hnsw_speedup = 0.0;
};

/// Minimal extraction of gate inputs from a BENCH_retrieval.json produced
/// by WriteJson (not a general JSON parser) — the same idiom the serving
/// bench uses for BENCH_serving.json.
std::map<std::string, BaselineEntry> ReadBaseline(const std::string& path) {
  std::ifstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot read baseline " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  std::map<std::string, BaselineEntry> entries;
  size_t pos = 0;
  const std::string space_key = "\"space\": \"";
  const std::string ivf_key = "\"ivf\": ";
  const std::string hnsw_key = "\"hnsw\": ";
  const std::string recall_key = "\"recall\": ";
  const std::string speedup_key = "\"speedup\": ";
  while ((pos = text.find(space_key, pos)) != std::string::npos) {
    pos += space_key.size();
    const size_t name_end = text.find('"', pos);
    LOGIREC_CHECK(name_end != std::string::npos);
    const std::string name = text.substr(pos, name_end - pos);
    const size_t next_space = text.find(space_key, name_end);
    BaselineEntry entry;
    for (const auto& [index_key, recall_out, speedup_out] :
         {std::make_tuple(ivf_key, &entry.ivf_recall, &entry.ivf_speedup),
          std::make_tuple(hnsw_key, &entry.hnsw_recall,
                          &entry.hnsw_speedup)}) {
      const size_t ipos = text.find(index_key, name_end);
      LOGIREC_CHECK_MSG(ipos != std::string::npos && ipos < next_space,
                        "baseline missing " + index_key + " for " + name);
      const size_t rpos = text.find(recall_key, ipos);
      const size_t spos = text.find(speedup_key, ipos);
      LOGIREC_CHECK_MSG(rpos != std::string::npos && rpos < next_space &&
                            spos != std::string::npos && spos < next_space,
                        "baseline missing recall/speedup for " + name);
      *recall_out = std::stod(text.substr(rpos + recall_key.size()));
      *speedup_out = std::stod(text.substr(spos + speedup_key.size()));
    }
    entries[name] = entry;
    pos = name_end;
  }
  LOGIREC_CHECK_MSG(!entries.empty(),
                    "baseline " + path + " contains no spaces");
  return entries;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("spaces", "dot,lorentz,poincare",
                  "comma-separated scoring geometries to bench");
  flags.AddInt("items", 100000, "catalog size");
  flags.AddInt("users", 256, "distinct query embeddings (cycled)");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("clusters", 256,
               "Gaussian-mixture components in the synthetic catalogs "
               "(0 = i.i.d., the structureless ANN worst case)");
  flags.AddInt("queries", 1024, "timed queries per path per space");
  flags.AddInt("topk", 10, "ranking cutoff (recall@k uses the same k)");
  flags.AddInt("cells", 0, "IVF cells (0 = sqrt(items))");
  flags.AddInt("nprobe", 32, "IVF cells scanned per query");
  flags.AddInt("M", 16, "HNSW links per node");
  flags.AddInt("ef-construction", 128, "HNSW build beam width");
  flags.AddInt("ef-search", 96, "HNSW query beam width");
  flags.AddInt("threads", 0, "index build threads (0 = hardware)");
  flags.AddString("dtype", "f64",
                  "catalog storage precision: f64 (the committed-baseline "
                  "default), f32, or int8. Compact dtypes round-trip the "
                  "catalog through the storage encoding and build the "
                  "indexes with matching compact scoring state");
  flags.AddInt("det-items", 20000,
               "reduced catalog for the thread-count determinism check "
               "(0 = skip)");
  flags.AddString("out", "BENCH_retrieval.json", "output JSON path");
  flags.AddDouble("min-recall", 0.0,
                  "fail if either index's recall@k is below this in any "
                  "space (0 = no gate)");
  flags.AddDouble("min-speedup", 0.0,
                  "fail if either index's QPS / exact QPS is below this "
                  "in any space (0 = no gate)");
  flags.AddString("baseline", "",
                  "committed BENCH_retrieval.json to gate against (empty "
                  "= no gate)");
  flags.AddDouble("max-regression", 0.5,
                  "fail if an index's speedup drops more than this "
                  "fraction below the baseline");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  const int users = flags.GetInt("users");
  const int items = flags.GetInt("items");
  const int dim = flags.GetInt("dim");
  const int clusters = flags.GetInt("clusters");
  const int queries = flags.GetInt("queries");
  const int top_k = flags.GetInt("topk");
  eval::ScorePrecision dtype;
  LOGIREC_CHECK_MSG(
      eval::ParseScorePrecision(flags.GetString("dtype"), &dtype),
      "unknown --dtype: " + flags.GetString("dtype"));
  retrieval::IvfOptions ivf_options;
  ivf_options.cells = flags.GetInt("cells");
  ivf_options.nprobe = flags.GetInt("nprobe");
  ivf_options.precision = dtype;
  retrieval::HnswOptions hnsw_options;
  hnsw_options.M = flags.GetInt("M");
  hnsw_options.ef_construction = flags.GetInt("ef-construction");
  hnsw_options.ef_search = flags.GetInt("ef-search");
  hnsw_options.precision = dtype;

  std::vector<SpaceSpec> spaces;
  for (const std::string& name : Split(flags.GetString("spaces"), ',')) {
    auto space = ParseSpace(name);
    LOGIREC_CHECK_MSG(space.ok(), space.status().ToString());
    spaces.push_back(*space);
  }

  std::printf(
      "retrieval_throughput: items=%d dim=%d queries=%d topk=%d nprobe=%d "
      "ef=%d\n",
      items, dim, queries, top_k, ivf_options.nprobe,
      hnsw_options.ef_search);
  std::printf("%-9s %11s | %8s %11s %8s %8s | %8s %11s %8s %8s\n", "space",
              "exact qps", "ivf bld", "ivf qps", "recall", "speedup",
              "hnsw bld", "hnsw qps", "recall", "speedup");

  std::vector<SpaceReport> reports;
  for (const SpaceSpec& space : spaces) {
    reports.push_back(BenchSpace(space, users, items, dim, clusters, queries,
                                 top_k, ivf_options, hnsw_options,
                                 flags.GetInt("threads"), dtype));
    const SpaceReport& r = reports.back();
    std::printf(
        "%-9s %11.1f | %7.2fs %11.1f %8.3f %7.2fx | %7.2fs %11.1f %8.3f "
        "%7.2fx\n",
        r.space.c_str(), r.exact_qps, r.ivf.build_s, r.ivf.qps,
        r.ivf.recall, r.ivf.speedup, r.hnsw.build_s, r.hnsw.qps,
        r.hnsw.recall, r.hnsw.speedup);
  }

  const int det_items = flags.GetInt("det-items");
  if (det_items > 0) {
    for (const SpaceSpec& space : spaces) {
      std::printf("determinism check: %s\n", space.name.c_str());
      CheckDeterminism(space, det_items, dim, clusters, ivf_options,
                       hnsw_options, dtype);
    }
  }

  WriteJson(flags.GetString("out"), users, items, dim, clusters, queries,
            top_k,
            ivf_options, hnsw_options, reports);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  bool failed = false;
  const double min_recall = flags.GetDouble("min-recall");
  const double min_speedup = flags.GetDouble("min-speedup");
  for (const SpaceReport& r : reports) {
    for (const auto& [index_name, stats] :
         {std::make_pair("ivf", &r.ivf), std::make_pair("hnsw", &r.hnsw)}) {
      if (min_recall > 0.0 && stats->recall < min_recall) {
        std::printf("GATE FAILED %s/%s: recall@%d %.4f < required %.4f\n",
                    r.space.c_str(), index_name, top_k, stats->recall,
                    min_recall);
        failed = true;
      }
      if (min_speedup > 0.0 && stats->speedup < min_speedup) {
        std::printf(
            "GATE FAILED %s/%s: speedup %.2fx over exact scan < required "
            "%.2fx\n",
            r.space.c_str(), index_name, stats->speedup, min_speedup);
        failed = true;
      }
    }
  }
  if (!failed && (min_recall > 0.0 || min_speedup > 0.0)) {
    std::printf("recall/speedup gates passed (recall >= %.2f, speedup >= "
                "%.2fx)\n",
                min_recall, min_speedup);
  }

  if (!flags.GetString("baseline").empty()) {
    const auto baseline = ReadBaseline(flags.GetString("baseline"));
    const double max_regression = flags.GetDouble("max-regression");
    bool regressed = false;
    for (const SpaceReport& r : reports) {
      auto it = baseline.find(r.space);
      if (it == baseline.end()) continue;
      const BaselineEntry& b = it->second;
      // The committed artifact must itself honor the recall and speedup
      // bars — a degraded BENCH_retrieval.json cannot be silently
      // committed.
      if (min_recall > 0.0 &&
          (b.ivf_recall < min_recall || b.hnsw_recall < min_recall)) {
        std::printf(
            "BASELINE GATE FAILED %s: committed recall (ivf %.4f, hnsw "
            "%.4f) below %.4f\n",
            r.space.c_str(), b.ivf_recall, b.hnsw_recall, min_recall);
        regressed = true;
      }
      if (min_speedup > 0.0 &&
          (b.ivf_speedup < min_speedup || b.hnsw_speedup < min_speedup)) {
        std::printf(
            "BASELINE GATE FAILED %s: committed speedup (ivf %.2fx, hnsw "
            "%.2fx) below %.2fx\n",
            r.space.c_str(), b.ivf_speedup, b.hnsw_speedup, min_speedup);
        regressed = true;
      }
      for (const auto& [index_name, now, then] :
           {std::make_tuple("ivf", r.ivf.speedup, b.ivf_speedup),
            std::make_tuple("hnsw", r.hnsw.speedup, b.hnsw_speedup)}) {
        const double floor = then * (1.0 - max_regression);
        if (now < floor) {
          std::printf(
              "REGRESSION %s/%s: speedup %.2fx < %.2fx (baseline %.2fx - "
              "%.0f%% tolerance)\n",
              r.space.c_str(), index_name, now, floor, then,
              100.0 * max_regression);
          regressed = true;
        }
      }
    }
    if (!regressed) {
      std::printf("baseline gate passed (tolerance %.0f%%)\n",
                  100.0 * max_regression);
    }
    failed = failed || regressed;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
