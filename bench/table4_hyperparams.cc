// Regenerates Table IV: hyperparameter studies of LogiRec++ on the CD and
// Clothing analogues — GCN depth L, logic weight lambda, LMNN margin m,
// and embedding dimension d. The reproduced shape: interior optima for L,
// lambda, and m; monotone-but-saturating gains for d.
//
// Note on the margin grid: the paper sweeps m in {0, 0.1, 0.2, 0.3} on
// full-scale data. At our ~1/40 scale hyperbolic distances are larger, so
// the grid is rescaled to {0, 0.5, 1.0, 2.0}; the interior-optimum shape
// is the reproduced claim.

#include <cstdio>

#include "bench_common.h"
#include "core/logirec_model.h"
#include "eval/evaluator.h"
#include "math/stats.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace logirec;

namespace {

struct Setting {
  std::string label;
  core::LogiRecConfig config;
};

void RunBlock(const std::string& block_name,
              const std::vector<Setting>& settings,
              const std::vector<bench::BenchDataset>& datasets, int seeds,
              TablePrinter* table) {
  for (const Setting& setting : settings) {
    std::vector<std::string> row = {setting.label};
    for (const auto& bd : datasets) {
      eval::Evaluator evaluator(&bd.split, bd.dataset.num_items);
      math::RunningStat recall, ndcg;
      for (int s = 0; s < seeds; ++s) {
        core::LogiRecConfig config = setting.config;
        config.seed = 1000 + 37 * s;
        core::LogiRecModel model(config);
        LOGIREC_CHECK(model.Fit(bd.dataset, bd.split).ok());
        const auto result = evaluator.Evaluate(model);
        recall.Add(result.Get("Recall@10"));
        ndcg.Add(result.Get("NDCG@10"));
      }
      row.push_back(StrFormat("%.2f±%.2f", recall.mean(), recall.stddev()));
      row.push_back(StrFormat("%.2f±%.2f", ndcg.mean(), ndcg.stddev()));
    }
    table->AddRow(row);
    std::fprintf(stderr, "[table4] %s %s done\n", block_name.c_str(),
                 setting.label.c_str());
  }
  table->AddSeparator();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs per model");
  flags.AddInt("seeds", 1, "repeated runs per cell");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  const int seeds = flags.GetInt("seeds");
  std::vector<bench::BenchDataset> datasets;
  datasets.push_back(bench::MakeBenchDataset("cd", flags.GetDouble("scale")));
  datasets.push_back(
      bench::MakeBenchDataset("clothing", flags.GetDouble("scale")));

  core::LogiRecConfig base;
  base.epochs = flags.GetInt("epochs");

  std::printf("=== Table IV: hyperparameter studies (%%) on CD and "
              "Clothing ===\n");
  TablePrinter table({"Param.", "CD Recall@10", "CD NDCG@10",
                      "Clothing Recall@10", "Clothing NDCG@10"});
  Timer total;

  std::vector<Setting> layer_settings;
  for (int layers : {1, 2, 3, 4}) {
    Setting s{StrFormat("L = %d", layers), base};
    s.config.layers = layers;
    layer_settings.push_back(s);
  }
  RunBlock("L", layer_settings, datasets, seeds, &table);

  std::vector<Setting> lambda_settings;
  // The paper's grid is {0, 0.01, 0.1, 1.0, 1.5}; ours is shifted because
  // per-step application at batch 256 rescales lambda's effective
  // strength (see TrainConfig::lambda). The reproduced shape is the same:
  // 0 underuses the tags, an interior value wins, very large values
  // over-constrain.
  for (double lambda : {0.0, 0.2, 2.0, 8.0, 20.0}) {
    Setting s{StrFormat("lambda = %.2f", lambda), base};
    s.config.lambda = lambda;
    lambda_settings.push_back(s);
  }
  RunBlock("lambda", lambda_settings, datasets, seeds, &table);

  std::vector<Setting> margin_settings;
  for (double margin : {0.0, 0.5, 1.0, 2.0}) {
    Setting s{StrFormat("m = %.1f", margin), base};
    s.config.margin = margin;
    margin_settings.push_back(s);
  }
  RunBlock("m", margin_settings, datasets, seeds, &table);

  std::vector<Setting> dim_settings;
  for (int dim : {8, 16, 32, 64}) {
    // The paper's grid {32, 64, 128} is halved to match the scaled data.
    Setting s{StrFormat("d = %d", dim), base};
    s.config.dim = dim;
    dim_settings.push_back(s);
  }
  RunBlock("d", dim_settings, datasets, seeds, &table);

  table.Print();
  std::printf("\n[table4] total time %.1fs\n", total.ElapsedSeconds());
  return 0;
}
