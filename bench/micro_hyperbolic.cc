// Microbenchmarks (google-benchmark) of the hyperbolic kernels and the
// linear GCN propagation — the hot loops of every table above.

#include <benchmark/benchmark.h>

#include "core/hgcn.h"
#include "core/logic_losses.h"
#include "graph/propagation.h"
#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/maps.h"
#include "hyper/poincare.h"
#include "util/rng.h"

namespace logirec {
namespace {

math::Vec BallPoint(Rng* rng, int d) {
  math::Vec x(d);
  for (double& v : x) v = rng->Gaussian(0.0, 0.2);
  hyper::ProjectToBall(math::Span(x));
  return x;
}

math::Vec HyperboloidPoint(Rng* rng, int d) {
  math::Vec x(d + 1, 0.0);
  for (int i = 1; i <= d; ++i) x[i] = rng->Gaussian(0.0, 0.5);
  hyper::ProjectToHyperboloid(math::Span(x));
  return x;
}

void BM_PoincareDistance(benchmark::State& state) {
  Rng rng(1);
  const int d = static_cast<int>(state.range(0));
  const auto a = BallPoint(&rng, d);
  const auto b = BallPoint(&rng, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hyper::PoincareDistance(a, b));
  }
}
BENCHMARK(BM_PoincareDistance)->Arg(32)->Arg(64)->Arg(128);

void BM_LorentzDistance(benchmark::State& state) {
  Rng rng(2);
  const int d = static_cast<int>(state.range(0));
  const auto a = HyperboloidPoint(&rng, d);
  const auto b = HyperboloidPoint(&rng, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hyper::LorentzDistance(a, b));
  }
}
BENCHMARK(BM_LorentzDistance)->Arg(32)->Arg(64)->Arg(128);

void BM_MobiusAdd(benchmark::State& state) {
  Rng rng(3);
  const int d = static_cast<int>(state.range(0));
  const auto a = BallPoint(&rng, d);
  const auto b = BallPoint(&rng, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hyper::MobiusAdd(a, b));
  }
}
BENCHMARK(BM_MobiusAdd)->Arg(32)->Arg(64);

void BM_LorentzExpLogRoundTrip(benchmark::State& state) {
  Rng rng(4);
  const int d = static_cast<int>(state.range(0));
  math::Vec z(d + 1, 0.0);
  for (int i = 1; i <= d; ++i) z[i] = rng.Gaussian(0.0, 0.5);
  for (auto _ : state) {
    const auto x = hyper::LorentzExpOrigin(z);
    benchmark::DoNotOptimize(hyper::LorentzLogOrigin(x));
  }
}
BENCHMARK(BM_LorentzExpLogRoundTrip)->Arg(32)->Arg(64);

void BM_PoincareLorentzMaps(benchmark::State& state) {
  Rng rng(5);
  const auto x = BallPoint(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto lifted = hyper::PoincareToLorentz(x);
    benchmark::DoNotOptimize(hyper::LorentzToPoincare(lifted));
  }
}
BENCHMARK(BM_PoincareLorentzMaps)->Arg(32)->Arg(64);

void BM_BallFromCenter(benchmark::State& state) {
  Rng rng(6);
  math::Vec c = BallPoint(&rng, static_cast<int>(state.range(0)));
  hyper::ClampHyperplaneCenter(math::Span(c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hyper::BallFromCenter(c));
  }
}
BENCHMARK(BM_BallFromCenter)->Arg(32)->Arg(64);

void BM_MembershipLossAndGrad(benchmark::State& state) {
  Rng rng(7);
  const int d = static_cast<int>(state.range(0));
  const auto item = BallPoint(&rng, d);
  math::Vec c = BallPoint(&rng, d);
  hyper::ClampHyperplaneCenter(math::Span(c));
  math::Vec gi(d, 0.0), gc(d, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MembershipLossAndGrad(
        item, c, 1.0, math::Span(gi), math::Span(gc)));
  }
}
BENCHMARK(BM_MembershipLossAndGrad)->Arg(32)->Arg(64);

void BM_GcnPropagation(benchmark::State& state) {
  Rng rng(8);
  const int nu = 500, ni = 500, dim = 32;
  std::vector<std::vector<int>> adj(nu);
  for (int u = 0; u < nu; ++u) {
    for (int k = 0; k < 10; ++k) adj[u].push_back(rng.UniformInt(ni));
  }
  graph::BipartiteGraph g(nu, ni, adj);
  graph::GcnPropagator prop(&g, static_cast<int>(state.range(0)));
  math::Matrix zu(nu, dim), zv(ni, dim);
  zu.FillGaussian(&rng, 0.1);
  zv.FillGaussian(&rng, 0.1);
  math::Matrix su, sv;
  for (auto _ : state) {
    prop.Forward(zu, zv, &su, &sv, false);
    benchmark::DoNotOptimize(su.data().data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() *
                          state.range(0));
}
BENCHMARK(BM_GcnPropagation)->Arg(1)->Arg(3);

void BM_HyperbolicGcnForward(benchmark::State& state) {
  Rng rng(9);
  const int nu = 500, ni = 500, dim = 32;
  std::vector<std::vector<int>> adj(nu);
  for (int u = 0; u < nu; ++u) {
    for (int k = 0; k < 10; ++k) adj[u].push_back(rng.UniformInt(ni));
  }
  graph::BipartiteGraph g(nu, ni, adj);
  core::HyperbolicGcn gcn(&g, static_cast<int>(state.range(0)));
  math::Matrix users(nu, dim + 1), items(ni, dim + 1);
  for (int u = 0; u < nu; ++u) {
    auto row = users.Row(u);
    for (int k = 1; k <= dim; ++k) row[k] = rng.Gaussian(0.0, 0.1);
    hyper::ProjectToHyperboloid(row);
  }
  for (int v = 0; v < ni; ++v) {
    auto row = items.Row(v);
    for (int k = 1; k <= dim; ++k) row[k] = rng.Gaussian(0.0, 0.1);
    hyper::ProjectToHyperboloid(row);
  }
  math::Matrix fu, fv;
  for (auto _ : state) {
    gcn.Forward(users, items, &fu, &fv);
    benchmark::DoNotOptimize(fu.data().data());
  }
}
BENCHMARK(BM_HyperbolicGcnForward)->Arg(1)->Arg(3);

}  // namespace
}  // namespace logirec

BENCHMARK_MAIN();
