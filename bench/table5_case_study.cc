// Regenerates Table V: interpretable case studies. Trains LogiRec++ on
// the CD- and Book-like datasets and prints example users with their
// consistency CON, granularity GR, personalized weight alpha, profiled
// tags (by training-frequency TF), and the model's top recommendations.
// The reproduced claims: high-CON users are profiled by a few specific
// tags and receive recommendations concentrated in them; low-CON users
// get reduced alpha; among comparable-CON users the higher-GR one is
// profiled with finer-grained (deeper) tags.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/logirec_model.h"
#include "eval/metrics.h"
#include "util/flags.h"

using namespace logirec;

namespace {

void DescribeUser(const core::LogiRecModel& model,
                  const data::Dataset& dataset, const data::Split& split,
                  int user) {
  const core::UserWeighting* w = model.weighting();
  std::printf("User %-4d CON=%.2f GR=%.2f alpha=%.2f  (%d tag types, %d "
              "exclusive pairs)\n",
              user, w->Con(user), w->Gr(user), w->Alpha(user),
              w->TagTypeCount(user), w->ExclusivePairCount(user));

  // Profile tags: the user's top TF tags.
  std::vector<std::pair<double, int>> tags;
  for (int t = 0; t < dataset.taxonomy.num_tags(); ++t) {
    const double tf = w->Tf(user, t);
    if (tf > 0.0) tags.push_back({tf, t});
  }
  std::sort(tags.rbegin(), tags.rend());
  std::printf("  Tags: ");
  for (size_t i = 0; i < std::min<size_t>(tags.size(), 5); ++i) {
    const auto& tag = dataset.taxonomy.tag(tags[i].second);
    std::printf("<%s>(L%d, TF=%.2f); ", tag.name.c_str(), tag.level,
                tags[i].first);
  }
  std::printf("\n");

  // Top recommendations with their leaf tags.
  std::vector<double> scores;
  model.ScoreItems(user, &scores);
  for (int v : split.train[user]) {
    scores[v] = -std::numeric_limits<double>::infinity();
  }
  const std::vector<int> top = eval::TopK(scores, 5);
  std::printf("  Items: ");
  for (int v : top) {
    const int leaf = dataset.item_tags[v].empty() ? -1
                                                  : dataset.item_tags[v][0];
    std::printf("Item-%d<%s>; ", v,
                leaf >= 0 ? dataset.taxonomy.tag(leaf).name.c_str() : "?");
  }
  std::printf("\n");
}

void CaseStudy(const std::string& ds_name, double scale, int epochs) {
  const auto bd = bench::MakeBenchDataset(ds_name, scale);
  core::LogiRecConfig config;
  config.epochs = epochs;
  core::LogiRecModel model(config);
  LOGIREC_CHECK(model.Fit(bd.dataset, bd.split).ok());
  const core::UserWeighting* w = model.weighting();
  LOGIREC_CHECK(w != nullptr);

  // Pick the archetypes the paper showcases: the most consistent user,
  // the least consistent user, and — among mid-consistency users — the
  // finest- and coarsest-granularity ones.
  int most_con = 0, least_con = 0;
  for (int u = 1; u < bd.dataset.num_users; ++u) {
    if (w->Con(u) > w->Con(most_con)) most_con = u;
    if (w->Con(u) < w->Con(least_con)) least_con = u;
  }
  int fine_gr = -1, coarse_gr = -1;
  for (int u = 0; u < bd.dataset.num_users; ++u) {
    if (w->Con(u) < 0.55 || w->Con(u) > 0.95) continue;
    if (fine_gr < 0 || w->Gr(u) > w->Gr(fine_gr)) fine_gr = u;
    if (coarse_gr < 0 || w->Gr(u) < w->Gr(coarse_gr)) coarse_gr = u;
  }

  std::printf("\n--- %s ---\n", bd.dataset.name.c_str());
  std::printf("[consistent user]\n");
  DescribeUser(model, bd.dataset, bd.split, most_con);
  std::printf("[diverse user]\n");
  DescribeUser(model, bd.dataset, bd.split, least_con);
  if (fine_gr >= 0 && coarse_gr >= 0 && fine_gr != coarse_gr) {
    std::printf("[fine-granularity user]\n");
    DescribeUser(model, bd.dataset, bd.split, fine_gr);
    std::printf("[coarse-granularity user]\n");
    DescribeUser(model, bd.dataset, bd.split, coarse_gr);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  std::printf("=== Table V: tag-based user profiles from LogiRec++ ===\n");
  CaseStudy("cd", flags.GetDouble("scale"), flags.GetInt("epochs"));
  CaseStudy("book", flags.GetDouble("scale"), flags.GetInt("epochs"));
  return 0;
}
