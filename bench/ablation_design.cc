// Design-choice ablations called out in DESIGN.md §4 (these are *our*
// engineering choices, not the paper's experiments):
//   1. two-model split — covered by Table III "w/o Hyper";
//   2. receiver-degree (Eq. 7) vs symmetric GCN normalization;
//   3. exact transpose backprop through the linear GCN vs truncated
//      (propagation treated as constant in the backward pass);
//   4. standard Poincaré exponential-map RSGD step vs the paper's literal
//      Eq. 17 variant (no conformal factor on the tanh argument).

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "core/logirec_model.h"
#include "eval/evaluator.h"
#include "math/stats.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace logirec;

namespace {

struct Choice {
  std::string label;
  std::function<void(core::LogiRecConfig*)> apply;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("scale", 0.8, "dataset scale factor");
  flags.AddInt("epochs", 120, "training epochs");
  flags.AddInt("seeds", 2, "repeated runs per cell");
  flags.AddString("dataset", "cd", "dataset to ablate on");
  if (!flags.Parse(argc, argv).ok()) return 1;
  if (flags.help_requested()) return 0;

  const std::vector<Choice> choices = {
      {"default (Eq.7 norm, exact bwd, std exp)",
       [](core::LogiRecConfig*) {}},
      {"symmetric GCN normalization",
       [](core::LogiRecConfig* c) { c->symmetric_gcn_norm = true; }},
      {"truncated GCN backprop",
       [](core::LogiRecConfig* c) { c->detach_gcn_backward = true; }},
      {"Eq.17 exp-map step",
       [](core::LogiRecConfig* c) { c->use_eq17_exp_map = true; }},
      {"+ intersection relation (future work)",
       [](core::LogiRecConfig* c) { c->use_intersection = true; }},
  };

  const auto bd = bench::MakeBenchDataset(flags.GetString("dataset"),
                                          flags.GetDouble("scale"));
  eval::Evaluator evaluator(&bd.split, bd.dataset.num_items);
  const int seeds = flags.GetInt("seeds");

  std::printf("=== Design-choice ablations of LogiRec++ on %s ===\n",
              bd.dataset.name.c_str());
  TablePrinter table({"Choice", "Recall@10", "Recall@20", "NDCG@10"});
  for (const Choice& choice : choices) {
    math::RunningStat r10, r20, n10;
    for (int s = 0; s < seeds; ++s) {
      core::LogiRecConfig config;
      config.epochs = flags.GetInt("epochs");
      config.seed = 1000 + 37 * s;
      choice.apply(&config);
      core::LogiRecModel model(config);
      LOGIREC_CHECK(model.Fit(bd.dataset, bd.split).ok());
      const auto result = evaluator.Evaluate(model);
      r10.Add(result.Get("Recall@10"));
      r20.Add(result.Get("Recall@20"));
      n10.Add(result.Get("NDCG@10"));
    }
    table.AddRow({choice.label, FormatMeanStd(r10.mean(), r10.stddev()),
                  FormatMeanStd(r20.mean(), r20.stddev()),
                  FormatMeanStd(n10.mean(), n10.stddev())});
    std::fprintf(stderr, "[ablation_design] %s done\n",
                 choice.label.c_str());
  }
  table.Print();
  return 0;
}
