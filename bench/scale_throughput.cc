// Million-scale serving precision bench: the compact scoring state
// (f32 / int8) against the f64 oracle, per model, per retrieval shape,
// on the 1M-user / 100k-item streaming preset
// (data::MillionScaleConfig).
//
// For each model (default: LogiRec++, the hyperbolic HGCF, and the
// Euclidean BPRMF reference) the bench:
//
//   1. fits the model on the million preset (epochs default 0 — table
//      initialization only; serving throughput is independent of fit
//      quality and the preset exists to stress user count and catalog
//      size, not convergence),
//   2. writes one binary snapshot per storage dtype (f64 / f32 / int8)
//      and records the byte sizes — the int8 ≤ 0.3x f64 compression
//      claim is measured here, not assumed,
//   3. restores a ServableModel per precision x {exact, ivf, hnsw}
//      from the dtype-matched snapshot (the production conversion flow:
//      `logirec_serve --save-model` then serve at that precision) and
//      measures warm single-stream users/sec, latency percentiles,
//      snapshot load wall time, and resident scoring-state bytes,
//   4. scores every combo's top-k overlap against the f64 exact-scan
//      oracle (recall_vs_f64 — the ranking-quality cost of the compact
//      arithmetic plus any index truncation).
//
// A separate quality phase trains each model properly on the CD config
// and evaluates NDCG@20 / Recall@20 through eval::CompactScorer at f32
// and int8 against the same model's f64 metrics — the tolerance-gated
// correctness contract of DESIGN.md §2i (compact precisions are
// metric-neutral within a measured delta, not bit-identical).
//
// Writes BENCH_scale.json — the committed precision-trajectory
// artifact; CI gates both a smoke run of this binary and the committed
// JSON itself.
//
// Gates (0 = off):
//   --min-f32-speedup      fail if f32 exact users/sec / f64 exact
//                          users/sec falls below this for any model
//   --max-int8-bytes       fail if int8 snapshot bytes / f64 snapshot
//                          bytes exceeds this for any model
//   --max-ndcg-delta       fail if |NDCG@20(f32) - NDCG@20(f64)| (0-1
//                          scale) exceeds this for any model
//   --max-ndcg-delta-int8  same bound for int8 (quantization flips more
//                          near-ties, so it gets its own tolerance)
//   --min-recall           fail if any combo's top-k overlap with the
//                          f64 exact oracle falls below this

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/snapshot.h"
#include "eval/compact.h"
#include "eval/metrics.h"
#include "retrieval/retriever.h"
#include "serve/servable.h"
#include "util/flags.h"

namespace logirec::bench {
namespace {

const std::vector<eval::ScorePrecision>& Precisions() {
  static const std::vector<eval::ScorePrecision> all = {
      eval::ScorePrecision::kF64, eval::ScorePrecision::kF32,
      eval::ScorePrecision::kInt8};
  return all;
}

const std::vector<retrieval::RetrievalKind>& Kinds() {
  static const std::vector<retrieval::RetrievalKind> all = {
      retrieval::RetrievalKind::kExact, retrieval::RetrievalKind::kIvf,
      retrieval::RetrievalKind::kHnsw};
  return all;
}

core::SnapshotDtype DtypeFor(eval::ScorePrecision precision) {
  switch (precision) {
    case eval::ScorePrecision::kF32:
      return core::SnapshotDtype::kF32;
    case eval::ScorePrecision::kInt8:
      return core::SnapshotDtype::kInt8;
    default:
      return core::SnapshotDtype::kF64;
  }
}

struct SnapshotInfo {
  std::string path;
  uint64_t bytes = 0;
};

struct ComboStats {
  std::string precision;
  std::string retrieval;
  double users_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double recall_vs_f64 = 1.0;   ///< top-k overlap with the f64 exact oracle
  double load_ms = 0.0;         ///< ModelSnapshot::Read wall time
  double build_s = 0.0;         ///< FromSnapshot total (restore + index)
  unsigned long long resident_bytes = 0;
};

struct QualityStats {
  double ndcg20_f64 = 0.0;     // percent, as the paper's tables print it
  double recall20_f64 = 0.0;
  double ndcg20_f32 = 0.0;
  double recall20_f32 = 0.0;
  double ndcg20_int8 = 0.0;
  double recall20_int8 = 0.0;
  // Absolute deltas on the 0-1 metric scale (percent / 100) — the units
  // the tolerance gate speaks.
  double delta_ndcg20_f32 = 0.0;
  double delta_recall20_f32 = 0.0;
  double delta_ndcg20_int8 = 0.0;
  double delta_recall20_int8 = 0.0;
};

struct ModelReport {
  std::string model;
  std::map<std::string, SnapshotInfo> snapshots;  // keyed by dtype name
  double int8_bytes_ratio = 0.0;
  double f32_bytes_ratio = 0.0;
  std::vector<ComboStats> combos;
  double f32_exact_speedup = 0.0;  // f32 exact users/sec over f64 exact
  double int8_exact_speedup = 0.0;
  QualityStats quality;
};

/// Ranks `user` through the same dispatch serve::ModelServer::RankOn
/// uses: the index / compact-catalog path when one is present, else the
/// f64 kRanking scan with seen-item masking and TopKInto.
void RankUser(const serve::ServableModel& model, int user, int k,
              eval::RetrieveScratch* scratch, std::vector<int>* topk_scratch,
              std::vector<int>* out) {
  if (model.retrieval_enabled() || model.compact_enabled()) {
    model.RetrieveRanked(user, k, scratch, out);
    return;
  }
  scratch->scores.resize(model.num_items());
  model.scorer().ScoreItemsInto(user, math::Span(scratch->scores),
                                eval::ScoreMode::kRanking);
  model.MaskSeen(user, math::Span(scratch->scores));
  eval::TopKInto(
      math::ConstSpan(scratch->scores.data(), scratch->scores.size()), k,
      topk_scratch, out);
}

double OverlapRecall(const std::vector<std::vector<int>>& oracle,
                     const std::vector<std::vector<int>>& got) {
  LOGIREC_CHECK(oracle.size() == got.size());
  long hit = 0, total = 0;
  for (size_t q = 0; q < oracle.size(); ++q) {
    const std::set<int> got_set(got[q].begin(), got[q].end());
    for (int v : oracle[q]) hit += got_set.count(v) > 0 ? 1 : 0;
    total += static_cast<long>(oracle[q].size());
  }
  return total == 0 ? 1.0 : static_cast<double>(hit) / total;
}

ComboStats BenchCombo(const std::string& snapshot_path,
                      const data::Split* split,
                      const retrieval::RetrievalOptions& options, int queries,
                      int top_k, std::vector<std::vector<int>>* results) {
  ComboStats stats;
  stats.precision = eval::ScorePrecisionName(options.precision);
  stats.retrieval = retrieval::RetrievalKindName(options.kind);

  Timer build;
  auto servable = serve::ServableModel::FromSnapshot(
      snapshot_path, baselines::MakeModel, split, /*generation=*/1, options);
  LOGIREC_CHECK_MSG(servable.ok(), servable.status().ToString());
  stats.build_s = build.ElapsedSeconds();
  const serve::ServableModel& model = **servable;
  stats.load_ms = model.snapshot_load_ms();
  stats.resident_bytes = model.ResidentScoringBytes();

  const int num_users = model.num_users();
  eval::RetrieveScratch scratch;
  std::vector<int> topk_scratch;
  results->assign(queries, {});

  std::vector<int> warm;
  for (int q = 0; q < std::min(queries, 256); ++q) {
    RankUser(model, q % num_users, top_k, &scratch, &topk_scratch, &warm);
  }
  std::vector<double> per_query_us;
  per_query_us.reserve(queries);
  Timer total;
  for (int q = 0; q < queries; ++q) {
    Timer one;
    RankUser(model, q % num_users, top_k, &scratch, &topk_scratch,
             &(*results)[q]);
    per_query_us.push_back(one.ElapsedSeconds() * 1e6);
  }
  const double wall = total.ElapsedSeconds();
  stats.users_per_s = queries / std::max(wall, 1e-12);
  stats.p50_us = Percentile(&per_query_us, 0.50);
  stats.p99_us = Percentile(&per_query_us, 0.99);
  return stats;
}

QualityStats BenchQuality(const std::string& name, core::TrainConfig config,
                          const BenchDataset& qd) {
  config = TuneForDataset(name, qd.dataset.name, config);
  auto model = baselines::MakeModel(name, config);
  LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
  const Status fit = (*model)->Fit(qd.dataset, qd.split);
  LOGIREC_CHECK_MSG(fit.ok(), fit.ToString());

  eval::Evaluator evaluator(&qd.split, qd.dataset.num_items);
  const eval::EvalResult base = evaluator.Evaluate(**model);
  QualityStats q;
  q.ndcg20_f64 = base.Get("NDCG@20");
  q.recall20_f64 = base.Get("Recall@20");

  for (const eval::ScorePrecision precision :
       {eval::ScorePrecision::kF32, eval::ScorePrecision::kInt8}) {
    eval::CompactCatalog catalog;
    const Status built =
        catalog.Build((*model)->RankingSurrogate(), precision);
    LOGIREC_CHECK_MSG(built.ok(), built.ToString());
    eval::CompactScorer compact(model->get(), &catalog);
    const eval::EvalResult res = evaluator.Evaluate(compact);
    const double dn = std::abs(base.Get("NDCG@20") - res.Get("NDCG@20")) / 100.0;
    const double dr =
        std::abs(base.Get("Recall@20") - res.Get("Recall@20")) / 100.0;
    if (precision == eval::ScorePrecision::kF32) {
      q.ndcg20_f32 = res.Get("NDCG@20");
      q.recall20_f32 = res.Get("Recall@20");
      q.delta_ndcg20_f32 = dn;
      q.delta_recall20_f32 = dr;
    } else {
      q.ndcg20_int8 = res.Get("NDCG@20");
      q.recall20_int8 = res.Get("Recall@20");
      q.delta_ndcg20_int8 = dn;
      q.delta_recall20_int8 = dr;
    }
  }
  return q;
}

ModelReport BenchModel(const std::string& name,
                       const core::TrainConfig& config,
                       const BenchDataset& bd,
                       const retrieval::RetrievalOptions& base_options,
                       int queries, int top_k) {
  ModelReport report;
  report.model = name;

  auto model = baselines::MakeModel(name, config);
  LOGIREC_CHECK_MSG(model.ok(), model.status().ToString());
  Timer fit_timer;
  const Status fit = (*model)->Fit(bd.dataset, bd.split);
  LOGIREC_CHECK_MSG(fit.ok(), fit.ToString());
  std::printf("  %s: fit %.1fs", name.c_str(), fit_timer.ElapsedSeconds());

  core::SnapshotHeader header;
  header.dim = config.dim;
  header.layers = config.layers;
  header.num_users = bd.dataset.num_users;
  header.num_items = bd.dataset.num_items;
  for (const eval::ScorePrecision precision : Precisions()) {
    const core::SnapshotDtype dtype = DtypeFor(precision);
    SnapshotInfo info;
    info.path = (std::filesystem::temp_directory_path() /
                 ("logirec_scale_" + name + "_" +
                  core::SnapshotDtypeName(dtype) + ".snap"))
                    .string();
    const Status wr =
        core::ModelSnapshot::Write(**model, header, info.path, dtype);
    LOGIREC_CHECK_MSG(wr.ok(), wr.ToString());
    info.bytes = std::filesystem::file_size(info.path);
    report.snapshots[core::SnapshotDtypeName(dtype)] = info;
  }
  model->reset();  // serve from the restored snapshots only
  const double f64_bytes =
      static_cast<double>(report.snapshots.at("f64").bytes);
  report.f32_bytes_ratio = report.snapshots.at("f32").bytes / f64_bytes;
  report.int8_bytes_ratio = report.snapshots.at("int8").bytes / f64_bytes;
  std::printf(", snapshots f64=%.1fMB f32=%.2fx int8=%.2fx\n",
              f64_bytes / 1e6, report.f32_bytes_ratio,
              report.int8_bytes_ratio);

  std::vector<std::vector<int>> oracle, got;
  for (const eval::ScorePrecision precision : Precisions()) {
    const std::string dtype_name =
        core::SnapshotDtypeName(DtypeFor(precision));
    const SnapshotInfo& snap = report.snapshots.at(dtype_name);
    for (const retrieval::RetrievalKind kind : Kinds()) {
      retrieval::RetrievalOptions options = base_options;
      options.kind = kind;
      options.precision = precision;
      const bool is_oracle = precision == eval::ScorePrecision::kF64 &&
                             kind == retrieval::RetrievalKind::kExact;
      ComboStats stats = BenchCombo(snap.path, &bd.split, options, queries,
                                    top_k, is_oracle ? &oracle : &got);
      if (!is_oracle) {
        stats.recall_vs_f64 = OverlapRecall(oracle, got);
      }
      std::printf("    %-4s %-5s %10.1f users/s  p99 %8.1fus  recall %.4f  "
                  "load %7.1fms  resident %6.1fMB\n",
                  stats.precision.c_str(), stats.retrieval.c_str(),
                  stats.users_per_s, stats.p99_us, stats.recall_vs_f64,
                  stats.load_ms, stats.resident_bytes / 1e6);
      report.combos.push_back(std::move(stats));
    }
  }
  const auto users_per_s = [&](const char* precision,
                               const char* kind) -> double {
    for (const ComboStats& c : report.combos) {
      if (c.precision == precision && c.retrieval == kind) {
        return c.users_per_s;
      }
    }
    return 0.0;
  };
  report.f32_exact_speedup =
      users_per_s("f32", "exact") / std::max(users_per_s("f64", "exact"), 1e-12);
  report.int8_exact_speedup =
      users_per_s("int8", "exact") /
      std::max(users_per_s("f64", "exact"), 1e-12);

  for (auto& [dtype_name, info] : report.snapshots) {
    (void)dtype_name;
    std::filesystem::remove(info.path);
  }
  return report;
}

std::string ComboJson(const ComboStats& c) {
  return StrFormat(
      "{\"precision\": \"%s\", \"retrieval\": \"%s\", "
      "\"users_per_s\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
      "\"recall_vs_f64\": %.4f, \"load_ms\": %.2f, \"build_s\": %.2f, "
      "\"resident_bytes\": %llu}",
      c.precision.c_str(), c.retrieval.c_str(), c.users_per_s, c.p50_us,
      c.p99_us, c.recall_vs_f64, c.load_ms, c.build_s, c.resident_bytes);
}

void WriteJson(const std::string& path, const BenchDataset& bd,
               const core::TrainConfig& config, int queries, int top_k,
               const std::vector<ModelReport>& reports) {
  std::ostringstream out;
  out << "{\n  \"meta\": "
      << StrFormat(
             "{\"dataset\": \"%s\", \"users\": %d, \"items\": %d, "
             "\"dim\": %d, \"queries\": %d, \"top_k\": %d}",
             bd.dataset.name.c_str(), bd.dataset.num_users,
             bd.dataset.num_items, config.dim, queries, top_k)
      << ",\n  \"models\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ModelReport& r = reports[i];
    out << StrFormat(
               "    {\"model\": \"%s\", \"f32_exact_speedup\": %.3f, "
               "\"int8_exact_speedup\": %.3f, \"f32_bytes_ratio\": %.4f, "
               "\"int8_bytes_ratio\": %.4f,\n",
               r.model.c_str(), r.f32_exact_speedup, r.int8_exact_speedup,
               r.f32_bytes_ratio, r.int8_bytes_ratio)
        << StrFormat(
               "     \"snapshot_bytes\": {\"f64\": %llu, \"f32\": %llu, "
               "\"int8\": %llu},\n",
               static_cast<unsigned long long>(r.snapshots.at("f64").bytes),
               static_cast<unsigned long long>(r.snapshots.at("f32").bytes),
               static_cast<unsigned long long>(r.snapshots.at("int8").bytes))
        << "     \"paths\": [\n";
    for (size_t c = 0; c < r.combos.size(); ++c) {
      out << "       " << ComboJson(r.combos[c])
          << (c + 1 < r.combos.size() ? "," : "") << "\n";
    }
    const QualityStats& q = r.quality;
    out << "     ],\n"
        << StrFormat(
               "     \"quality\": {\"ndcg20_f64\": %.4f, "
               "\"recall20_f64\": %.4f, \"ndcg20_f32\": %.4f, "
               "\"ndcg20_int8\": %.4f, \"delta_ndcg20_f32\": %.6f, "
               "\"delta_recall20_f32\": %.6f, \"delta_ndcg20_int8\": %.6f, "
               "\"delta_recall20_int8\": %.6f}}",
               q.ndcg20_f64, q.recall20_f64, q.ndcg20_f32, q.ndcg20_int8,
               q.delta_ndcg20_f32, q.delta_recall20_f32, q.delta_ndcg20_int8,
               q.delta_recall20_int8)
        << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream f(path);
  LOGIREC_CHECK_MSG(f.good(), "cannot write " + path);
  f << out.str();
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("models", "BPRMF,HGCF,LogiRec++",
                  "comma-separated model names (needs a linear ranking "
                  "surrogate; includes a Euclidean reference by default)");
  flags.AddDouble("scale", 1.0,
                  "MillionScaleConfig scale (1.0 = 1M users / 100k items; "
                  "CI smoke uses a small fraction)");
  flags.AddInt("dim", 16, "embedding dimension for the scale phase");
  flags.AddInt("epochs", 0,
               "fit epochs on the million preset (0 = initialize tables "
               "only; serving throughput is fit-quality independent)");
  flags.AddInt("queries", 2048, "timed rankings per precision x retrieval");
  flags.AddInt("topk", 10, "ranking cutoff");
  flags.AddInt("nprobe", 32, "IVF cells scanned per query");
  flags.AddInt("cells", 0, "IVF cells (0 = sqrt(items))");
  flags.AddInt("M", 16, "HNSW links per node");
  flags.AddInt("ef-construction", 128, "HNSW build beam width");
  flags.AddInt("ef-search", 96, "HNSW query beam width");
  flags.AddInt("threads", 0, "index build threads (0 = hardware)");
  flags.AddString("quality-dataset", "cd",
                  "dataset preset for the NDCG-delta quality phase");
  flags.AddDouble("quality-scale", 1.0, "quality-phase dataset scale");
  flags.AddInt("quality-dim", 32, "quality-phase embedding dimension");
  flags.AddInt("quality-epochs", 30, "quality-phase training epochs");
  flags.AddString("out", "BENCH_scale.json", "output JSON path");
  flags.AddDouble("min-f32-speedup", 0.0,
                  "fail if any model's f32 exact users/sec over f64 exact "
                  "is below this (0 = no gate)");
  flags.AddDouble("max-int8-bytes", 0.0,
                  "fail if any model's int8/f64 snapshot byte ratio "
                  "exceeds this (0 = no gate)");
  flags.AddDouble("max-ndcg-delta", 0.0,
                  "fail if any model's |NDCG@20(f32) - NDCG@20(f64)| on "
                  "the 0-1 scale exceeds this (0 = no gate)");
  flags.AddDouble("max-ndcg-delta-int8", 0.0,
                  "same bound for int8 (its own tolerance: quantization "
                  "flips more near-ties than f32 narrowing)");
  flags.AddDouble("min-recall", 0.0,
                  "fail if any combo's top-k overlap with the f64 exact "
                  "oracle is below this sanity floor (0 = no gate); note "
                  "IVF/HNSW recall here measures ANN quality at the given "
                  "nprobe/ef, not precision fidelity — see max-recall-drift");
  flags.AddDouble("max-recall-drift", 0.0,
                  "fail if a compact combo's oracle recall differs from the "
                  "same retrieval kind's f64 recall by more than this "
                  "(0 = no gate) — the precision-neutrality bar: narrowing "
                  "may flip near-ties but must not change what the index "
                  "finds");
  const Status st = flags.Parse(argc, argv);
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.epochs = flags.GetInt("epochs");
  config.num_threads = flags.GetInt("threads");
  config.seed = 7;

  Timer gen_timer;
  const BenchDataset bd =
      MakeBenchDataset("million", flags.GetDouble("scale"));
  std::printf(
      "scale_throughput: %s users=%d items=%d interactions=%zu dim=%d "
      "(generated in %.1fs)\n",
      bd.dataset.name.c_str(), bd.dataset.num_users, bd.dataset.num_items,
      bd.dataset.interactions.size(), config.dim,
      gen_timer.ElapsedSeconds());

  retrieval::RetrievalOptions base_options;
  base_options.ivf.cells = flags.GetInt("cells");
  base_options.ivf.nprobe = flags.GetInt("nprobe");
  base_options.ivf.num_threads = flags.GetInt("threads");
  base_options.hnsw.M = flags.GetInt("M");
  base_options.hnsw.ef_construction = flags.GetInt("ef-construction");
  base_options.hnsw.ef_search = flags.GetInt("ef-search");
  base_options.hnsw.num_threads = flags.GetInt("threads");

  const std::vector<std::string> models =
      Split(flags.GetString("models"), ',');
  const int queries = flags.GetInt("queries");
  const int top_k = flags.GetInt("topk");

  std::vector<ModelReport> reports;
  for (const std::string& name : models) {
    reports.push_back(
        BenchModel(name, config, bd, base_options, queries, top_k));
  }

  // Quality phase: real training on a small config where NDCG means
  // something, compact metrics vs the same model's f64 metrics.
  core::TrainConfig quality_config;
  quality_config.dim = flags.GetInt("quality-dim");
  quality_config.epochs = flags.GetInt("quality-epochs");
  quality_config.num_threads = flags.GetInt("threads");
  quality_config.seed = 7;
  const BenchDataset qd = MakeBenchDataset(flags.GetString("quality-dataset"),
                                           flags.GetDouble("quality-scale"));
  std::printf("quality phase: %s users=%d items=%d epochs=%d\n",
              qd.dataset.name.c_str(), qd.dataset.num_users,
              qd.dataset.num_items, quality_config.epochs);
  for (ModelReport& r : reports) {
    r.quality = BenchQuality(r.model, quality_config, qd);
    std::printf(
        "  %-10s NDCG@20 f64=%.3f f32=%.3f int8=%.3f  delta f32=%.2e "
        "int8=%.2e\n",
        r.model.c_str(), r.quality.ndcg20_f64, r.quality.ndcg20_f32,
        r.quality.ndcg20_int8, r.quality.delta_ndcg20_f32,
        r.quality.delta_ndcg20_int8);
  }

  WriteJson(flags.GetString("out"), bd, config, queries, top_k, reports);
  std::printf("wrote %s\n", flags.GetString("out").c_str());

  bool failed = false;
  const double min_f32_speedup = flags.GetDouble("min-f32-speedup");
  const double max_int8_bytes = flags.GetDouble("max-int8-bytes");
  const double max_ndcg_delta = flags.GetDouble("max-ndcg-delta");
  const double max_ndcg_delta_int8 = flags.GetDouble("max-ndcg-delta-int8");
  const double min_recall = flags.GetDouble("min-recall");
  const double max_recall_drift = flags.GetDouble("max-recall-drift");
  for (const ModelReport& r : reports) {
    if (min_f32_speedup > 0.0 && r.f32_exact_speedup < min_f32_speedup) {
      std::printf("GATE FAILED %s: f32 exact speedup %.2fx < %.2fx\n",
                  r.model.c_str(), r.f32_exact_speedup, min_f32_speedup);
      failed = true;
    }
    if (max_int8_bytes > 0.0 && r.int8_bytes_ratio > max_int8_bytes) {
      std::printf("GATE FAILED %s: int8 snapshot ratio %.3fx > %.3fx\n",
                  r.model.c_str(), r.int8_bytes_ratio, max_int8_bytes);
      failed = true;
    }
    if (max_ndcg_delta > 0.0 &&
        r.quality.delta_ndcg20_f32 > max_ndcg_delta) {
      std::printf("GATE FAILED %s: f32 NDCG@20 delta %.2e > %.2e\n",
                  r.model.c_str(), r.quality.delta_ndcg20_f32,
                  max_ndcg_delta);
      failed = true;
    }
    if (max_ndcg_delta_int8 > 0.0 &&
        r.quality.delta_ndcg20_int8 > max_ndcg_delta_int8) {
      std::printf("GATE FAILED %s: int8 NDCG@20 delta %.2e > %.2e\n",
                  r.model.c_str(), r.quality.delta_ndcg20_int8,
                  max_ndcg_delta_int8);
      failed = true;
    }
    if (min_recall > 0.0) {
      for (const ComboStats& c : r.combos) {
        if (c.recall_vs_f64 < min_recall) {
          std::printf(
              "GATE FAILED %s %s/%s: recall vs f64 oracle %.4f < %.4f\n",
              r.model.c_str(), c.precision.c_str(), c.retrieval.c_str(),
              c.recall_vs_f64, min_recall);
          failed = true;
        }
      }
    }
    if (max_recall_drift > 0.0) {
      for (const ComboStats& c : r.combos) {
        if (c.precision == "f64") continue;
        double f64_recall = 1.0;
        for (const ComboStats& ref : r.combos) {
          if (ref.precision == "f64" && ref.retrieval == c.retrieval) {
            f64_recall = ref.recall_vs_f64;
          }
        }
        const double drift = std::abs(c.recall_vs_f64 - f64_recall);
        if (drift > max_recall_drift) {
          std::printf(
              "GATE FAILED %s %s/%s: recall drift vs f64 %s %.4f > %.4f\n",
              r.model.c_str(), c.precision.c_str(), c.retrieval.c_str(),
              c.retrieval.c_str(), drift, max_recall_drift);
          failed = true;
        }
      }
    }
  }
  if (!failed && (min_f32_speedup > 0.0 || max_int8_bytes > 0.0 ||
                  max_ndcg_delta > 0.0 || min_recall > 0.0 ||
                  max_recall_drift > 0.0)) {
    std::printf("scale gates passed\n");
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace logirec::bench

int main(int argc, char** argv) { return logirec::bench::Main(argc, argv); }
