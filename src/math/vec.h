#ifndef LOGIREC_MATH_VEC_H_
#define LOGIREC_MATH_VEC_H_

#include <span>
#include <vector>

namespace logirec::math {

/// Owned dense vector of doubles. The geometry stack operates on
/// `std::span<const double>` views so it can work on rows of the packed
/// embedding tables without copies.
using Vec = std::vector<double>;
using Span = std::span<double>;
using ConstSpan = std::span<const double>;

/// Single-precision counterparts for the compact serving path. Training
/// and the bit-identical f64 kernels never touch these; they exist so the
/// f32 scoring stack has first-class span types instead of raw pointers.
using VecF = std::vector<float>;
using SpanF = std::span<float>;
using ConstSpanF = std::span<const float>;

/// Euclidean dot product. Spans must have equal length.
double Dot(ConstSpan a, ConstSpan b);

/// Euclidean (L2) norm.
double Norm(ConstSpan a);

/// Squared Euclidean norm.
double SquaredNorm(ConstSpan a);

/// Squared Euclidean distance ||a-b||^2.
double SquaredDistance(ConstSpan a, ConstSpan b);

/// Euclidean distance ||a-b||.
double Distance(ConstSpan a, ConstSpan b);

/// out = a + b.
Vec Add(ConstSpan a, ConstSpan b);

/// out = a - b.
Vec Sub(ConstSpan a, ConstSpan b);

/// out = s * a.
Vec Scale(ConstSpan a, double s);

/// dst += s * src (fused AXPY). Spans must have equal length.
void Axpy(double s, ConstSpan src, Span dst);

/// dst *= s in place.
void ScaleInPlace(Span dst, double s);

/// dst = 0.
void Zero(Span dst);

/// dst = src (copy into a preallocated span).
void Copy(ConstSpan src, Span dst);

/// Rescales `v` in place to have at most norm `max_norm` (no-op when
/// shorter). Returns the original norm.
double ClipNorm(Span v, double max_norm);

/// Numerically safe acosh: clamps the argument up to 1 + eps before calling
/// std::acosh (inputs can dip below 1 from rounding).
double SafeAcosh(double x);

/// d/dx acosh(x) with the same clamping; the derivative is capped so that
/// gradients stay finite at the boundary x -> 1+.
double SafeAcoshGrad(double x);

/// Squared Euclidean norm of a float span, accumulated in float in
/// ascending index order (the f32 kernels' deterministic reduction order).
float SquaredNormF(ConstSpanF a);

/// Float SafeAcosh: clamps up to 1 before acoshf (the f64 guard band of
/// 1e-12 is below float resolution, so the clamp floor is exactly 1.0f).
float SafeAcoshF(float x);

}  // namespace logirec::math

#endif  // LOGIREC_MATH_VEC_H_
