#ifndef LOGIREC_MATH_KERNELS_H_
#define LOGIREC_MATH_KERNELS_H_

#include "math/matrix.h"
#include "math/vec.h"

namespace logirec::math {

/// Batched scoring kernels: one user row against every row of an item
/// matrix in a single contiguous pass. These are the hot path of full
/// ranking (Evaluator::Evaluate scores every item for every user), so the
/// per-item function-call/virtual-dispatch/bounds-check overhead of the
/// scalar geometry helpers is hoisted out here.
///
/// Contracts shared by every kernel:
///  * `out.size() == items.rows()` and `user.size() == items.cols()`
///    (checked once per call, not per item);
///  * per-item accumulation order matches the corresponding scalar helper
///    (math::Dot, math::SquaredDistance, hyper::LorentzDot,
///    hyper::PoincareDistance) exactly, so "exact" kernels are
///    bit-identical to the seed per-item scoring loops;
///  * the caller owns `out`; kernels never allocate.
///
/// Ranking-mode kernels (`LorentzDotsInto`, `NegSquaredEuclidean...`,
/// `NegPoincareGammasInto`) apply a strictly monotone transform of the
/// exact score — acosh and sqrt are strictly increasing, so Top-K order
/// (including equal-score ties) is preserved while the transcendental per
/// item disappears.

/// out[v] = <user, items.Row(v)>  (Euclidean dot products).
void DotsInto(ConstSpan user, const Matrix& items, Span out);

/// out[v] = -||user - items.Row(v)||^2.
void NegSquaredEuclideanDistancesInto(ConstSpan user, const Matrix& items,
                                      Span out);

/// out[v] = -||user - items.Row(v)|| (exact Euclidean distance).
void NegEuclideanDistancesInto(ConstSpan user, const Matrix& items, Span out);

/// out[v] = <user, items.Row(v)>_L (Lorentzian inner products). For points
/// on the hyperboloid this is the ranking surrogate of the negated
/// geodesic distance: d = acosh(-<x,y>_L) and acosh is monotone, so
/// larger dot (= less negative) means closer.
void LorentzDotsInto(ConstSpan user, const Matrix& items, Span out);

/// out[v] = -acosh(-<user, items.Row(v)>_L) (exact negated Lorentz
/// geodesic distance, bit-identical to -hyper::LorentzDistance).
void NegLorentzDistancesInto(ConstSpan user, const Matrix& items, Span out);

/// out[v] = -d_P(user, items.Row(v)) (exact negated Poincaré distance,
/// bit-identical to -hyper::PoincareDistance).
void NegPoincareDistancesInto(ConstSpan user, const Matrix& items, Span out);

/// Ranking surrogate for the Poincaré distance: out[v] = -gamma(u, v)
/// where d_P = acosh(gamma), gamma = 1 + 2||u-v||^2 / (alpha_u * beta_v).
/// Same order (and ties) as NegPoincareDistancesInto, no acosh.
void NegPoincareGammasInto(ConstSpan user, const Matrix& items, Span out);

/// Column-major snapshot of an item matrix, for the transposed kernel
/// overloads below. With columns contiguous, the kernels put the item
/// index in the inner loop (out[v] += u[k] * col_k[v]), which the
/// compiler vectorizes across items — the row-major kernels cannot be
/// vectorized at all, because each item's sum is a serial chain whose
/// accumulation order is pinned by the bit-identity contract. The
/// transposed walk adds each item's terms in the same ascending-k order
/// with the same rounding, so bit-identity is preserved *and* items land
/// in independent SIMD lanes.
///
/// Assign() also caches each item's squared norm (accumulated in the same
/// ascending-k order as the scalar helpers), which the Poincaré kernels
/// reuse across every user of an evaluation pass.
///
/// Models rebuild their view inside SyncScoringState() — the trainer
/// calls it before every validation probe and once after Fit(), so the
/// snapshot is never stale when scoring is legal.
///
/// The view is templated over the element type: `ScoringView` (double) is
/// the training/eval default with the bit-identity contract above, and
/// `ScoringViewF` (float) is the compact serving variant — coordinates are
/// narrowed once at Assign() time and the cached norms are re-accumulated
/// in float from the narrowed values (same ascending-k order), so the f32
/// kernels are self-consistent and deterministic, just not bit-identical
/// to f64.
template <typename T>
class BasicScoringView {
 public:
  BasicScoringView() = default;

  /// Snapshots `items` (transpose + per-item squared norms, narrowing to
  /// T as it copies).
  void Assign(const Matrix& items);

  /// Rebuilds from an existing f64 view (the compact serving path starts
  /// from a model's RankingSurrogate spec, which exposes the f64 view).
  void Assign(const BasicScoringView<double>& src);

  int items() const { return n_; }
  int dim() const { return d_; }
  bool empty() const { return n_ == 0; }

  /// Column k: the k-th coordinate of every item, contiguous.
  const T* Col(int k) const { return cols_.data() + static_cast<size_t>(k) * n_; }
  /// Cached squared norms, one per item.
  const T* NormsSq() const { return norms_sq_.data(); }

  /// Bytes resident in the column + norm buffers (capacity excluded).
  size_t ResidentBytes() const {
    return (cols_.size() + norms_sq_.size()) * sizeof(T);
  }

 private:
  int n_ = 0;
  int d_ = 0;
  std::vector<T> cols_;
  std::vector<T> norms_sq_;
};

using ScoringView = BasicScoringView<double>;
using ScoringViewF = BasicScoringView<float>;

/// Transposed counterparts of the kernels above: identical contracts and
/// bit-identical outputs, but vectorized across items via the column-major
/// layout. Prefer these on any hot path where the item matrix is stable
/// across many users (i.e. whenever a ScoringView is maintained).
void DotsInto(ConstSpan user, const ScoringView& items, Span out);
void NegSquaredEuclideanDistancesInto(ConstSpan user, const ScoringView& items,
                                      Span out);
void NegEuclideanDistancesInto(ConstSpan user, const ScoringView& items,
                               Span out);
void LorentzDotsInto(ConstSpan user, const ScoringView& items, Span out);
void NegLorentzDistancesInto(ConstSpan user, const ScoringView& items,
                             Span out);
void NegPoincareDistancesInto(ConstSpan user, const ScoringView& items,
                              Span out);
void NegPoincareGammasInto(ConstSpan user, const ScoringView& items, Span out);

/// Single-precision clones of the seven transposed kernels for the
/// compact serving path: identical loop structure and deterministic
/// ascending-k accumulation order, but every load, multiply, and add is
/// float, so AVX2 processes 8 items per register instead of 4. Outputs
/// are NOT bit-identical to the f64 kernels — the correctness contract is
/// the tolerance-gated ranking equivalence documented in DESIGN.md §2i —
/// but they are bit-identical run-to-run for a fixed view (determinism
/// per precision).
void DotsInto(ConstSpanF user, const ScoringViewF& items, SpanF out);
void NegSquaredEuclideanDistancesInto(ConstSpanF user, const ScoringViewF& items,
                                      SpanF out);
void NegEuclideanDistancesInto(ConstSpanF user, const ScoringViewF& items,
                               SpanF out);
void LorentzDotsInto(ConstSpanF user, const ScoringViewF& items, SpanF out);
void NegLorentzDistancesInto(ConstSpanF user, const ScoringViewF& items,
                             SpanF out);
void NegPoincareDistancesInto(ConstSpanF user, const ScoringViewF& items,
                              SpanF out);
void NegPoincareGammasInto(ConstSpanF user, const ScoringViewF& items,
                           SpanF out);

}  // namespace logirec::math

#endif  // LOGIREC_MATH_KERNELS_H_
