#include "math/compact.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "hyper/poincare.h"
#include "math/simd.h"
#include "util/logging.h"

namespace logirec::math {

namespace {

inline void CheckShapes(ConstSpanF user, const Int8Catalog& items, SpanF out) {
  LOGIREC_CHECK(static_cast<int>(user.size()) == items.dim());
  LOGIREC_CHECK(static_cast<int>(out.size()) == items.items());
  LOGIREC_CHECK(!user.empty());
}

/// Deterministic symmetric quantizer for one coordinate. Rounding half
/// away from zero (lround) is independent of the FP environment, unlike
/// lrint. The clamp guards the |x| == maxabs case where x / scale can
/// round up to 127.0000001.
inline int8_t QuantizeCoord(double x, double inv_scale) {
  const long q = std::lround(x * inv_scale);
  return static_cast<int8_t>(std::clamp(q, -127l, 127l));
}

}  // namespace

template <typename RowAt>
void Int8Catalog::AssignRows(int n, int d, const RowAt& row_at) {
  n_ = n;
  d_ = d;
  codes_.assign(static_cast<size_t>(n) * d, 0);
  scales_.assign(n, 0.0f);
  norms_sq_.assign(n, 0.0f);
  for (int v = 0; v < n; ++v) {
    double maxabs = 0.0;
    for (int k = 0; k < d; ++k) maxabs = std::max(maxabs, std::abs(row_at(v, k)));
    if (maxabs == 0.0) continue;  // all-zero row: scale 0, codes 0
    const double scale = maxabs / 127.0;
    const double inv_scale = 127.0 / maxabs;
    long sum_sq = 0;
    for (int k = 0; k < d; ++k) {
      const int8_t q = QuantizeCoord(row_at(v, k), inv_scale);
      codes_[static_cast<size_t>(k) * n + v] = q;
      sum_sq += static_cast<long>(q) * q;
    }
    const float scale_f = static_cast<float>(scale);
    scales_[v] = scale_f;
    norms_sq_[v] = scale_f * scale_f * static_cast<float>(sum_sq);
  }
}

float QuantizeInt8Row(ConstSpan row, int8_t* codes) {
  const int d = static_cast<int>(row.size());
  double maxabs = 0.0;
  for (int k = 0; k < d; ++k) maxabs = std::max(maxabs, std::abs(row[k]));
  if (maxabs == 0.0) {
    std::fill(codes, codes + d, static_cast<int8_t>(0));
    return 0.0f;
  }
  const double inv_scale = 127.0 / maxabs;
  for (int k = 0; k < d; ++k) codes[k] = QuantizeCoord(row[k], inv_scale);
  return static_cast<float>(maxabs / 127.0);
}

void Int8Catalog::Assign(const Matrix& items) {
  const double* base = items.data().data();
  const int d = items.cols();
  AssignRows(items.rows(), d, [base, d](int v, int k) {
    return base[static_cast<size_t>(v) * d + k];
  });
}

void Int8Catalog::Assign(const ScoringView& src) {
  const int n = src.items();
  AssignRows(n, src.dim(),
             [&src, n](int v, int k) { return src.Col(k)[v]; });
}

namespace {

/// out[v] = sign0 * u[0]*code0[v] + sum_{k>=1} u[k]*codek[v], codes
/// widened to float in the lanes. Same column-grouping as the f32
/// AccumulateDots so out[v] is touched once per 8-column group.
__attribute__((always_inline)) inline void AccumulateCodeDotsImpl(
    const float* u, const Int8Catalog& items, float* __restrict__ out,
    float sign0) {
  const int n = items.items();
  const int d = items.dim();
  const float u0 = sign0 * u[0];
  int k = 1;
  if (d >= 9) {
    const int8_t* __restrict__ c0 = items.Col(0);
    const int8_t* __restrict__ c1 = items.Col(1);
    const int8_t* __restrict__ c2 = items.Col(2);
    const int8_t* __restrict__ c3 = items.Col(3);
    const int8_t* __restrict__ c4 = items.Col(4);
    const int8_t* __restrict__ c5 = items.Col(5);
    const int8_t* __restrict__ c6 = items.Col(6);
    const int8_t* __restrict__ c7 = items.Col(7);
    const int8_t* __restrict__ c8 = items.Col(8);
    const float u1 = u[1], u2 = u[2], u3 = u[3], u4 = u[4], u5 = u[5],
                u6 = u[6], u7 = u[7], u8 = u[8];
    for (int v = 0; v < n; ++v) {
      float t = u0 * static_cast<float>(c0[v]);
      t += u1 * static_cast<float>(c1[v]);
      t += u2 * static_cast<float>(c2[v]);
      t += u3 * static_cast<float>(c3[v]);
      t += u4 * static_cast<float>(c4[v]);
      t += u5 * static_cast<float>(c5[v]);
      t += u6 * static_cast<float>(c6[v]);
      t += u7 * static_cast<float>(c7[v]);
      t += u8 * static_cast<float>(c8[v]);
      out[v] = t;
    }
    k = 9;
  } else {
    const int8_t* __restrict__ c0 = items.Col(0);
    for (int v = 0; v < n; ++v) out[v] = u0 * static_cast<float>(c0[v]);
  }
  for (; k + 8 <= d; k += 8) {
    const int8_t* __restrict__ c0 = items.Col(k);
    const int8_t* __restrict__ c1 = items.Col(k + 1);
    const int8_t* __restrict__ c2 = items.Col(k + 2);
    const int8_t* __restrict__ c3 = items.Col(k + 3);
    const int8_t* __restrict__ c4 = items.Col(k + 4);
    const int8_t* __restrict__ c5 = items.Col(k + 5);
    const int8_t* __restrict__ c6 = items.Col(k + 6);
    const int8_t* __restrict__ c7 = items.Col(k + 7);
    const float u1 = u[k], u2 = u[k + 1], u3 = u[k + 2], u4 = u[k + 3],
                u5 = u[k + 4], u6 = u[k + 5], u7 = u[k + 6], u8 = u[k + 7];
    for (int v = 0; v < n; ++v) {
      float t = out[v];
      t += u1 * static_cast<float>(c0[v]);
      t += u2 * static_cast<float>(c1[v]);
      t += u3 * static_cast<float>(c2[v]);
      t += u4 * static_cast<float>(c3[v]);
      t += u5 * static_cast<float>(c4[v]);
      t += u6 * static_cast<float>(c5[v]);
      t += u7 * static_cast<float>(c6[v]);
      t += u8 * static_cast<float>(c7[v]);
      out[v] = t;
    }
  }
  for (; k < d; ++k) {
    const float uk = u[k];
    const int8_t* __restrict__ c = items.Col(k);
    for (int v = 0; v < n; ++v) out[v] += uk * static_cast<float>(c[v]);
  }
}

LOGIREC_SIMD_CLONES
void AccumulateCodeDots(const float* u, const Int8Catalog& items,
                        float* __restrict__ out, float sign0) {
  AccumulateCodeDotsImpl(u, items, out, sign0);
}

/// Scales the raw code dots by the per-item scale in place.
LOGIREC_SIMD_CLONES
void ScaleByItem(const Int8Catalog& items, float* __restrict__ out) {
  const float* __restrict__ s = items.Scales();
  const int n = items.items();
  for (int v = 0; v < n; ++v) out[v] *= s[v];
}

/// Turns raw code dots into squared distances in place:
/// ||u||^2 - 2*scale*raw + norms_sq, clamped at zero (the factorized form
/// can go epsilon-negative when u is nearly a dequantized row).
LOGIREC_SIMD_CLONES
void RawDotsToSquaredDistances(ConstSpanF user, const Int8Catalog& items,
                               float* __restrict__ out) {
  float unorm = 0.0f;
  for (const float x : user) unorm += x * x;
  const float* __restrict__ s = items.Scales();
  const float* __restrict__ nsq = items.NormsSq();
  const int n = items.items();
  for (int v = 0; v < n; ++v) {
    const float d2 = unorm - 2.0f * s[v] * out[v] + nsq[v];
    out[v] = d2 > 0.0f ? d2 : 0.0f;
  }
}

}  // namespace

void DotsInto(ConstSpanF user, const Int8Catalog& items, SpanF out) {
  CheckShapes(user, items, out);
  AccumulateCodeDots(user.data(), items, out.data(), 1.0f);
  ScaleByItem(items, out.data());
}

void NegSquaredEuclideanDistancesInto(ConstSpanF user, const Int8Catalog& items,
                                      SpanF out) {
  CheckShapes(user, items, out);
  AccumulateCodeDots(user.data(), items, out.data(), 1.0f);
  RawDotsToSquaredDistances(user, items, out.data());
  for (float& o : out) o = -o;
}

void NegEuclideanDistancesInto(ConstSpanF user, const Int8Catalog& items,
                               SpanF out) {
  CheckShapes(user, items, out);
  AccumulateCodeDots(user.data(), items, out.data(), 1.0f);
  RawDotsToSquaredDistances(user, items, out.data());
  for (float& o : out) o = -std::sqrt(o);
}

void LorentzDotsInto(ConstSpanF user, const Int8Catalog& items, SpanF out) {
  CheckShapes(user, items, out);
  AccumulateCodeDots(user.data(), items, out.data(), -1.0f);
  ScaleByItem(items, out.data());
}

void NegLorentzDistancesInto(ConstSpanF user, const Int8Catalog& items,
                             SpanF out) {
  CheckShapes(user, items, out);
  AccumulateCodeDots(user.data(), items, out.data(), -1.0f);
  ScaleByItem(items, out.data());
  for (float& o : out) o = -SafeAcoshF(-o);
}

namespace {

template <typename FinishFn>
inline void PoincareFromCatalog(ConstSpanF user, const Int8Catalog& items,
                                SpanF out, const FinishFn& finish) {
  CheckShapes(user, items, out);
  AccumulateCodeDots(user.data(), items, out.data(), 1.0f);
  RawDotsToSquaredDistances(user, items, out.data());
  const float alpha =
      std::max(1.0f - SquaredNormF(user), static_cast<float>(hyper::kBallEps));
  const float* nsq = items.NormsSq();
  const int n = items.items();
  for (int v = 0; v < n; ++v) {
    const float beta =
        std::max(1.0f - nsq[v], static_cast<float>(hyper::kBallEps));
    out[v] = finish(1.0f + 2.0f * out[v] / (alpha * beta));
  }
}

}  // namespace

void NegPoincareDistancesInto(ConstSpanF user, const Int8Catalog& items,
                              SpanF out) {
  PoincareFromCatalog(user, items, out,
                      [](float gamma) { return -SafeAcoshF(gamma); });
}

void NegPoincareGammasInto(ConstSpanF user, const Int8Catalog& items,
                           SpanF out) {
  PoincareFromCatalog(user, items, out, [](float gamma) { return -gamma; });
}

}  // namespace logirec::math
