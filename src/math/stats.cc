#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace logirec::math {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / count_;
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / (count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / v.size();
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / (v.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  LOGIREC_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> AverageRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  LOGIREC_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

}  // namespace logirec::math
