#include "math/mlp.h"

#include <cmath>

#include "util/logging.h"

namespace logirec::math {

Mlp::Mlp(std::vector<int> dims, Activation activation, Rng* rng)
    : dims_(std::move(dims)), activation_(activation) {
  LOGIREC_CHECK(dims_.size() >= 2);
  layers_.reserve(dims_.size() - 1);
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    Layer layer;
    layer.in = dims_[l];
    layer.out = dims_[l + 1];
    layer.weights.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.bias.assign(layer.out, 0.0);
    layer.grad_weights.assign(layer.weights.size(), 0.0);
    layer.grad_bias.assign(layer.out, 0.0);
    const double scale = std::sqrt(2.0 / layer.in);
    for (double& w : layer.weights) w = rng->Gaussian(0.0, scale);
    layers_.push_back(std::move(layer));
  }
  inputs_.resize(layers_.size());
  pre_.resize(layers_.size());
}

double Mlp::Activate(Activation a, double x) {
  switch (a) {
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double Mlp::ActivateGrad(Activation a, double pre, double post) {
  switch (a) {
    case Activation::kRelu:
      return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - post * post;
    case Activation::kSigmoid:
      return post * (1.0 - post);
  }
  return 1.0;
}

Vec Mlp::Forward(ConstSpan input) {
  LOGIREC_CHECK(static_cast<int>(input.size()) == dims_.front());
  Vec x(input.begin(), input.end());
  for (size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    inputs_[l] = x;
    Vec z(layer.out, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double* w = &layer.weights[static_cast<size_t>(o) * layer.in];
      double s = layer.bias[o];
      for (int i = 0; i < layer.in; ++i) s += w[i] * x[i];
      z[o] = s;
    }
    pre_[l] = z;
    const bool last = (l + 1 == layers_.size());
    if (!last) {
      for (double& v : z) v = Activate(activation_, v);
    }
    x = std::move(z);
  }
  return x;
}

ConstSpan Mlp::InferInto(ConstSpan input, Vec* scratch_a,
                         Vec* scratch_b) const {
  LOGIREC_CHECK(static_cast<int>(input.size()) == dims_.front());
  Vec* x = scratch_a;
  Vec* z = scratch_b;
  x->assign(input.begin(), input.end());
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    z->resize(layer.out);
    for (int o = 0; o < layer.out; ++o) {
      const double* w = &layer.weights[static_cast<size_t>(o) * layer.in];
      double s = layer.bias[o];
      for (int i = 0; i < layer.in; ++i) s += w[i] * (*x)[i];
      (*z)[o] = s;
    }
    if (l + 1 != layers_.size()) {
      for (double& v : *z) v = Activate(activation_, v);
    }
    std::swap(x, z);
  }
  return ConstSpan(x->data(), layers_.empty() ? x->size()
                                              : layers_.back().out);
}

Vec Mlp::Infer(ConstSpan input) const {
  LOGIREC_CHECK(static_cast<int>(input.size()) == dims_.front());
  Vec x(input.begin(), input.end());
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Vec z(layer.out, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double* w = &layer.weights[static_cast<size_t>(o) * layer.in];
      double s = layer.bias[o];
      for (int i = 0; i < layer.in; ++i) s += w[i] * x[i];
      z[o] = s;
    }
    if (l + 1 != layers_.size()) {
      for (double& v : z) v = Activate(activation_, v);
    }
    x = std::move(z);
  }
  return x;
}

Vec Mlp::Backward(ConstSpan grad_output) {
  LOGIREC_CHECK(static_cast<int>(grad_output.size()) == dims_.back());
  Vec grad(grad_output.begin(), grad_output.end());
  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    Layer& layer = layers_[l];
    const bool last = (l == static_cast<int>(layers_.size()) - 1);
    if (!last) {
      // Undo the activation: grad wrt pre-activation.
      for (int o = 0; o < layer.out; ++o) {
        const double post = Activate(activation_, pre_[l][o]);
        grad[o] *= ActivateGrad(activation_, pre_[l][o], post);
      }
    }
    const Vec& in = inputs_[l];
    Vec grad_in(layer.in, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double* gw = &layer.grad_weights[static_cast<size_t>(o) * layer.in];
      const double* w = &layer.weights[static_cast<size_t>(o) * layer.in];
      const double g = grad[o];
      layer.grad_bias[o] += g;
      for (int i = 0; i < layer.in; ++i) {
        gw[i] += g * in[i];
        grad_in[i] += g * w[i];
      }
    }
    grad = std::move(grad_in);
  }
  return grad;
}

void Mlp::Step(double learning_rate, double scale, double l2) {
  for (Layer& layer : layers_) {
    for (size_t i = 0; i < layer.weights.size(); ++i) {
      layer.weights[i] -=
          learning_rate * (scale * layer.grad_weights[i] + l2 * layer.weights[i]);
      layer.grad_weights[i] = 0.0;
    }
    for (int o = 0; o < layer.out; ++o) {
      layer.bias[o] -= learning_rate * scale * layer.grad_bias[o];
      layer.grad_bias[o] = 0.0;
    }
  }
}

void Mlp::ZeroGrad() {
  for (Layer& layer : layers_) {
    std::fill(layer.grad_weights.begin(), layer.grad_weights.end(), 0.0);
    std::fill(layer.grad_bias.begin(), layer.grad_bias.end(), 0.0);
  }
}

int Mlp::ParameterCount() const {
  int n = 0;
  for (const Layer& layer : layers_) {
    n += static_cast<int>(layer.weights.size()) + layer.out;
  }
  return n;
}

std::vector<Vec*> Mlp::ParameterTensors() {
  std::vector<Vec*> tensors;
  tensors.reserve(2 * layers_.size());
  for (Layer& layer : layers_) {
    tensors.push_back(&layer.weights);
    tensors.push_back(&layer.bias);
  }
  return tensors;
}

}  // namespace logirec::math
