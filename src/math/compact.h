#ifndef LOGIREC_MATH_COMPACT_H_
#define LOGIREC_MATH_COMPACT_H_

#include <cstdint>
#include <vector>

#include "math/kernels.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace logirec::math {

/// Symmetric int8-quantized item catalog for the compact serving path.
///
/// Each item row is quantized independently: scale = max_k |x_k| / 127,
/// code_k = round(x_k / scale) in [-127, 127] (round half away from zero,
/// so quantization is deterministic and independent of the FP rounding
/// mode). The dequantized coordinate is scale * code — never materialized
/// as a float row: the kernels accumulate raw code dots and apply the
/// per-item scale once at the finish, so the resident state stays 1 byte
/// per coordinate plus 8 bytes per item (scale + cached norm).
///
/// Quantization is idempotent: the max-magnitude coordinate maps to
/// exactly +/-127, so requantizing the dequantized row reproduces the
/// same scale and the same codes. A snapshot round-trip through int8
/// therefore rebuilds a bit-identical catalog.
///
/// Codes are stored column-major (like ScoringView) so the scan kernels
/// put the item index in the inner loop and AVX2 widens 8 codes to float
/// lanes per step.
class Int8Catalog {
 public:
  Int8Catalog() = default;

  /// Quantizes `items` row by row.
  void Assign(const Matrix& items);

  /// Quantizes from an existing f64 scoring view (the compact serving
  /// path starts from a model's RankingSurrogate spec).
  void Assign(const ScoringView& src);

  int items() const { return n_; }
  int dim() const { return d_; }
  bool empty() const { return n_ == 0; }

  /// Column k: the k-th code of every item, contiguous.
  const int8_t* Col(int k) const {
    return codes_.data() + static_cast<size_t>(k) * n_;
  }
  /// Per-item dequantization scales.
  const float* Scales() const { return scales_.data(); }
  /// Squared norms of the dequantized rows: scale^2 * sum(code^2), the
  /// integer sum being exact.
  const float* NormsSq() const { return norms_sq_.data(); }

  /// Bytes resident in the code + scale + norm buffers.
  size_t ResidentBytes() const {
    return codes_.size() * sizeof(int8_t) +
           (scales_.size() + norms_sq_.size()) * sizeof(float);
  }

 private:
  template <typename RowAt>
  void AssignRows(int n, int d, const RowAt& row_at);

  int n_ = 0;
  int d_ = 0;
  std::vector<int8_t> codes_;
  std::vector<float> scales_;
  std::vector<float> norms_sq_;
};

/// Quantizes one f64 row with the catalog's symmetric per-row scheme
/// (scale = max|x|/127, codes = lround(x/scale) clamped to [-127, 127])
/// and returns the dequantization scale (0 for an all-zero row, codes all
/// 0). Snapshot encoding uses this exact routine so on-disk codes match
/// the resident Int8Catalog bit-for-bit, and quantization idempotence
/// makes a dequantize -> requantize round trip stable.
float QuantizeInt8Row(ConstSpan row, int8_t* codes);

/// Int8 counterparts of the seven scoring kernels. The query stays float
/// (queries are per-request, not resident); accumulation is float over
/// widened codes in the same ascending-k order as the f32 kernels, so
/// outputs are deterministic run-to-run. Distances use the factorization
/// ||u - x||^2 = ||u||^2 - 2 * scale * <u, code> + norms_sq[x], clamped
/// at zero before any sqrt/acosh.
void DotsInto(ConstSpanF user, const Int8Catalog& items, SpanF out);
void NegSquaredEuclideanDistancesInto(ConstSpanF user, const Int8Catalog& items,
                                      SpanF out);
void NegEuclideanDistancesInto(ConstSpanF user, const Int8Catalog& items,
                               SpanF out);
void LorentzDotsInto(ConstSpanF user, const Int8Catalog& items, SpanF out);
void NegLorentzDistancesInto(ConstSpanF user, const Int8Catalog& items,
                             SpanF out);
void NegPoincareDistancesInto(ConstSpanF user, const Int8Catalog& items,
                              SpanF out);
void NegPoincareGammasInto(ConstSpanF user, const Int8Catalog& items, SpanF out);

}  // namespace logirec::math

#endif  // LOGIREC_MATH_COMPACT_H_
