#ifndef LOGIREC_MATH_STATS_H_
#define LOGIREC_MATH_STATS_H_

#include <vector>

namespace logirec::math {

/// Streaming mean/variance accumulator (Welford). Used for the ± columns in
/// the regenerated tables.
class RunningStat {
 public:
  void Add(double x);

  int count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  int count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Arithmetic mean of `v` (0 for empty input).
double Mean(const std::vector<double>& v);

/// Sample standard deviation of `v` (0 for fewer than two samples).
double StdDev(const std::vector<double>& v);

/// Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (ties get average ranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace logirec::math

#endif  // LOGIREC_MATH_STATS_H_
