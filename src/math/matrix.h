#ifndef LOGIREC_MATH_MATRIX_H_
#define LOGIREC_MATH_MATRIX_H_

#include "math/vec.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::math {

/// Row-major dense matrix of doubles; rows are exposed as spans so the
/// geometry kernels can operate on embedding rows without copies.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Span Row(int r) {
    LOGIREC_CHECK(r >= 0 && r < rows_);
    return Span(data_.data() + static_cast<size_t>(r) * cols_, cols_);
  }
  ConstSpan Row(int r) const {
    LOGIREC_CHECK(r >= 0 && r < rows_);
    return ConstSpan(data_.data() + static_cast<size_t>(r) * cols_, cols_);
  }

  double& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Sets every entry to `value`.
  void Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes to rows x cols and sets every entry to `fill`. Unlike
  /// constructing a fresh Matrix this reuses the existing buffer capacity
  /// (vector::assign), so per-batch scratch matrices stop allocating after
  /// the first call — a requirement for the allocation-free training and
  /// propagation hot paths.
  void Reset(int rows, int cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows) * cols, fill);
  }

  /// Fills with N(0, stddev) noise.
  void FillGaussian(Rng* rng, double stddev) {
    for (double& x : data_) x = rng->Gaussian(0.0, stddev);
  }

  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  Vec data_;
};

}  // namespace logirec::math

#endif  // LOGIREC_MATH_MATRIX_H_
