#include "math/vec.h"

#include <cmath>

#include "util/logging.h"

namespace logirec::math {

double Dot(ConstSpan a, ConstSpan b) {
  LOGIREC_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(ConstSpan a) { return std::sqrt(SquaredNorm(a)); }

double SquaredNorm(ConstSpan a) {
  double s = 0.0;
  for (double x : a) s += x * x;
  return s;
}

double SquaredDistance(ConstSpan a, ConstSpan b) {
  LOGIREC_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Distance(ConstSpan a, ConstSpan b) {
  return std::sqrt(SquaredDistance(a, b));
}

Vec Add(ConstSpan a, ConstSpan b) {
  LOGIREC_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(ConstSpan a, ConstSpan b) {
  LOGIREC_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Scale(ConstSpan a, double s) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void Axpy(double s, ConstSpan src, Span dst) {
  LOGIREC_CHECK(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] += s * src[i];
}

void ScaleInPlace(Span dst, double s) {
  for (double& x : dst) x *= s;
}

void Zero(Span dst) {
  for (double& x : dst) x = 0.0;
}

void Copy(ConstSpan src, Span dst) {
  LOGIREC_CHECK(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

double ClipNorm(Span v, double max_norm) {
  const double n = Norm(v);
  if (n > max_norm && n > 0.0) ScaleInPlace(v, max_norm / n);
  return n;
}

double SafeAcosh(double x) {
  constexpr double kEps = 1e-12;
  if (x < 1.0 + kEps) x = 1.0 + kEps;
  return std::acosh(x);
}

double SafeAcoshGrad(double x) {
  constexpr double kEps = 1e-12;
  if (x < 1.0 + kEps) x = 1.0 + kEps;
  return 1.0 / std::sqrt(x * x - 1.0);
}

float SquaredNormF(ConstSpanF a) {
  float s = 0.0f;
  for (const float x : a) s += x * x;
  return s;
}

float SafeAcoshF(float x) {
  if (x < 1.0f) x = 1.0f;
  return std::acosh(x);
}

}  // namespace logirec::math
