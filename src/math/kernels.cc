#include "math/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

// For kBallEps only (a constexpr; no link dependency on logirec_hyper).
// The Poincaré kernels must clamp with the exact same epsilon as
// hyper::PoincareDistance to stay bit-identical to the scalar path.
#include "hyper/poincare.h"
#include "math/simd.h"
#include "util/logging.h"

namespace logirec::math {

namespace {

/// Validates the shared kernel contract once per call.
inline void CheckShapes(ConstSpan user, const Matrix& items, Span out) {
  LOGIREC_CHECK(static_cast<int>(user.size()) == items.cols());
  LOGIREC_CHECK(static_cast<int>(out.size()) == items.rows());
  LOGIREC_CHECK(!user.empty());
}

/// Items scored per block. Four independent accumulator chains hide the
/// FP-add latency that serializes a single running sum; each chain still
/// adds terms in the exact per-item order of the scalar helpers, so every
/// out[v] stays bit-identical to the one-row-at-a-time computation.
constexpr int kBlock = 4;

/// Shared blocked driver for every kernel whose per-item reduction is
///   s = init(u, row); for (k = k_start..d) s += step(u[k], row[k]);
///   out[v] = finish(s);
template <typename InitFn, typename StepFn, typename FinishFn>
inline void BlockedReduce(ConstSpan user, const Matrix& items, Span out,
                          int k_start, const InitFn& init, const StepFn& step,
                          const FinishFn& finish) {
  CheckShapes(user, items, out);
  const int d = items.cols();
  const int n = items.rows();
  const double* u = user.data();
  const double* base = items.data().data();
  int v = 0;
  for (; v + kBlock <= n; v += kBlock) {
    const double* r0 = base + static_cast<size_t>(v) * d;
    const double* r1 = r0 + d;
    const double* r2 = r1 + d;
    const double* r3 = r2 + d;
    double s0 = init(u, r0);
    double s1 = init(u, r1);
    double s2 = init(u, r2);
    double s3 = init(u, r3);
    for (int k = k_start; k < d; ++k) {
      const double uk = u[k];
      s0 += step(uk, r0[k]);
      s1 += step(uk, r1[k]);
      s2 += step(uk, r2[k]);
      s3 += step(uk, r3[k]);
    }
    out[v] = finish(s0);
    out[v + 1] = finish(s1);
    out[v + 2] = finish(s2);
    out[v + 3] = finish(s3);
  }
  for (; v < n; ++v) {
    const double* row = base + static_cast<size_t>(v) * d;
    double s = init(u, row);
    for (int k = k_start; k < d; ++k) s += step(u[k], row[k]);
    out[v] = finish(s);
  }
}

inline double ZeroInit(const double*, const double*) { return 0.0; }
inline double LorentzInit(const double* u, const double* row) {
  return -u[0] * row[0];
}
inline double MulStep(double uk, double rk) { return uk * rk; }
inline double DiffSqStep(double uk, double rk) {
  const double diff = uk - rk;
  return diff * diff;
}

}  // namespace

void DotsInto(ConstSpan user, const Matrix& items, Span out) {
  BlockedReduce(user, items, out, 0, ZeroInit, MulStep,
                [](double s) { return s; });
}

void NegSquaredEuclideanDistancesInto(ConstSpan user, const Matrix& items,
                                      Span out) {
  BlockedReduce(user, items, out, 0, ZeroInit, DiffSqStep,
                [](double s) { return -s; });
}

void NegEuclideanDistancesInto(ConstSpan user, const Matrix& items, Span out) {
  BlockedReduce(user, items, out, 0, ZeroInit, DiffSqStep,
                [](double s) { return -std::sqrt(s); });
}

void LorentzDotsInto(ConstSpan user, const Matrix& items, Span out) {
  BlockedReduce(user, items, out, 1, LorentzInit, MulStep,
                [](double s) { return s; });
}

void NegLorentzDistancesInto(ConstSpan user, const Matrix& items, Span out) {
  BlockedReduce(user, items, out, 1, LorentzInit, MulStep,
                [](double s) { return -SafeAcosh(-s); });
}

namespace {

/// Blocked driver for the Poincaré kernels, which reduce two sums per
/// item (the item's squared norm and the squared user-item distance) and
/// combine them into gamma = 1 + 2*dist_sq / (alpha*beta). Same blocking
/// rationale and same bit-identity guarantee as BlockedReduce.
template <typename FinishFn>
inline void BlockedPoincare(ConstSpan user, const Matrix& items, Span out,
                            const FinishFn& finish) {
  CheckShapes(user, items, out);
  const int d = items.cols();
  const int n = items.rows();
  const double* u = user.data();
  const double alpha = std::max(1.0 - SquaredNorm(user), hyper::kBallEps);
  const double* base = items.data().data();

  const auto gamma_of = [alpha](double norm_sq, double dist_sq) {
    const double beta = std::max(1.0 - norm_sq, hyper::kBallEps);
    return 1.0 + 2.0 * dist_sq / (alpha * beta);
  };

  int v = 0;
  for (; v + kBlock <= n; v += kBlock) {
    const double* r0 = base + static_cast<size_t>(v) * d;
    const double* r1 = r0 + d;
    const double* r2 = r1 + d;
    const double* r3 = r2 + d;
    double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
    double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
    for (int k = 0; k < d; ++k) {
      const double uk = u[k];
      n0 += r0[k] * r0[k];
      q0 += DiffSqStep(uk, r0[k]);
      n1 += r1[k] * r1[k];
      q1 += DiffSqStep(uk, r1[k]);
      n2 += r2[k] * r2[k];
      q2 += DiffSqStep(uk, r2[k]);
      n3 += r3[k] * r3[k];
      q3 += DiffSqStep(uk, r3[k]);
    }
    out[v] = finish(gamma_of(n0, q0));
    out[v + 1] = finish(gamma_of(n1, q1));
    out[v + 2] = finish(gamma_of(n2, q2));
    out[v + 3] = finish(gamma_of(n3, q3));
  }
  for (; v < n; ++v) {
    const double* row = base + static_cast<size_t>(v) * d;
    double norm_sq = 0.0;
    double dist_sq = 0.0;
    for (int k = 0; k < d; ++k) {
      norm_sq += row[k] * row[k];
      dist_sq += DiffSqStep(u[k], row[k]);
    }
    out[v] = finish(gamma_of(norm_sq, dist_sq));
  }
}

}  // namespace

void NegPoincareDistancesInto(ConstSpan user, const Matrix& items, Span out) {
  BlockedPoincare(user, items, out,
                  [](double gamma) { return -SafeAcosh(gamma); });
}

void NegPoincareGammasInto(ConstSpan user, const Matrix& items, Span out) {
  BlockedPoincare(user, items, out, [](double gamma) { return -gamma; });
}

// ---- Transposed kernels ----------------------------------------------------

template <typename T>
void BasicScoringView<T>::Assign(const Matrix& items) {
  n_ = items.rows();
  d_ = items.cols();
  cols_.resize(static_cast<size_t>(n_) * d_);
  norms_sq_.assign(n_, T{0});
  const double* row = items.data().data();
  for (int v = 0; v < n_; ++v, row += d_) {
    // Same ascending-k order as the scalar norm loops. For T=double the
    // cached norms are bit-identical to what the row-major kernels
    // recompute; for T=float they are accumulated in float from the
    // narrowed coordinates, so the f32 kernels see a self-consistent
    // catalog.
    T norm_sq{0};
    for (int k = 0; k < d_; ++k) {
      const T x = static_cast<T>(row[k]);
      cols_[static_cast<size_t>(k) * n_ + v] = x;
      norm_sq += x * x;
    }
    norms_sq_[v] = norm_sq;
  }
}

template <typename T>
void BasicScoringView<T>::Assign(const BasicScoringView<double>& src) {
  n_ = src.items();
  d_ = src.dim();
  cols_.resize(static_cast<size_t>(n_) * d_);
  norms_sq_.assign(n_, T{0});
  for (int k = 0; k < d_; ++k) {
    const double* c = src.Col(k);
    T* dst = cols_.data() + static_cast<size_t>(k) * n_;
    for (int v = 0; v < n_; ++v) {
      const T x = static_cast<T>(c[v]);
      dst[v] = x;
      norms_sq_[v] += x * x;  // ascending-k per item, same as Assign(Matrix)
    }
  }
}

template class BasicScoringView<double>;
template class BasicScoringView<float>;

namespace {

template <typename T>
inline void CheckShapes(std::span<const T> user, const BasicScoringView<T>& items,
                        std::span<T> out) {
  LOGIREC_CHECK(static_cast<int>(user.size()) == items.dim());
  LOGIREC_CHECK(static_cast<int>(out.size()) == items.items());
  LOGIREC_CHECK(!user.empty());
}

/// out[v] = sign0 * u[0]*col0[v] + sum_{k>=1} u[k]*colk[v]. Each item's
/// sum adds terms in the same ascending-k order as the scalar helpers
/// ((-a)*b is exactly -(a*b) in IEEE), so every out[v] is bit-identical
/// to the row-major reduction — while the inner loops run over
/// independent items the compiler can vectorize.
///
/// Columns are consumed in groups (9 on the initializing pass, then 8 per
/// pass) so out[v] is loaded and stored once per group instead of once
/// per dimension; the grouped terms are still added one at a time into a
/// scalar temp, preserving the exact ascending-k rounding order. With
/// d=33 (the common dim+1 Lorentz case) the whole reduction is one init
/// pass plus three grouped passes.
template <typename T>
__attribute__((always_inline)) inline void AccumulateDotsImpl(
    const T* u, const BasicScoringView<T>& items, T* __restrict__ out,
    T sign0) {
  const int n = items.items();
  const int d = items.dim();
  const T u0 = sign0 * u[0];
  int k = 1;
  if (d >= 9) {
    const T* __restrict__ c0 = items.Col(0);
    const T* __restrict__ c1 = items.Col(1);
    const T* __restrict__ c2 = items.Col(2);
    const T* __restrict__ c3 = items.Col(3);
    const T* __restrict__ c4 = items.Col(4);
    const T* __restrict__ c5 = items.Col(5);
    const T* __restrict__ c6 = items.Col(6);
    const T* __restrict__ c7 = items.Col(7);
    const T* __restrict__ c8 = items.Col(8);
    const T u1 = u[1], u2 = u[2], u3 = u[3], u4 = u[4], u5 = u[5], u6 = u[6],
            u7 = u[7], u8 = u[8];
    for (int v = 0; v < n; ++v) {
      T t = u0 * c0[v];
      t += u1 * c1[v];
      t += u2 * c2[v];
      t += u3 * c3[v];
      t += u4 * c4[v];
      t += u5 * c5[v];
      t += u6 * c6[v];
      t += u7 * c7[v];
      t += u8 * c8[v];
      out[v] = t;
    }
    k = 9;
  } else {
    const T* __restrict__ c0 = items.Col(0);
    for (int v = 0; v < n; ++v) out[v] = u0 * c0[v];
  }
  for (; k + 8 <= d; k += 8) {
    const T* __restrict__ c0 = items.Col(k);
    const T* __restrict__ c1 = items.Col(k + 1);
    const T* __restrict__ c2 = items.Col(k + 2);
    const T* __restrict__ c3 = items.Col(k + 3);
    const T* __restrict__ c4 = items.Col(k + 4);
    const T* __restrict__ c5 = items.Col(k + 5);
    const T* __restrict__ c6 = items.Col(k + 6);
    const T* __restrict__ c7 = items.Col(k + 7);
    const T u1 = u[k], u2 = u[k + 1], u3 = u[k + 2], u4 = u[k + 3],
            u5 = u[k + 4], u6 = u[k + 5], u7 = u[k + 6], u8 = u[k + 7];
    for (int v = 0; v < n; ++v) {
      T t = out[v];
      t += u1 * c0[v];
      t += u2 * c1[v];
      t += u3 * c2[v];
      t += u4 * c3[v];
      t += u5 * c4[v];
      t += u6 * c5[v];
      t += u7 * c6[v];
      t += u8 * c7[v];
      out[v] = t;
    }
  }
  for (; k < d; ++k) {
    const T uk = u[k];
    const T* __restrict__ c = items.Col(k);
    for (int v = 0; v < n; ++v) out[v] += uk * c[v];
  }
}

LOGIREC_SIMD_CLONES
void AccumulateDots(const double* u, const ScoringView& items,
                    double* __restrict__ out, double sign0) {
  AccumulateDotsImpl<double>(u, items, out, sign0);
}

/// f32 clone: 8 lanes per AVX2 register instead of 4. The impl is forced
/// inline so each target clone compiles the loops with its own ISA.
LOGIREC_SIMD_CLONES
void AccumulateDots(const float* u, const ScoringViewF& items,
                    float* __restrict__ out, float sign0) {
  AccumulateDotsImpl<float>(u, items, out, sign0);
}

/// out[v] = sum_k (u[k] - colk[v])^2, same ordering and column-grouping
/// strategy (and hence the same bit-identity guarantee) as
/// AccumulateDots above.
template <typename T>
__attribute__((always_inline)) inline void AccumulateSquaredDiffsImpl(
    const T* u, const BasicScoringView<T>& items, T* __restrict__ out) {
  const int n = items.items();
  const int d = items.dim();
  const T u0 = u[0];
  int k = 1;
  if (d >= 9) {
    const T* __restrict__ c0 = items.Col(0);
    const T* __restrict__ c1 = items.Col(1);
    const T* __restrict__ c2 = items.Col(2);
    const T* __restrict__ c3 = items.Col(3);
    const T* __restrict__ c4 = items.Col(4);
    const T* __restrict__ c5 = items.Col(5);
    const T* __restrict__ c6 = items.Col(6);
    const T* __restrict__ c7 = items.Col(7);
    const T* __restrict__ c8 = items.Col(8);
    const T u1 = u[1], u2 = u[2], u3 = u[3], u4 = u[4], u5 = u[5], u6 = u[6],
            u7 = u[7], u8 = u[8];
    for (int v = 0; v < n; ++v) {
      T diff = u0 - c0[v];
      T t = diff * diff;
      diff = u1 - c1[v];
      t += diff * diff;
      diff = u2 - c2[v];
      t += diff * diff;
      diff = u3 - c3[v];
      t += diff * diff;
      diff = u4 - c4[v];
      t += diff * diff;
      diff = u5 - c5[v];
      t += diff * diff;
      diff = u6 - c6[v];
      t += diff * diff;
      diff = u7 - c7[v];
      t += diff * diff;
      diff = u8 - c8[v];
      t += diff * diff;
      out[v] = t;
    }
    k = 9;
  } else {
    const T* __restrict__ c0 = items.Col(0);
    for (int v = 0; v < n; ++v) {
      const T diff = u0 - c0[v];
      out[v] = diff * diff;
    }
  }
  for (; k + 8 <= d; k += 8) {
    const T* __restrict__ c0 = items.Col(k);
    const T* __restrict__ c1 = items.Col(k + 1);
    const T* __restrict__ c2 = items.Col(k + 2);
    const T* __restrict__ c3 = items.Col(k + 3);
    const T* __restrict__ c4 = items.Col(k + 4);
    const T* __restrict__ c5 = items.Col(k + 5);
    const T* __restrict__ c6 = items.Col(k + 6);
    const T* __restrict__ c7 = items.Col(k + 7);
    const T u1 = u[k], u2 = u[k + 1], u3 = u[k + 2], u4 = u[k + 3],
            u5 = u[k + 4], u6 = u[k + 5], u7 = u[k + 6], u8 = u[k + 7];
    for (int v = 0; v < n; ++v) {
      T t = out[v];
      T diff = u1 - c0[v];
      t += diff * diff;
      diff = u2 - c1[v];
      t += diff * diff;
      diff = u3 - c2[v];
      t += diff * diff;
      diff = u4 - c3[v];
      t += diff * diff;
      diff = u5 - c4[v];
      t += diff * diff;
      diff = u6 - c5[v];
      t += diff * diff;
      diff = u7 - c6[v];
      t += diff * diff;
      diff = u8 - c7[v];
      t += diff * diff;
      out[v] = t;
    }
  }
  for (; k < d; ++k) {
    const T uk = u[k];
    const T* __restrict__ c = items.Col(k);
    for (int v = 0; v < n; ++v) {
      const T diff = uk - c[v];
      out[v] += diff * diff;
    }
  }
}

LOGIREC_SIMD_CLONES
void AccumulateSquaredDiffs(const double* u, const ScoringView& items,
                            double* __restrict__ out) {
  AccumulateSquaredDiffsImpl<double>(u, items, out);
}

LOGIREC_SIMD_CLONES
void AccumulateSquaredDiffs(const float* u, const ScoringViewF& items,
                            float* __restrict__ out) {
  AccumulateSquaredDiffsImpl<float>(u, items, out);
}

template <typename T, typename FinishFn>
inline void PoincareFromView(std::span<const T> user,
                             const BasicScoringView<T>& items, std::span<T> out,
                             const FinishFn& finish) {
  CheckShapes(user, items, out);
  AccumulateSquaredDiffs(user.data(), items, out.data());
  T unorm{0};
  for (const T x : user) unorm += x * x;
  const T alpha = std::max(T{1} - unorm, static_cast<T>(hyper::kBallEps));
  const T* norms_sq = items.NormsSq();
  const int n = items.items();
  for (int v = 0; v < n; ++v) {
    const T beta = std::max(T{1} - norms_sq[v], static_cast<T>(hyper::kBallEps));
    out[v] = finish(T{1} + T{2} * out[v] / (alpha * beta));
  }
}

}  // namespace

void DotsInto(ConstSpan user, const ScoringView& items, Span out) {
  CheckShapes(user, items, out);
  AccumulateDots(user.data(), items, out.data(), 1.0);
}

void NegSquaredEuclideanDistancesInto(ConstSpan user, const ScoringView& items,
                                      Span out) {
  CheckShapes(user, items, out);
  AccumulateSquaredDiffs(user.data(), items, out.data());
  for (double& o : out) o = -o;
}

void NegEuclideanDistancesInto(ConstSpan user, const ScoringView& items,
                               Span out) {
  CheckShapes(user, items, out);
  AccumulateSquaredDiffs(user.data(), items, out.data());
  for (double& o : out) o = -std::sqrt(o);
}

void LorentzDotsInto(ConstSpan user, const ScoringView& items, Span out) {
  CheckShapes(user, items, out);
  AccumulateDots(user.data(), items, out.data(), -1.0);
}

void NegLorentzDistancesInto(ConstSpan user, const ScoringView& items,
                             Span out) {
  CheckShapes(user, items, out);
  AccumulateDots(user.data(), items, out.data(), -1.0);
  for (double& o : out) o = -SafeAcosh(-o);
}

void NegPoincareDistancesInto(ConstSpan user, const ScoringView& items,
                              Span out) {
  PoincareFromView(user, items, out,
                   [](double gamma) { return -SafeAcosh(gamma); });
}

void NegPoincareGammasInto(ConstSpan user, const ScoringView& items, Span out) {
  PoincareFromView(user, items, out, [](double gamma) { return -gamma; });
}

// ---- f32 kernels (compact serving path) ------------------------------------

void DotsInto(ConstSpanF user, const ScoringViewF& items, SpanF out) {
  CheckShapes(user, items, out);
  AccumulateDots(user.data(), items, out.data(), 1.0f);
}

void NegSquaredEuclideanDistancesInto(ConstSpanF user, const ScoringViewF& items,
                                      SpanF out) {
  CheckShapes(user, items, out);
  AccumulateSquaredDiffs(user.data(), items, out.data());
  for (float& o : out) o = -o;
}

void NegEuclideanDistancesInto(ConstSpanF user, const ScoringViewF& items,
                               SpanF out) {
  CheckShapes(user, items, out);
  AccumulateSquaredDiffs(user.data(), items, out.data());
  for (float& o : out) o = -std::sqrt(o);
}

void LorentzDotsInto(ConstSpanF user, const ScoringViewF& items, SpanF out) {
  CheckShapes(user, items, out);
  AccumulateDots(user.data(), items, out.data(), -1.0f);
}

void NegLorentzDistancesInto(ConstSpanF user, const ScoringViewF& items,
                             SpanF out) {
  CheckShapes(user, items, out);
  AccumulateDots(user.data(), items, out.data(), -1.0f);
  for (float& o : out) o = -SafeAcoshF(-o);
}

void NegPoincareDistancesInto(ConstSpanF user, const ScoringViewF& items,
                              SpanF out) {
  PoincareFromView(user, items, out,
                   [](float gamma) { return -SafeAcoshF(gamma); });
}

void NegPoincareGammasInto(ConstSpanF user, const ScoringViewF& items,
                           SpanF out) {
  PoincareFromView(user, items, out, [](float gamma) { return -gamma; });
}

}  // namespace logirec::math
