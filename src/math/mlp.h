#ifndef LOGIREC_MATH_MLP_H_
#define LOGIREC_MATH_MLP_H_

#include <vector>

#include "math/vec.h"
#include "util/rng.h"

namespace logirec::math {

/// Activation applied between layers of `Mlp` (the output layer is linear).
enum class Activation { kRelu, kTanh, kSigmoid };

/// Small fully connected network with manual backpropagation, sized for the
/// NeuMF/AGCN heads (a few thousand weights). Hidden layers use the
/// configured activation; the output layer is linear so callers can attach
/// their own loss (e.g. logistic or hinge).
class Mlp {
 public:
  /// `dims` lists layer widths, e.g. {128, 64, 32, 1}. Weights use He
  /// initialisation from `rng`.
  Mlp(std::vector<int> dims, Activation activation, Rng* rng);

  /// Computes the network output for `input` (length dims.front()),
  /// caching activations for a subsequent Backward().
  Vec Forward(ConstSpan input);

  /// Pure inference: same computation as Forward() but const and
  /// cache-free, safe to call concurrently from many threads.
  Vec Infer(ConstSpan input) const;

  /// Allocation-free Infer(): bit-identical output, but activations
  /// ping-pong between the two caller-owned scratch vectors (grown on
  /// first use, capacity reused afterwards). Returns a view of the output
  /// layer, valid until the next use of either scratch vector. Safe to
  /// call concurrently as long as each thread owns its scratch pair.
  ConstSpan InferInto(ConstSpan input, Vec* scratch_a, Vec* scratch_b) const;

  /// Backpropagates `grad_output` (length dims.back()) through the most
  /// recent Forward() call. Accumulates parameter gradients internally and
  /// returns dLoss/dInput.
  Vec Backward(ConstSpan grad_output);

  /// Applies one SGD step with the accumulated gradients, then clears them.
  /// `scale` multiplies the accumulated gradient (use 1/batch for averaging).
  void Step(double learning_rate, double scale = 1.0, double l2 = 0.0);

  /// Clears accumulated gradients without stepping.
  void ZeroGrad();

  int input_dim() const { return dims_.front(); }
  int output_dim() const { return dims_.back(); }

  /// Total number of scalar parameters.
  int ParameterCount() const;

  /// Mutable views of every parameter tensor (per-layer weights and
  /// biases), for external snapshot/restore (core::Trainer checkpoints).
  std::vector<Vec*> ParameterTensors();

 private:
  struct Layer {
    int in, out;
    Vec weights;  // row-major out x in
    Vec bias;
    Vec grad_weights;
    Vec grad_bias;
  };

  static double Activate(Activation a, double x);
  static double ActivateGrad(Activation a, double pre, double post);

  std::vector<int> dims_;
  Activation activation_;
  std::vector<Layer> layers_;
  // Caches from the last Forward(); inputs_[l] feeds layer l,
  // pre_[l] holds the pre-activation of layer l.
  std::vector<Vec> inputs_;
  std::vector<Vec> pre_;
};

}  // namespace logirec::math

#endif  // LOGIREC_MATH_MLP_H_
