#ifndef LOGIREC_MATH_SIMD_H_
#define LOGIREC_MATH_SIMD_H_

// Runtime-dispatched AVX2 clones for batched numeric kernels (the
// math/kernels.cc pattern, shared here so other kernel families —
// core::LogicEngine's relation kernels — use the identical dispatch
// policy). Wider lanes only change how many independent accumulator
// chains are processed per instruction — each chain's mul-then-add
// sequence and rounding are untouched, so clones stay bit-identical to
// the default build. AVX2 has no fused-multiply-add instructions (FMA is
// a separate ISA extension we deliberately do NOT enable), so the
// compiler cannot contract mul+add into a differently-rounded fma.
//
// (target_clones emits an IFUNC resolver that runs during relocation,
// before the sanitizer runtimes initialize — crashing at startup — so
// clones are disabled under TSan/ASan builds.)
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define LOGIREC_SIMD_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define LOGIREC_SIMD_CLONES
#endif

#endif  // LOGIREC_MATH_SIMD_H_
