#ifndef LOGIREC_RETRIEVAL_HNSW_H_
#define LOGIREC_RETRIEVAL_HNSW_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "eval/compact.h"
#include "eval/evaluator.h"
#include "math/matrix.h"
#include "retrieval/surrogate.h"

namespace logirec::retrieval {

struct HnswOptions {
  /// Max links per node on the upper levels (level 0 keeps 2*M).
  int M = 16;
  /// Beam width while inserting.
  int ef_construction = 128;
  /// Beam width while querying (widened automatically when the caller's
  /// min_candidates floor exceeds it).
  int ef_search = 96;
  uint64_t seed = 1;
  /// Build parallelism (0 = hardware); the graph is identical at any
  /// value (see the batch-build note below).
  int num_threads = 0;
  /// Nodes inserted per deterministic build batch.
  int batch = 64;
  /// Precision of the resident search state. The graph is always BUILT in
  /// f64 (levels + adjacency, so the Fingerprint is identical across
  /// precisions); with kF32/kInt8 the norm-equalized coordinates are then
  /// narrowed to f32 for traversal (halving the resident graph bytes) and
  /// candidates are reranked through the compact catalog instead of the
  /// f64 surrogate.
  eval::ScorePrecision precision = eval::ScorePrecision::kF64;
};

/// Small-world graph index (HNSW-style) over the augmented surrogate
/// space, searched by inner product.
///
/// The graph lives in a norm-equalized copy of the augmented space: every
/// item gets one extra coordinate sqrt(phi^2 - ||v~||^2) (phi = max
/// augmented norm) and queries a matching 0, which leaves all query dots
/// unchanged but makes item-item dots spherical proximity — the standard
/// MIPS->cosine reduction, avoiding the hub pathology of raw
/// inner-product graphs. A serial post-build BFS grafts any node the
/// entry cannot reach onto its most similar reached node, so a beam of
/// ef >= n provably visits the whole catalog (the exact-scan limit).
///
/// Determinism strategy: node levels come from the counter-RNG
/// (Rng::MixSeed(seed, id)), so they are a pure function of the seed.
/// Insertion runs in fixed batches: phase 1 lets every node of the batch
/// search the FROZEN graph in parallel (a pure read, including heuristic
/// neighbor selection), phase 2 links the batch serially in ascending id
/// order (merging earlier same-batch nodes as extra candidates and
/// shrinking overflowing reciprocal lists by cached similarity). Both
/// phases are independent of the thread count, so seed => identical
/// graph.
///
/// Queries greedy-descend the upper levels, beam-search level 0 with
/// `ef`, then exactly rerank the candidates through the bit-identical
/// per-item surrogate score (retrieval/surrogate.h) with the TopKInto
/// tie-break. With a compact precision the rerank instead goes through
/// eval::CompactCatalog::ScoreSubset, which reproduces the compact full
/// scan's scores bit-for-bit (see eval/compact.h), so the same
/// candidate-coverage argument applies within the chosen precision.
class HnswIndex : public eval::CandidateRetriever {
 public:
  static std::unique_ptr<HnswIndex> Build(
      const eval::RankingSurrogateSpec& spec, const HnswOptions& options);

  void RetrieveTopK(const eval::Scorer& scorer, int user, int k,
                    int min_candidates, const eval::ItemFilter* filter,
                    eval::RetrieveScratch* scratch,
                    std::vector<int>* out) const override;

  int num_items() const { return static_cast<int>(nodes_.size()); }
  int max_level() const { return max_level_; }

  /// Structural hash (levels + adjacency), for the determinism tests.
  uint64_t Fingerprint() const;

  /// Resident bytes: graph coordinates (f64 or the f32 narrowing) +
  /// adjacency lists + the compact rerank catalog (if any).
  size_t ResidentBytes() const override;

 private:
  struct Node {
    int level = 0;
    /// Per level: neighbor ids and the cached similarity of each link
    /// (used for cheap worst-drop shrinking during reciprocal updates).
    std::vector<std::vector<int>> nbrs;
    std::vector<std::vector<double>> sims;
  };

  HnswIndex() = default;

  /// A traversal query in both precisions: `d` always holds the f64
  /// graph-space query; `f` points at its f32 narrowing when the resident
  /// coordinates are compact (aug_f_ populated), else is null.
  struct GraphQuery {
    math::ConstSpan d;
    const float* f = nullptr;
  };

  double Sim(const GraphQuery& q, int v) const;
  int GreedyDescend(const GraphQuery& q, int from_level, int to_level,
                    int entry) const;
  /// Beam search on one level; results end up sorted (sim desc, id asc).
  void SearchLayer(const GraphQuery& q, int level, int ef, int entry,
                   std::vector<std::pair<double, int>>* results,
                   std::vector<std::pair<double, int>>* candidates,
                   std::vector<uint32_t>* marks, uint32_t* epoch) const;
  /// HNSW neighbor heuristic over (sim desc, id asc)-sorted candidates:
  /// keep c only if it is closer to the new node than to every already
  /// kept neighbor (diversity), up to max_conn.
  void SelectNeighbors(const std::vector<std::pair<double, int>>& candidates,
                       int max_conn,
                       std::vector<std::pair<double, int>>* out) const;

  eval::RankingSurrogateSpec spec_;
  HnswOptions options_;
  /// Row-major norm-equalized augmented item vectors. f64 precision keeps
  /// aug_; compact precisions narrow it into aug_f_ after the (always
  /// f64) build and release aug_, halving the resident graph bytes.
  math::Matrix aug_;
  math::VecF aug_f_;  ///< row-major f32 coords (compact precisions only)
  int aug_dim_ = 0;   ///< graph-space dimensionality (augmented + 1)
  /// Compact rerank catalog over the ORIGINAL item coordinates, built at
  /// Build time for kF32/kInt8 (unused and empty for kF64).
  eval::CompactCatalog compact_;
  std::vector<Node> nodes_;
  int entry_ = -1;
  int max_level_ = -1;
};

}  // namespace logirec::retrieval

#endif  // LOGIREC_RETRIEVAL_HNSW_H_
