#ifndef LOGIREC_RETRIEVAL_EMBEDDING_SCORER_H_
#define LOGIREC_RETRIEVAL_EMBEDDING_SCORER_H_

#include <utility>
#include <vector>

#include "eval/evaluator.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "retrieval/surrogate.h"

namespace logirec::retrieval {

/// Minimal Scorer over raw user/item embedding tables, for the retrieval
/// bench and index tests: large synthetic catalogs without training a
/// model. Its canonical score IS the surrogate (kExact == kRanking),
/// which is valid under the ScoreMode contract and makes the full
/// kRanking scan the recall oracle.
class EmbeddingScorer : public eval::Scorer {
 public:
  /// `bias` is required (one entry per item row) for kDotBias, ignored
  /// otherwise.
  EmbeddingScorer(math::Matrix users, math::Matrix items, SurrogateKind kind,
                  math::Vec bias = {})
      : users_(std::move(users)),
        items_(std::move(items)),
        bias_(std::move(bias)),
        kind_(kind) {
    view_.Assign(items_);
  }

  int num_users() const { return users_.rows(); }
  int num_items() const { return items_.rows(); }

  void ScoreItems(int user, std::vector<double>* out) const override {
    out->resize(view_.items());
    ScoreItemsInto(user, math::Span(*out), eval::ScoreMode::kExact);
  }

  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode /*mode*/) const override {
    SurrogateScanInto(kind_, users_.Row(user), view_,
                      bias_.empty() ? nullptr : bias_.data(), out);
  }

  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    spec.kind = kind_;
    spec.items = &view_;
    spec.bias = bias_.empty() ? nullptr : bias_.data();
    return spec;
  }

  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return users_.Row(user);
  }

 private:
  math::Matrix users_;
  math::Matrix items_;
  math::Vec bias_;
  math::ScoringView view_;
  SurrogateKind kind_;
};

}  // namespace logirec::retrieval

#endif  // LOGIREC_RETRIEVAL_EMBEDDING_SCORER_H_
