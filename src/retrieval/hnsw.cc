#include "retrieval/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace logirec::retrieval {

namespace {

/// Hard cap on node levels; with mL = 1/ln(M) the probability of drawing
/// past it is ~M^-24 — the cap only bounds allocation.
constexpr int kLevelCap = 24;

uint64_t HashU64(uint64_t h, uint64_t x) {
  // FNV-1a over the 8 bytes of x.
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Max-heap comparator for the beam's candidate pool: top = best
/// (BetterScored order).
inline bool CandidateLess(const std::pair<double, int>& a,
                          const std::pair<double, int>& b) {
  return BetterScored(b, a);
}

/// Min-heap comparator for the beam's result pool: top = worst.
inline bool ResultLess(const std::pair<double, int>& a,
                       const std::pair<double, int>& b) {
  return BetterScored(a, b);
}

}  // namespace

double HnswIndex::Sim(const GraphQuery& q, int v) const {
  if (aug_f_.empty()) return math::Dot(q.d, aug_.Row(v));
  // Compact resident coordinates: serial ascending-k f32 accumulation,
  // deterministic run-to-run; widening the result to double is exact, so
  // every (sim, id) comparison downstream preserves the f32 order.
  const float* row = aug_f_.data() + static_cast<size_t>(v) * aug_dim_;
  float s = 0.0f;
  for (int k = 0; k < aug_dim_; ++k) s += q.f[k] * row[k];
  return static_cast<double>(s);
}

int HnswIndex::GreedyDescend(const GraphQuery& q, int from_level,
                             int to_level, int entry) const {
  int cur = entry;
  if (from_level < to_level) return cur;
  double cur_sim = Sim(q, cur);
  for (int level = from_level; level >= to_level; --level) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (int nb : nodes_[cur].nbrs[level]) {
        const double s = Sim(q, nb);
        // Strict (sim, -id) lexicographic progress: every move raises the
        // similarity or lowers the id at equal similarity, so the walk
        // terminates and is independent of neighbor-list order.
        if (s > cur_sim || (s == cur_sim && nb < cur)) {
          cur = nb;
          cur_sim = s;
          improved = true;
        }
      }
    }
  }
  return cur;
}

void HnswIndex::SearchLayer(const GraphQuery& q, int level, int ef, int entry,
                            std::vector<std::pair<double, int>>* results,
                            std::vector<std::pair<double, int>>* candidates,
                            std::vector<uint32_t>* marks,
                            uint32_t* epoch) const {
  const int n = num_items();
  results->clear();
  candidates->clear();
  if (static_cast<int>(marks->size()) < n) {
    marks->assign(n, 0);
    *epoch = 0;
  }
  if (*epoch == std::numeric_limits<uint32_t>::max()) {
    std::fill(marks->begin(), marks->end(), 0);
    *epoch = 0;
  }
  const uint32_t e = ++*epoch;

  (*marks)[entry] = e;
  const std::pair<double, int> seed(Sim(q, entry), entry);
  candidates->push_back(seed);
  results->push_back(seed);

  while (!candidates->empty()) {
    std::pop_heap(candidates->begin(), candidates->end(), CandidateLess);
    const std::pair<double, int> cur = candidates->back();
    candidates->pop_back();
    if (static_cast<int>(results->size()) >= ef &&
        BetterScored(results->front(), cur)) {
      break;  // the beam's worst kept result beats the best frontier node
    }
    for (int nb : nodes_[cur.second].nbrs[level]) {
      if ((*marks)[nb] == e) continue;
      (*marks)[nb] = e;
      const std::pair<double, int> cand(Sim(q, nb), nb);
      if (static_cast<int>(results->size()) < ef ||
          BetterScored(cand, results->front())) {
        candidates->push_back(cand);
        std::push_heap(candidates->begin(), candidates->end(), CandidateLess);
        results->push_back(cand);
        std::push_heap(results->begin(), results->end(), ResultLess);
        if (static_cast<int>(results->size()) > ef) {
          std::pop_heap(results->begin(), results->end(), ResultLess);
          results->pop_back();
        }
      }
    }
  }
  std::sort(results->begin(), results->end(), BetterScored);
}

void HnswIndex::SelectNeighbors(
    const std::vector<std::pair<double, int>>& candidates, int max_conn,
    std::vector<std::pair<double, int>>* out) const {
  out->clear();
  for (const std::pair<double, int>& cand : candidates) {
    if (static_cast<int>(out->size()) >= max_conn) break;
    bool keep = true;
    for (const std::pair<double, int>& kept : *out) {
      // The classic HNSW diversity rule in similarity terms: drop `cand`
      // if it is closer to an already-kept neighbor than to the new node
      // (a kept node already covers that direction of the graph).
      if (math::Dot(aug_.Row(cand.second), aug_.Row(kept.second)) >
          cand.first) {
        keep = false;
        break;
      }
    }
    if (keep) out->push_back(cand);
  }
}

std::unique_ptr<HnswIndex> HnswIndex::Build(
    const eval::RankingSurrogateSpec& spec, const HnswOptions& options) {
  const int n = spec.items->items();
  LOGIREC_CHECK(n > 0);

  auto index = std::unique_ptr<HnswIndex>(new HnswIndex());
  index->spec_ = spec;
  index->options_ = options;
  index->options_.M = std::max(2, options.M);
  index->options_.ef_construction =
      std::max(options.ef_construction, index->options_.M);
  index->options_.batch = std::max(1, options.batch);
  const int M = index->options_.M;

  // Norm-equalizing MIPS->cosine reduction (Bachrach et al.): append
  // sqrt(phi^2 - ||v~||^2) to every augmented item, with phi the max
  // augmented norm; queries append 0, so every query dot is unchanged.
  // Item-item dots become spherical proximity (all items share norm phi),
  // which removes the high-norm "hub" pathology of raw inner-product
  // graphs — without it, low-norm items that win queries after the
  // -||v||^2 correction collect no inbound links and become unreachable.
  {
    math::Matrix raw;
    BuildAugmentedItems(spec, &raw, options.num_threads);
    const int ad = raw.cols();
    std::vector<double> norms_sq(n);
    ParallelFor(0, n, [&](int v) {
      norms_sq[v] = math::SquaredNorm(raw.Row(v));
    }, options.num_threads);
    double max_sq = 0.0;
    for (int v = 0; v < n; ++v) max_sq = std::max(max_sq, norms_sq[v]);
    index->aug_ = math::Matrix(n, ad + 1);
    index->aug_dim_ = ad + 1;
    ParallelFor(0, n, [&](int v) {
      math::Span row = index->aug_.Row(v);
      math::ConstSpan src = raw.Row(v);
      for (int k = 0; k < ad; ++k) row[k] = src[k];
      row[ad] = std::sqrt(std::max(0.0, max_sq - norms_sq[v]));
    }, options.num_threads);
  }

  // Counter-RNG level assignment: a pure function of (seed, id).
  index->nodes_.resize(n);
  const double ml = 1.0 / std::log(static_cast<double>(M));
  for (int i = 0; i < n; ++i) {
    const double u =
        (static_cast<double>(Rng::MixSeed(options.seed, i) >> 11) + 0.5) *
        0x1.0p-53;
    const int level =
        std::min(static_cast<int>(-std::log(u) * ml), kLevelCap);
    Node& node = index->nodes_[i];
    node.level = level;
    node.nbrs.resize(level + 1);
    node.sims.resize(level + 1);
  }

  const auto max_conn = [M](int level) { return level == 0 ? 2 * M : M; };

  // Per-worker search scratch for the parallel phase.
  struct BuildScratch {
    std::vector<std::pair<double, int>> results;
    std::vector<std::pair<double, int>> candidates;
    std::vector<uint32_t> marks;
    uint32_t epoch = 0;
  };
  const int batch = index->options_.batch;
  std::vector<BuildScratch> scratch(
      std::max(1, ResolveWorkerCount(options.num_threads, batch)));
  // proposed[i - b0][level] = heuristic-selected neighbors from phase 1.
  std::vector<std::vector<std::vector<std::pair<double, int>>>> proposed(
      batch);

  for (int b0 = 0; b0 < n; b0 += batch) {
    const int b1 = std::min(n, b0 + batch);
    const int frozen_entry = index->entry_;
    const int frozen_max = index->max_level_;

    // Phase 1 (parallel): every batch node searches the frozen graph —
    // a pure read, so the proposals are thread-count independent.
    ParallelForWorker(b0, b1, [&](int worker, int i) {
      std::vector<std::vector<std::pair<double, int>>>& levels =
          proposed[i - b0];
      const int node_level = index->nodes_[i].level;
      levels.assign(node_level + 1, {});
      if (frozen_entry < 0) return;
      const GraphQuery q{index->aug_.Row(i)};
      BuildScratch& bs = scratch[worker];
      int cur =
          index->GreedyDescend(q, frozen_max, node_level + 1, frozen_entry);
      for (int level = std::min(frozen_max, node_level); level >= 0;
           --level) {
        index->SearchLayer(q, level, index->options_.ef_construction, cur,
                           &bs.results, &bs.candidates, &bs.marks,
                           &bs.epoch);
        index->SelectNeighbors(bs.results, max_conn(level),
                               &levels[level]);
        if (!bs.results.empty()) cur = bs.results[0].second;
      }
    }, options.num_threads);

    // Phase 2 (serial, ascending id): merge earlier same-batch nodes as
    // extra candidates, link, and shrink overflowing reciprocal lists by
    // cached link similarity — deterministic by construction.
    for (int i = b0; i < b1; ++i) {
      Node& node = index->nodes_[i];
      for (int level = 0; level <= node.level; ++level) {
        std::vector<std::pair<double, int>> links = proposed[i - b0][level];
        for (int j = b0; j < i; ++j) {
          if (index->nodes_[j].level < level) continue;
          links.emplace_back(
              math::Dot(index->aug_.Row(i), index->aug_.Row(j)), j);
        }
        std::sort(links.begin(), links.end(), BetterScored);
        links.erase(std::unique(links.begin(), links.end()), links.end());
        if (static_cast<int>(links.size()) > max_conn(level)) {
          links.resize(max_conn(level));
        }
        node.nbrs[level].reserve(links.size());
        node.sims[level].reserve(links.size());
        for (const std::pair<double, int>& link : links) {
          node.nbrs[level].push_back(link.second);
          node.sims[level].push_back(link.first);
          // Reciprocal edge, shrunk by worst cached similarity when the
          // neighbor's list overflows.
          Node& other = index->nodes_[link.second];
          other.nbrs[level].push_back(i);
          other.sims[level].push_back(link.first);
          if (static_cast<int>(other.nbrs[level].size()) >
              max_conn(level)) {
            size_t worst = 0;
            for (size_t idx = 1; idx < other.nbrs[level].size(); ++idx) {
              if (BetterScored({other.sims[level][worst],
                                other.nbrs[level][worst]},
                               {other.sims[level][idx],
                                other.nbrs[level][idx]})) {
                worst = idx;
              }
            }
            other.nbrs[level].erase(other.nbrs[level].begin() + worst);
            other.sims[level].erase(other.sims[level].begin() + worst);
          }
        }
      }
      if (node.level > index->max_level_) {
        index->max_level_ = node.level;
        index->entry_ = i;
      }
    }
  }

  // Level-0 connectivity repair: queries reach items by following
  // out-links from the entry, and the reciprocal-link shrinking above can
  // (rarely) orphan a node. A serial BFS finds every unreachable node
  // (ascending id) and grafts it onto its most similar reached node, so
  // "beam of ef >= n" provably degenerates to the exhaustive exact scan.
  {
    std::vector<char> reached(n, 0);
    std::vector<int> stack;
    stack.push_back(index->entry_);
    reached[index->entry_] = 1;
    int count = 1;
    const auto flood = [&] {
      while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        for (int nb : index->nodes_[v].nbrs[0]) {
          if (reached[nb]) continue;
          reached[nb] = 1;
          ++count;
          stack.push_back(nb);
        }
      }
    };
    flood();
    for (int i = 0; i < n && count < n; ++i) {
      if (reached[i]) continue;
      int best = -1;
      double best_sim = -std::numeric_limits<double>::infinity();
      for (int j = 0; j < n; ++j) {
        if (!reached[j]) continue;
        const double s = math::Dot(index->aug_.Row(i), index->aug_.Row(j));
        if (s > best_sim) {
          best_sim = s;
          best = j;
        }
      }
      index->nodes_[best].nbrs[0].push_back(i);
      index->nodes_[best].sims[0].push_back(best_sim);
      reached[i] = 1;
      ++count;
      stack.push_back(i);
      flood();  // the graft may make the orphan's whole cluster reachable
    }
  }

  // Compact finalization. Everything above ran in f64, so levels and
  // adjacency — and therefore Fingerprint() — are identical across
  // precisions. Only the RESIDENT state changes here: traversal
  // coordinates narrow to f32 for both compact precisions (traversal is
  // approximate by design; the rerank restores exactness within the
  // precision) and the rerank catalog quantizes per precision over the
  // ORIGINAL item coordinates. The f64 matrix is then released.
  if (options.precision != eval::ScorePrecision::kF64) {
    const Status built = index->compact_.Build(spec, options.precision);
    LOGIREC_CHECK(built.ok());
    const int ad1 = index->aug_dim_;
    index->aug_f_.resize(static_cast<size_t>(n) * ad1);
    ParallelFor(0, n, [&](int v) {
      const math::ConstSpan src = index->aug_.Row(v);
      float* dst = index->aug_f_.data() + static_cast<size_t>(v) * ad1;
      for (int k = 0; k < ad1; ++k) dst[k] = static_cast<float>(src[k]);
    }, options.num_threads);
    index->aug_ = math::Matrix();
  }
  return index;
}

void HnswIndex::RetrieveTopK(const eval::Scorer& scorer, int user, int k,
                             int min_candidates,
                             const eval::ItemFilter* filter,
                             eval::RetrieveScratch* scratch,
                             std::vector<int>* out) const {
  out->clear();
  if (k <= 0 || entry_ < 0) return;

  const math::ConstSpan query = scorer.RankingQuery(user, &scratch->query);
  LOGIREC_CHECK(static_cast<int>(query.size()) == spec_.items->dim());
  AugmentQuery(spec_, query, &scratch->aug_query);
  // The norm-equalizing item coordinate pairs with a 0 on the query side:
  // every graph-space dot equals the plain augmented dot.
  scratch->aug_query.push_back(0.0);
  const bool compact = options_.precision != eval::ScorePrecision::kF64;
  GraphQuery q{math::ConstSpan(scratch->aug_query)};
  if (compact) {
    eval::CompactCatalog::NarrowQuery(q.d, &scratch->query_f);
    q.f = scratch->query_f.data();
  }

  // Widen the beam to the caller's candidate floor so filtering (seen
  // items) cannot starve the final top-k.
  const int ef =
      std::max(options_.ef_search, std::max(min_candidates, k));
  const int top = GreedyDescend(q, max_level_, 1, entry_);
  SearchLayer(q, 0, ef, top, &scratch->heap_a, &scratch->heap_b,
              &scratch->marks, &scratch->mark_epoch);

  // Exact rerank: replace the approximate augmented-dot beam scores with
  // the bit-identical per-item kRanking surrogate, drop filtered items,
  // and select with the TopKInto tie-break.
  std::vector<std::pair<double, int>>& candidates = scratch->heap_b;
  candidates.clear();
  if (!compact) {
    for (const std::pair<double, int>& cand : scratch->heap_a) {
      const int v = cand.second;
      if (filter != nullptr && filter->Excluded(v)) continue;
      candidates.emplace_back(SurrogateScore(spec_, query, v), v);
    }
  } else {
    // Compact rerank: gather the unfiltered beam ids and batch them
    // through the compact catalog (bit-identical to the compact full
    // scan), widening the float scores exactly to double so BetterScored
    // preserves the f32 order and ties. query_f is re-narrowed from the
    // ORIGINAL (unaugmented) query — traversal is done with it by now.
    scratch->ids.clear();
    for (const std::pair<double, int>& cand : scratch->heap_a) {
      const int v = cand.second;
      if (filter != nullptr && filter->Excluded(v)) continue;
      scratch->ids.push_back(v);
    }
    eval::CompactCatalog::NarrowQuery(query, &scratch->query_f);
    scratch->scores_f.resize(scratch->ids.size());
    compact_.ScoreSubset(
        math::ConstSpanF(scratch->query_f.data(), scratch->query_f.size()),
        scratch->ids, math::SpanF(scratch->scores_f));
    for (size_t i = 0; i < scratch->ids.size(); ++i) {
      candidates.emplace_back(static_cast<double>(scratch->scores_f[i]),
                              scratch->ids[i]);
    }
  }
  const int take = std::min<int>(k, static_cast<int>(candidates.size()));
  if (take < static_cast<int>(candidates.size())) {
    std::nth_element(candidates.begin(), candidates.begin() + (take - 1),
                     candidates.end(), BetterScored);
    candidates.resize(take);
  }
  std::sort(candidates.begin(), candidates.end(), BetterScored);
  out->reserve(take);
  for (int i = 0; i < take; ++i) out->push_back(candidates[i].second);
}

size_t HnswIndex::ResidentBytes() const {
  size_t bytes = aug_.data().size() * sizeof(double) +
                 aug_f_.size() * sizeof(float) + compact_.ResidentBytes();
  for (const Node& node : nodes_) {
    for (int level = 0; level <= node.level; ++level) {
      bytes += node.nbrs[level].size() * sizeof(int) +
               node.sims[level].size() * sizeof(double);
    }
  }
  return bytes;
}

uint64_t HnswIndex::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = HashU64(h, static_cast<uint64_t>(nodes_.size()));
  h = HashU64(h, static_cast<uint64_t>(entry_));
  for (const Node& node : nodes_) {
    h = HashU64(h, static_cast<uint64_t>(node.level));
    for (int level = 0; level <= node.level; ++level) {
      h = HashU64(h, node.nbrs[level].size());
      for (int nb : node.nbrs[level]) {
        h = HashU64(h, static_cast<uint64_t>(nb));
      }
    }
  }
  return h;
}

}  // namespace logirec::retrieval
