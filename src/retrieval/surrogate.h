#ifndef LOGIREC_RETRIEVAL_SURROGATE_H_
#define LOGIREC_RETRIEVAL_SURROGATE_H_

#include <utility>

#include "eval/evaluator.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace logirec::retrieval {

using SurrogateKind = eval::RankingSurrogateSpec::Kind;

/// The augmented-MIPS reduction behind both ANN indexes.
///
/// Every kRanking surrogate (eval::RankingSurrogateSpec) is an inner
/// product after a fixed per-item/per-query lift:
///
///   kDot                  q~ = u              v~ = v                 (d)
///   kDotBias              q~ = [u, 1]         v~ = [v, b_v]          (d+1)
///   kNegSquaredEuclidean  q~ = [2u, -1]       v~ = [v, ||v||^2]      (d+1)
///   kNegEuclidean         (same lift; -||u-v|| is monotone in it)
///   kLorentzDot           q~ = u              v~ = [-v_0, v_1..]     (d)
///   kNegPoincareGamma     q~ = [2u, -1, -||u||^2]
///                         v~ = [v, ||v||^2, 1] / beta_v              (d+2)
///
/// In each case <q~, v~> is, for a fixed query, a strictly increasing
/// affine transform of the kRanking score — so nearest-neighbor structure
/// in the augmented dot space is exactly top-k structure in the original
/// (hyperbolic or Euclidean) geometry. The lifts are only used to *build*
/// and *probe* the indexes; final candidate scores always come from
/// SurrogateScanInto / SurrogateScore, which are bit-identical to the
/// math/kernels.h kRanking kernels.

/// (score desc, id asc) over explicit (score, id) pairs — the TopKInto
/// tie-break, applied to candidate sets that are not id-contiguous. Both
/// indexes select and order their rerank output with this comparator so
/// a covering candidate set reproduces the full-scan ranking exactly.
inline bool BetterScored(const std::pair<double, int>& a,
                         const std::pair<double, int>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

/// Dimension of the augmented space for this surrogate kind.
int AugmentedDim(const eval::RankingSurrogateSpec& spec);

/// Fills `out` (resized to spec.items->items() x AugmentedDim) with the
/// augmented item vectors. Parallel over items (pure per-row function, so
/// the result is identical at any thread count).
void BuildAugmentedItems(const eval::RankingSurrogateSpec& spec,
                         math::Matrix* out, int num_threads = 0);

/// Lifts the user-side query into the augmented space (out is resized).
void AugmentQuery(const eval::RankingSurrogateSpec& spec,
                  math::ConstSpan query, math::Vec* out);

/// Scores every item of `items` (a full-catalog or per-cell ScoringView
/// over ORIGINAL item coordinates) with the kRanking kernel for `kind`,
/// bit-identical to the full-scan kernels in math/kernels.h. `bias` (may
/// be null except for kDotBias) holds one entry per item of this view.
void SurrogateScanInto(SurrogateKind kind, math::ConstSpan query,
                       const math::ScoringView& items, const double* bias,
                       math::Span out);

/// Single-item surrogate score, bit-identical to what the full-catalog
/// kRanking scan writes at `item`: the ScoringView kernels add each
/// item's terms one at a time in ascending-k order, so a scalar gather
/// over spec.items->Col(k)[item] reproduces the exact rounding sequence.
/// This is the HNSW rerank path (per-candidate gather instead of a cell
/// scan).
double SurrogateScore(const eval::RankingSurrogateSpec& spec,
                      math::ConstSpan query, int item);

}  // namespace logirec::retrieval

#endif  // LOGIREC_RETRIEVAL_SURROGATE_H_
