#include "retrieval/retriever.h"

#include <utility>

#include "util/string_util.h"

namespace logirec::retrieval {

Result<RetrievalKind> ParseRetrievalKind(const std::string& name) {
  if (name == "exact") return RetrievalKind::kExact;
  if (name == "ivf") return RetrievalKind::kIvf;
  if (name == "hnsw") return RetrievalKind::kHnsw;
  return Status::InvalidArgument(
      StrFormat("unknown retrieval kind '%s' (want exact|ivf|hnsw)",
                name.c_str()));
}

std::string RetrievalKindName(RetrievalKind kind) {
  switch (kind) {
    case RetrievalKind::kExact:
      return "exact";
    case RetrievalKind::kIvf:
      return "ivf";
    case RetrievalKind::kHnsw:
      return "hnsw";
  }
  return "exact";
}

Result<std::unique_ptr<eval::CandidateRetriever>> BuildRetriever(
    const eval::Scorer& scorer, const RetrievalOptions& options) {
  if (options.kind == RetrievalKind::kExact) {
    return std::unique_ptr<eval::CandidateRetriever>();
  }
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  if (spec.kind == SurrogateKind::kNone) {
    return Status::FailedPrecondition(
        "model has no linear ranking surrogate; serve it with "
        "--retrieval=exact");
  }
  if (options.kind == RetrievalKind::kIvf) {
    IvfOptions ivf = options.ivf;
    ivf.precision = options.precision;
    return std::unique_ptr<eval::CandidateRetriever>(IvfIndex::Build(spec, ivf));
  }
  HnswOptions hnsw = options.hnsw;
  hnsw.precision = options.precision;
  return std::unique_ptr<eval::CandidateRetriever>(
      HnswIndex::Build(spec, hnsw));
}

}  // namespace logirec::retrieval
