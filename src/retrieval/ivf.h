#ifndef LOGIREC_RETRIEVAL_IVF_H_
#define LOGIREC_RETRIEVAL_IVF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/compact.h"
#include "eval/evaluator.h"
#include "math/compact.h"
#include "math/kernels.h"
#include "retrieval/surrogate.h"

namespace logirec::retrieval {

struct IvfOptions {
  /// Number of k-means cells (0 = round(sqrt(num_items)), the classic
  /// IVF balance point where probe cost ~ cell-scan cost).
  int cells = 0;
  /// Lloyd iterations. A handful suffices — the recall gate, not the
  /// k-means objective, is the quality criterion.
  int iterations = 5;
  /// Cells scanned per query (widened automatically when the caller's
  /// min_candidates floor is not reached).
  int nprobe = 16;
  uint64_t seed = 1;
  /// Build parallelism (0 = hardware). The index is identical at any
  /// value: assignment is a pure per-item function and centroid updates
  /// fold fixed shards in serial order.
  int num_threads = 0;
  /// Precision of the resident per-cell catalogs and the probe scans.
  /// kF64 keeps the bit-identical contract; kF32/kInt8 store the cells
  /// compactly and scan with the compact kernels (clustering, centroids,
  /// and cell membership are computed in f64 either way, so the
  /// Fingerprint is identical across precisions).
  eval::ScorePrecision precision = eval::ScorePrecision::kF64;
};

/// Clustered inverted-file index over the augmented surrogate space.
///
/// Build clusters the augmented item vectors (retrieval/surrogate.h) with
/// deterministic counter-RNG k-means; each cell stores its member ids
/// (ascending) plus a column-major ScoringView over the members' ORIGINAL
/// coordinates. A query ranks cells by augmented dot against the
/// centroids, then scans the top `nprobe` cells with the same blocked
/// kRanking kernels the full scan uses — so candidate scores are
/// bit-identical to the exact scan and the "rerank" is simply Top-K
/// selection over the scanned candidates.
class IvfIndex : public eval::CandidateRetriever {
 public:
  /// Builds from a scorer's surrogate spec. The spec's ScoringView must
  /// outlive the index (serve::ServableModel keeps the model inside the
  /// same immutable generation).
  static std::unique_ptr<IvfIndex> Build(const eval::RankingSurrogateSpec& spec,
                                         const IvfOptions& options);

  void RetrieveTopK(const eval::Scorer& scorer, int user, int k,
                    int min_candidates, const eval::ItemFilter* filter,
                    eval::RetrieveScratch* scratch,
                    std::vector<int>* out) const override;

  int cells() const { return static_cast<int>(cell_ids_.size()); }
  int num_items() const { return num_items_; }

  /// Structural hash (cell membership + centroid bits), for the
  /// determinism tests: same seed => same fingerprint at any thread count.
  uint64_t Fingerprint() const;

  /// Resident bytes: centroids + whichever cell-catalog family this
  /// precision populates (+ per-cell bias and member-id lists).
  size_t ResidentBytes() const override;

 private:
  IvfIndex() = default;

  eval::RankingSurrogateSpec spec_;
  IvfOptions options_;
  math::ScoringView centroids_;              ///< augmented space, for probing
  std::vector<std::vector<int>> cell_ids_;   ///< ascending item ids per cell
  /// Exactly one resident cell-catalog family is populated, per
  /// options_.precision: f64 views (the bit-identical default), f32
  /// views, or int8 code catalogs.
  std::vector<math::ScoringView> cell_views_;   ///< kF64: original coords
  std::vector<math::ScoringViewF> cell_views_f_;  ///< kF32
  std::vector<math::Int8Catalog> cell_cats_;      ///< kInt8
  std::vector<std::vector<double>> cell_bias_;  ///< kDotBias only
  std::vector<math::VecF> cell_bias_f_;         ///< kDotBias, compact path
  int num_items_ = 0;
};

}  // namespace logirec::retrieval

#endif  // LOGIREC_RETRIEVAL_IVF_H_
