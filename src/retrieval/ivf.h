#ifndef LOGIREC_RETRIEVAL_IVF_H_
#define LOGIREC_RETRIEVAL_IVF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/evaluator.h"
#include "math/kernels.h"
#include "retrieval/surrogate.h"

namespace logirec::retrieval {

struct IvfOptions {
  /// Number of k-means cells (0 = round(sqrt(num_items)), the classic
  /// IVF balance point where probe cost ~ cell-scan cost).
  int cells = 0;
  /// Lloyd iterations. A handful suffices — the recall gate, not the
  /// k-means objective, is the quality criterion.
  int iterations = 5;
  /// Cells scanned per query (widened automatically when the caller's
  /// min_candidates floor is not reached).
  int nprobe = 16;
  uint64_t seed = 1;
  /// Build parallelism (0 = hardware). The index is identical at any
  /// value: assignment is a pure per-item function and centroid updates
  /// fold fixed shards in serial order.
  int num_threads = 0;
};

/// Clustered inverted-file index over the augmented surrogate space.
///
/// Build clusters the augmented item vectors (retrieval/surrogate.h) with
/// deterministic counter-RNG k-means; each cell stores its member ids
/// (ascending) plus a column-major ScoringView over the members' ORIGINAL
/// coordinates. A query ranks cells by augmented dot against the
/// centroids, then scans the top `nprobe` cells with the same blocked
/// kRanking kernels the full scan uses — so candidate scores are
/// bit-identical to the exact scan and the "rerank" is simply Top-K
/// selection over the scanned candidates.
class IvfIndex : public eval::CandidateRetriever {
 public:
  /// Builds from a scorer's surrogate spec. The spec's ScoringView must
  /// outlive the index (serve::ServableModel keeps the model inside the
  /// same immutable generation).
  static std::unique_ptr<IvfIndex> Build(const eval::RankingSurrogateSpec& spec,
                                         const IvfOptions& options);

  void RetrieveTopK(const eval::Scorer& scorer, int user, int k,
                    int min_candidates, const eval::ItemFilter* filter,
                    eval::RetrieveScratch* scratch,
                    std::vector<int>* out) const override;

  int cells() const { return static_cast<int>(cell_ids_.size()); }
  int num_items() const { return num_items_; }

  /// Structural hash (cell membership + centroid bits), for the
  /// determinism tests: same seed => same fingerprint at any thread count.
  uint64_t Fingerprint() const;

 private:
  IvfIndex() = default;

  eval::RankingSurrogateSpec spec_;
  IvfOptions options_;
  math::ScoringView centroids_;              ///< augmented space, for probing
  std::vector<std::vector<int>> cell_ids_;   ///< ascending item ids per cell
  std::vector<math::ScoringView> cell_views_;  ///< original coords per cell
  std::vector<std::vector<double>> cell_bias_;  ///< kDotBias only
  int num_items_ = 0;
};

}  // namespace logirec::retrieval

#endif  // LOGIREC_RETRIEVAL_IVF_H_
