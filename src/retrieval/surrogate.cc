#include "retrieval/surrogate.h"

#include <algorithm>
#include <cmath>

#include "hyper/poincare.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace logirec::retrieval {

namespace {

inline void CheckSpec(const eval::RankingSurrogateSpec& spec) {
  LOGIREC_CHECK_MSG(spec.kind != SurrogateKind::kNone,
                    "scorer has no ranking surrogate");
  LOGIREC_CHECK(spec.items != nullptr && !spec.items->empty());
  if (spec.kind == SurrogateKind::kDotBias) {
    LOGIREC_CHECK_MSG(spec.bias != nullptr, "kDotBias requires a bias array");
  }
}

/// beta_v with the exact clamp the Poincaré kernels use.
inline double BetaOf(double norm_sq) {
  return std::max(1.0 - norm_sq, hyper::kBallEps);
}

}  // namespace

int AugmentedDim(const eval::RankingSurrogateSpec& spec) {
  CheckSpec(spec);
  const int d = spec.items->dim();
  switch (spec.kind) {
    case SurrogateKind::kDot:
    case SurrogateKind::kLorentzDot:
      return d;
    case SurrogateKind::kDotBias:
    case SurrogateKind::kNegSquaredEuclidean:
    case SurrogateKind::kNegEuclidean:
      return d + 1;
    case SurrogateKind::kNegPoincareGamma:
      return d + 2;
    case SurrogateKind::kNone:
      break;
  }
  LOGIREC_CHECK_MSG(false, "unreachable surrogate kind");
  return 0;
}

void BuildAugmentedItems(const eval::RankingSurrogateSpec& spec,
                         math::Matrix* out, int num_threads) {
  CheckSpec(spec);
  const math::ScoringView& view = *spec.items;
  const int n = view.items();
  const int d = view.dim();
  const int ad = AugmentedDim(spec);
  const SurrogateKind kind = spec.kind;
  const double* bias = spec.bias;
  const double* norms_sq = view.NormsSq();
  out->Reset(n, ad);
  ParallelFor(0, n, [&](int v) {
    math::Span row = out->Row(v);
    switch (kind) {
      case SurrogateKind::kDot:
        for (int k = 0; k < d; ++k) row[k] = view.Col(k)[v];
        break;
      case SurrogateKind::kDotBias:
        for (int k = 0; k < d; ++k) row[k] = view.Col(k)[v];
        row[d] = bias[v];
        break;
      case SurrogateKind::kNegSquaredEuclidean:
      case SurrogateKind::kNegEuclidean:
        for (int k = 0; k < d; ++k) row[k] = view.Col(k)[v];
        row[d] = norms_sq[v];
        break;
      case SurrogateKind::kLorentzDot:
        row[0] = -view.Col(0)[v];
        for (int k = 1; k < d; ++k) row[k] = view.Col(k)[v];
        break;
      case SurrogateKind::kNegPoincareGamma: {
        const double inv_beta = 1.0 / BetaOf(norms_sq[v]);
        for (int k = 0; k < d; ++k) row[k] = view.Col(k)[v] * inv_beta;
        row[d] = norms_sq[v] * inv_beta;
        row[d + 1] = inv_beta;
        break;
      }
      case SurrogateKind::kNone:
        break;
    }
  }, num_threads);
}

void AugmentQuery(const eval::RankingSurrogateSpec& spec,
                  math::ConstSpan query, math::Vec* out) {
  CheckSpec(spec);
  const int d = spec.items->dim();
  LOGIREC_CHECK(static_cast<int>(query.size()) == d);
  out->resize(AugmentedDim(spec));
  switch (spec.kind) {
    case SurrogateKind::kDot:
    case SurrogateKind::kLorentzDot:
      std::copy(query.begin(), query.end(), out->begin());
      break;
    case SurrogateKind::kDotBias:
      std::copy(query.begin(), query.end(), out->begin());
      (*out)[d] = 1.0;
      break;
    case SurrogateKind::kNegSquaredEuclidean:
    case SurrogateKind::kNegEuclidean:
      // <q~, [v, ||v||^2]> = 2<u,v> - ||v||^2 = -||u-v||^2 + ||u||^2.
      for (int k = 0; k < d; ++k) (*out)[k] = 2.0 * query[k];
      (*out)[d] = -1.0;
      break;
    case SurrogateKind::kNegPoincareGamma:
      // <q~, v~> = (2<u,v> - ||v||^2 - ||u||^2) / beta_v
      //          = -||u-v||^2 / beta_v, and
      // -gamma = -1 + (2 / alpha_u) * <q~, v~>: affine with positive
      // slope, so augmented-dot order is exactly -gamma order.
      for (int k = 0; k < d; ++k) (*out)[k] = 2.0 * query[k];
      (*out)[d] = -1.0;
      (*out)[d + 1] = -math::SquaredNorm(query);
      break;
    case SurrogateKind::kNone:
      break;
  }
}

void SurrogateScanInto(SurrogateKind kind, math::ConstSpan query,
                       const math::ScoringView& items, const double* bias,
                       math::Span out) {
  switch (kind) {
    case SurrogateKind::kDot:
      math::DotsInto(query, items, out);
      return;
    case SurrogateKind::kDotBias:
      math::DotsInto(query, items, out);
      // Bias added after the full dot, matching the model's kRanking pass.
      for (int v = 0; v < items.items(); ++v) out[v] += bias[v];
      return;
    case SurrogateKind::kNegSquaredEuclidean:
      math::NegSquaredEuclideanDistancesInto(query, items, out);
      return;
    case SurrogateKind::kNegEuclidean:
      math::NegEuclideanDistancesInto(query, items, out);
      return;
    case SurrogateKind::kLorentzDot:
      math::LorentzDotsInto(query, items, out);
      return;
    case SurrogateKind::kNegPoincareGamma:
      math::NegPoincareGammasInto(query, items, out);
      return;
    case SurrogateKind::kNone:
      break;
  }
  LOGIREC_CHECK_MSG(false, "unreachable surrogate kind");
}

double SurrogateScore(const eval::RankingSurrogateSpec& spec,
                      math::ConstSpan query, int item) {
  const math::ScoringView& view = *spec.items;
  const int d = view.dim();
  const double* u = query.data();
  switch (spec.kind) {
    case SurrogateKind::kDot: {
      double s = u[0] * view.Col(0)[item];
      for (int k = 1; k < d; ++k) s += u[k] * view.Col(k)[item];
      return s;
    }
    case SurrogateKind::kDotBias: {
      double s = u[0] * view.Col(0)[item];
      for (int k = 1; k < d; ++k) s += u[k] * view.Col(k)[item];
      return s + spec.bias[item];
    }
    case SurrogateKind::kNegSquaredEuclidean:
    case SurrogateKind::kNegEuclidean: {
      double s = 0.0;
      for (int k = 0; k < d; ++k) {
        const double diff = u[k] - view.Col(k)[item];
        s += diff * diff;
      }
      return spec.kind == SurrogateKind::kNegSquaredEuclidean
                 ? -s
                 : -std::sqrt(s);
    }
    case SurrogateKind::kLorentzDot: {
      double s = (-u[0]) * view.Col(0)[item];
      for (int k = 1; k < d; ++k) s += u[k] * view.Col(k)[item];
      return s;
    }
    case SurrogateKind::kNegPoincareGamma: {
      double dist_sq = 0.0;
      for (int k = 0; k < d; ++k) {
        const double diff = u[k] - view.Col(k)[item];
        dist_sq += diff * diff;
      }
      const double alpha =
          std::max(1.0 - math::SquaredNorm(query), hyper::kBallEps);
      const double beta = BetaOf(view.NormsSq()[item]);
      return -(1.0 + 2.0 * dist_sq / (alpha * beta));
    }
    case SurrogateKind::kNone:
      break;
  }
  LOGIREC_CHECK_MSG(false, "unreachable surrogate kind");
  return 0.0;
}

}  // namespace logirec::retrieval
