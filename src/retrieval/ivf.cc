#include "retrieval/ivf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace logirec::retrieval {

namespace {

/// Fixed shard count for the centroid-update fold. Partial sums are
/// computed per shard in parallel (each shard walks its item range in
/// ascending order), then folded serially shard 0..kShards-1 — the
/// floating-point accumulation order is a function of the shard
/// boundaries only, never of the thread count.
constexpr int kUpdateShards = 64;

uint64_t HashU64(uint64_t h, uint64_t x) {
  // FNV-1a over the 8 bytes of x.
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double x) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  __builtin_memcpy(&bits, &x, sizeof(bits));
  return HashU64(h, bits);
}

}  // namespace

std::unique_ptr<IvfIndex> IvfIndex::Build(
    const eval::RankingSurrogateSpec& spec, const IvfOptions& options) {
  const math::ScoringView& view = *spec.items;
  const int n = view.items();
  const int d = view.dim();
  LOGIREC_CHECK(n > 0);

  auto index = std::unique_ptr<IvfIndex>(new IvfIndex());
  index->spec_ = spec;
  index->options_ = options;
  index->num_items_ = n;

  int cells = options.cells > 0
                  ? options.cells
                  : static_cast<int>(std::lround(std::sqrt(n)));
  cells = std::max(1, std::min(cells, n));

  // Augmented item vectors — the clustering (and probing) space.
  math::Matrix aug;
  BuildAugmentedItems(spec, &aug, options.num_threads);
  const int ad = aug.cols();

  // Deterministic distinct init: counter-RNG draws with rejection. The
  // attempt counter is the stream, so the chosen seeds are a pure
  // function of (seed, n, cells).
  math::Matrix centroids(cells, ad);
  {
    std::vector<char> used(n, 0);
    uint64_t attempt = 0;
    for (int c = 0; c < cells; ++c) {
      int pick;
      do {
        pick = static_cast<int>(Rng::MixSeed(options.seed, attempt++) %
                                static_cast<uint64_t>(n));
      } while (used[pick]);
      used[pick] = 1;
      math::Copy(aug.Row(pick), centroids.Row(c));
    }
  }

  std::vector<int> assignment(n, 0);
  const int shards = std::min(kUpdateShards, n);
  // Per-shard partial state: sums[shard] is cells x ad, counts likewise.
  std::vector<math::Matrix> shard_sums(shards);
  std::vector<std::vector<int64_t>> shard_counts(shards);

  for (int iter = 0; iter < std::max(options.iterations, 1); ++iter) {
    // Assign: pure per-item argmin over centroids (ties -> lowest cell
    // id), deterministic at any thread count.
    ParallelFor(0, n, [&](int v) {
      math::ConstSpan x = aug.Row(v);
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < cells; ++c) {
        const double dist = math::SquaredDistance(x, centroids.Row(c));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      assignment[v] = best_c;
    }, options.num_threads);

    // Update: parallel per-shard partial sums over ascending item ranges,
    // then a serial ordered fold.
    ParallelFor(0, shards, [&](int s) {
      math::Matrix& sums = shard_sums[s];
      sums.Reset(cells, ad);
      std::vector<int64_t>& counts = shard_counts[s];
      counts.assign(cells, 0);
      const int64_t begin = static_cast<int64_t>(s) * n / shards;
      const int64_t end = static_cast<int64_t>(s + 1) * n / shards;
      for (int64_t v = begin; v < end; ++v) {
        const int c = assignment[v];
        math::Span acc = sums.Row(c);
        math::ConstSpan x = aug.Row(static_cast<int>(v));
        for (int k = 0; k < ad; ++k) acc[k] += x[k];
        ++counts[c];
      }
    }, options.num_threads);
    for (int c = 0; c < cells; ++c) {
      int64_t count = 0;
      math::Span acc = shard_sums[0].Row(c);
      for (int s = 1; s < shards; ++s) {
        math::ConstSpan part = shard_sums[s].Row(c);
        for (int k = 0; k < ad; ++k) acc[k] += part[k];
      }
      for (int s = 0; s < shards; ++s) count += shard_counts[s][c];
      if (count == 0) continue;  // empty cell keeps its old centroid
      math::Span target = centroids.Row(c);
      const double inv = 1.0 / static_cast<double>(count);
      for (int k = 0; k < ad; ++k) target[k] = acc[k] * inv;
    }
  }

  // Materialize the cells: ascending member ids (the loop order), plus a
  // per-cell ScoringView over the members' original coordinates so the
  // probe scan runs the same blocked kernels as the full scan.
  index->cell_ids_.assign(cells, {});
  for (int v = 0; v < n; ++v) index->cell_ids_[assignment[v]].push_back(v);
  const eval::ScorePrecision precision = options.precision;
  const bool compact = precision != eval::ScorePrecision::kF64;
  if (!compact) {
    index->cell_views_.resize(cells);
  } else if (precision == eval::ScorePrecision::kF32) {
    index->cell_views_f_.resize(cells);
  } else {
    index->cell_cats_.resize(cells);
  }
  const bool with_bias = spec.kind == SurrogateKind::kDotBias;
  if (with_bias) {
    if (compact) {
      index->cell_bias_f_.resize(cells);
    } else {
      index->cell_bias_.resize(cells);
    }
  }
  ParallelFor(0, cells, [&](int c) {
    const std::vector<int>& ids = index->cell_ids_[c];
    if (ids.empty()) return;
    math::Matrix members(static_cast<int>(ids.size()), d);
    for (size_t i = 0; i < ids.size(); ++i) {
      math::Span row = members.Row(static_cast<int>(i));
      for (int k = 0; k < d; ++k) row[k] = view.Col(k)[ids[i]];
    }
    // The resident catalog is narrowed/quantized per cell from the same
    // f64 member rows the global compact catalog sees, and both encode
    // row-locally — so cell scans reproduce the global compact scan's
    // scores bit-for-bit (the compact analogue of the f64 bit-identity).
    if (!compact) {
      index->cell_views_[c].Assign(members);
    } else if (precision == eval::ScorePrecision::kF32) {
      index->cell_views_f_[c].Assign(members);
    } else {
      index->cell_cats_[c].Assign(members);
    }
    if (with_bias) {
      if (compact) {
        math::VecF& bias = index->cell_bias_f_[c];
        bias.resize(ids.size());
        for (size_t i = 0; i < ids.size(); ++i) {
          bias[i] = static_cast<float>(spec.bias[ids[i]]);
        }
      } else {
        std::vector<double>& bias = index->cell_bias_[c];
        bias.resize(ids.size());
        for (size_t i = 0; i < ids.size(); ++i) bias[i] = spec.bias[ids[i]];
      }
    }
  }, options.num_threads);

  index->centroids_.Assign(centroids);
  return index;
}

void IvfIndex::RetrieveTopK(const eval::Scorer& scorer, int user, int k,
                            int min_candidates,
                            const eval::ItemFilter* filter,
                            eval::RetrieveScratch* scratch,
                            std::vector<int>* out) const {
  out->clear();
  if (k <= 0) return;
  const int cells = this->cells();

  const math::ConstSpan query = scorer.RankingQuery(user, &scratch->query);
  LOGIREC_CHECK(static_cast<int>(query.size()) == spec_.items->dim());
  AugmentQuery(spec_, query, &scratch->aug_query);
  const bool compact = options_.precision != eval::ScorePrecision::kF64;
  if (compact) eval::CompactCatalog::NarrowQuery(query, &scratch->query_f);

  // Rank cells by augmented dot against the centroids (same score order
  // the cells were clustered for), best first with id tie-break.
  scratch->scores.resize(cells);
  math::DotsInto(math::ConstSpan(scratch->aug_query),
                 centroids_, math::Span(scratch->scores));
  std::vector<std::pair<double, int>>& order = scratch->heap_a;
  order.clear();
  for (int c = 0; c < cells; ++c) order.emplace_back(scratch->scores[c], c);
  std::sort(order.begin(), order.end(), BetterScored);

  // Scan cells best-first until both floors are met: at least nprobe
  // cells, and at least min_candidates unfiltered candidates (so the
  // caller's seen-item masking cannot starve the final top-k).
  const int floor = std::max(std::max(min_candidates, k), 0);
  std::vector<std::pair<double, int>>& candidates = scratch->heap_b;
  candidates.clear();
  for (int probed = 0; probed < cells; ++probed) {
    if (probed >= options_.nprobe &&
        static_cast<int>(candidates.size()) >= floor) {
      break;
    }
    const int c = order[probed].second;
    const std::vector<int>& ids = cell_ids_[c];
    if (ids.empty()) continue;
    if (!compact) {
      scratch->scores.resize(ids.size());
      SurrogateScanInto(spec_.kind, query, cell_views_[c],
                        cell_bias_.empty() ? nullptr : cell_bias_[c].data(),
                        math::Span(scratch->scores));
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        if (filter != nullptr && filter->Excluded(v)) continue;
        candidates.emplace_back(scratch->scores[i], v);
      }
      continue;
    }
    // Compact probe: scan the cell's f32/int8 catalog, then widen the
    // float scores into the candidate pairs (widening is exact, so the
    // double comparator preserves the float order and ties).
    scratch->scores_f.resize(ids.size());
    const math::ConstSpanF qf(scratch->query_f.data(),
                              scratch->query_f.size());
    const float* bias_f =
        cell_bias_f_.empty() ? nullptr : cell_bias_f_[c].data();
    if (options_.precision == eval::ScorePrecision::kF32) {
      eval::CompactScanInto(spec_.kind, qf, cell_views_f_[c], bias_f,
                            math::SpanF(scratch->scores_f));
    } else {
      eval::CompactScanInto(spec_.kind, qf, cell_cats_[c], bias_f,
                            math::SpanF(scratch->scores_f));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      const int v = ids[i];
      if (filter != nullptr && filter->Excluded(v)) continue;
      candidates.emplace_back(static_cast<double>(scratch->scores_f[i]), v);
    }
  }

  // Exact Top-K selection over the candidates, with the TopKInto
  // tie-break; candidate scores already equal the full-scan kRanking
  // values bit-for-bit (same kernels, same per-item term order).
  const int take = std::min<int>(k, static_cast<int>(candidates.size()));
  if (take < static_cast<int>(candidates.size())) {
    std::nth_element(candidates.begin(), candidates.begin() + (take - 1),
                     candidates.end(), BetterScored);
    candidates.resize(take);
  }
  std::sort(candidates.begin(), candidates.end(), BetterScored);
  out->reserve(take);
  for (int i = 0; i < take; ++i) out->push_back(candidates[i].second);
}

size_t IvfIndex::ResidentBytes() const {
  size_t bytes = centroids_.ResidentBytes();
  for (const std::vector<int>& ids : cell_ids_) {
    bytes += ids.size() * sizeof(int);
  }
  for (const math::ScoringView& view : cell_views_) {
    bytes += view.ResidentBytes();
  }
  for (const math::ScoringViewF& view : cell_views_f_) {
    bytes += view.ResidentBytes();
  }
  for (const math::Int8Catalog& cat : cell_cats_) {
    bytes += cat.ResidentBytes();
  }
  for (const std::vector<double>& bias : cell_bias_) {
    bytes += bias.size() * sizeof(double);
  }
  for (const math::VecF& bias : cell_bias_f_) {
    bytes += bias.size() * sizeof(float);
  }
  return bytes;
}

uint64_t IvfIndex::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = HashU64(h, static_cast<uint64_t>(cells()));
  for (const std::vector<int>& ids : cell_ids_) {
    h = HashU64(h, ids.size());
    for (int v : ids) h = HashU64(h, static_cast<uint64_t>(v));
  }
  for (int c = 0; c < centroids_.items(); ++c) {
    for (int k = 0; k < centroids_.dim(); ++k) {
      h = HashDouble(h, centroids_.Col(k)[c]);
    }
  }
  return h;
}

}  // namespace logirec::retrieval
