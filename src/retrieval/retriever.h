#ifndef LOGIREC_RETRIEVAL_RETRIEVER_H_
#define LOGIREC_RETRIEVAL_RETRIEVER_H_

#include <memory>
#include <string>

#include "eval/compact.h"
#include "eval/evaluator.h"
#include "retrieval/hnsw.h"
#include "retrieval/ivf.h"
#include "util/status.h"

namespace logirec::retrieval {

enum class RetrievalKind {
  kExact,  ///< no index: full-scan ranking (the oracle path)
  kIvf,
  kHnsw,
};

/// "exact" | "ivf" | "hnsw" (the --retrieval flag vocabulary).
Result<RetrievalKind> ParseRetrievalKind(const std::string& name);
std::string RetrievalKindName(RetrievalKind kind);

struct RetrievalOptions {
  RetrievalKind kind = RetrievalKind::kExact;
  /// Serving-side scoring precision. kF64 is the bit-identical path; kF32
  /// and kInt8 store the index's resident catalog compactly and score
  /// candidates with the compact kernels (tolerance-gated vs the f64
  /// oracle, deterministic per precision). BuildRetriever copies this
  /// into the per-index options below; setting it there directly also
  /// works.
  eval::ScorePrecision precision = eval::ScorePrecision::kF64;
  IvfOptions ivf;
  HnswOptions hnsw;
};

/// Builds the configured ANN index over `scorer`'s kRanking surrogate
/// space. kExact returns a null pointer (callers keep the exact-scan
/// path); kIvf/kHnsw fail with kFailedPrecondition when the scorer has
/// no linear surrogate (RankingSurrogateSpec::kNone, e.g. NeuMF's MLP
/// tower) — such models can only be served exactly.
///
/// The returned index holds pointers into the scorer's scoring state
/// (its ScoringView), so the scorer must outlive it; attach with
/// eval::Scorer::AttachRetriever to route Scorer::RetrieveInto through
/// the index.
Result<std::unique_ptr<eval::CandidateRetriever>> BuildRetriever(
    const eval::Scorer& scorer, const RetrievalOptions& options);

}  // namespace logirec::retrieval

#endif  // LOGIREC_RETRIEVAL_RETRIEVER_H_
