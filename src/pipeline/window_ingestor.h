#ifndef LOGIREC_PIPELINE_WINDOW_INGESTOR_H_
#define LOGIREC_PIPELINE_WINDOW_INGESTOR_H_

#include <memory>
#include <vector>

#include "core/hgcn.h"
#include "core/logic_engine.h"
#include "core/negative_sampler.h"
#include "core/train_resources.h"
#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "graph/propagation.h"
#include "util/status.h"

namespace logirec::pipeline {

/// Configuration of the incrementally-maintained training structures.
/// The propagator/logic settings MUST match the model that will borrow
/// them through core::TrainResources — a mismatched normalization or
/// relation-batch setting would make the borrowed structures behave
/// differently from the owned rebuild ResumeFit falls back to.
struct IngestorOptions {
  /// Maintain a core::HyperbolicGcn (LogiRec hyperbolic / HGCF) when
  /// true, a bare graph::GcnPropagator (the Euclidean ablation) when
  /// false.
  bool hyperbolic = true;
  /// Propagation depth (0 = identity, the "w/o HGCN" ablation).
  int gcn_layers = 3;
  bool symmetric_norm = false;
  int num_threads = 0;
  /// Relation-extraction knobs (mirror LogiRecConfig).
  int exclusion_overlap_tolerance = 0;
  int intersection_min_support = 0;  ///< 0 = no intersection family
  /// LogicEngine options (family switches, relation batch, seed) — copy
  /// them from the model's config so the borrowed engine samples the
  /// same relation streams an owned engine would.
  core::LogicEngine::Options logic;
};

/// Per-window ingest telemetry.
struct IngestStats {
  long appended = 0;        ///< interactions accepted into the train fold
  long duplicates = 0;      ///< (user, item) pairs already present, skipped
  int new_items = 0;        ///< items activated by their first interaction
  long new_memberships = 0; ///< membership relations appended to the engine
};

/// Streaming ingest of replay windows, maintaining every train-time
/// structure *incrementally* — no full rebuild anywhere on the window
/// path:
///
///  * the dataset's interaction log and the train split (append),
///  * the user-item bipartite graph (graph::BipartiteGraph::AddEdge) and
///    its CSR propagator weights (GcnPropagator::ApplyEdgeUpdates — tail
///    splice + dirty-degree recompute),
///  * the negative-sampler positives tables (sorted insert),
///  * the LogicEngine relation store (LogicEngine::AppendRelations —
///    dirty-tag renumbering and row merges only).
///
/// Relation streaming semantics: the hierarchy / exclusion /
/// intersection families are pure functions of the tag catalog, so they
/// are ingested in full at construction. Membership relations follow
/// item *activation*: an item's (item, tag) rows enter the engine when
/// its first training interaction arrives, in activation order. The
/// accumulated relation set is exposed for ResumeFit borrowing and as
/// the rebuild oracle of the property tests: after any K windows, every
/// incrementally-maintained structure is element-wise identical to one
/// rebuilt from scratch on the accumulated state.
class WindowIngestor {
 public:
  /// `base` is a catalog-only dataset (InteractionLog::MakeBaseDataset);
  /// any pre-existing interactions are rejected with kInvalidArgument at
  /// the first Ingest call via the duplicate probe, so pass it empty.
  WindowIngestor(data::Dataset base, const IngestorOptions& options);

  /// Ingests one replay window. Duplicate (user, item) pairs are counted
  /// and skipped (windows may legitimately repeat an earlier pair);
  /// out-of-range ids abort the ingest with the dataset's error.
  Result<IngestStats> Ingest(const std::vector<data::Interaction>& window);

  // --- the incrementally-maintained state ------------------------------
  const data::Dataset& dataset() const { return dataset_; }
  const data::Split& split() const { return split_; }
  /// The relation set accumulated so far (static families + memberships
  /// of activated items, in activation order).
  const data::LogicalRelations& relations() const { return relations_; }
  const graph::BipartiteGraph& graph() const { return graph_; }
  core::NegativeSampler* sampler() { return &sampler_; }
  core::LogicEngine* logic() { return &logic_; }
  /// Null when constructed with hyperbolic = false / true respectively.
  core::HyperbolicGcn* hgcn() { return hgcn_.get(); }
  graph::GcnPropagator* propagator() { return propagator_.get(); }

  /// Bundles the maintained structures for Recommender::ResumeFit.
  core::TrainResources Resources();

  int windows_ingested() const { return windows_ingested_; }

 private:
  IngestorOptions options_;
  data::Dataset dataset_;
  data::Split split_;
  data::LogicalRelations relations_;
  graph::BipartiteGraph graph_;
  core::NegativeSampler sampler_;
  core::LogicEngine logic_;
  std::unique_ptr<core::HyperbolicGcn> hgcn_;
  std::unique_ptr<graph::GcnPropagator> propagator_;
  /// item -> its membership tag list from the full catalog extraction,
  /// released into the engine at activation.
  std::vector<std::vector<int>> item_membership_tags_;
  std::vector<char> activated_;
  int windows_ingested_ = 0;
  /// Reused per-window scratch.
  std::vector<std::pair<int, int>> new_edges_;
};

}  // namespace logirec::pipeline

#endif  // LOGIREC_PIPELINE_WINDOW_INGESTOR_H_
