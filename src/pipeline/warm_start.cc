#include "pipeline/warm_start.h"

#include <utility>

#include "baselines/model_zoo.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace logirec::pipeline {

WarmStartTrainer::WarmStartTrainer(const WarmStartOptions& options,
                                   const core::TrainConfig& config)
    : options_(options), config_(config) {}

Status WarmStartTrainer::WriteSnapshot(core::Recommender* model,
                                       const data::Dataset& dataset,
                                       const std::string& path,
                                       double* seconds) {
  core::SnapshotHeader header;
  header.dim = config_.dim;
  header.layers = config_.layers;
  header.num_users = dataset.num_users;
  header.num_items = dataset.num_items;
  Timer timer;
  const Status written = core::ModelSnapshot::Write(
      *model, header, path, options_.dtype, /*include_trainer_state=*/true);
  *seconds = timer.ElapsedSeconds();
  return written;
}

Result<TrainRound> WarmStartTrainer::FitFull(const data::Dataset& dataset,
                                             const data::Split& split,
                                             const std::string& to_snapshot) {
  auto model = baselines::MakeModel(options_.model, config_);
  if (!model.ok()) return model.status();
  TrainRound round;
  round.warm = false;
  Timer timer;
  LOGIREC_RETURN_IF_ERROR((*model)->Fit(dataset, split));
  round.train_seconds = timer.ElapsedSeconds();
  LOGIREC_RETURN_IF_ERROR(WriteSnapshot(model->get(), dataset, to_snapshot,
                                        &round.snapshot_seconds));
  return round;
}

Result<TrainRound> WarmStartTrainer::Resume(
    const std::string& from_snapshot, const data::Dataset& dataset,
    const data::Split& split, const core::TrainResources* resources,
    const std::string& to_snapshot) {
  // The factory deliberately ignores the header-derived config: the
  // snapshot header records only dim/layers, and a fine-tune must keep
  // the pipeline's full hyperparameter set (learning rate, margin,
  // lambda, parallel mode, seed).
  core::ModelFactory factory =
      [this](const std::string& name,
             const core::TrainConfig& from_header)
      -> Result<std::unique_ptr<core::Recommender>> {
    if (from_header.dim != config_.dim) {
      return Status::InvalidArgument(StrFormat(
          "snapshot dim %d does not match the pipeline config dim %d",
          from_header.dim, config_.dim));
    }
    return baselines::MakeModel(name, config_);
  };
  core::SnapshotHeader header;
  auto model = core::ModelSnapshot::Read(from_snapshot, factory, &header);
  if (!model.ok()) return model.status();
  if (header.model != options_.model) {
    return Status::InvalidArgument(StrFormat(
        "snapshot %s holds model %s but the pipeline trains %s",
        from_snapshot.c_str(), header.model.c_str(),
        options_.model.c_str()));
  }
  if (!(*model)->SupportsWarmStart()) {
    return Status::FailedPrecondition(
        (*model)->name() + " does not support warm-start fine-tuning");
  }
  TrainRound round;
  round.warm = true;
  round.resumed_trainer_state = header.has_trainer_state;
  Timer timer;
  LOGIREC_RETURN_IF_ERROR((*model)->ResumeFit(
      dataset, split, options_.fine_tune_epochs, resources));
  round.train_seconds = timer.ElapsedSeconds();
  LOGIREC_RETURN_IF_ERROR(WriteSnapshot(model->get(), dataset, to_snapshot,
                                        &round.snapshot_seconds));
  return round;
}

}  // namespace logirec::pipeline
