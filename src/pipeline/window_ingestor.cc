#include "pipeline/window_ingestor.h"

#include <utility>

namespace logirec::pipeline {

namespace {

data::Split EmptySplit(int num_users) {
  data::Split split;
  split.train.resize(num_users);
  split.validation.resize(num_users);
  split.test.resize(num_users);
  return split;
}

}  // namespace

WindowIngestor::WindowIngestor(data::Dataset base,
                               const IngestorOptions& options)
    : options_(options),
      dataset_(std::move(base)),
      split_(EmptySplit(dataset_.num_users)),
      graph_(dataset_.num_users, dataset_.num_items, split_.train),
      sampler_(dataset_.num_items, split_.train),
      logic_(data::LogicalRelations{}, options.logic) {
  // The static relation families are pure functions of the tag catalog
  // (item_tags + taxonomy) and go in whole; memberships wait for their
  // item's activation.
  data::LogicalRelations full = dataset_.ExtractRelations(
      options_.exclusion_overlap_tolerance,
      options_.intersection_min_support);
  item_membership_tags_.resize(dataset_.num_items);
  for (const auto& [item, tag] : full.memberships) {
    item_membership_tags_[item].push_back(tag);
  }
  relations_.hierarchy = std::move(full.hierarchy);
  relations_.exclusions = std::move(full.exclusions);
  relations_.intersections = std::move(full.intersections);

  data::LogicalRelations static_families;
  static_families.hierarchy = relations_.hierarchy;
  static_families.exclusions = relations_.exclusions;
  static_families.intersections = relations_.intersections;
  logic_.AppendRelations(static_families);

  activated_.assign(dataset_.num_items, 0);

  if (options_.hyperbolic) {
    hgcn_ = std::make_unique<core::HyperbolicGcn>(
        &graph_, options_.gcn_layers,
        options_.symmetric_norm ? graph::Norm::kSymmetric
                                : graph::Norm::kReceiver,
        options_.num_threads);
  } else {
    // LogiRec's Euclidean ablation always propagates with the receiver
    // norm (FitEuclidean/ResumeFit hardcode it).
    propagator_ = std::make_unique<graph::GcnPropagator>(
        &graph_, options_.gcn_layers, graph::Norm::kReceiver,
        options_.num_threads);
  }
}

Result<IngestStats> WindowIngestor::Ingest(
    const std::vector<data::Interaction>& window) {
  IngestStats stats;
  new_edges_.clear();
  data::LogicalRelations delta;
  for (const data::Interaction& interaction : window) {
    const Status appended = dataset_.Append(interaction);
    if (!appended.ok()) {
      if (appended.code() == StatusCode::kAlreadyExists) {
        ++stats.duplicates;
        continue;
      }
      return appended;  // out-of-range ids abort the ingest
    }
    ++stats.appended;
    split_.train[interaction.user].push_back(interaction.item);
    sampler_.AddPositive(interaction.user, interaction.item);
    graph_.AddEdge(interaction.user, interaction.item);
    new_edges_.emplace_back(interaction.user, interaction.item);
    if (!activated_[interaction.item]) {
      activated_[interaction.item] = 1;
      ++stats.new_items;
      for (const int tag : item_membership_tags_[interaction.item]) {
        delta.memberships.emplace_back(interaction.item, tag);
      }
    }
  }
  if (!new_edges_.empty()) {
    graph::GcnPropagator* propagator =
        hgcn_ != nullptr ? hgcn_->mutable_propagator() : propagator_.get();
    propagator->ApplyEdgeUpdates(graph_, new_edges_);
  }
  if (!delta.memberships.empty()) {
    stats.new_memberships = static_cast<long>(delta.memberships.size());
    logic_.AppendRelations(delta);
    relations_.memberships.insert(relations_.memberships.end(),
                                  delta.memberships.begin(),
                                  delta.memberships.end());
  }
  ++windows_ingested_;
  return stats;
}

core::TrainResources WindowIngestor::Resources() {
  core::TrainResources resources;
  resources.graph = &graph_;
  resources.propagator = propagator_.get();
  resources.hgcn = hgcn_.get();
  resources.logic = &logic_;
  resources.sampler = &sampler_;
  resources.relations = &relations_;
  return resources;
}

}  // namespace logirec::pipeline
