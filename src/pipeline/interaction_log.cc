#include "pipeline/interaction_log.h"

#include <algorithm>

namespace logirec::pipeline {

InteractionLog::InteractionLog(const data::Dataset& dataset,
                               int num_windows)
    : source_(&dataset) {
  const int W = std::max(num_windows, 1);
  windows_.resize(W);

  // Per-user timelines, stable-sorted by timestamp so equal timestamps
  // keep their original log order.
  std::vector<std::vector<data::Interaction>> per_user(dataset.num_users);
  for (const data::Interaction& interaction : dataset.interactions) {
    per_user[interaction.user].push_back(interaction);
  }
  for (std::vector<data::Interaction>& timeline : per_user) {
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const data::Interaction& a,
                        const data::Interaction& b) {
                       return a.timestamp < b.timestamp;
                     });
  }

  for (int w = 0; w < W; ++w) {
    for (int u = 0; u < dataset.num_users; ++u) {
      const std::vector<data::Interaction>& timeline = per_user[u];
      const long n = static_cast<long>(timeline.size());
      const long begin = n * w / W;
      const long end = n * (w + 1) / W;
      for (long i = begin; i < end; ++i) {
        windows_[w].push_back(timeline[i]);
      }
    }
    total_ += static_cast<long>(windows_[w].size());
  }
}

data::Dataset InteractionLog::MakeBaseDataset() const {
  data::Dataset base;
  base.name = source_->name;
  base.num_users = source_->num_users;
  base.num_items = source_->num_items;
  base.item_tags = source_->item_tags;
  base.taxonomy = source_->taxonomy;
  return base;
}

}  // namespace logirec::pipeline
