#include "pipeline/pipeline.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <utility>

#include "baselines/model_zoo.h"
#include "eval/metrics.h"
#include "serve/servable.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace logirec::pipeline {

IngestorOptions MakeIngestorOptions(const std::string& model,
                                    const core::TrainConfig& config) {
  IngestorOptions options;
  // The zoo builds LogiRec/HGCF hyperbolic with use_hgcn = true and the
  // receiver norm; BPRMF ignores the propagators entirely (only the
  // sampler is borrowed), so the hyperbolic default is harmless there.
  options.hyperbolic = true;
  options.gcn_layers = config.layers;
  options.symmetric_norm = false;
  options.num_threads = config.num_threads;
  options.exclusion_overlap_tolerance = 0;
  options.intersection_min_support = 0;
  options.logic.use_membership = true;
  options.logic.use_hierarchy = true;
  options.logic.use_exclusion = true;
  options.logic.use_intersection = false;
  options.logic.relation_batch = config.logic_batch;
  options.logic.seed = config.seed;
  (void)model;
  return options;
}

namespace {

/// Shared counters of the background live-load threads.
struct LiveLoad {
  std::atomic<bool> stop{false};
  std::atomic<long> completed{0};
  std::atomic<long> failures{0};
  std::atomic<long> shed{0};
  std::atomic<long> in_flight{0};
};

void LiveLoadLoop(serve::ModelServer* server, int num_users, int k,
                  int thread_index, LiveLoad* load) {
  long cursor = static_cast<long>(thread_index) * 7919;  // decorrelate
  while (!load->stop.load(std::memory_order_relaxed)) {
    const int user = static_cast<int>(cursor++ % num_users);
    load->in_flight.fetch_add(1, std::memory_order_relaxed);
    const Status admitted = server->TrySubmit(
        user, k, [load](serve::RankResponse response) {
          if (response.status.ok()) {
            load->completed.fetch_add(1, std::memory_order_relaxed);
          } else {
            load->failures.fetch_add(1, std::memory_order_relaxed);
          }
          load->in_flight.fetch_sub(1, std::memory_order_relaxed);
        });
    if (!admitted.ok()) {
      load->in_flight.fetch_sub(1, std::memory_order_relaxed);
      if (admitted.code() == StatusCode::kUnavailable) {
        load->shed.fetch_add(1, std::memory_order_relaxed);
      }
      // Backpressure (or shutdown): yield instead of spinning the queue.
      std::this_thread::yield();
    }
  }
}

}  // namespace

PipelineDriver::PipelineDriver(const PipelineOptions& options,
                               const core::TrainConfig& config)
    : options_(options), config_(config) {}

Result<PipelineReport> PipelineDriver::Run(const data::Dataset& dataset) {
  if (options_.num_windows < 2) {
    return Status::InvalidArgument("pipeline needs at least 2 windows");
  }
  if (options_.bootstrap_windows < 1 ||
      options_.bootstrap_windows >= options_.num_windows) {
    return Status::InvalidArgument(StrFormat(
        "bootstrap_windows must be in [1, %d)", options_.num_windows));
  }
  if (options_.snapshot_dir.empty()) {
    return Status::InvalidArgument("snapshot_dir must be set");
  }

  InteractionLog log(dataset, options_.num_windows);
  WindowIngestor ingestor(
      log.MakeBaseDataset(),
      MakeIngestorOptions(options_.trainer.model, config_));
  WarmStartTrainer trainer(options_.trainer, config_);
  PipelineReport report;

  // --- bootstrap: ingest the leading windows, full Fit, first swap -----
  for (int w = 0; w < options_.bootstrap_windows; ++w) {
    auto stats = ingestor.Ingest(log.window(w));
    if (!stats.ok()) return stats.status();
  }
  auto snapshot_path = [this](uint64_t generation) {
    return StrFormat("%s/gen%03llu.snap", options_.snapshot_dir.c_str(),
                     static_cast<unsigned long long>(generation));
  };
  std::atomic<uint64_t> generation{1};
  std::string prev_snapshot = snapshot_path(1);
  auto bootstrap =
      trainer.FitFull(ingestor.dataset(), ingestor.split(), prev_snapshot);
  if (!bootstrap.ok()) return bootstrap.status();
  report.bootstrap_train_seconds = bootstrap->train_seconds;

  serve::ModelServer server(options_.server);
  const core::ModelFactory factory = baselines::MakeModel;
  auto first = serve::ServableModel::FromSnapshot(
      prev_snapshot, factory, &ingestor.split(), 1, options_.retrieval);
  if (!first.ok()) return first.status();
  server.Swap(*first);

  // --- background live traffic across every retrain and swap -----------
  LiveLoad load;
  std::vector<std::thread> load_threads;
  for (int t = 0; t < options_.live_load_threads; ++t) {
    load_threads.emplace_back(LiveLoadLoop, &server, dataset.num_users,
                              options_.eval_k, t, &load);
  }
  auto stop_load = [&] {
    load.stop.store(true, std::memory_order_relaxed);
    for (std::thread& thread : load_threads) thread.join();
    load_threads.clear();
  };

  // --- the replay loop --------------------------------------------------
  std::vector<std::vector<int>> truth(dataset.num_users);
  for (int w = options_.bootstrap_windows; w < options_.num_windows; ++w) {
    WindowReport window_report;
    window_report.window = w;
    window_report.generation = server.Current()->generation();

    // Ground truth: this window's NEW items per user — pairs already in
    // the train fold (window duplicates) are masked by serving and would
    // only distort the metric.
    for (std::vector<int>& row : truth) row.clear();
    for (const data::Interaction& interaction : log.window(w)) {
      if (ingestor.sampler()->IsPositive(interaction.user,
                                         interaction.item)) {
        continue;
      }
      std::vector<int>& row = truth[interaction.user];
      if (std::find(row.begin(), row.end(), interaction.item) == row.end()) {
        row.push_back(interaction.item);
      }
    }

    // Evaluate LIVE, before ingesting: the generation in service was
    // trained on windows < w only. Submissions run through the batched
    // worker path; per-user rankings are thread-count invariant and the
    // fold below is in ascending user order, so the metrics are too.
    std::vector<std::pair<int, std::future<serve::RankResponse>>> pending;
    for (int u = 0; u < dataset.num_users; ++u) {
      if (truth[u].empty()) continue;
      pending.emplace_back(u, server.Submit(u, options_.eval_k));
    }
    for (auto& [user, future] : pending) {
      serve::RankResponse response = future.get();
      ++window_report.eval_users;
      if (!response.status.ok()) {
        ++window_report.eval_failures;
        continue;
      }
      window_report.ndcg +=
          eval::NdcgAtK(response.items, truth[user], options_.eval_k);
      window_report.recall +=
          eval::RecallAtK(response.items, truth[user], options_.eval_k);
    }
    if (window_report.eval_users > 0) {
      window_report.ndcg /= static_cast<double>(window_report.eval_users);
      window_report.recall /= static_cast<double>(window_report.eval_users);
    }

    // Ingest the window into every incrementally-maintained structure.
    Timer ingest_timer;
    auto ingest_stats = ingestor.Ingest(log.window(w));
    if (!ingest_stats.ok()) {
      stop_load();
      return ingest_stats.status();
    }
    window_report.ingest = *ingest_stats;
    window_report.ingest_seconds = ingest_timer.ElapsedSeconds();
    window_report.train_size = ingestor.split().TrainSize();

    // Retrain: warm fine-tune from the previous generation's snapshot
    // (borrowing the ingestor's structures) or a full from-scratch Fit.
    const uint64_t next_generation =
        generation.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::string next_snapshot = snapshot_path(next_generation);
    Result<TrainRound> round = Status::OK();
    if (options_.full_retrain) {
      round = trainer.FitFull(ingestor.dataset(), ingestor.split(),
                              next_snapshot);
    } else {
      core::TrainResources resources = ingestor.Resources();
      round = trainer.Resume(prev_snapshot, ingestor.dataset(),
                             ingestor.split(), &resources, next_snapshot);
    }
    if (!round.ok()) {
      stop_load();
      return round.status();
    }
    window_report.train_seconds = round->train_seconds;
    window_report.snapshot_seconds = round->snapshot_seconds;
    window_report.warm = round->warm;
    window_report.resumed_trainer_state = round->resumed_trainer_state;

    // Background build + hot swap: snapshot load and index build happen
    // on the server's swap thread while the workers keep serving the old
    // generation; the driver only blocks on the publication signal.
    std::promise<Status> swapped;
    std::future<Status> swapped_future = swapped.get_future();
    Timer swap_timer;
    server.SwapWhenReady(
        [&ingestor, &factory, this, next_snapshot, next_generation] {
          return serve::ServableModel::FromSnapshot(
              next_snapshot, factory, &ingestor.split(), next_generation,
              options_.retrieval);
        },
        [&swapped](
            const Result<std::shared_ptr<const serve::ServableModel>>&
                result) {
          swapped.set_value(result.ok() ? Status::OK() : result.status());
        });
    const Status swap_status = swapped_future.get();
    window_report.swap_seconds = swap_timer.ElapsedSeconds();
    if (!swap_status.ok()) {
      stop_load();
      return swap_status;
    }
    prev_snapshot = next_snapshot;
    report.windows.push_back(window_report);
  }

  stop_load();
  server.Stop();  // drains the queue: every accepted callback has fired
  report.live_requests = load.completed.load(std::memory_order_relaxed);
  report.live_failures = load.failures.load(std::memory_order_relaxed);
  report.live_shed = load.shed.load(std::memory_order_relaxed);

  for (const WindowReport& window_report : report.windows) {
    report.total_train_seconds += window_report.train_seconds;
    report.mean_ndcg += window_report.ndcg;
    report.mean_recall += window_report.recall;
    report.total_eval_users += window_report.eval_users;
    report.total_eval_failures += window_report.eval_failures;
  }
  if (!report.windows.empty()) {
    report.mean_ndcg /= static_cast<double>(report.windows.size());
    report.mean_recall /= static_cast<double>(report.windows.size());
  }
  return report;
}

}  // namespace logirec::pipeline
