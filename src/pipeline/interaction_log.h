#ifndef LOGIREC_PIPELINE_INTERACTION_LOG_H_
#define LOGIREC_PIPELINE_INTERACTION_LOG_H_

#include <vector>

#include "data/dataset.h"

namespace logirec::pipeline {

/// Deterministic replay source for the continuous-learning pipeline:
/// slices a dataset's interaction log into `num_windows` time windows.
///
/// Windowing is per-user positional: each user's interactions are ordered
/// by (timestamp, then original log position — a stable sort), and window
/// w of a user with n interactions covers positions
/// [floor(n*w/W), floor(n*(w+1)/W)). Every user therefore advances
/// through the stream at their own rate, mirroring how a temporal split
/// would move its boundary forward, and every interaction lands in
/// exactly one window. Within a window, interactions are emitted
/// user-major (ascending user id, then per-user time order), so replay
/// order is a pure function of the dataset and W — the determinism
/// anchor for the whole pipeline.
class InteractionLog {
 public:
  /// Slices `dataset.interactions`. `num_windows` is clamped to >= 1.
  InteractionLog(const data::Dataset& dataset, int num_windows);

  int num_windows() const { return static_cast<int>(windows_.size()); }

  /// The interactions of window `w`, in replay order.
  const std::vector<data::Interaction>& window(int w) const {
    return windows_[w];
  }

  long total_interactions() const { return total_; }

  /// A catalog-only copy of the source dataset: same users, items, tags
  /// and taxonomy, zero interactions — the state a WindowIngestor starts
  /// from before the first window arrives.
  data::Dataset MakeBaseDataset() const;

 private:
  const data::Dataset* source_;
  std::vector<std::vector<data::Interaction>> windows_;
  long total_ = 0;
};

}  // namespace logirec::pipeline

#endif  // LOGIREC_PIPELINE_INTERACTION_LOG_H_
