#ifndef LOGIREC_PIPELINE_PIPELINE_H_
#define LOGIREC_PIPELINE_PIPELINE_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "data/dataset.h"
#include "pipeline/interaction_log.h"
#include "pipeline/warm_start.h"
#include "pipeline/window_ingestor.h"
#include "retrieval/retriever.h"
#include "serve/server.h"

namespace logirec::pipeline {

struct PipelineOptions {
  /// Replay windows the dataset is sliced into.
  int num_windows = 6;
  /// Leading windows ingested before the bootstrap full Fit; evaluation
  /// and retraining start at window `bootstrap_windows`.
  int bootstrap_windows = 2;
  /// Retraining mode per window: warm ResumeFit from the previous
  /// generation's snapshot (false) or a full from-scratch Fit (true, the
  /// cost/quality baseline).
  bool full_retrain = false;
  /// Cutoff of the per-window ranking evaluation.
  int eval_k = 20;
  /// Directory snapshots are written into (one per generation). Must
  /// exist.
  std::string snapshot_dir = ".";
  /// Number of background load threads hammering the server while
  /// windows retrain and swap (0 = off). Their request/failure counts
  /// feed the zero-failed-in-flight gate; they never touch the
  /// deterministic metrics.
  int live_load_threads = 0;
  WarmStartOptions trainer;
  retrieval::RetrievalOptions retrieval;
  serve::ServerOptions server;
};

/// Per-window outcome. Quality metrics come from the LIVE server — every
/// evaluated user is ranked through ModelServer::Submit against the
/// generation trained on the preceding windows, so the numbers measure
/// exactly what a client would have been served.
struct WindowReport {
  int window = 0;
  uint64_t generation = 0;    ///< generation that served this window
  long eval_users = 0;        ///< users with ground truth in this window
  long eval_failures = 0;     ///< failed rank requests (must stay 0)
  double ndcg = 0.0;          ///< mean NDCG@eval_k over eval_users
  double recall = 0.0;        ///< mean Recall@eval_k over eval_users
  IngestStats ingest;
  double ingest_seconds = 0.0;
  double train_seconds = 0.0;
  double snapshot_seconds = 0.0;
  double swap_seconds = 0.0;  ///< background build+swap wall time
  bool warm = false;
  bool resumed_trainer_state = false;
  long train_size = 0;        ///< train-fold size after this window
};

struct PipelineReport {
  std::vector<WindowReport> windows;  ///< evaluated windows only
  double bootstrap_train_seconds = 0.0;
  double total_train_seconds = 0.0;   ///< excluding bootstrap
  double mean_ndcg = 0.0;
  double mean_recall = 0.0;
  long total_eval_users = 0;
  long total_eval_failures = 0;
  /// Background live-load traffic (live_load_threads > 0): total
  /// completed requests and hard failures across the whole replay.
  /// Shed requests (admission-queue backpressure) are counted separately
  /// — backpressure is the contract, not a failure.
  long live_requests = 0;
  long live_failures = 0;
  long live_shed = 0;
};

/// The continuous-learning loop closed over live serving:
///
///   slice -> bootstrap Fit -> snapshot -> swap -> serve
///        -> [evaluate window t live -> ingest t -> warm retrain
///            -> snapshot -> background build + hot swap] per window.
///
/// Evaluation is strictly forward-looking: window t is scored by the
/// generation trained on windows < t, through the live server, before
/// its interactions are ingested. The subsequent swap runs on the
/// server's background swap thread (ModelServer::SwapWhenReady) with the
/// ANN index built before publication, so serving never pauses.
///
/// Determinism: with a fixed config seed and window schedule the
/// per-window metrics are a pure function of the inputs at any thread
/// count — ranking goes through the thread-count-invariant serving path
/// and users are folded in ascending id order.
class PipelineDriver {
 public:
  PipelineDriver(const PipelineOptions& options,
                 const core::TrainConfig& config);

  /// Replays `dataset` end to end. The dataset supplies the full
  /// interaction log; the driver re-slices it internally.
  Result<PipelineReport> Run(const data::Dataset& dataset);

 private:
  PipelineOptions options_;
  core::TrainConfig config_;
};

/// The ingestor options matching `model` under `config` — propagator
/// geometry/depth/norm and logic-engine settings aligned so borrowed
/// structures behave exactly like the owned rebuilds.
IngestorOptions MakeIngestorOptions(const std::string& model,
                                    const core::TrainConfig& config);

}  // namespace logirec::pipeline

#endif  // LOGIREC_PIPELINE_PIPELINE_H_
