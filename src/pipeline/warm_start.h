#ifndef LOGIREC_PIPELINE_WARM_START_H_
#define LOGIREC_PIPELINE_WARM_START_H_

#include <memory>
#include <string>

#include "core/recommender.h"
#include "core/snapshot.h"
#include "core/train_resources.h"
#include "data/dataset.h"
#include "util/status.h"

namespace logirec::pipeline {

struct WarmStartOptions {
  /// Model-zoo name. Must be a model with SupportsWarmStart() ==
  /// true for the warm path ("BPRMF", "HGCF", "LogiRec", "LogiRec++").
  std::string model = "LogiRec++";
  /// Epochs per warm fine-tune (<= 0 falls back to config.epochs).
  int fine_tune_epochs = 2;
  /// Snapshot storage dtype for the scoring tensors (the trainer-state
  /// trailer always stores exact f64).
  core::SnapshotDtype dtype = core::SnapshotDtype::kF64;
};

/// Outcome of one (re)train round.
struct TrainRound {
  double train_seconds = 0.0;    ///< Fit/ResumeFit wall time
  double snapshot_seconds = 0.0; ///< ModelSnapshot::Write wall time
  bool warm = false;             ///< true = ResumeFit, false = full Fit
  bool resumed_trainer_state = false;  ///< trailer was present and restored
};

/// The retraining half of the continuous-learning loop. Two entry points
/// with identical outputs (a trainer-state snapshot at `to_snapshot`):
///
///  * FitFull — fresh model, full Fit on the accumulated train fold (the
///    bootstrap round, and the per-window baseline of the warm-vs-full
///    comparison).
///  * Resume — restores the previous generation's snapshot (scoring
///    state + the optional trainer-state trailer, so the optimization
///    point carries over exactly), then fine-tunes a few epochs with
///    Recommender::ResumeFit, borrowing the pipeline's incrementally-
///    maintained structures through core::TrainResources. A scoring-only
///    snapshot degrades gracefully (ResumeFit re-initializes what the
///    trailer would have carried).
///
/// Every snapshot is written with the trainer-state trailer so the next
/// round can resume from it.
class WarmStartTrainer {
 public:
  /// `config` carries the full hyperparameter set; the snapshot restore
  /// path reconstructs models with THIS config (the snapshot header only
  /// records dim/layers), so fine-tuning keeps the pipeline's learning
  /// rate, margin, lambda and parallel mode.
  WarmStartTrainer(const WarmStartOptions& options,
                   const core::TrainConfig& config);

  /// Fresh Fit over `split.train`; writes the snapshot to `to_snapshot`.
  Result<TrainRound> FitFull(const data::Dataset& dataset,
                             const data::Split& split,
                             const std::string& to_snapshot);

  /// Restores `from_snapshot`, fine-tunes `fine_tune_epochs` on the
  /// extended fold (borrowing `resources` when non-null), writes
  /// `to_snapshot`.
  Result<TrainRound> Resume(const std::string& from_snapshot,
                            const data::Dataset& dataset,
                            const data::Split& split,
                            const core::TrainResources* resources,
                            const std::string& to_snapshot);

 private:
  Status WriteSnapshot(core::Recommender* model, const data::Dataset& dataset,
                       const std::string& path, double* seconds);

  WarmStartOptions options_;
  core::TrainConfig config_;
};

}  // namespace logirec::pipeline

#endif  // LOGIREC_PIPELINE_WARM_START_H_
