#ifndef LOGIREC_UTIL_STRING_UTIL_H_
#define LOGIREC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace logirec {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Locale-independent numeric parsing.
Result<int> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

}  // namespace logirec

#endif  // LOGIREC_UTIL_STRING_UTIL_H_
