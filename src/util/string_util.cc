#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace logirec {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<int> ParseInt(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(t);
  char* end = nullptr;
  long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty double");
  std::string buf(t);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? n : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace logirec
