#ifndef LOGIREC_UTIL_CSV_H_
#define LOGIREC_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace logirec {

/// In-memory CSV document: a header row plus data rows. Used for dataset
/// import/export and for dumping figure series (Figs. 5–8).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// Writes `table` to `path`, comma-separated. Fields containing commas or
/// quotes are quoted.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Reads a CSV file written by WriteCsv (or any simple comma-separated file
/// with a header row; quoted fields supported).
Result<CsvTable> ReadCsv(const std::string& path);

}  // namespace logirec

#endif  // LOGIREC_UTIL_CSV_H_
