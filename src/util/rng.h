#ifndef LOGIREC_UTIL_RNG_H_
#define LOGIREC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace logirec {

/// Deterministic pseudo-random number generator (SplitMix64 core with
/// xoshiro256** state advance). All experiments in the repository are
/// seeded, so every table and figure regenerates bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed);

  /// Derives an independent stream seed from a base seed plus up to two
  /// counters (e.g. epoch and shard index). Counter-based: the result is a
  /// pure function of its inputs, so worker threads can construct their own
  /// `Rng(MixSeed(seed, epoch, shard))` without any coordination, and the
  /// stream they draw is reproducible regardless of how many workers run.
  /// Mixing runs each word through the SplitMix64 finalizer so adjacent
  /// counters land in unrelated regions of seed space.
  static uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b = 0);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box–Muller (cached spare).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  int Categorical(const std::vector<double>& weights);

  /// Zipf-like rank sample over [0, n) with exponent `s` (s=0 → uniform).
  int Zipf(int n, double s);

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

 private:
  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace logirec

#endif  // LOGIREC_UTIL_RNG_H_
