#ifndef LOGIREC_UTIL_CRC32_H_
#define LOGIREC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace logirec {

/// CRC-32 (ISO 3309 / zlib polynomial 0xEDB88320) of `len` bytes at
/// `data`. Used by the binary model snapshots (core/snapshot.h) to detect
/// bit rot and truncation per tensor. To checksum a buffer incrementally,
/// feed the previous return value back through `seed`; the empty-input
/// CRC is 0.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace logirec

#endif  // LOGIREC_UTIL_CRC32_H_
