#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace logirec {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Rng::MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t x = seed;
  uint64_t h = SplitMix64(&x);
  x = h ^ a;
  h = SplitMix64(&x);
  x = h ^ b;
  return SplitMix64(&x);
}

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
  has_spare_ = false;
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

int Rng::UniformInt(int n) {
  LOGIREC_CHECK(n > 0);
  return static_cast<int>(NextU64() % static_cast<uint64_t>(n));
}

int Rng::UniformInt(int lo, int hi) {
  LOGIREC_CHECK(hi >= lo);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

int Rng::Categorical(const std::vector<double>& weights) {
  LOGIREC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  LOGIREC_CHECK(total > 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::Zipf(int n, double s) {
  LOGIREC_CHECK(n > 0);
  if (s <= 0.0) return UniformInt(n);
  // Inverse-CDF over precomputation-free harmonic approximation: rejection
  // would be overkill at our scale; do a direct linear scan for small n and
  // a two-stage scan otherwise.
  double total = 0.0;
  for (int i = 1; i <= n; ++i) total += std::pow(i, -s);
  double r = Uniform() * total;
  for (int i = 1; i <= n; ++i) {
    r -= std::pow(i, -s);
    if (r <= 0.0) return i - 1;
  }
  return n - 1;
}

}  // namespace logirec
