#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace logirec {
namespace {

std::string EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::vector<std::string> ParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeField(row[i]);
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first) {
      table.header = ParseLine(line);
      first = false;
    } else {
      table.rows.push_back(ParseLine(line));
    }
  }
  if (first) return Status::IoError("empty csv: " + path);
  return table;
}

}  // namespace logirec
