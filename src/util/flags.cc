#include "util/flags.h"

#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace logirec {

void FlagParser::AddInt(const std::string& name, int default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::fputs(Usage().c_str(), stdout);
      continue;
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    std::string name(arg.substr(0, eq));
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    Flag& flag = it->second;
    if (eq == std::string_view::npos) {
      if (flag.type != Type::kBool) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      flag.bool_value = true;
      continue;
    }
    std::string value(arg.substr(eq + 1));
    switch (flag.type) {
      case Type::kInt: {
        auto parsed = ParseInt(value);
        if (!parsed.ok()) return parsed.status();
        flag.int_value = *parsed;
        break;
      }
      case Type::kDouble: {
        auto parsed = ParseDouble(value);
        if (!parsed.ok()) return parsed.status();
        flag.double_value = *parsed;
        break;
      }
      case Type::kString:
        flag.string_value = value;
        break;
      case Type::kBool:
        flag.bool_value = (value == "1" || ToLower(value) == "true");
        break;
    }
  }
  return Status::OK();
}

const FlagParser::Flag* FlagParser::Find(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  LOGIREC_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  LOGIREC_CHECK_MSG(it->second.type == type, "flag type mismatch: " + name);
  return &it->second;
}

int FlagParser::GetInt(const std::string& name) const {
  return Find(name, Type::kInt)->int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return Find(name, Type::kDouble)->double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Find(name, Type::kString)->string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return Find(name, Type::kBool)->bool_value;
}

std::string FlagParser::Usage() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + "=";
    switch (flag.type) {
      case Type::kInt:
        out += StrFormat("%d", flag.int_value);
        break;
      case Type::kDouble:
        out += StrFormat("%g", flag.double_value);
        break;
      case Type::kString:
        out += flag.string_value;
        break;
      case Type::kBool:
        out += flag.bool_value ? "true" : "false";
        break;
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace logirec
