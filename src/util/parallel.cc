#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace logirec {

int DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : static_cast<int>(n);
}

int ResolveWorkerCount(int num_threads, int total) {
  if (total <= 0) return 0;
  int workers = num_threads > 0 ? num_threads : DefaultThreadCount();
  return std::min(workers, total);
}

void ParallelForWorker(int begin, int end,
                       const std::function<void(int worker, int i)>& fn,
                       int num_threads) {
  if (end <= begin) return;
  const int workers = ResolveWorkerCount(num_threads, end - begin);
  if (workers <= 1) {
    for (int i = begin; i < end; ++i) fn(0, i);
    return;
  }

  std::atomic<int> next{begin};
  auto work = [&](int worker) {
    // Chunked dynamic scheduling amortizes the atomic increment.
    constexpr int kChunk = 16;
    while (true) {
      int start = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= end) break;
      int stop = std::min(start + kChunk, end);
      for (int i = start; i < stop; ++i) fn(worker, i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int t = 0; t < workers - 1; ++t) {
    threads.emplace_back(work, t + 1);
  }
  work(0);
  for (auto& th : threads) th.join();
}

void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads) {
  ParallelForWorker(
      begin, end, [&fn](int /*worker*/, int i) { fn(i); }, num_threads);
}

}  // namespace logirec
