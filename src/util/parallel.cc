#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace logirec {

int DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : static_cast<int>(n);
}

int ResolveWorkerCount(int num_threads, int total) {
  if (total <= 0) return 0;
  int workers = num_threads > 0 ? num_threads : DefaultThreadCount();
  return std::min(workers, total);
}

namespace {

/// True while the current thread is executing inside a parallel region —
/// either as a pool worker or as the caller participating in its own
/// region. Nested ParallelFor calls from such a thread run inline
/// (serially) instead of going to the pool, so the pool can never
/// deadlock on itself.
thread_local bool t_in_parallel_region = false;

/// Persistent worker pool behind ParallelFor/ParallelForWorker.
///
/// Spawning a std::thread per call is fine for epoch-granularity loops,
/// but the sharded training engine dispatches a parallel region per batch
/// per propagation layer — thousands of regions per second — and thread
/// creation then dominates the runtime. Waking a pooled worker through a
/// condition variable costs microseconds instead.
///
/// One job runs at a time: an outer mutex serializes concurrent callers,
/// which keeps the scheduling state trivially simple. Workers are created
/// lazily up to the widest worker count ever requested and live for the
/// process lifetime (the singleton is intentionally leaked so worker
/// threads never race static destruction at exit).
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool* pool = new WorkerPool();
    return *pool;
  }

  /// Runs `fn(worker, i)` over [begin, end) with `workers` workers, the
  /// calling thread acting as worker 0. Blocks until every index is done.
  void Run(int begin, int end, int workers,
           const std::function<void(int, int)>& fn) {
    std::lock_guard<std::mutex> job_lock(job_mutex_);
    EnsureWorkers(workers - 1);
    int notified = 0;
    {
      std::lock_guard<std::mutex> lk(m_);
      next_.store(begin, std::memory_order_relaxed);
      end_ = end;
      fn_ = &fn;
      workers_wanted_ = workers;
      claimed_.store(1, std::memory_order_relaxed);  // caller is worker 0
      notified = static_cast<int>(threads_.size());
      pending_ = notified;
      ++generation_;
    }
    if (notified > 0) cv_.notify_all();
    RunChunks(0, fn);
    if (notified > 0) {
      std::unique_lock<std::mutex> lk(m_);
      done_cv_.wait(lk, [&] { return pending_ == 0; });
    }
    fn_ = nullptr;
  }

 private:
  // Every pool thread wakes per generation and must acknowledge (pending_
  // accounting), but only threads that claim a slot below the requested
  // worker count execute chunks — the rest go straight back to sleep.
  static constexpr int kMaxPoolThreads = 256;

  void EnsureWorkers(int needed) {
    std::lock_guard<std::mutex> lk(m_);
    needed = std::min(needed, kMaxPoolThreads);
    while (static_cast<int>(threads_.size()) < needed) {
      // A new worker must not react to generations that predate it.
      threads_.emplace_back([this, gen = generation_] { WorkerLoop(gen); });
    }
  }

  void WorkerLoop(uint64_t seen) {
    t_in_parallel_region = true;  // nested calls from fn run inline
    std::unique_lock<std::mutex> lk(m_);
    while (true) {
      cv_.wait(lk, [&] { return generation_ != seen; });
      seen = generation_;
      const std::function<void(int, int)>* fn = fn_;
      const int workers = workers_wanted_;
      lk.unlock();
      const int slot = claimed_.fetch_add(1, std::memory_order_relaxed);
      if (slot < workers) RunChunks(slot, *fn);
      lk.lock();
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }

  void RunChunks(int worker, const std::function<void(int, int)>& fn) {
    // Chunked dynamic scheduling amortizes the atomic increment.
    constexpr int kChunk = 16;
    const int end = end_;
    while (true) {
      const int start = next_.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= end) break;
      const int stop = std::min(start + kChunk, end);
      for (int i = start; i < stop; ++i) fn(worker, i);
    }
  }

  std::mutex job_mutex_;  // serializes whole jobs from concurrent callers

  std::mutex m_;  // guards the per-job state below
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  uint64_t generation_ = 0;
  int pending_ = 0;
  int workers_wanted_ = 0;
  int end_ = 0;
  const std::function<void(int, int)>* fn_ = nullptr;
  std::atomic<int> next_{0};
  std::atomic<int> claimed_{0};
};

}  // namespace

void ParallelForWorker(int begin, int end,
                       const std::function<void(int worker, int i)>& fn,
                       int num_threads) {
  if (end <= begin) return;
  const int workers = ResolveWorkerCount(num_threads, end - begin);
  if (workers <= 1 || t_in_parallel_region) {
    for (int i = begin; i < end; ++i) fn(0, i);
    return;
  }
  t_in_parallel_region = true;
  WorkerPool::Instance().Run(begin, end, workers, fn);
  t_in_parallel_region = false;
}

void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads) {
  ParallelForWorker(
      begin, end, [&fn](int /*worker*/, int i) { fn(i); }, num_threads);
}

}  // namespace logirec
