#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace logirec {

int DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : static_cast<int>(n);
}

void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads) {
  if (end <= begin) return;
  const int total = end - begin;
  int workers = num_threads > 0 ? num_threads : DefaultThreadCount();
  workers = std::min(workers, total);
  if (workers <= 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<int> next{begin};
  auto work = [&]() {
    // Chunked dynamic scheduling amortizes the atomic increment.
    constexpr int kChunk = 16;
    while (true) {
      int start = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= end) break;
      int stop = std::min(start + kChunk, end);
      for (int i = start; i < stop; ++i) fn(i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int t = 0; t < workers - 1; ++t) threads.emplace_back(work);
  work();
  for (auto& th : threads) th.join();
}

}  // namespace logirec
