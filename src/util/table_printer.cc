#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace logirec {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  LOGIREC_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = render_rule();
  out += render_row(header_);
  out += render_rule();
  for (const auto& row : rows_) {
    out += row.empty() ? render_rule() : render_row(row);
  }
  out += render_rule();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatMeanStd(double mean, double std_dev) {
  return StrFormat("%.2f±%.2f", mean, std_dev);
}

}  // namespace logirec
