#ifndef LOGIREC_UTIL_LOGGING_H_
#define LOGIREC_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace logirec {

/// Severity levels for the logging facility, ordered by importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line emitter; flushes on destruction. Not intended for
/// direct use — prefer the LOGIREC_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Emits one log line: `LOGIREC_LOG(kInfo) << "epoch " << e;`
#define LOGIREC_LOG(level)                                         \
  ::logirec::internal::LogMessage(::logirec::LogLevel::level,      \
                                  __FILE__, __LINE__)              \
      .stream()

/// Crash-with-message invariant check, active in all build types.
#define LOGIREC_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      LOGIREC_LOG(kError) << "CHECK failed: " #cond;                     \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define LOGIREC_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      LOGIREC_LOG(kError) << "CHECK failed: " #cond << " — " << (msg);   \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

}  // namespace logirec

#endif  // LOGIREC_UTIL_LOGGING_H_
