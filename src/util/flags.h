#ifndef LOGIREC_UTIL_FLAGS_H_
#define LOGIREC_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace logirec {

/// Minimal `--name=value` command-line flag parser used by benches and
/// examples. Unknown flags are an error so typos surface immediately.
///
/// Usage:
///   FlagParser flags;
///   flags.AddInt("epochs", 30, "training epochs");
///   flags.AddDouble("lambda", 0.1, "logic regularizer weight");
///   LOGIREC_CHECK(flags.Parse(argc, argv).ok());
///   int epochs = flags.GetInt("epochs");
class FlagParser {
 public:
  void AddInt(const std::string& name, int default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv; returns an error on unknown flags or malformed values.
  /// `--help` prints usage and sets help_requested().
  Status Parse(int argc, char** argv);

  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }

  /// Renders "--name=default  help" usage text.
  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    int int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const Flag* Find(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace logirec

#endif  // LOGIREC_UTIL_FLAGS_H_
