#ifndef LOGIREC_UTIL_PARALLEL_H_
#define LOGIREC_UTIL_PARALLEL_H_

#include <functional>

namespace logirec {

/// Runs `fn(i)` for i in [begin, end) across `num_threads` workers
/// (0 → hardware concurrency). Blocks until all iterations complete. The
/// callable must be safe to invoke concurrently for distinct indices.
void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads = 0);

/// Like ParallelFor, but the callable also receives the worker index
/// (0 <= worker < ResolveWorkerCount(num_threads, end - begin)), so
/// callers can maintain per-worker scratch buffers that are reused across
/// iterations without synchronization.
void ParallelForWorker(int begin, int end,
                       const std::function<void(int worker, int i)>& fn,
                       int num_threads = 0);

/// The number of workers ParallelFor/ParallelForWorker will actually use
/// for a range of `total` iterations (never more than one per iteration).
int ResolveWorkerCount(int num_threads, int total);

/// Returns the number of worker threads ParallelFor would use for
/// num_threads=0.
int DefaultThreadCount();

}  // namespace logirec

#endif  // LOGIREC_UTIL_PARALLEL_H_
