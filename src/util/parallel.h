#ifndef LOGIREC_UTIL_PARALLEL_H_
#define LOGIREC_UTIL_PARALLEL_H_

#include <functional>

namespace logirec {

/// Runs `fn(i)` for i in [begin, end) across `num_threads` workers
/// (0 → hardware concurrency). Blocks until all iterations complete. The
/// callable must be safe to invoke concurrently for distinct indices.
void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int num_threads = 0);

/// Returns the number of worker threads ParallelFor would use for
/// num_threads=0.
int DefaultThreadCount();

}  // namespace logirec

#endif  // LOGIREC_UTIL_PARALLEL_H_
