#ifndef LOGIREC_UTIL_STATUS_H_
#define LOGIREC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace logirec {

/// Error codes used across the library. The library does not throw across
/// public API boundaries; fallible operations return `Status` or `Result<T>`
/// (the Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a message on the error path.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a `T` or an error `Status`. Accessing the value of an
/// errored result aborts, so callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit so that `return value;` works from functions returning
  /// `Result<T>` (matches absl::StatusOr ergonomics).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(status_);
}

/// Propagates an error status from an expression returning `Status`.
#define LOGIREC_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::logirec::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace logirec

#endif  // LOGIREC_UTIL_STATUS_H_
