#ifndef LOGIREC_UTIL_TABLE_PRINTER_H_
#define LOGIREC_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace logirec {

/// Renders aligned ASCII tables like the paper's result tables. Used by the
/// bench harnesses so the regenerated rows read like Table II/III/IV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next row.
  void AddSeparator();

  /// Renders the table, padding every column to its widest cell.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats `mean ± std` percentages like the paper ("6.67±0.05").
std::string FormatMeanStd(double mean, double std_dev);

}  // namespace logirec

#endif  // LOGIREC_UTIL_TABLE_PRINTER_H_
