#include "core/negative_sampler.h"

#include "util/logging.h"

namespace logirec::core {

NegativeSampler::NegativeSampler(
    int num_items, const std::vector<std::vector<int>>& train_items)
    : num_items_(num_items), positives_(train_items.size()) {
  LOGIREC_CHECK(num_items > 0);
  for (size_t u = 0; u < train_items.size(); ++u) {
    positives_[u].insert(train_items[u].begin(), train_items[u].end());
  }
}

int NegativeSampler::Sample(int user, Rng* rng) const {
  int candidate = rng->UniformInt(num_items_);
  for (int attempt = 0; attempt < 32; ++attempt) {
    if (!positives_[user].count(candidate)) return candidate;
    candidate = rng->UniformInt(num_items_);
  }
  return candidate;  // pathological user interacting with almost everything
}

}  // namespace logirec::core
