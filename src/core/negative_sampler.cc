#include "core/negative_sampler.h"

#include "util/logging.h"

namespace logirec::core {

NegativeSampler::NegativeSampler(
    int num_items, const std::vector<std::vector<int>>& train_items)
    : num_items_(num_items), positives_(train_items.size()) {
  LOGIREC_CHECK(num_items > 0);
  for (size_t u = 0; u < train_items.size(); ++u) {
    std::vector<int>& pos = positives_[u];
    pos = train_items[u];
    std::sort(pos.begin(), pos.end());
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
  }
}

void NegativeSampler::AddPositive(int user, int item) {
  LOGIREC_CHECK(user >= 0 && user < static_cast<int>(positives_.size()));
  LOGIREC_CHECK(item >= 0 && item < num_items_);
  std::vector<int>& pos = positives_[user];
  const auto at = std::lower_bound(pos.begin(), pos.end(), item);
  if (at != pos.end() && *at == item) return;
  pos.insert(at, item);
}

int NegativeSampler::Sample(int user, Rng* rng) const {
  int candidate = rng->UniformInt(num_items_);
  for (int attempt = 0; attempt < 32; ++attempt) {
    if (!IsPositive(user, candidate)) return candidate;
    candidate = rng->UniformInt(num_items_);
  }
  return candidate;  // pathological user interacting with almost everything
}

}  // namespace logirec::core
