#ifndef LOGIREC_CORE_EMBEDDING_H_
#define LOGIREC_CORE_EMBEDDING_H_

#include "data/taxonomy.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace logirec::core {

using math::Matrix;

/// Initializes rows as Poincaré-ball points: small Gaussian around the
/// origin (stddev `scale`), projected into the ball.
void InitPoincareRows(Matrix* m, Rng* rng, double scale = 0.05);

/// Initializes rows as Lorentz hyperboloid points: Gaussian spatial part
/// (stddev `scale`), time component recomputed. Rows are (d+1)-wide.
void InitLorentzRows(Matrix* m, Rng* rng, double scale = 0.05);

/// Initializes tag hyperplane centers with a taxonomy-aware prior:
/// top-level tags sit near the origin (large enclosing radius, coarse
/// concept); deeper tags inherit their parent's direction with noise and
/// sit further out (small radius, fine concept). This mirrors the paper's
/// observation that granularity grows with distance to the origin.
void InitHyperplaneCenters(Matrix* m, const data::Taxonomy& taxonomy,
                           Rng* rng);

}  // namespace logirec::core

#endif  // LOGIREC_CORE_EMBEDDING_H_
