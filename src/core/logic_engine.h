#ifndef LOGIREC_CORE_LOGIC_ENGINE_H_
#define LOGIREC_CORE_LOGIC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/recommender.h"
#include "core/shard_grads.h"
#include "data/dataset.h"
#include "math/matrix.h"

namespace logirec::core {

/// Batched, deterministic executor of the logic-relation losses (Eqs.
/// 3-5 plus the intersection extension). Replaces the per-relation
/// scalar loops over data::LogicalRelations with a structure-of-arrays
/// relation store and a two-phase slot-fill / ordered-fold pipeline:
///
///  * SoA store — each relation family's endpoint ids live in flat
///    int arrays (item/tag, parent/child, a/b), so the hinge-distance
///    kernels stream contiguous index arrays instead of chasing
///    struct-of-pairs layouts, and the per-relation virtual-free inner
///    loops compile to runtime-dispatched AVX2 clones (math/simd.h).
///  * Per-tag ball cache — BallFromCenter's (o_c, r_c, ||c||, a, da/dn,
///    dr/dn) are pure functions of a tag's center row. The legacy loop
///    recomputed them once per *relation* (with two heap-allocated Vecs
///    each); the engine computes them once per *tag*, O(T·d) instead of
///    O(R·d), and rebuilds only when MarkTagsDirty() says the centers
///    moved. Cached values are computed with the exact expressions of
///    hyper::BallFromCenter/BallFromCenterVjp, so nothing changes at the
///    bit level.
///  * Determinism — ParallelMode::kSequential runs the literal legacy
///    loop (same scalar helpers, same order: the test oracle);
///    kDeterministic fills per-relation gradient slots in parallel
///    (RelationGradSlots) and folds them so every destination row
///    receives its contributions in relation order — a pure function of
///    the inputs, thread-count invariant, and (at full pass) bit-identical
///    to kSequential.
///  * Relation mini-batching — Options::relation_batch > 0 samples that
///    many relations per family per call from a counter-based stream
///    Rng(MixSeed(seed ^ salt, epoch, shard)), with loss and gradients
///    rescaled by |family| / n (unbiased). Default is the full pass.
///
/// All buffers are persistent: steady-state calls do not allocate.
class LogicEngine {
 public:
  struct Options {
    // Family switches (mirror the LogiRecConfig ablations); disabled
    // families are not ingested at all.
    bool use_membership = true;
    bool use_hierarchy = true;
    bool use_exclusion = true;
    bool use_intersection = false;
    /// Relations sampled per family per call; 0 = full pass.
    int relation_batch = 0;
    /// Base seed of the relation-sampling counter streams.
    uint64_t seed = 7;
  };

  LogicEngine(const data::LogicalRelations& relations, const Options& options);

  /// Invalidates the per-tag ball cache. Call after any step that moves
  /// tag centers; the next kDeterministic call rebuilds the cache.
  void MarkTagsDirty() { tags_dirty_ = true; }

  /// Accumulates the logic losses and their `lambda`-scaled gradients
  /// into `grad_items` / `grad_tags` (same contract as the scalar
  /// helpers: gradients scaled by lambda, the returned summed loss
  /// unscaled). `items` are the Poincaré item rows, `tag_centers` the
  /// hyperplane centers. (epoch, shard) key the relation-sampling stream
  /// when relation_batch > 0 and are ignored otherwise.
  double LossesAndGrads(const math::Matrix& items,
                        const math::Matrix& tag_centers, double lambda,
                        ParallelMode mode, int num_threads, int epoch,
                        int shard, math::Matrix* grad_items,
                        math::Matrix* grad_tags);

  /// Ingested relation count across the enabled families.
  long total_relations() const { return total_; }
  /// Effective relations processed per call under the current options
  /// (accounts for relation_batch).
  long relations_per_call() const;

  /// Streaming ingest: appends `delta`'s relations (respecting the same
  /// family switches as construction) to the store *incrementally* —
  /// family SoA arrays extended, existing destination-CSR entries
  /// renumbered in one pass to the new global indices, and the new
  /// entries merged into their rows at the positions a from-scratch
  /// rebuild over the concatenated relation set would give them, so the
  /// updated engine is element-wise identical to
  /// `LogicEngine(all_relations, options)` (asserted by the pipeline
  /// property tests). The per-tag ball cache stays VALID: appends add
  /// relations, not tag centers, so no rebuild is triggered unless the
  /// tag matrix itself changes shape.
  void AppendRelations(const data::LogicalRelations& delta);

  /// Introspection for the incremental-equals-rebuild property tests.
  /// `family` indexes (0 membership, 1 hierarchy, 2 exclusion,
  /// 3 intersection); x/y are the SoA endpoint arrays, base the family's
  /// first global relation slot.
  const std::vector<int>& family_x(int family) const;
  const std::vector<int>& family_y(int family) const;
  int family_base(int family) const;
  const std::vector<int>& item_offsets() const { return item_offsets_; }
  const std::vector<int>& item_rels() const { return item_rels_; }
  const std::vector<int>& tag_offsets() const { return tag_offsets_; }
  const std::vector<uint32_t>& tag_entries() const { return tag_entries_; }

 private:
  enum Kind { kMembership = 0, kHierarchy, kExclusion, kIntersection };

  /// One relation family's SoA endpoint arrays. `x` is the item (for
  /// membership) or the first tag (parent / a); `y` the tag / child / b.
  struct Family {
    std::vector<int> x, y;
    int base = 0;  ///< global slot index of this family's relation 0
    int size() const { return static_cast<int>(x.size()); }
  };

  /// Per-call view of one family: either the full SoA arrays or the
  /// sampled slice gathered into sx_/sy_, plus the unbiasing rescale.
  struct FamilyRun {
    Kind kind;
    int base = 0;   ///< global slot index of this run's position 0
    int count = 0;  ///< positions processed this call
    double rescale = 1.0;
    const int* xids = nullptr;
    const int* yids = nullptr;
  };

  void RefreshTagCache(const math::Matrix& tag_centers, int num_threads);
  /// Builds the per-call family runs; returns true when any family is
  /// sampled (sx_/sy_ hold the gathered endpoint ids for ALL positions).
  bool BuildRuns(int epoch, int shard, std::vector<FamilyRun>* runs);

  double SequentialPass(const math::Matrix& items,
                        const math::Matrix& tag_centers, double lambda,
                        int epoch, int shard, math::Matrix* grad_items,
                        math::Matrix* grad_tags);
  double DeterministicPass(const math::Matrix& items,
                           const math::Matrix& tag_centers, double lambda,
                           int num_threads, int epoch, int shard,
                           math::Matrix* grad_items, math::Matrix* grad_tags);

  Options options_;
  Family mem_, hie_, exc_, int_;
  long total_ = 0;
  int max_item_ = -1;  ///< largest item id referenced (memberships)
  int max_tag_ = -1;   ///< largest tag id referenced (any family)

  // Destination CSRs for the full-pass ordered fold: each item/tag row
  // lists the global relation indices that touch it, in relation-
  // processing order, so one worker per destination row applies that
  // row's contributions in the legacy accumulation order (tag-conflict-
  // free scatter). Tag entries encode (relation << 1) | endpoint, where
  // endpoint 0 reads GradX and 1 reads GradY.
  std::vector<int> item_offsets_, item_rels_;
  std::vector<int> tag_offsets_;
  std::vector<uint32_t> tag_entries_;

  // Per-tag ball cache (see class comment). Rebuilt by RefreshTagCache
  // when dirty or when the tag matrix changed shape.
  bool tags_dirty_ = true;
  math::Matrix ball_center_;  // num_tags x d
  std::vector<double> radius_, norm_, scale_a_, da_dn_, dr_dn_;

  // Persistent per-call scratch.
  RelationGradSlots slots_;
  std::vector<double> dist_sq_;
  std::vector<int> sx_, sy_;  ///< gathered endpoint ids (sampled calls)
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_LOGIC_ENGINE_H_
