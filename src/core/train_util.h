#ifndef LOGIREC_CORE_TRAIN_UTIL_H_
#define LOGIREC_CORE_TRAIN_UTIL_H_

#include <utility>
#include <vector>

#include "util/rng.h"

namespace logirec::core {

/// Flattens per-user training lists into (user, item) pairs in stable
/// user-major order — the unshuffled epoch base ordering. Built once per
/// training run; each epoch copies and reshuffles it in place.
std::vector<std::pair<int, int>> TrainPairs(
    const std::vector<std::vector<int>>& train_items);

/// Flattens per-user training lists into shuffled (user, item) pairs —
/// the per-epoch SGD ordering used by every model here. Equivalent to
/// TrainPairs + Rng::Shuffle (same RNG consumption).
std::vector<std::pair<int, int>> ShuffledTrainPairs(
    const std::vector<std::vector<int>>& train_items, Rng* rng);

/// Yields [begin, end) index ranges over `total` elements in chunks of
/// `batch_size` (the last chunk may be short).
std::vector<std::pair<int, int>> BatchRanges(int total, int batch_size);

}  // namespace logirec::core

#endif  // LOGIREC_CORE_TRAIN_UTIL_H_
