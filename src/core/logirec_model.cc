#include "core/logirec_model.h"

#include <cmath>

#include "core/embedding.h"
#include "core/logic_losses.h"
#include "core/negative_sampler.h"
#include "core/persistence.h"
#include "core/train_util.h"
#include "eval/evaluator.h"
#include "graph/propagation.h"
#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/maps.h"
#include "hyper/poincare.h"
#include "opt/optimizer.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace logirec::core {

using math::Matrix;

LogiRecModel::LogiRecModel(LogiRecConfig config)
    : config_(std::move(config)) {}

Status LogiRecModel::Fit(const data::Dataset& dataset,
                         const data::Split& split) {
  if (dataset.num_users <= 0 || dataset.num_items <= 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (static_cast<int>(split.train.size()) != dataset.num_users) {
    return Status::InvalidArgument("split does not match dataset");
  }
  relations_ = dataset.ExtractRelations(
      config_.exclusion_overlap_tolerance,
      config_.use_intersection ? config_.intersection_min_support : 0);
  if (config_.use_hyperbolic) {
    FitHyperbolic(dataset, split);
  } else {
    FitEuclidean(dataset, split);
  }
  fitted_ = true;
  return Status::OK();
}

void LogiRecModel::FitHyperbolic(const data::Dataset& dataset,
                                 const data::Split& split) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  const int nt = dataset.taxonomy.num_tags();
  Rng rng(config_.seed);

  user_lorentz_ = Matrix(nu, d + 1);
  item_poincare_ = Matrix(ni, d);
  tag_centers_ = Matrix(nt, d);
  InitLorentzRows(&user_lorentz_, &rng, 0.05);
  InitPoincareRows(&item_poincare_, &rng, 0.05);
  InitHyperplaneCenters(&tag_centers_, dataset.taxonomy, &rng);

  graph::BipartiteGraph graph(nu, ni, split.train);
  HyperbolicGcn hgcn(&graph, config_.use_hgcn ? config_.layers : 0,
                     config_.symmetric_gcn_norm ? graph::Norm::kSymmetric
                                                : graph::Norm::kReceiver);
  NegativeSampler sampler(ni, split.train);

  if (config_.use_mining) {
    weighting_ = std::make_unique<UserWeighting>(
        dataset, split.train, relations_,
        std::max(dataset.taxonomy.num_levels(), 1));
  }

  opt::LorentzRsgd user_opt(config_.learning_rate, config_.grad_clip);
  opt::PoincareRsgd item_opt(config_.learning_rate, config_.grad_clip,
                             config_.use_eq17_exp_map);
  opt::PoincareRsgd tag_opt(config_.learning_rate, config_.grad_clip,
                            config_.use_eq17_exp_map);

  Matrix item_lorentz(ni, d + 1);
  auto lift_items = [&]() {
    ParallelFor(0, ni, [&](int v) {
      const math::Vec x = hyper::PoincareToLorentz(item_poincare_.Row(v));
      math::Copy(x, item_lorentz.Row(v));
    });
  };

  // Early-stopping state: validation Recall@10 probe over the current
  // post-GCN embeddings, snapshotting the best parameters.
  struct Snapshot {
    Matrix user, item, tags;
  };
  Snapshot best;
  double best_metric = -1.0;
  int evals_without_improvement = 0;
  const bool early_stop = config_.early_stopping_patience > 0;
  std::unique_ptr<eval::Evaluator> validator;
  if (early_stop) {
    validator = std::make_unique<eval::Evaluator>(&split, ni,
                                                  std::vector<int>{10});
  }
  struct SnapshotScorer : eval::Scorer {
    const Matrix* fu;
    const Matrix* fv;
    void ScoreItems(int user, std::vector<double>* out) const override {
      out->resize(fv->rows());
      for (int v = 0; v < fv->rows(); ++v) {
        (*out)[v] = -hyper::LorentzDistance(fu->Row(user), fv->Row(v));
      }
    }
  };

  const double lam = config_.lambda;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    auto pairs = ShuffledTrainPairs(split.train, &rng);
    const auto batches =
        BatchRanges(static_cast<int>(pairs.size()), config_.batch_size);
    double rec_loss = 0.0, logic_loss = 0.0;
    long active = 0;
    bool granularity_fresh = false;

    for (const auto& [b0, b1] : batches) {
      // ---- forward: lift items to the Lorentz model and propagate ------
      lift_items();
      Matrix fu, fv;
      hgcn.Forward(user_lorentz_, item_lorentz, &fu, &fv);
      if (weighting_ && !granularity_fresh) {
        weighting_->UpdateGranularity(fu);
        granularity_fresh = true;
      }

      // ---- L_Rec (Eq. 9 / Eq. 15): LMNN hinge on this batch ------------
      Matrix gfu(nu, d + 1), gfv(ni, d + 1);
      for (int i = b0; i < b1; ++i) {
        const auto [u, pos] = pairs[i];
        const double w = weighting_ ? weighting_->Alpha(u) : 1.0;
        for (int k = 0; k < config_.negatives_per_positive; ++k) {
          const int neg = sampler.Sample(u, &rng);
          const double dpos = hyper::LorentzDistance(fu.Row(u), fv.Row(pos));
          const double dneg = hyper::LorentzDistance(fu.Row(u), fv.Row(neg));
          const double hinge = config_.margin + dpos - dneg;
          if (hinge <= 0.0) continue;
          rec_loss += w * hinge;
          ++active;
          hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(pos), w, gfu.Row(u),
                                     gfv.Row(pos));
          hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(neg), -w, gfu.Row(u),
                                     gfv.Row(neg));
        }
      }

      // ---- backward through the HGCN and the diffeomorphism ------------
      Matrix gu(nu, d + 1), gvh(ni, d + 1);
      if (config_.detach_gcn_backward) {
        // Truncated-backprop ablation: treat the propagation as constant.
        gu = gfu;
        gvh = gfv;
      } else {
        hgcn.Backward(gfu, gfv, &gu, &gvh);
      }
      Matrix gv(ni, d);
      ParallelFor(0, ni, [&](int v) {
        hyper::PoincareToLorentzVjp(item_poincare_.Row(v), gvh.Row(v),
                                    gv.Row(v));
      });

      // ---- logic losses (Eqs. 3-5), weighted by lambda ------------------
      Matrix gt(nt, d);
      if (lam > 0.0) {
        if (config_.use_membership) {
          for (const auto& [item, tag] : relations_.memberships) {
            logic_loss += MembershipLossAndGrad(
                item_poincare_.Row(item), tag_centers_.Row(tag), lam,
                gv.Row(item), gt.Row(tag));
          }
        }
        if (config_.use_hierarchy) {
          for (const data::HierarchyPair& h : relations_.hierarchy) {
            logic_loss += HierarchyLossAndGrad(
                tag_centers_.Row(h.parent), tag_centers_.Row(h.child), lam,
                gt.Row(h.parent), gt.Row(h.child));
          }
        }
        if (config_.use_exclusion) {
          for (const data::ExclusionPair& e : relations_.exclusions) {
            logic_loss += ExclusionLossAndGrad(
                tag_centers_.Row(e.a), tag_centers_.Row(e.b), lam,
                gt.Row(e.a), gt.Row(e.b));
          }
        }
        if (config_.use_intersection) {
          for (const data::IntersectionPair& p : relations_.intersections) {
            logic_loss += IntersectionLossAndGrad(
                tag_centers_.Row(p.a), tag_centers_.Row(p.b), lam,
                gt.Row(p.a), gt.Row(p.b));
          }
        }
      }

      // ---- Riemannian SGD updates ---------------------------------------
      ParallelFor(0, nu, [&](int u) {
        user_opt.Step(u, user_lorentz_.Row(u), gu.Row(u));
      });
      ParallelFor(0, ni, [&](int v) {
        item_opt.Step(v, item_poincare_.Row(v), gv.Row(v));
        hyper::ProjectToBall(item_poincare_.Row(v));
      });
      if (lam > 0.0) {
        ParallelFor(0, nt, [&](int t) {
          tag_opt.Step(t, tag_centers_.Row(t), gt.Row(t));
          hyper::ClampHyperplaneCenter(tag_centers_.Row(t));
        });
      }
    }

    if (config_.verbose && (epoch % 5 == 0 || epoch + 1 == config_.epochs)) {
      LOGIREC_LOG(kInfo) << name() << " epoch " << epoch << " rec_loss="
                         << rec_loss << " logic_loss=" << logic_loss
                         << " active=" << active;
    }

    if (early_stop && (epoch + 1) % config_.eval_every == 0) {
      lift_items();
      Matrix fu, fv;
      hgcn.Forward(user_lorentz_, item_lorentz, &fu, &fv);
      SnapshotScorer scorer;
      scorer.fu = &fu;
      scorer.fv = &fv;
      const double metric =
          validator->Evaluate(scorer, /*use_validation=*/true)
              .Get("Recall@10");
      if (metric > best_metric) {
        best_metric = metric;
        best = {user_lorentz_, item_poincare_, tag_centers_};
        evals_without_improvement = 0;
      } else if (++evals_without_improvement >=
                 config_.early_stopping_patience) {
        if (config_.verbose) {
          LOGIREC_LOG(kInfo) << name() << " early stop at epoch " << epoch
                             << " (best val Recall@10=" << best_metric
                             << ")";
        }
        break;
      }
    }
  }
  if (early_stop && best_metric >= 0.0) {
    user_lorentz_ = std::move(best.user);
    item_poincare_ = std::move(best.item);
    tag_centers_ = std::move(best.tags);
  }

  // Cache final embeddings for scoring.
  lift_items();
  hgcn.Forward(user_lorentz_, item_lorentz, &final_user_, &final_item_);
  if (weighting_) weighting_->UpdateGranularity(final_user_);
}

void LogiRecModel::FitEuclidean(const data::Dataset& dataset,
                                const data::Split& split) {
  // The "w/o Hyper" ablation: identical architecture, but embeddings live
  // in flat R^d — Euclidean distances, no log/exp maps, plain SGD. The tag
  // balls keep the same (o_c, r_c) construction so the logic losses stay
  // comparable.
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  const int nt = dataset.taxonomy.num_tags();
  Rng rng(config_.seed);

  user_euclidean_ = Matrix(nu, d);
  item_poincare_ = Matrix(ni, d);
  tag_centers_ = Matrix(nt, d);
  user_euclidean_.FillGaussian(&rng, 0.05);
  item_poincare_.FillGaussian(&rng, 0.05);
  InitHyperplaneCenters(&tag_centers_, dataset.taxonomy, &rng);

  graph::BipartiteGraph graph(nu, ni, split.train);
  graph::GcnPropagator prop(&graph, config_.use_hgcn ? config_.layers : 0);
  NegativeSampler sampler(ni, split.train);

  if (config_.use_mining) {
    weighting_ = std::make_unique<UserWeighting>(
        dataset, split.train, relations_,
        std::max(dataset.taxonomy.num_levels(), 1));
  }

  opt::SgdOptimizer user_opt(config_.learning_rate, config_.l2,
                             config_.grad_clip);
  opt::SgdOptimizer item_opt(config_.learning_rate, config_.l2,
                             config_.grad_clip);
  opt::SgdOptimizer tag_opt(config_.learning_rate, 0.0, config_.grad_clip);

  const bool identity = (prop.layers() == 0);
  const double lam = config_.lambda;

  auto update_granularity = [&](const Matrix& fu) {
    // Euclidean granularity proxy: lift to the hyperboloid and measure
    // the distance to the origin there.
    Matrix lifted(nu, d + 1);
    ParallelFor(0, nu, [&](int u) {
      auto row = lifted.Row(u);
      for (int k = 0; k < d; ++k) row[k + 1] = fu.At(u, k);
      hyper::ProjectToHyperboloid(row);
    });
    weighting_->UpdateGranularity(lifted);
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    auto pairs = ShuffledTrainPairs(split.train, &rng);
    const auto batches =
        BatchRanges(static_cast<int>(pairs.size()), config_.batch_size);
    bool granularity_fresh = false;

    for (const auto& [b0, b1] : batches) {
      Matrix fu, fv;
      if (identity) {
        fu = user_euclidean_;
        fv = item_poincare_;
      } else {
        prop.Forward(user_euclidean_, item_poincare_, &fu, &fv,
                     /*include_layer0=*/false);
      }
      if (weighting_ && !granularity_fresh) {
        update_granularity(fu);
        granularity_fresh = true;
      }

      Matrix gfu(nu, d), gfv(ni, d);
      for (int i = b0; i < b1; ++i) {
        const auto [u, pos] = pairs[i];
        const double w = weighting_ ? weighting_->Alpha(u) : 1.0;
        for (int k = 0; k < config_.negatives_per_positive; ++k) {
          const int neg = sampler.Sample(u, &rng);
          const double dpos = math::Distance(fu.Row(u), fv.Row(pos));
          const double dneg = math::Distance(fu.Row(u), fv.Row(neg));
          if (config_.margin + dpos - dneg <= 0.0) continue;
          auto add_grad = [&](int item, double sign) {
            const double dist = sign > 0 ? dpos : dneg;
            const double denom = std::max(dist, 1e-12);
            auto gu_row = gfu.Row(u);
            auto gv_row = gfv.Row(item);
            for (int kk = 0; kk < d; ++kk) {
              const double g =
                  sign * w * (fu.At(u, kk) - fv.At(item, kk)) / denom;
              gu_row[kk] += g;
              gv_row[kk] -= g;
            }
          };
          add_grad(pos, +1.0);
          add_grad(neg, -1.0);
        }
      }

      Matrix gu(nu, d), gv(ni, d);
      if (identity) {
        gu = gfu;
        gv = gfv;
      } else {
        prop.Backward(gfu, gfv, &gu, &gv, /*include_layer0=*/false);
      }

      Matrix gt(nt, d);
      if (lam > 0.0) {
        if (config_.use_membership) {
          for (const auto& [item, tag] : relations_.memberships) {
            MembershipLossAndGrad(item_poincare_.Row(item),
                                  tag_centers_.Row(tag), lam, gv.Row(item),
                                  gt.Row(tag));
          }
        }
        if (config_.use_hierarchy) {
          for (const data::HierarchyPair& h : relations_.hierarchy) {
            HierarchyLossAndGrad(tag_centers_.Row(h.parent),
                                 tag_centers_.Row(h.child), lam,
                                 gt.Row(h.parent), gt.Row(h.child));
          }
        }
        if (config_.use_exclusion) {
          for (const data::ExclusionPair& e : relations_.exclusions) {
            ExclusionLossAndGrad(tag_centers_.Row(e.a),
                                 tag_centers_.Row(e.b), lam, gt.Row(e.a),
                                 gt.Row(e.b));
          }
        }
        if (config_.use_intersection) {
          for (const data::IntersectionPair& p : relations_.intersections) {
            IntersectionLossAndGrad(tag_centers_.Row(p.a),
                                    tag_centers_.Row(p.b), lam, gt.Row(p.a),
                                    gt.Row(p.b));
          }
        }
      }

      ParallelFor(0, nu, [&](int u) {
        user_opt.Step(u, user_euclidean_.Row(u), gu.Row(u));
      });
      ParallelFor(0, ni, [&](int v) {
        item_opt.Step(v, item_poincare_.Row(v), gv.Row(v));
      });
      if (lam > 0.0) {
        ParallelFor(0, nt, [&](int t) {
          tag_opt.Step(t, tag_centers_.Row(t), gt.Row(t));
          hyper::ClampHyperplaneCenter(tag_centers_.Row(t));
        });
      }
    }
  }

  if (identity) {
    final_user_ = user_euclidean_;
    final_item_ = item_poincare_;
  } else {
    prop.Forward(user_euclidean_, item_poincare_, &final_user_, &final_item_,
                 /*include_layer0=*/false);
  }
}

void LogiRecModel::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK_MSG(fitted_, "ScoreItems() before Fit()");
  out->resize(final_item_.rows());
  const auto u = final_user_.Row(user);
  if (config_.use_hyperbolic) {
    for (int v = 0; v < final_item_.rows(); ++v) {
      (*out)[v] = -hyper::LorentzDistance(u, final_item_.Row(v));
    }
  } else {
    for (int v = 0; v < final_item_.rows(); ++v) {
      (*out)[v] = -math::Distance(u, final_item_.Row(v));
    }
  }
}

Status LogiRecModel::Save(const std::string& dir) const {
  if (!fitted_) return Status::FailedPrecondition("Save() before Fit()");
  CsvTable meta;
  meta.header = {"key", "value"};
  meta.rows = {
      {"dim", StrFormat("%d", config_.dim)},
      {"hyperbolic", config_.use_hyperbolic ? "1" : "0"},
      {"mining", config_.use_mining ? "1" : "0"},
  };
  LOGIREC_RETURN_IF_ERROR(WriteCsv(dir + "/meta.csv", meta));
  LOGIREC_RETURN_IF_ERROR(
      SaveMatrixCsv(final_user_, dir + "/final_user.csv"));
  LOGIREC_RETURN_IF_ERROR(
      SaveMatrixCsv(final_item_, dir + "/final_item.csv"));
  LOGIREC_RETURN_IF_ERROR(
      SaveMatrixCsv(item_poincare_, dir + "/item_poincare.csv"));
  return SaveMatrixCsv(tag_centers_, dir + "/tag_centers.csv");
}

Result<LogiRecModel> LogiRecModel::Load(const std::string& dir) {
  auto meta = ReadCsv(dir + "/meta.csv");
  if (!meta.ok()) return meta.status();
  LogiRecConfig config;
  for (const auto& row : meta->rows) {
    if (row.size() != 2) return Status::IoError("bad meta row");
    if (row[0] == "dim") {
      auto dim = ParseInt(row[1]);
      if (!dim.ok()) return dim.status();
      config.dim = *dim;
    } else if (row[0] == "hyperbolic") {
      config.use_hyperbolic = (row[1] == "1");
    } else if (row[0] == "mining") {
      config.use_mining = (row[1] == "1");
    }
  }
  LogiRecModel model(config);
  auto final_user = LoadMatrixCsv(dir + "/final_user.csv");
  if (!final_user.ok()) return final_user.status();
  auto final_item = LoadMatrixCsv(dir + "/final_item.csv");
  if (!final_item.ok()) return final_item.status();
  auto item_poincare = LoadMatrixCsv(dir + "/item_poincare.csv");
  if (!item_poincare.ok()) return item_poincare.status();
  auto tag_centers = LoadMatrixCsv(dir + "/tag_centers.csv");
  if (!tag_centers.ok()) return tag_centers.status();
  model.final_user_ = std::move(*final_user);
  model.final_item_ = std::move(*final_item);
  model.item_poincare_ = std::move(*item_poincare);
  model.tag_centers_ = std::move(*tag_centers);
  model.fitted_ = true;
  return model;
}

LogiRecModel::LogicReport LogiRecModel::ReportLogicLosses(
    const data::Dataset& dataset) const {
  LogicReport report;
  (void)dataset;
  long n_mem = 0, n_hie = 0, n_ex = 0;
  for (const auto& [item, tag] : relations_.memberships) {
    report.mean_membership +=
        MembershipLoss(item_poincare_.Row(item), tag_centers_.Row(tag));
    ++n_mem;
  }
  for (const data::HierarchyPair& h : relations_.hierarchy) {
    report.mean_hierarchy +=
        HierarchyLoss(tag_centers_.Row(h.parent), tag_centers_.Row(h.child));
    ++n_hie;
  }
  for (const data::ExclusionPair& e : relations_.exclusions) {
    report.mean_exclusion +=
        ExclusionLoss(tag_centers_.Row(e.a), tag_centers_.Row(e.b));
    ++n_ex;
  }
  if (n_mem > 0) report.mean_membership /= n_mem;
  if (n_hie > 0) report.mean_hierarchy /= n_hie;
  if (n_ex > 0) report.mean_exclusion /= n_ex;
  return report;
}

}  // namespace logirec::core
