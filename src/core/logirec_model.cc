#include "core/logirec_model.h"

#include <algorithm>
#include <cmath>

#include "core/embedding.h"
#include "core/logic_engine.h"
#include "core/logic_losses.h"
#include "core/persistence.h"
#include "core/shard_grads.h"
#include "core/train_resources.h"
#include "graph/propagation.h"
#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/maps.h"
#include "hyper/poincare.h"
#include "math/kernels.h"
#include "opt/optimizer.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace logirec::core {

using math::Matrix;

/// Training-only resources. Exactly one of the {hgcn} / {prop} propagator
/// pair and one optimizer family is populated, depending on
/// config_.use_hyperbolic. The graph/propagator/logic structures come in
/// owned/borrowed pairs: Fit() allocates the owned_* slots and points the
/// raw views at them; ResumeFit() may instead borrow the pipeline's
/// incrementally-maintained copies (core/train_resources.h), leaving the
/// owned_* slots null. Batch code only ever touches the raw views.
struct LogiRecModel::TrainState {
  std::unique_ptr<graph::BipartiteGraph> owned_graph;
  std::unique_ptr<HyperbolicGcn> owned_hgcn;
  std::unique_ptr<graph::GcnPropagator> owned_prop;
  std::unique_ptr<LogicEngine> owned_logic;
  const graph::BipartiteGraph* graph = nullptr;
  // Hyperbolic mode.
  HyperbolicGcn* hgcn = nullptr;
  std::unique_ptr<opt::LorentzRsgd> user_rsgd;
  std::unique_ptr<opt::PoincareRsgd> item_rsgd, tag_rsgd;
  Matrix item_lorentz;  // lifted items, num_items x (d+1)
  // Euclidean mode.
  graph::GcnPropagator* prop = nullptr;
  std::unique_ptr<opt::SgdOptimizer> user_sgd, item_sgd, tag_sgd;
  bool identity = false;  // prop has zero layers
  // Batched executor of the logic-relation losses (SoA store + cached
  // per-tag balls + deterministic slot-fill/ordered-fold kernels).
  LogicEngine* logic = nullptr;
  // The LogiRec++ granularity refresh runs once per epoch, on the first
  // batch that needs Alpha().
  int granularity_epoch = -1;
  // Per-epoch wall-time phase counters, drained by DrainEpochTimers().
  double logic_seconds = 0.0;
  double mining_seconds = 0.0;
  // Persistent per-batch scratch (forward outputs, gradient accumulators,
  // per-pair slots for the deterministic pipeline): Reset/Shape reuse
  // capacity, so steady-state batches do not allocate.
  Matrix fu, fv, gfu, gfv, gu, gvh, gv, gt;
  PairGradSlots slots;
};

namespace {

void LiftItems(const Matrix& poincare, Matrix* lorentz, int num_threads) {
  ParallelFor(0, poincare.rows(), [&](int v) {
    const math::Vec x = hyper::PoincareToLorentz(poincare.Row(v));
    math::Copy(x, lorentz->Row(v));
  }, num_threads);
}

std::unique_ptr<LogicEngine> MakeLogicEngine(
    const LogiRecConfig& config, const data::LogicalRelations& relations) {
  LogicEngine::Options opts;
  opts.use_membership = config.use_membership;
  opts.use_hierarchy = config.use_hierarchy;
  opts.use_exclusion = config.use_exclusion;
  opts.use_intersection = config.use_intersection;
  opts.relation_batch = config.logic_batch;
  opts.seed = config.seed;
  return std::make_unique<LogicEngine>(relations, opts);
}

}  // namespace

LogiRecModel::LogiRecModel(LogiRecConfig config)
    : config_(std::move(config)) {}

LogiRecModel::~LogiRecModel() = default;
LogiRecModel::LogiRecModel(LogiRecModel&&) noexcept = default;
LogiRecModel& LogiRecModel::operator=(LogiRecModel&&) noexcept = default;

Status LogiRecModel::Fit(const data::Dataset& dataset,
                         const data::Split& split) {
  if (dataset.num_users <= 0 || dataset.num_items <= 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (static_cast<int>(split.train.size()) != dataset.num_users) {
    return Status::InvalidArgument("split does not match dataset");
  }
  relations_ = dataset.ExtractRelations(
      config_.exclusion_overlap_tolerance,
      config_.use_intersection ? config_.intersection_min_support : 0);
  if (config_.use_hyperbolic) {
    FitHyperbolic(dataset, split);
  } else {
    FitEuclidean(dataset, split);
  }
  fitted_ = true;
  return Status::OK();
}

void LogiRecModel::FitHyperbolic(const data::Dataset& dataset,
                                 const data::Split& split) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  const int nt = dataset.taxonomy.num_tags();
  Rng rng(config_.seed);

  user_lorentz_ = Matrix(nu, d + 1);
  item_poincare_ = Matrix(ni, d);
  tag_centers_ = Matrix(nt, d);
  InitLorentzRows(&user_lorentz_, &rng, 0.05);
  InitPoincareRows(&item_poincare_, &rng, 0.05);
  InitHyperplaneCenters(&tag_centers_, dataset.taxonomy, &rng);

  ts_ = std::make_unique<TrainState>();
  ts_->owned_graph =
      std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
  ts_->graph = ts_->owned_graph.get();
  ts_->owned_hgcn = std::make_unique<HyperbolicGcn>(
      ts_->graph, config_.use_hgcn ? config_.layers : 0,
      config_.symmetric_gcn_norm ? graph::Norm::kSymmetric
                                 : graph::Norm::kReceiver,
      config_.num_threads);
  ts_->hgcn = ts_->owned_hgcn.get();

  if (config_.use_mining) {
    weighting_ = std::make_unique<UserWeighting>(
        dataset, split.train, relations_,
        std::max(dataset.taxonomy.num_levels(), 1), config_.num_threads);
  }

  ts_->owned_logic = MakeLogicEngine(config_, relations_);
  ts_->logic = ts_->owned_logic.get();
  ts_->user_rsgd = std::make_unique<opt::LorentzRsgd>(config_.learning_rate,
                                                      config_.grad_clip);
  ts_->item_rsgd = std::make_unique<opt::PoincareRsgd>(
      config_.learning_rate, config_.grad_clip, config_.use_eq17_exp_map);
  ts_->tag_rsgd = std::make_unique<opt::PoincareRsgd>(
      config_.learning_rate, config_.grad_clip, config_.use_eq17_exp_map);
  ts_->item_lorentz = Matrix(ni, d + 1);

  Trainer trainer(config_);
  trainer.Train(this, split, ni, &rng, this);
  ts_.reset();
}

void LogiRecModel::FitEuclidean(const data::Dataset& dataset,
                                const data::Split& split) {
  // The "w/o Hyper" ablation: identical architecture, but embeddings live
  // in flat R^d — Euclidean distances, no log/exp maps, plain SGD. The tag
  // balls keep the same (o_c, r_c) construction so the logic losses stay
  // comparable.
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  const int nt = dataset.taxonomy.num_tags();
  Rng rng(config_.seed);

  user_euclidean_ = Matrix(nu, d);
  item_poincare_ = Matrix(ni, d);
  tag_centers_ = Matrix(nt, d);
  user_euclidean_.FillGaussian(&rng, 0.05);
  item_poincare_.FillGaussian(&rng, 0.05);
  InitHyperplaneCenters(&tag_centers_, dataset.taxonomy, &rng);

  ts_ = std::make_unique<TrainState>();
  ts_->owned_graph =
      std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
  ts_->graph = ts_->owned_graph.get();
  ts_->owned_prop = std::make_unique<graph::GcnPropagator>(
      ts_->graph, config_.use_hgcn ? config_.layers : 0,
      graph::Norm::kReceiver, config_.num_threads);
  ts_->prop = ts_->owned_prop.get();
  ts_->identity = (ts_->prop->layers() == 0);

  if (config_.use_mining) {
    weighting_ = std::make_unique<UserWeighting>(
        dataset, split.train, relations_,
        std::max(dataset.taxonomy.num_levels(), 1), config_.num_threads);
  }

  ts_->owned_logic = MakeLogicEngine(config_, relations_);
  ts_->logic = ts_->owned_logic.get();
  ts_->user_sgd = std::make_unique<opt::SgdOptimizer>(
      config_.learning_rate, config_.l2, config_.grad_clip);
  ts_->item_sgd = std::make_unique<opt::SgdOptimizer>(
      config_.learning_rate, config_.l2, config_.grad_clip);
  ts_->tag_sgd = std::make_unique<opt::SgdOptimizer>(config_.learning_rate,
                                                     0.0, config_.grad_clip);

  Trainer trainer(config_);
  trainer.Train(this, split, ni, &rng, this);
  ts_.reset();
}

double LogiRecModel::TrainOnBatch(const BatchContext& ctx) {
  return config_.use_hyperbolic ? TrainOnBatchHyperbolic(ctx)
                                : TrainOnBatchEuclidean(ctx);
}

void LogiRecModel::CollectTrainerState(ParameterSet* state) {
  // The scoring state already persists item_poincare_ and tag_centers_;
  // the only training parameter missing from it is the pre-propagation
  // user table of the active geometry.
  if (config_.use_hyperbolic) {
    state->Add(&user_lorentz_);
  } else {
    state->Add(&user_euclidean_);
  }
}

Status LogiRecModel::ResumeFit(const data::Dataset& dataset,
                               const data::Split& split, int epochs,
                               const TrainResources* resources) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  const int nt = dataset.taxonomy.num_tags();
  if (nu <= 0 || ni <= 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (static_cast<int>(split.train.size()) != nu) {
    return Status::InvalidArgument("split does not match dataset");
  }
  if (!fitted_) {
    return Status::FailedPrecondition(
        name() + "::ResumeFit needs a fitted or snapshot-restored model");
  }
  if (item_poincare_.rows() != ni || item_poincare_.cols() != d) {
    return Status::InvalidArgument(StrFormat(
        "%s::ResumeFit: item table is %dx%d but the dataset/config wants "
        "%dx%d",
        name().c_str(), item_poincare_.rows(), item_poincare_.cols(), ni,
        d));
  }
  if (tag_centers_.rows() != nt) {
    return Status::InvalidArgument(StrFormat(
        "%s::ResumeFit: tag table has %d rows but the taxonomy has %d "
        "tags",
        name().c_str(), tag_centers_.rows(), nt));
  }

  // Relation store: borrow the pipeline's incrementally-grown set when
  // provided, else re-extract from the dataset exactly as Fit() does.
  if (resources != nullptr && resources->relations != nullptr) {
    relations_ = *resources->relations;
  } else {
    relations_ = dataset.ExtractRelations(
        config_.exclusion_overlap_tolerance,
        config_.use_intersection ? config_.intersection_min_support : 0);
  }

  // Fresh deterministic streams per resume round (see kWarmStartSeedSalt).
  LogiRecConfig cfg = config_;
  if (epochs > 0) cfg.epochs = epochs;
  cfg.seed = Rng::MixSeed(config_.seed ^ kWarmStartSeedSalt,
                          static_cast<uint64_t>(++resume_round_));
  Rng rng(cfg.seed);

  // Graceful fallback for scoring-only snapshots: the trainer-state
  // trailer carries the pre-propagation user table; without it, the
  // table re-initializes fresh while items/tags keep their restored
  // logic-constrained positions.
  if (config_.use_hyperbolic) {
    if (user_lorentz_.rows() != nu || user_lorentz_.cols() != d + 1) {
      user_lorentz_ = Matrix(nu, d + 1);
      InitLorentzRows(&user_lorentz_, &rng, 0.05);
    }
  } else if (user_euclidean_.rows() != nu || user_euclidean_.cols() != d) {
    user_euclidean_ = Matrix(nu, d);
    user_euclidean_.FillGaussian(&rng, 0.05);
  }

  ts_ = std::make_unique<TrainState>();
  if (config_.use_hyperbolic) {
    if (resources != nullptr && resources->hgcn != nullptr) {
      ts_->graph = resources->graph;
      ts_->hgcn = resources->hgcn;
    } else {
      ts_->owned_graph =
          std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
      ts_->graph = ts_->owned_graph.get();
      ts_->owned_hgcn = std::make_unique<HyperbolicGcn>(
          ts_->graph, config_.use_hgcn ? config_.layers : 0,
          config_.symmetric_gcn_norm ? graph::Norm::kSymmetric
                                     : graph::Norm::kReceiver,
          config_.num_threads);
      ts_->hgcn = ts_->owned_hgcn.get();
    }
    ts_->user_rsgd = std::make_unique<opt::LorentzRsgd>(
        config_.learning_rate, config_.grad_clip);
    ts_->item_rsgd = std::make_unique<opt::PoincareRsgd>(
        config_.learning_rate, config_.grad_clip, config_.use_eq17_exp_map);
    ts_->tag_rsgd = std::make_unique<opt::PoincareRsgd>(
        config_.learning_rate, config_.grad_clip, config_.use_eq17_exp_map);
    ts_->item_lorentz = Matrix(ni, d + 1);
  } else {
    if (resources != nullptr && resources->propagator != nullptr) {
      ts_->graph = resources->graph;
      ts_->prop = resources->propagator;
    } else {
      ts_->owned_graph =
          std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
      ts_->graph = ts_->owned_graph.get();
      ts_->owned_prop = std::make_unique<graph::GcnPropagator>(
          ts_->graph, config_.use_hgcn ? config_.layers : 0,
          graph::Norm::kReceiver, config_.num_threads);
      ts_->prop = ts_->owned_prop.get();
    }
    ts_->identity = (ts_->prop->layers() == 0);
    ts_->user_sgd = std::make_unique<opt::SgdOptimizer>(
        config_.learning_rate, config_.l2, config_.grad_clip);
    ts_->item_sgd = std::make_unique<opt::SgdOptimizer>(
        config_.learning_rate, config_.l2, config_.grad_clip);
    ts_->tag_sgd = std::make_unique<opt::SgdOptimizer>(
        config_.learning_rate, 0.0, config_.grad_clip);
  }

  if (config_.use_mining) {
    weighting_ = std::make_unique<UserWeighting>(
        dataset, split.train, relations_,
        std::max(dataset.taxonomy.num_levels(), 1), config_.num_threads);
  }

  if (resources != nullptr && resources->logic != nullptr) {
    ts_->logic = resources->logic;
    // The borrowed engine's ball cache may describe centers from a prior
    // round; force a rebuild before the first deterministic pass.
    ts_->logic->MarkTagsDirty();
  } else {
    ts_->owned_logic = MakeLogicEngine(config_, relations_);
    ts_->logic = ts_->owned_logic.get();
  }

  Trainer trainer(cfg);
  trainer.Train(this, split, ni, &rng, this,
                resources != nullptr ? resources->sampler : nullptr);
  ts_.reset();
  fitted_ = true;
  return Status::OK();
}

double LogiRecModel::LogicLossesAndGrads(const BatchContext& ctx, Matrix* gv,
                                         Matrix* gt) {
  // The logic pass follows the global scheduling mode unless the
  // logic_parallel override pins it (e.g. timing the legacy scalar loop
  // against the batched kernels inside one otherwise-identical run).
  ParallelMode mode = ctx.mode;
  if (config_.logic_parallel == LogicParallel::kSequential) {
    mode = ParallelMode::kSequential;
  } else if (config_.logic_parallel == LogicParallel::kDeterministic) {
    mode = ParallelMode::kDeterministic;
  }
  Timer timer;
  const double loss = ts_->logic->LossesAndGrads(
      item_poincare_, tag_centers_, config_.lambda, mode, ctx.num_threads,
      ctx.epoch, ctx.shard, gv, gt);
  ts_->logic_seconds += timer.ElapsedSeconds();
  return loss;
}

void LogiRecModel::DrainEpochTimers(double* logic_seconds,
                                    double* mining_seconds) {
  *logic_seconds = ts_ ? ts_->logic_seconds : 0.0;
  *mining_seconds = ts_ ? ts_->mining_seconds : 0.0;
  if (ts_) {
    ts_->logic_seconds = 0.0;
    ts_->mining_seconds = 0.0;
  }
}

double LogiRecModel::TrainOnBatchHyperbolic(const BatchContext& ctx) {
  const int d = config_.dim;
  const int nu = user_lorentz_.rows();
  const int ni = item_poincare_.rows();
  const int nt = tag_centers_.rows();
  const double lam = config_.lambda;
  double loss = 0.0;

  // ---- forward: lift items to the Lorentz model and propagate ------
  LiftItems(item_poincare_, &ts_->item_lorentz, ctx.num_threads);
  Matrix& fu = ts_->fu;
  Matrix& fv = ts_->fv;
  ts_->hgcn->Forward(user_lorentz_, ts_->item_lorentz, &fu, &fv);
  if (weighting_ && ts_->granularity_epoch != ctx.epoch) {
    Timer mining_timer;
    weighting_->UpdateGranularity(fu, ctx.num_threads);
    ts_->granularity_epoch = ctx.epoch;
    ts_->mining_seconds += mining_timer.ElapsedSeconds();
  }

  // ---- L_Rec (Eq. 9 / Eq. 15): LMNN hinge on this batch ------------
  const int npp = config_.negatives_per_positive;
  Matrix& gfu = ts_->gfu;
  Matrix& gfv = ts_->gfv;
  gfu.Reset(nu, d + 1);
  gfv.Reset(ni, d + 1);
  if (ctx.mode == ParallelMode::kDeterministic) {
    // Two-phase deterministic pipeline: every pair's hinge terms are a
    // pure function of the batch-start forward embeddings and its
    // pre-drawn negatives, so phase one fans out over pairs into per-pair
    // slots; phase two folds the slots in pair order (thread-invariant).
    PairGradSlots& slots = ts_->slots;
    slots.Shape(ctx.size(), npp, d + 1);
    ParallelFor(0, ctx.size(), [&](int p) {
      const int i = ctx.begin + p;
      const auto [u, pos] = ctx.pairs[i];
      const double w = weighting_ ? weighting_->Alpha(u) : 1.0;
      slots.Clear(p);
      double pair_loss = 0.0;
      for (int k = 0; k < npp; ++k) {
        const int neg = ctx.Negative(i, k);
        slots.NegId(p, k) = neg;
        const double dpos = hyper::LorentzDistance(fu.Row(u), fv.Row(pos));
        const double dneg = hyper::LorentzDistance(fu.Row(u), fv.Row(neg));
        const double hinge = config_.margin + dpos - dneg;
        if (hinge <= 0.0) continue;
        pair_loss += w * hinge;
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(pos), w,
                                   slots.GradUser(p), slots.GradPos(p));
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(neg), -w,
                                   slots.GradUser(p), slots.GradNeg(p, k));
      }
      slots.Loss(p) = pair_loss;
    }, ctx.num_threads);
    for (int p = 0; p < ctx.size(); ++p) {
      const auto [u, pos] = ctx.pairs[ctx.begin + p];
      loss += slots.Loss(p);
      math::Axpy(1.0, slots.GradUser(p), gfu.Row(u));
      math::Axpy(1.0, slots.GradPos(p), gfv.Row(pos));
      for (int k = 0; k < npp; ++k) {
        math::Axpy(1.0, slots.GradNeg(p, k), gfv.Row(slots.NegId(p, k)));
      }
    }
  } else {
    for (int i = ctx.begin; i < ctx.end; ++i) {
      const auto [u, pos] = ctx.pairs[i];
      const double w = weighting_ ? weighting_->Alpha(u) : 1.0;
      for (int k = 0; k < npp; ++k) {
        const int neg = ctx.Negative(i, k);
        const double dpos = hyper::LorentzDistance(fu.Row(u), fv.Row(pos));
        const double dneg = hyper::LorentzDistance(fu.Row(u), fv.Row(neg));
        const double hinge = config_.margin + dpos - dneg;
        if (hinge <= 0.0) continue;
        loss += w * hinge;
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(pos), w, gfu.Row(u),
                                   gfv.Row(pos));
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(neg), -w, gfu.Row(u),
                                   gfv.Row(neg));
      }
    }
  }

  // ---- backward through the HGCN and the diffeomorphism ------------
  Matrix& gu = ts_->gu;
  Matrix& gvh = ts_->gvh;
  if (config_.detach_gcn_backward) {
    // Truncated-backprop ablation: treat the propagation as constant.
    gu = gfu;
    gvh = gfv;
  } else {
    gu.Reset(nu, d + 1);
    gvh.Reset(ni, d + 1);
    ts_->hgcn->Backward(gfu, gfv, &gu, &gvh);
  }
  Matrix& gv = ts_->gv;
  gv.Reset(ni, d);
  ParallelFor(0, ni, [&](int v) {
    hyper::PoincareToLorentzVjp(item_poincare_.Row(v), gvh.Row(v),
                                gv.Row(v));
  }, ctx.num_threads);

  // ---- logic losses (Eqs. 3-5), weighted by lambda ------------------
  Matrix& gt = ts_->gt;
  gt.Reset(nt, d);
  if (lam > 0.0) {
    loss += LogicLossesAndGrads(ctx, &gv, &gt);
  }

  // ---- Riemannian SGD updates ---------------------------------------
  ParallelFor(0, nu, [&](int u) {
    ts_->user_rsgd->Step(u, user_lorentz_.Row(u), gu.Row(u));
  }, ctx.num_threads);
  ParallelFor(0, ni, [&](int v) {
    ts_->item_rsgd->Step(v, item_poincare_.Row(v), gv.Row(v));
    hyper::ProjectToBall(item_poincare_.Row(v));
  }, ctx.num_threads);
  if (lam > 0.0) {
    ParallelFor(0, nt, [&](int t) {
      ts_->tag_rsgd->Step(t, tag_centers_.Row(t), gt.Row(t));
      hyper::ClampHyperplaneCenter(tag_centers_.Row(t));
    }, ctx.num_threads);
    ts_->logic->MarkTagsDirty();
  }
  return loss;
}

double LogiRecModel::TrainOnBatchEuclidean(const BatchContext& ctx) {
  const int d = config_.dim;
  const int nu = user_euclidean_.rows();
  const int ni = item_poincare_.rows();
  const int nt = tag_centers_.rows();
  const double lam = config_.lambda;
  double loss = 0.0;

  Matrix& fu = ts_->fu;
  Matrix& fv = ts_->fv;
  if (ts_->identity) {
    fu = user_euclidean_;
    fv = item_poincare_;
  } else {
    ts_->prop->Forward(user_euclidean_, item_poincare_, &fu, &fv,
                       /*include_layer0=*/false);
  }
  if (weighting_ && ts_->granularity_epoch != ctx.epoch) {
    // Euclidean granularity proxy: lift to the hyperboloid and measure
    // the distance to the origin there.
    Timer mining_timer;
    Matrix lifted(nu, d + 1);
    ParallelFor(0, nu, [&](int u) {
      auto row = lifted.Row(u);
      for (int k = 0; k < d; ++k) row[k + 1] = fu.At(u, k);
      hyper::ProjectToHyperboloid(row);
    }, ctx.num_threads);
    weighting_->UpdateGranularity(lifted, ctx.num_threads);
    ts_->granularity_epoch = ctx.epoch;
    ts_->mining_seconds += mining_timer.ElapsedSeconds();
  }

  const int npp = config_.negatives_per_positive;
  Matrix& gfu = ts_->gfu;
  Matrix& gfv = ts_->gfv;
  gfu.Reset(nu, d);
  gfv.Reset(ni, d);
  // Hinge gradient of one (u, item) leg at the batch-start embeddings,
  // accumulated into arbitrary destination rows (shared accumulators in
  // sequential mode, per-pair slots in the deterministic pipeline).
  auto add_grad = [&](int u, int item, double sign, double w, double dist,
                      math::Span gu_row, math::Span gv_row) {
    const double denom = std::max(dist, 1e-12);
    for (int kk = 0; kk < d; ++kk) {
      const double g = sign * w * (fu.At(u, kk) - fv.At(item, kk)) / denom;
      gu_row[kk] += g;
      gv_row[kk] -= g;
    }
  };
  if (ctx.mode == ParallelMode::kDeterministic) {
    PairGradSlots& slots = ts_->slots;
    slots.Shape(ctx.size(), npp, d);
    ParallelFor(0, ctx.size(), [&](int p) {
      const int i = ctx.begin + p;
      const auto [u, pos] = ctx.pairs[i];
      const double w = weighting_ ? weighting_->Alpha(u) : 1.0;
      slots.Clear(p);
      double pair_loss = 0.0;
      for (int k = 0; k < npp; ++k) {
        const int neg = ctx.Negative(i, k);
        slots.NegId(p, k) = neg;
        const double dpos = math::Distance(fu.Row(u), fv.Row(pos));
        const double dneg = math::Distance(fu.Row(u), fv.Row(neg));
        const double hinge = config_.margin + dpos - dneg;
        if (hinge <= 0.0) continue;
        pair_loss += w * hinge;
        add_grad(u, pos, +1.0, w, dpos, slots.GradUser(p), slots.GradPos(p));
        add_grad(u, neg, -1.0, w, dneg, slots.GradUser(p),
                 slots.GradNeg(p, k));
      }
      slots.Loss(p) = pair_loss;
    }, ctx.num_threads);
    for (int p = 0; p < ctx.size(); ++p) {
      const auto [u, pos] = ctx.pairs[ctx.begin + p];
      loss += slots.Loss(p);
      math::Axpy(1.0, slots.GradUser(p), gfu.Row(u));
      math::Axpy(1.0, slots.GradPos(p), gfv.Row(pos));
      for (int k = 0; k < npp; ++k) {
        math::Axpy(1.0, slots.GradNeg(p, k), gfv.Row(slots.NegId(p, k)));
      }
    }
  } else {
    for (int i = ctx.begin; i < ctx.end; ++i) {
      const auto [u, pos] = ctx.pairs[i];
      const double w = weighting_ ? weighting_->Alpha(u) : 1.0;
      for (int k = 0; k < npp; ++k) {
        const int neg = ctx.Negative(i, k);
        const double dpos = math::Distance(fu.Row(u), fv.Row(pos));
        const double dneg = math::Distance(fu.Row(u), fv.Row(neg));
        const double hinge = config_.margin + dpos - dneg;
        if (hinge <= 0.0) continue;
        loss += w * hinge;
        add_grad(u, pos, +1.0, w, dpos, gfu.Row(u), gfv.Row(pos));
        add_grad(u, neg, -1.0, w, dneg, gfu.Row(u), gfv.Row(neg));
      }
    }
  }

  Matrix& gu = ts_->gu;
  Matrix& gv = ts_->gv;
  if (ts_->identity) {
    gu = gfu;
    gv = gfv;
  } else {
    gu.Reset(nu, d);
    gv.Reset(ni, d);
    ts_->prop->Backward(gfu, gfv, &gu, &gv, /*include_layer0=*/false);
  }

  Matrix& gt = ts_->gt;
  gt.Reset(nt, d);
  if (lam > 0.0) {
    loss += LogicLossesAndGrads(ctx, &gv, &gt);
  }

  ParallelFor(0, nu, [&](int u) {
    ts_->user_sgd->Step(u, user_euclidean_.Row(u), gu.Row(u));
  }, ctx.num_threads);
  ParallelFor(0, ni, [&](int v) {
    ts_->item_sgd->Step(v, item_poincare_.Row(v), gv.Row(v));
  }, ctx.num_threads);
  if (lam > 0.0) {
    ParallelFor(0, nt, [&](int t) {
      ts_->tag_sgd->Step(t, tag_centers_.Row(t), gt.Row(t));
      hyper::ClampHyperplaneCenter(tag_centers_.Row(t));
    }, ctx.num_threads);
    ts_->logic->MarkTagsDirty();
  }
  return loss;
}

void LogiRecModel::SyncScoringState() {
  if (config_.use_hyperbolic) {
    LiftItems(item_poincare_, &ts_->item_lorentz, config_.num_threads);
    ts_->hgcn->Forward(user_lorentz_, ts_->item_lorentz, &final_user_,
                       &final_item_);
    if (weighting_) {
      weighting_->UpdateGranularity(final_user_, config_.num_threads);
    }
  } else {
    if (ts_->identity) {
      final_user_ = user_euclidean_;
      final_item_ = item_poincare_;
    } else {
      ts_->prop->Forward(user_euclidean_, item_poincare_, &final_user_,
                         &final_item_, /*include_layer0=*/false);
    }
  }
  item_view_.Assign(final_item_);
  fitted_ = true;
}

void LogiRecModel::CollectScoringState(ParameterSet* state) {
  state->Add(&final_user_);
  state->Add(&final_item_);
  state->Add(&item_poincare_);
  state->Add(&tag_centers_);
}

Status LogiRecModel::FinalizeRestoredState() {
  // SyncScoringState() would re-run the propagation, which needs the
  // training graph; the snapshot stores the final embeddings.
  item_view_.Assign(final_item_);
  fitted_ = true;
  return Status::OK();
}

Status LogiRecModel::ApplySnapshotFlags(uint32_t flags) {
  if ((flags & ~kSnapshotFlagEuclidean) != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: unknown snapshot flags 0x%x", name().c_str(),
                  flags & ~kSnapshotFlagEuclidean));
  }
  config_.use_hyperbolic = (flags & kSnapshotFlagEuclidean) == 0;
  return Status::OK();
}

void LogiRecModel::CollectParameters(ParameterSet* params) {
  if (config_.use_hyperbolic) {
    params->Add(&user_lorentz_);
  } else {
    params->Add(&user_euclidean_);
  }
  params->Add(&item_poincare_);
  params->Add(&tag_centers_);
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void LogiRecModel::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK_MSG(fitted_, "ScoreItems() before Fit()");
  out->resize(final_item_.rows());
  const auto u = final_user_.Row(user);
  if (config_.use_hyperbolic) {
    for (int v = 0; v < final_item_.rows(); ++v) {
      (*out)[v] = -hyper::LorentzDistance(u, final_item_.Row(v));
    }
  } else {
    for (int v = 0; v < final_item_.rows(); ++v) {
      (*out)[v] = -math::Distance(u, final_item_.Row(v));
    }
  }
}

void LogiRecModel::ScoreItemsInto(int user, math::Span out,
                                  eval::ScoreMode mode) const {
  LOGIREC_CHECK_MSG(fitted_, "ScoreItemsInto() before Fit()");
  const auto u = final_user_.Row(user);
  const bool ranking = mode == eval::ScoreMode::kRanking;
  if (item_view_.empty()) {
    if (config_.use_hyperbolic) {
      // acosh is monotone, so the Lorentz dot ranks identically to the
      // negated geodesic distance without an acosh per item.
      if (ranking) {
        math::LorentzDotsInto(u, final_item_, out);
      } else {
        math::NegLorentzDistancesInto(u, final_item_, out);
      }
    } else if (ranking) {
      math::NegSquaredEuclideanDistancesInto(u, final_item_, out);
    } else {
      math::NegEuclideanDistancesInto(u, final_item_, out);
    }
  } else if (config_.use_hyperbolic) {
    if (ranking) {
      math::LorentzDotsInto(u, item_view_, out);
    } else {
      math::NegLorentzDistancesInto(u, item_view_, out);
    }
  } else if (ranking) {
    math::NegSquaredEuclideanDistancesInto(u, item_view_, out);
  } else {
    math::NegEuclideanDistancesInto(u, item_view_, out);
  }
}

Status LogiRecModel::Save(const std::string& dir) const {
  if (!fitted_) return Status::FailedPrecondition("Save() before Fit()");
  CsvTable meta;
  meta.header = {"key", "value"};
  meta.rows = {
      {"dim", StrFormat("%d", config_.dim)},
      {"hyperbolic", config_.use_hyperbolic ? "1" : "0"},
      {"mining", config_.use_mining ? "1" : "0"},
  };
  LOGIREC_RETURN_IF_ERROR(WriteCsv(dir + "/meta.csv", meta));
  LOGIREC_RETURN_IF_ERROR(
      SaveMatrixCsv(final_user_, dir + "/final_user.csv"));
  LOGIREC_RETURN_IF_ERROR(
      SaveMatrixCsv(final_item_, dir + "/final_item.csv"));
  LOGIREC_RETURN_IF_ERROR(
      SaveMatrixCsv(item_poincare_, dir + "/item_poincare.csv"));
  return SaveMatrixCsv(tag_centers_, dir + "/tag_centers.csv");
}

Result<LogiRecModel> LogiRecModel::Load(const std::string& dir) {
  auto meta = ReadCsv(dir + "/meta.csv");
  if (!meta.ok()) return meta.status();
  LogiRecConfig config;
  for (const auto& row : meta->rows) {
    if (row.size() != 2) return Status::IoError("bad meta row");
    if (row[0] == "dim") {
      auto dim = ParseInt(row[1]);
      if (!dim.ok()) return dim.status();
      config.dim = *dim;
    } else if (row[0] == "hyperbolic") {
      config.use_hyperbolic = (row[1] == "1");
    } else if (row[0] == "mining") {
      config.use_mining = (row[1] == "1");
    }
  }
  LogiRecModel model(config);
  auto final_user = LoadMatrixCsv(dir + "/final_user.csv");
  if (!final_user.ok()) return final_user.status();
  auto final_item = LoadMatrixCsv(dir + "/final_item.csv");
  if (!final_item.ok()) return final_item.status();
  auto item_poincare = LoadMatrixCsv(dir + "/item_poincare.csv");
  if (!item_poincare.ok()) return item_poincare.status();
  auto tag_centers = LoadMatrixCsv(dir + "/tag_centers.csv");
  if (!tag_centers.ok()) return tag_centers.status();
  model.final_user_ = std::move(*final_user);
  model.final_item_ = std::move(*final_item);
  model.item_poincare_ = std::move(*item_poincare);
  model.tag_centers_ = std::move(*tag_centers);
  model.item_view_.Assign(model.final_item_);
  model.fitted_ = true;
  return model;
}

LogiRecModel::LogicReport LogiRecModel::ReportLogicLosses(
    const data::Dataset& dataset) const {
  LogicReport report;
  (void)dataset;
  long n_mem = 0, n_hie = 0, n_ex = 0;
  for (const auto& [item, tag] : relations_.memberships) {
    report.mean_membership +=
        MembershipLoss(item_poincare_.Row(item), tag_centers_.Row(tag));
    ++n_mem;
  }
  for (const data::HierarchyPair& h : relations_.hierarchy) {
    report.mean_hierarchy +=
        HierarchyLoss(tag_centers_.Row(h.parent), tag_centers_.Row(h.child));
    ++n_hie;
  }
  for (const data::ExclusionPair& e : relations_.exclusions) {
    report.mean_exclusion +=
        ExclusionLoss(tag_centers_.Row(e.a), tag_centers_.Row(e.b));
    ++n_ex;
  }
  if (n_mem > 0) report.mean_membership /= n_mem;
  if (n_hie > 0) report.mean_hierarchy /= n_hie;
  if (n_ex > 0) report.mean_exclusion /= n_ex;
  return report;
}

}  // namespace logirec::core
