#ifndef LOGIREC_CORE_SHARD_GRADS_H_
#define LOGIREC_CORE_SHARD_GRADS_H_

#include <algorithm>
#include <vector>

#include "math/vec.h"

namespace logirec::core {

/// Per-pair gradient slot buffer backing the deterministic two-phase
/// batch pipeline of the dense (GCN-family) models:
///
///   phase 1 (parallel): every pair p of the shard is handled by exactly
///     one worker, which reads the batch-start forward embeddings and the
///     pre-drawn negatives and writes the pair's user/positive/negative
///     gradient rows — plus its loss — into slots owned by p alone;
///   phase 2 (ordered):  a single thread folds the slots into the shared
///     gradient accumulators in pair order.
///
/// Each slot is a pure function of (batch-start state, pair, pre-drawn
/// negatives) and the fold order is fixed, so the result is bit-identical
/// for every thread count. The buffer is persistent: Shape() reuses
/// capacity, so steady-state batches do not allocate.
///
/// Layout per pair: [grad_user | grad_pos | grad_neg x draws], each
/// `width` doubles, plus `draws` negative ids and one loss cell.
class PairGradSlots {
 public:
  /// Shapes the buffer for `pairs` pairs with `draws` negative draws per
  /// pair and `width` doubles per gradient row. Contents are unspecified;
  /// phase 1 must Clear() each pair before accumulating into it.
  void Shape(int pairs, int draws, int width) {
    draws_ = draws;
    width_ = width;
    stride_ = static_cast<size_t>(2 + draws) * width;
    data_.resize(static_cast<size_t>(pairs) * stride_);
    neg_.resize(static_cast<size_t>(pairs) * draws);
    loss_.resize(pairs);
  }

  /// Zeroes pair p's gradient rows and loss (phase 1, owning worker).
  void Clear(int p) {
    double* base = data_.data() + static_cast<size_t>(p) * stride_;
    std::fill(base, base + stride_, 0.0);
    loss_[p] = 0.0;
  }

  math::Span GradUser(int p) {
    return math::Span(data_.data() + static_cast<size_t>(p) * stride_, width_);
  }
  math::Span GradPos(int p) {
    return math::Span(
        data_.data() + static_cast<size_t>(p) * stride_ + width_, width_);
  }
  math::Span GradNeg(int p, int k) {
    return math::Span(data_.data() + static_cast<size_t>(p) * stride_ +
                          static_cast<size_t>(2 + k) * width_,
                      width_);
  }

  int& NegId(int p, int k) { return neg_[static_cast<size_t>(p) * draws_ + k]; }
  double& Loss(int p) { return loss_[p]; }
  int draws() const { return draws_; }

 private:
  int draws_ = 0;
  int width_ = 0;
  size_t stride_ = 0;
  std::vector<double> data_;
  std::vector<int> neg_;
  std::vector<double> loss_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_SHARD_GRADS_H_
