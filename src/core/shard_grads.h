#ifndef LOGIREC_CORE_SHARD_GRADS_H_
#define LOGIREC_CORE_SHARD_GRADS_H_

#include <algorithm>
#include <vector>

#include "math/vec.h"

namespace logirec::core {

/// Per-pair gradient slot buffer backing the deterministic two-phase
/// batch pipeline of the dense (GCN-family) models:
///
///   phase 1 (parallel): every pair p of the shard is handled by exactly
///     one worker, which reads the batch-start forward embeddings and the
///     pre-drawn negatives and writes the pair's user/positive/negative
///     gradient rows — plus its loss — into slots owned by p alone;
///   phase 2 (ordered):  a single thread folds the slots into the shared
///     gradient accumulators in pair order.
///
/// Each slot is a pure function of (batch-start state, pair, pre-drawn
/// negatives) and the fold order is fixed, so the result is bit-identical
/// for every thread count. The buffer is persistent: Shape() reuses
/// capacity, so steady-state batches do not allocate.
///
/// Layout per pair: [grad_user | grad_pos | grad_neg x draws], each
/// `width` doubles, plus `draws` negative ids and one loss cell.
class PairGradSlots {
 public:
  /// Shapes the buffer for `pairs` pairs with `draws` negative draws per
  /// pair and `width` doubles per gradient row. Contents are unspecified;
  /// phase 1 must Clear() each pair before accumulating into it.
  void Shape(int pairs, int draws, int width) {
    draws_ = draws;
    width_ = width;
    stride_ = static_cast<size_t>(2 + draws) * width;
    data_.resize(static_cast<size_t>(pairs) * stride_);
    neg_.resize(static_cast<size_t>(pairs) * draws);
    loss_.resize(pairs);
  }

  /// Zeroes pair p's gradient rows and loss (phase 1, owning worker).
  void Clear(int p) {
    double* base = data_.data() + static_cast<size_t>(p) * stride_;
    std::fill(base, base + stride_, 0.0);
    loss_[p] = 0.0;
  }

  math::Span GradUser(int p) {
    return math::Span(data_.data() + static_cast<size_t>(p) * stride_, width_);
  }
  math::Span GradPos(int p) {
    return math::Span(
        data_.data() + static_cast<size_t>(p) * stride_ + width_, width_);
  }
  math::Span GradNeg(int p, int k) {
    return math::Span(data_.data() + static_cast<size_t>(p) * stride_ +
                          static_cast<size_t>(2 + k) * width_,
                      width_);
  }

  int& NegId(int p, int k) { return neg_[static_cast<size_t>(p) * draws_ + k]; }
  double& Loss(int p) { return loss_[p]; }
  int draws() const { return draws_; }

 private:
  int draws_ = 0;
  int width_ = 0;
  size_t stride_ = 0;
  std::vector<double> data_;
  std::vector<int> neg_;
  std::vector<double> loss_;
};

/// Per-relation gradient slot buffer backing core::LogicEngine's
/// deterministic logic-loss pipeline — the same slot-fill + ordered-fold
/// contract as PairGradSlots, specialized for the two-endpoint logic
/// relations (item/tag for membership, tag/tag for hierarchy, exclusion
/// and intersection):
///
///   phase 1 (parallel): every relation r is handled by exactly one
///     worker, which *assigns* (does not accumulate) the relation's two
///     endpoint gradient rows and its loss into slots owned by r alone.
///     Inactive relations (hinge <= 0) write only Loss(r) = 0; their
///     gradient slots are left unspecified and must not be read;
///   phase 2 (ordered):  slots are folded into the shared item/tag
///     gradient accumulators so that each destination row receives its
///     contributions in relation-processing order — either a single
///     thread walking relations in order, or one worker per destination
///     row walking that row's relations in order (tag-conflict-free by
///     construction; per-row order is all bit-identity requires).
///
/// Each slot is a pure function of (batch-start embeddings, relation), so
/// the fold result is bit-identical for every thread count. The buffer is
/// persistent: Shape() reuses capacity, so steady-state batches do not
/// allocate (and never zero-fills — active slots are fully assigned).
class RelationGradSlots {
 public:
  /// Shapes the buffer for `relations` relations with `width` doubles per
  /// endpoint gradient row. Contents are unspecified.
  void Shape(int relations, int width) {
    width_ = width;
    data_.resize(static_cast<size_t>(relations) * 2 * width);
    loss_.resize(relations);
  }

  /// First endpoint's gradient row (item for membership, parent for
  /// hierarchy, `a` for exclusion/intersection).
  double* GradX(int r) {
    return data_.data() + static_cast<size_t>(r) * 2 * width_;
  }
  /// Second endpoint's gradient row (tag / child / `b`).
  double* GradY(int r) {
    return data_.data() + static_cast<size_t>(r) * 2 * width_ + width_;
  }
  const double* GradX(int r) const {
    return data_.data() + static_cast<size_t>(r) * 2 * width_;
  }
  const double* GradY(int r) const {
    return data_.data() + static_cast<size_t>(r) * 2 * width_ + width_;
  }

  double& Loss(int r) { return loss_[r]; }
  double Loss(int r) const { return loss_[r]; }
  int width() const { return width_; }

 private:
  int width_ = 0;
  std::vector<double> data_;
  std::vector<double> loss_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_SHARD_GRADS_H_
