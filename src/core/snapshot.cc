#include "core/snapshot.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "math/compact.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace logirec::core {
namespace {

static_assert(std::endian::native == std::endian::little,
              "model snapshots are defined little-endian; add byte "
              "swapping before building on a big-endian target");

void PutU32(std::vector<unsigned char>* buf, uint32_t v) {
  const size_t at = buf->size();
  buf->resize(at + sizeof v);
  std::memcpy(buf->data() + at, &v, sizeof v);
}

void PutI32(std::vector<unsigned char>* buf, int32_t v) {
  PutU32(buf, static_cast<uint32_t>(v));
}

void PutBytes(std::vector<unsigned char>* buf, const void* data,
              size_t len) {
  const size_t at = buf->size();
  buf->resize(at + len);
  std::memcpy(buf->data() + at, data, len);
}

/// Bounds-checked forward cursor over the bulk-loaded file image. Every
/// read reports truncation through ok()/error() instead of running off
/// the buffer, so corrupted files degrade into descriptive Status errors.
class Cursor {
 public:
  Cursor(const unsigned char* data, size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof *v, "u32"); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof *v, "i32"); }

  bool ReadString(uint32_t len, std::string* out) {
    if (!Ensure(len, "string")) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  /// Returns a pointer to `len` raw payload bytes and advances.
  const unsigned char* ReadSpan(size_t len, const char* what) {
    if (!Ensure(len, what)) return nullptr;
    const unsigned char* p = data_ + pos_;
    pos_ += len;
    return p;
  }

  size_t pos() const { return pos_; }
  bool ok() const { return error_.ok(); }
  const Status& error() const { return error_; }

 private:
  bool ReadRaw(void* out, size_t len, const char* what) {
    if (!Ensure(len, what)) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  bool Ensure(size_t len, const char* what) {
    if (!error_.ok()) return false;
    if (pos_ + len > size_) {
      error_ = Status::IoError(StrFormat(
          "truncated snapshot %s: need %zu bytes for %s at offset %zu, "
          "file has %zu",
          path_.c_str(), len, what, pos_, size_));
      return false;
    }
    return true;
  }

  const unsigned char* data_;
  size_t size_;
  std::string path_;
  size_t pos_ = 0;
  Status error_ = Status::OK();
};

Status BulkLoad(const std::string& path, std::vector<unsigned char>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open snapshot: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat snapshot: " + path);
  }
  out->resize(static_cast<size_t>(size));
  const size_t read =
      size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IoError("short read on snapshot: " + path);
  }
  return Status::OK();
}

/// Validates a wire dtype code read from a tensor tag or the v2 header.
Status CheckDtypeCode(uint32_t code, const char* where,
                      const std::string& path) {
  if (code > static_cast<uint32_t>(SnapshotDtype::kInt8)) {
    return Status::IoError(StrFormat(
        "unknown dtype code %u in %s (%s); this build knows f64|f32|int8",
        code, path.c_str(), where));
  }
  return Status::OK();
}

/// Rejects NaN/Inf payload values — a snapshot with a non-finite
/// coordinate can only produce garbage rankings, so corruption that
/// survives the CRC (e.g. written by a buggy producer) fails loudly here
/// instead of serving NaN scores.
template <typename T>
Status CheckFinite(const T* values, size_t count, const char* what,
                   size_t tensor_index, const std::string& path) {
  for (size_t i = 0; i < count; ++i) {
    if (!std::isfinite(values[i])) {
      return Status::IoError(StrFormat(
          "%s %zu in %s holds a non-finite value at flat index %zu "
          "(corrupted or mis-produced snapshot)",
          what, tensor_index, path.c_str(), i));
    }
  }
  return Status::OK();
}

/// Parses the fixed header (through header_crc). On success the cursor
/// sits on the first tensor record, counts are filled in, and *version
/// tells the caller which tensor-record layout follows.
Status ParseHeader(Cursor* cur, const std::string& path,
                   SnapshotHeader* header, uint32_t* version,
                   uint32_t* n_matrices, uint32_t* n_vectors,
                   uint32_t* n_scalars) {
  uint32_t magic = 0;
  if (!cur->ReadU32(&magic)) return cur->error();
  if (magic != ModelSnapshot::kMagic) {
    return Status::IoError(StrFormat(
        "%s is not a model snapshot (bad magic 0x%08x)", path.c_str(),
        magic));
  }
  if (!cur->ReadU32(version)) return cur->error();
  if (*version != ModelSnapshot::kVersion &&
      *version != ModelSnapshot::kVersionCompact) {
    return Status::IoError(StrFormat(
        "unsupported snapshot version %u in %s (this build reads %u-%u)",
        *version, path.c_str(), ModelSnapshot::kVersion,
        ModelSnapshot::kVersionCompact));
  }
  uint32_t name_len = 0;
  int32_t dim = 0, layers = 0, num_users = 0, num_items = 0;
  if (!cur->ReadU32(&header->flags) || !cur->ReadI32(&dim) ||
      !cur->ReadI32(&layers) || !cur->ReadI32(&num_users) ||
      !cur->ReadI32(&num_items) || !cur->ReadU32(&name_len)) {
    return cur->error();
  }
  if (name_len > 256) {
    return Status::IoError("implausible model-name length in " + path);
  }
  if (!cur->ReadString(name_len, &header->model)) return cur->error();
  header->dtype = SnapshotDtype::kF64;
  if (*version == ModelSnapshot::kVersionCompact) {
    uint32_t dtype_code = 0;
    if (!cur->ReadU32(&dtype_code)) return cur->error();
    LOGIREC_RETURN_IF_ERROR(CheckDtypeCode(dtype_code, "header", path));
    header->dtype = static_cast<SnapshotDtype>(dtype_code);
  }
  if (!cur->ReadU32(n_matrices) || !cur->ReadU32(n_vectors) ||
      !cur->ReadU32(n_scalars)) {
    return cur->error();
  }
  header->dim = dim;
  header->layers = layers;
  header->num_users = num_users;
  header->num_items = num_items;

  // Consume the header CRC; callers recompute it over the preceding
  // bytes (the cursor position marks where it sits).
  uint32_t stored_crc = 0;
  if (!cur->ReadU32(&stored_crc)) return cur->error();
  return Status::OK();
}

}  // namespace

std::string SnapshotDtypeName(SnapshotDtype dtype) {
  switch (dtype) {
    case SnapshotDtype::kF64:
      return "f64";
    case SnapshotDtype::kF32:
      return "f32";
    case SnapshotDtype::kInt8:
      return "int8";
  }
  return "f64";
}

Result<SnapshotDtype> ParseSnapshotDtype(const std::string& name) {
  if (name == "f64") return SnapshotDtype::kF64;
  if (name == "f32") return SnapshotDtype::kF32;
  if (name == "int8") return SnapshotDtype::kInt8;
  return Status::InvalidArgument(StrFormat(
      "unknown snapshot dtype '%s' (want f64|f32|int8)", name.c_str()));
}

Status ModelSnapshot::Write(Recommender& model, SnapshotHeader header,
                            const std::string& path, SnapshotDtype dtype,
                            bool include_trainer_state) {
  ParameterSet state;
  model.CollectScoringState(&state);
  if (state.empty()) {
    return Status::FailedPrecondition(
        model.name() + " registers no scoring state; snapshot unsupported");
  }
  header.model = model.name();
  header.flags = model.SnapshotFlags();
  const bool compact = dtype != SnapshotDtype::kF64;

  std::vector<unsigned char> buf;
  PutU32(&buf, kMagic);
  PutU32(&buf, compact ? kVersionCompact : kVersion);
  PutU32(&buf, header.flags);
  PutI32(&buf, header.dim);
  PutI32(&buf, header.layers);
  PutI32(&buf, header.num_users);
  PutI32(&buf, header.num_items);
  PutU32(&buf, static_cast<uint32_t>(header.model.size()));
  PutBytes(&buf, header.model.data(), header.model.size());
  if (compact) PutU32(&buf, static_cast<uint32_t>(dtype));
  PutU32(&buf, static_cast<uint32_t>(state.matrices.size()));
  PutU32(&buf, static_cast<uint32_t>(state.vectors.size()));
  PutU32(&buf, static_cast<uint32_t>(state.scalars.size()));
  PutU32(&buf, Crc32(buf.data(), buf.size()));

  for (const math::Matrix* m : state.matrices) {
    if (compact) PutU32(&buf, static_cast<uint32_t>(dtype));
    PutI32(&buf, m->rows());
    PutI32(&buf, m->cols());
    if (!compact) {
      const size_t bytes = m->data().size() * sizeof(double);
      PutU32(&buf, Crc32(m->data().data(), bytes));
      PutBytes(&buf, m->data().data(), bytes);
    } else if (dtype == SnapshotDtype::kF32) {
      std::vector<float> narrow(m->data().size());
      for (size_t i = 0; i < narrow.size(); ++i) {
        narrow[i] = static_cast<float>(m->data()[i]);
      }
      const size_t bytes = narrow.size() * sizeof(float);
      PutU32(&buf, Crc32(narrow.data(), bytes));
      PutBytes(&buf, narrow.data(), bytes);
    } else {
      // Int8: per-row scales then row-major codes, one CRC over both.
      // QuantizeInt8Row is the resident catalog's encoder, so the bytes
      // on disk equal what Int8Catalog would hold in memory.
      const int rows = m->rows();
      const int cols = m->cols();
      std::vector<float> scales(rows);
      std::vector<int8_t> codes(static_cast<size_t>(rows) * cols);
      for (int r = 0; r < rows; ++r) {
        scales[r] = math::QuantizeInt8Row(
            m->Row(r), codes.data() + static_cast<size_t>(r) * cols);
      }
      const size_t scale_bytes = scales.size() * sizeof(float);
      const size_t code_bytes = codes.size() * sizeof(int8_t);
      uint32_t crc = Crc32(scales.data(), scale_bytes);
      crc = Crc32(codes.data(), code_bytes, crc);
      PutU32(&buf, crc);
      PutBytes(&buf, scales.data(), scale_bytes);
      PutBytes(&buf, codes.data(), code_bytes);
    }
  }
  for (const math::Vec* v : state.vectors) {
    if (compact) PutU32(&buf, static_cast<uint32_t>(SnapshotDtype::kF64));
    PutI32(&buf, static_cast<int32_t>(v->size()));
    const size_t bytes = v->size() * sizeof(double);
    PutU32(&buf, Crc32(v->data(), bytes));
    PutBytes(&buf, v->data(), bytes);
  }
  if (!state.scalars.empty()) {
    if (compact) PutU32(&buf, static_cast<uint32_t>(SnapshotDtype::kF64));
    std::vector<double> block;
    block.reserve(state.scalars.size());
    for (const double* s : state.scalars) block.push_back(*s);
    const size_t bytes = block.size() * sizeof(double);
    PutU32(&buf, Crc32(block.data(), bytes));
    PutBytes(&buf, block.data(), bytes);
  }

  if (include_trainer_state) {
    // Optional trainer-state trailer: always exact f64 (v1-style records)
    // regardless of the scoring dtype — a lossy resume point would break
    // the determinism contract. Models registering nothing keep the file
    // byte-identical to a plain scoring snapshot.
    ParameterSet tstate;
    model.CollectTrainerState(&tstate);
    if (!tstate.empty()) {
      PutU32(&buf, kTrailerMagic);
      PutU32(&buf, static_cast<uint32_t>(tstate.matrices.size()));
      PutU32(&buf, static_cast<uint32_t>(tstate.vectors.size()));
      PutU32(&buf, static_cast<uint32_t>(tstate.scalars.size()));
      for (const math::Matrix* m : tstate.matrices) {
        PutI32(&buf, m->rows());
        PutI32(&buf, m->cols());
        const size_t bytes = m->data().size() * sizeof(double);
        PutU32(&buf, Crc32(m->data().data(), bytes));
        PutBytes(&buf, m->data().data(), bytes);
      }
      for (const math::Vec* v : tstate.vectors) {
        PutI32(&buf, static_cast<int32_t>(v->size()));
        const size_t bytes = v->size() * sizeof(double);
        PutU32(&buf, Crc32(v->data(), bytes));
        PutBytes(&buf, v->data(), bytes);
      }
      if (!tstate.scalars.empty()) {
        std::vector<double> block;
        block.reserve(tstate.scalars.size());
        for (const double* s : tstate.scalars) block.push_back(*s);
        const size_t bytes = block.size() * sizeof(double);
        PutU32(&buf, Crc32(block.data(), bytes));
        PutBytes(&buf, block.data(), bytes);
      }
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create snapshot: " + path);
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != buf.size() || !closed_ok) {
    return Status::IoError("short write on snapshot: " + path);
  }
  return Status::OK();
}

Result<SnapshotHeader> ModelSnapshot::Peek(const std::string& path) {
  std::vector<unsigned char> buf;
  LOGIREC_RETURN_IF_ERROR(BulkLoad(path, &buf));
  Cursor cur(buf.data(), buf.size(), path);
  SnapshotHeader header;
  uint32_t version = 0, nm = 0, nv = 0, ns = 0;
  LOGIREC_RETURN_IF_ERROR(
      ParseHeader(&cur, path, &header, &version, &nm, &nv, &ns));
  const size_t crc_at = cur.pos() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + crc_at, sizeof stored_crc);
  if (Crc32(buf.data(), crc_at) != stored_crc) {
    return Status::IoError("snapshot header checksum mismatch in " + path);
  }
  header.file_bytes = buf.size();
  return header;
}

Result<std::unique_ptr<Recommender>> ModelSnapshot::Read(
    const std::string& path, const ModelFactory& factory,
    SnapshotHeader* header_out) {
  std::vector<unsigned char> buf;
  LOGIREC_RETURN_IF_ERROR(BulkLoad(path, &buf));
  Cursor cur(buf.data(), buf.size(), path);
  SnapshotHeader header;
  uint32_t version = 0, n_matrices = 0, n_vectors = 0, n_scalars = 0;
  LOGIREC_RETURN_IF_ERROR(ParseHeader(&cur, path, &header, &version,
                                      &n_matrices, &n_vectors, &n_scalars));
  const bool tagged = version == kVersionCompact;
  const size_t header_crc_at = cur.pos() - sizeof(uint32_t);
  uint32_t stored_header_crc = 0;
  std::memcpy(&stored_header_crc, buf.data() + header_crc_at,
              sizeof stored_header_crc);
  if (Crc32(buf.data(), header_crc_at) != stored_header_crc) {
    return Status::IoError("snapshot header checksum mismatch in " + path);
  }

  TrainConfig config;
  config.dim = header.dim;
  config.layers = header.layers;
  auto model = factory(header.model, config);
  if (!model.ok()) return model.status();
  LOGIREC_RETURN_IF_ERROR((*model)->ApplySnapshotFlags(header.flags));
  (*model)->PrepareForRestore();
  ParameterSet state;
  (*model)->CollectScoringState(&state);
  if (state.matrices.size() != n_matrices ||
      state.vectors.size() != n_vectors ||
      state.scalars.size() != n_scalars) {
    return Status::IoError(StrFormat(
        "snapshot %s carries %u/%u/%u tensors but %s enumerates "
        "%zu/%zu/%zu — incompatible snapshot",
        path.c_str(), n_matrices, n_vectors, n_scalars,
        header.model.c_str(), state.matrices.size(), state.vectors.size(),
        state.scalars.size()));
  }

  for (size_t i = 0; i < state.matrices.size(); ++i) {
    SnapshotDtype dtype = SnapshotDtype::kF64;
    if (tagged) {
      uint32_t tag = 0;
      if (!cur.ReadU32(&tag)) return cur.error();
      LOGIREC_RETURN_IF_ERROR(CheckDtypeCode(tag, "matrix tag", path));
      dtype = static_cast<SnapshotDtype>(tag);
    }
    int32_t rows = 0, cols = 0;
    uint32_t crc = 0;
    if (!cur.ReadI32(&rows) || !cur.ReadI32(&cols) || !cur.ReadU32(&crc)) {
      return cur.error();
    }
    if (rows < 0 || cols < 0) {
      return Status::IoError(StrFormat("matrix %zu in %s has negative "
                                       "shape %dx%d",
                                       i, path.c_str(), rows, cols));
    }
    math::Matrix* dst = state.matrices[i];
    if (dst->rows() > 0 &&
        (dst->rows() != rows || dst->cols() != cols)) {
      return Status::IoError(StrFormat(
          "matrix %zu in %s is %dx%d but %s expects %dx%d", i,
          path.c_str(), rows, cols, header.model.c_str(), dst->rows(),
          dst->cols()));
    }
    const size_t count =
        static_cast<size_t>(rows) * static_cast<size_t>(cols);
    if (dtype == SnapshotDtype::kF64) {
      const size_t bytes = count * sizeof(double);
      const unsigned char* payload = cur.ReadSpan(bytes, "matrix payload");
      if (payload == nullptr) return cur.error();
      if (Crc32(payload, bytes) != crc) {
        return Status::IoError(StrFormat(
            "matrix %zu checksum mismatch in %s (corrupted snapshot)", i,
            path.c_str()));
      }
      // Copy first (the payload may sit unaligned in the file image),
      // then validate; on failure the half-filled model is discarded.
      dst->Reset(rows, cols);
      std::memcpy(dst->data().data(), payload, bytes);
      LOGIREC_RETURN_IF_ERROR(
          CheckFinite(dst->data().data(), count, "matrix", i, path));
    } else if (dtype == SnapshotDtype::kF32) {
      const size_t bytes = count * sizeof(float);
      const unsigned char* payload =
          cur.ReadSpan(bytes, "f32 matrix payload");
      if (payload == nullptr) return cur.error();
      if (Crc32(payload, bytes) != crc) {
        return Status::IoError(StrFormat(
            "matrix %zu checksum mismatch in %s (corrupted snapshot)", i,
            path.c_str()));
      }
      // The payload may be unaligned inside the file image; copy before
      // typed access.
      std::vector<float> narrow(count);
      std::memcpy(narrow.data(), payload, bytes);
      LOGIREC_RETURN_IF_ERROR(
          CheckFinite(narrow.data(), count, "matrix", i, path));
      dst->Reset(rows, cols);
      for (size_t j = 0; j < count; ++j) {
        dst->data()[j] = static_cast<double>(narrow[j]);
      }
    } else {
      const size_t scale_bytes = static_cast<size_t>(rows) * sizeof(float);
      const size_t code_bytes = count * sizeof(int8_t);
      const unsigned char* payload =
          cur.ReadSpan(scale_bytes + code_bytes, "int8 matrix payload");
      if (payload == nullptr) return cur.error();
      uint32_t actual = Crc32(payload, scale_bytes);
      actual = Crc32(payload + scale_bytes, code_bytes, actual);
      if (actual != crc) {
        return Status::IoError(StrFormat(
            "matrix %zu checksum mismatch in %s (corrupted snapshot)", i,
            path.c_str()));
      }
      std::vector<float> scales(rows);
      std::memcpy(scales.data(), payload, scale_bytes);
      LOGIREC_RETURN_IF_ERROR(CheckFinite(
          scales.data(), scales.size(), "matrix (int8 scales)", i, path));
      const int8_t* codes =
          reinterpret_cast<const int8_t*>(payload + scale_bytes);
      // Dequantize scale * code back into the model's f64 tensor. The
      // restored state requantizes to the identical codes (idempotence),
      // so serving this snapshot at int8 precision is exact.
      dst->Reset(rows, cols);
      for (int32_t r = 0; r < rows; ++r) {
        const double scale = static_cast<double>(scales[r]);
        double* out = dst->data().data() + static_cast<size_t>(r) * cols;
        const int8_t* row = codes + static_cast<size_t>(r) * cols;
        for (int32_t k = 0; k < cols; ++k) {
          out[k] = scale * static_cast<double>(row[k]);
        }
      }
    }
  }
  for (size_t i = 0; i < state.vectors.size(); ++i) {
    if (tagged) {
      uint32_t tag = 0;
      if (!cur.ReadU32(&tag)) return cur.error();
      LOGIREC_RETURN_IF_ERROR(CheckDtypeCode(tag, "vector tag", path));
      if (static_cast<SnapshotDtype>(tag) != SnapshotDtype::kF64) {
        return Status::IoError(StrFormat(
            "vector %zu in %s is not f64 — vectors always store exact",
            i, path.c_str()));
      }
    }
    int32_t len = 0;
    uint32_t crc = 0;
    if (!cur.ReadI32(&len) || !cur.ReadU32(&crc)) return cur.error();
    if (len < 0) {
      return Status::IoError(StrFormat("vector %zu in %s has negative "
                                       "length %d",
                                       i, path.c_str(), len));
    }
    math::Vec* dst = state.vectors[i];
    if (!dst->empty() && static_cast<int32_t>(dst->size()) != len) {
      return Status::IoError(StrFormat(
          "vector %zu in %s has length %d but %s expects %zu", i,
          path.c_str(), len, header.model.c_str(), dst->size()));
    }
    const size_t bytes = static_cast<size_t>(len) * sizeof(double);
    const unsigned char* payload = cur.ReadSpan(bytes, "vector payload");
    if (payload == nullptr) return cur.error();
    if (Crc32(payload, bytes) != crc) {
      return Status::IoError(StrFormat(
          "vector %zu checksum mismatch in %s (corrupted snapshot)", i,
          path.c_str()));
    }
    dst->resize(len);
    std::memcpy(dst->data(), payload, bytes);
    LOGIREC_RETURN_IF_ERROR(CheckFinite(
        dst->data(), static_cast<size_t>(len), "vector", i, path));
  }
  if (!state.scalars.empty()) {
    if (tagged) {
      uint32_t tag = 0;
      if (!cur.ReadU32(&tag)) return cur.error();
      LOGIREC_RETURN_IF_ERROR(CheckDtypeCode(tag, "scalar tag", path));
      if (static_cast<SnapshotDtype>(tag) != SnapshotDtype::kF64) {
        return Status::IoError(
            "scalar block in " + path + " is not f64 — scalars always "
            "store exact");
      }
    }
    uint32_t crc = 0;
    if (!cur.ReadU32(&crc)) return cur.error();
    const size_t bytes = state.scalars.size() * sizeof(double);
    const unsigned char* payload = cur.ReadSpan(bytes, "scalar block");
    if (payload == nullptr) return cur.error();
    if (Crc32(payload, bytes) != crc) {
      return Status::IoError("scalar block checksum mismatch in " + path);
    }
    std::vector<double> block(state.scalars.size());
    std::memcpy(block.data(), payload, bytes);
    LOGIREC_RETURN_IF_ERROR(CheckFinite(block.data(), block.size(),
                                        "scalar block", 0, path));
    for (size_t i = 0; i < state.scalars.size(); ++i) {
      *state.scalars[i] = block[i];
    }
  }
  if (cur.pos() != buf.size()) {
    // Anything after the last scoring tensor must be the optional
    // trainer-state trailer; other trailing bytes are corruption.
    const size_t trailing = buf.size() - cur.pos();
    uint32_t trailer_magic = 0;
    if (trailing < sizeof(uint32_t) || !cur.ReadU32(&trailer_magic) ||
        trailer_magic != kTrailerMagic) {
      return Status::IoError(StrFormat(
          "%zu trailing bytes after the last tensor in %s", trailing,
          path.c_str()));
    }
    uint32_t tn_matrices = 0, tn_vectors = 0, tn_scalars = 0;
    if (!cur.ReadU32(&tn_matrices) || !cur.ReadU32(&tn_vectors) ||
        !cur.ReadU32(&tn_scalars)) {
      return cur.error();
    }
    ParameterSet tstate;
    (*model)->CollectTrainerState(&tstate);
    if (tstate.matrices.size() != tn_matrices ||
        tstate.vectors.size() != tn_vectors ||
        tstate.scalars.size() != tn_scalars) {
      return Status::IoError(StrFormat(
          "trainer-state trailer in %s carries %u/%u/%u tensors but %s "
          "enumerates %zu/%zu/%zu — incompatible snapshot",
          path.c_str(), tn_matrices, tn_vectors, tn_scalars,
          header.model.c_str(), tstate.matrices.size(),
          tstate.vectors.size(), tstate.scalars.size()));
    }
    for (size_t i = 0; i < tstate.matrices.size(); ++i) {
      int32_t rows = 0, cols = 0;
      uint32_t crc = 0;
      if (!cur.ReadI32(&rows) || !cur.ReadI32(&cols) || !cur.ReadU32(&crc)) {
        return cur.error();
      }
      if (rows < 0 || cols < 0) {
        return Status::IoError(StrFormat(
            "trainer matrix %zu in %s has negative shape %dx%d", i,
            path.c_str(), rows, cols));
      }
      math::Matrix* dst = tstate.matrices[i];
      if (dst->rows() > 0 && (dst->rows() != rows || dst->cols() != cols)) {
        return Status::IoError(StrFormat(
            "trainer matrix %zu in %s is %dx%d but %s expects %dx%d", i,
            path.c_str(), rows, cols, header.model.c_str(), dst->rows(),
            dst->cols()));
      }
      const size_t count =
          static_cast<size_t>(rows) * static_cast<size_t>(cols);
      const size_t bytes = count * sizeof(double);
      const unsigned char* payload =
          cur.ReadSpan(bytes, "trainer matrix payload");
      if (payload == nullptr) return cur.error();
      if (Crc32(payload, bytes) != crc) {
        return Status::IoError(StrFormat(
            "trainer matrix %zu checksum mismatch in %s (corrupted "
            "snapshot)",
            i, path.c_str()));
      }
      dst->Reset(rows, cols);
      std::memcpy(dst->data().data(), payload, bytes);
      LOGIREC_RETURN_IF_ERROR(CheckFinite(dst->data().data(), count,
                                          "trainer matrix", i, path));
    }
    for (size_t i = 0; i < tstate.vectors.size(); ++i) {
      int32_t len = 0;
      uint32_t crc = 0;
      if (!cur.ReadI32(&len) || !cur.ReadU32(&crc)) return cur.error();
      if (len < 0) {
        return Status::IoError(StrFormat(
            "trainer vector %zu in %s has negative length %d", i,
            path.c_str(), len));
      }
      math::Vec* dst = tstate.vectors[i];
      if (!dst->empty() && static_cast<int32_t>(dst->size()) != len) {
        return Status::IoError(StrFormat(
            "trainer vector %zu in %s has length %d but %s expects %zu", i,
            path.c_str(), len, header.model.c_str(), dst->size()));
      }
      const size_t bytes = static_cast<size_t>(len) * sizeof(double);
      const unsigned char* payload =
          cur.ReadSpan(bytes, "trainer vector payload");
      if (payload == nullptr) return cur.error();
      if (Crc32(payload, bytes) != crc) {
        return Status::IoError(StrFormat(
            "trainer vector %zu checksum mismatch in %s (corrupted "
            "snapshot)",
            i, path.c_str()));
      }
      dst->resize(len);
      std::memcpy(dst->data(), payload, bytes);
      LOGIREC_RETURN_IF_ERROR(CheckFinite(
          dst->data(), static_cast<size_t>(len), "trainer vector", i, path));
    }
    if (!tstate.scalars.empty()) {
      uint32_t crc = 0;
      if (!cur.ReadU32(&crc)) return cur.error();
      const size_t bytes = tstate.scalars.size() * sizeof(double);
      const unsigned char* payload =
          cur.ReadSpan(bytes, "trainer scalar block");
      if (payload == nullptr) return cur.error();
      if (Crc32(payload, bytes) != crc) {
        return Status::IoError("trainer scalar block checksum mismatch in " +
                               path);
      }
      std::vector<double> block(tstate.scalars.size());
      std::memcpy(block.data(), payload, bytes);
      LOGIREC_RETURN_IF_ERROR(CheckFinite(block.data(), block.size(),
                                          "trainer scalar block", 0, path));
      for (size_t i = 0; i < tstate.scalars.size(); ++i) {
        *tstate.scalars[i] = block[i];
      }
    }
    if (cur.pos() != buf.size()) {
      return Status::IoError(StrFormat(
          "%zu trailing bytes after the trainer-state trailer in %s",
          buf.size() - cur.pos(), path.c_str()));
    }
    header.has_trainer_state = true;
  }

  LOGIREC_RETURN_IF_ERROR((*model)->FinalizeRestoredState());
  header.file_bytes = buf.size();
  if (header_out != nullptr) *header_out = header;
  return std::move(*model);
}

}  // namespace logirec::core
