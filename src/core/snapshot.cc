#include "core/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/crc32.h"
#include "util/string_util.h"

namespace logirec::core {
namespace {

static_assert(std::endian::native == std::endian::little,
              "model snapshots are defined little-endian; add byte "
              "swapping before building on a big-endian target");

void PutU32(std::vector<unsigned char>* buf, uint32_t v) {
  const size_t at = buf->size();
  buf->resize(at + sizeof v);
  std::memcpy(buf->data() + at, &v, sizeof v);
}

void PutI32(std::vector<unsigned char>* buf, int32_t v) {
  PutU32(buf, static_cast<uint32_t>(v));
}

void PutBytes(std::vector<unsigned char>* buf, const void* data,
              size_t len) {
  const size_t at = buf->size();
  buf->resize(at + len);
  std::memcpy(buf->data() + at, data, len);
}

/// Bounds-checked forward cursor over the bulk-loaded file image. Every
/// read reports truncation through ok()/error() instead of running off
/// the buffer, so corrupted files degrade into descriptive Status errors.
class Cursor {
 public:
  Cursor(const unsigned char* data, size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof *v, "u32"); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof *v, "i32"); }

  bool ReadString(uint32_t len, std::string* out) {
    if (!Ensure(len, "string")) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  /// Returns a pointer to `len` raw payload bytes and advances.
  const unsigned char* ReadSpan(size_t len, const char* what) {
    if (!Ensure(len, what)) return nullptr;
    const unsigned char* p = data_ + pos_;
    pos_ += len;
    return p;
  }

  size_t pos() const { return pos_; }
  bool ok() const { return error_.ok(); }
  const Status& error() const { return error_; }

 private:
  bool ReadRaw(void* out, size_t len, const char* what) {
    if (!Ensure(len, what)) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  bool Ensure(size_t len, const char* what) {
    if (!error_.ok()) return false;
    if (pos_ + len > size_) {
      error_ = Status::IoError(StrFormat(
          "truncated snapshot %s: need %zu bytes for %s at offset %zu, "
          "file has %zu",
          path_.c_str(), len, what, pos_, size_));
      return false;
    }
    return true;
  }

  const unsigned char* data_;
  size_t size_;
  std::string path_;
  size_t pos_ = 0;
  Status error_ = Status::OK();
};

Status BulkLoad(const std::string& path, std::vector<unsigned char>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open snapshot: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat snapshot: " + path);
  }
  out->resize(static_cast<size_t>(size));
  const size_t read =
      size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IoError("short read on snapshot: " + path);
  }
  return Status::OK();
}

/// Parses the fixed header (through header_crc). On success the cursor
/// sits on the first tensor record and counts are filled in.
Status ParseHeader(Cursor* cur, const std::string& path,
                   SnapshotHeader* header, uint32_t* n_matrices,
                   uint32_t* n_vectors, uint32_t* n_scalars) {
  uint32_t magic = 0, version = 0;
  if (!cur->ReadU32(&magic)) return cur->error();
  if (magic != ModelSnapshot::kMagic) {
    return Status::IoError(StrFormat(
        "%s is not a model snapshot (bad magic 0x%08x)", path.c_str(),
        magic));
  }
  if (!cur->ReadU32(&version)) return cur->error();
  if (version != ModelSnapshot::kVersion) {
    return Status::IoError(StrFormat(
        "unsupported snapshot version %u in %s (this build reads %u)",
        version, path.c_str(), ModelSnapshot::kVersion));
  }
  uint32_t name_len = 0;
  int32_t dim = 0, layers = 0, num_users = 0, num_items = 0;
  if (!cur->ReadU32(&header->flags) || !cur->ReadI32(&dim) ||
      !cur->ReadI32(&layers) || !cur->ReadI32(&num_users) ||
      !cur->ReadI32(&num_items) || !cur->ReadU32(&name_len)) {
    return cur->error();
  }
  if (name_len > 256) {
    return Status::IoError("implausible model-name length in " + path);
  }
  if (!cur->ReadString(name_len, &header->model)) return cur->error();
  if (!cur->ReadU32(n_matrices) || !cur->ReadU32(n_vectors) ||
      !cur->ReadU32(n_scalars)) {
    return cur->error();
  }
  header->dim = dim;
  header->layers = layers;
  header->num_users = num_users;
  header->num_items = num_items;

  // Consume the header CRC; callers recompute it over the preceding
  // bytes (the cursor position marks where it sits).
  uint32_t stored_crc = 0;
  if (!cur->ReadU32(&stored_crc)) return cur->error();
  return Status::OK();
}

}  // namespace

Status ModelSnapshot::Write(Recommender& model, SnapshotHeader header,
                            const std::string& path) {
  ParameterSet state;
  model.CollectScoringState(&state);
  if (state.empty()) {
    return Status::FailedPrecondition(
        model.name() + " registers no scoring state; snapshot unsupported");
  }
  header.model = model.name();
  header.flags = model.SnapshotFlags();

  std::vector<unsigned char> buf;
  PutU32(&buf, kMagic);
  PutU32(&buf, kVersion);
  PutU32(&buf, header.flags);
  PutI32(&buf, header.dim);
  PutI32(&buf, header.layers);
  PutI32(&buf, header.num_users);
  PutI32(&buf, header.num_items);
  PutU32(&buf, static_cast<uint32_t>(header.model.size()));
  PutBytes(&buf, header.model.data(), header.model.size());
  PutU32(&buf, static_cast<uint32_t>(state.matrices.size()));
  PutU32(&buf, static_cast<uint32_t>(state.vectors.size()));
  PutU32(&buf, static_cast<uint32_t>(state.scalars.size()));
  PutU32(&buf, Crc32(buf.data(), buf.size()));

  for (const math::Matrix* m : state.matrices) {
    PutI32(&buf, m->rows());
    PutI32(&buf, m->cols());
    const size_t bytes = m->data().size() * sizeof(double);
    PutU32(&buf, Crc32(m->data().data(), bytes));
    PutBytes(&buf, m->data().data(), bytes);
  }
  for (const math::Vec* v : state.vectors) {
    PutI32(&buf, static_cast<int32_t>(v->size()));
    const size_t bytes = v->size() * sizeof(double);
    PutU32(&buf, Crc32(v->data(), bytes));
    PutBytes(&buf, v->data(), bytes);
  }
  if (!state.scalars.empty()) {
    std::vector<double> block;
    block.reserve(state.scalars.size());
    for (const double* s : state.scalars) block.push_back(*s);
    const size_t bytes = block.size() * sizeof(double);
    PutU32(&buf, Crc32(block.data(), bytes));
    PutBytes(&buf, block.data(), bytes);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create snapshot: " + path);
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != buf.size() || !closed_ok) {
    return Status::IoError("short write on snapshot: " + path);
  }
  return Status::OK();
}

Result<SnapshotHeader> ModelSnapshot::Peek(const std::string& path) {
  std::vector<unsigned char> buf;
  LOGIREC_RETURN_IF_ERROR(BulkLoad(path, &buf));
  Cursor cur(buf.data(), buf.size(), path);
  SnapshotHeader header;
  uint32_t nm = 0, nv = 0, ns = 0;
  LOGIREC_RETURN_IF_ERROR(ParseHeader(&cur, path, &header, &nm, &nv, &ns));
  const size_t crc_at = cur.pos() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + crc_at, sizeof stored_crc);
  if (Crc32(buf.data(), crc_at) != stored_crc) {
    return Status::IoError("snapshot header checksum mismatch in " + path);
  }
  return header;
}

Result<std::unique_ptr<Recommender>> ModelSnapshot::Read(
    const std::string& path, const ModelFactory& factory,
    SnapshotHeader* header_out) {
  std::vector<unsigned char> buf;
  LOGIREC_RETURN_IF_ERROR(BulkLoad(path, &buf));
  Cursor cur(buf.data(), buf.size(), path);
  SnapshotHeader header;
  uint32_t n_matrices = 0, n_vectors = 0, n_scalars = 0;
  LOGIREC_RETURN_IF_ERROR(
      ParseHeader(&cur, path, &header, &n_matrices, &n_vectors, &n_scalars));
  const size_t header_crc_at = cur.pos() - sizeof(uint32_t);
  uint32_t stored_header_crc = 0;
  std::memcpy(&stored_header_crc, buf.data() + header_crc_at,
              sizeof stored_header_crc);
  if (Crc32(buf.data(), header_crc_at) != stored_header_crc) {
    return Status::IoError("snapshot header checksum mismatch in " + path);
  }

  TrainConfig config;
  config.dim = header.dim;
  config.layers = header.layers;
  auto model = factory(header.model, config);
  if (!model.ok()) return model.status();
  LOGIREC_RETURN_IF_ERROR((*model)->ApplySnapshotFlags(header.flags));
  (*model)->PrepareForRestore();
  ParameterSet state;
  (*model)->CollectScoringState(&state);
  if (state.matrices.size() != n_matrices ||
      state.vectors.size() != n_vectors ||
      state.scalars.size() != n_scalars) {
    return Status::IoError(StrFormat(
        "snapshot %s carries %u/%u/%u tensors but %s enumerates "
        "%zu/%zu/%zu — incompatible snapshot",
        path.c_str(), n_matrices, n_vectors, n_scalars,
        header.model.c_str(), state.matrices.size(), state.vectors.size(),
        state.scalars.size()));
  }

  for (size_t i = 0; i < state.matrices.size(); ++i) {
    int32_t rows = 0, cols = 0;
    uint32_t crc = 0;
    if (!cur.ReadI32(&rows) || !cur.ReadI32(&cols) || !cur.ReadU32(&crc)) {
      return cur.error();
    }
    if (rows < 0 || cols < 0) {
      return Status::IoError(StrFormat("matrix %zu in %s has negative "
                                       "shape %dx%d",
                                       i, path.c_str(), rows, cols));
    }
    math::Matrix* dst = state.matrices[i];
    if (dst->rows() > 0 &&
        (dst->rows() != rows || dst->cols() != cols)) {
      return Status::IoError(StrFormat(
          "matrix %zu in %s is %dx%d but %s expects %dx%d", i,
          path.c_str(), rows, cols, header.model.c_str(), dst->rows(),
          dst->cols()));
    }
    const size_t bytes =
        static_cast<size_t>(rows) * static_cast<size_t>(cols) *
        sizeof(double);
    const unsigned char* payload = cur.ReadSpan(bytes, "matrix payload");
    if (payload == nullptr) return cur.error();
    if (Crc32(payload, bytes) != crc) {
      return Status::IoError(StrFormat(
          "matrix %zu checksum mismatch in %s (corrupted snapshot)", i,
          path.c_str()));
    }
    dst->Reset(rows, cols);
    std::memcpy(dst->data().data(), payload, bytes);
  }
  for (size_t i = 0; i < state.vectors.size(); ++i) {
    int32_t len = 0;
    uint32_t crc = 0;
    if (!cur.ReadI32(&len) || !cur.ReadU32(&crc)) return cur.error();
    if (len < 0) {
      return Status::IoError(StrFormat("vector %zu in %s has negative "
                                       "length %d",
                                       i, path.c_str(), len));
    }
    math::Vec* dst = state.vectors[i];
    if (!dst->empty() && static_cast<int32_t>(dst->size()) != len) {
      return Status::IoError(StrFormat(
          "vector %zu in %s has length %d but %s expects %zu", i,
          path.c_str(), len, header.model.c_str(), dst->size()));
    }
    const size_t bytes = static_cast<size_t>(len) * sizeof(double);
    const unsigned char* payload = cur.ReadSpan(bytes, "vector payload");
    if (payload == nullptr) return cur.error();
    if (Crc32(payload, bytes) != crc) {
      return Status::IoError(StrFormat(
          "vector %zu checksum mismatch in %s (corrupted snapshot)", i,
          path.c_str()));
    }
    dst->resize(len);
    std::memcpy(dst->data(), payload, bytes);
  }
  if (!state.scalars.empty()) {
    uint32_t crc = 0;
    if (!cur.ReadU32(&crc)) return cur.error();
    const size_t bytes = state.scalars.size() * sizeof(double);
    const unsigned char* payload = cur.ReadSpan(bytes, "scalar block");
    if (payload == nullptr) return cur.error();
    if (Crc32(payload, bytes) != crc) {
      return Status::IoError("scalar block checksum mismatch in " + path);
    }
    for (size_t i = 0; i < state.scalars.size(); ++i) {
      std::memcpy(state.scalars[i], payload + i * sizeof(double),
                  sizeof(double));
    }
  }
  if (cur.pos() != buf.size()) {
    return Status::IoError(StrFormat(
        "%zu trailing bytes after the last tensor in %s",
        buf.size() - cur.pos(), path.c_str()));
  }

  LOGIREC_RETURN_IF_ERROR((*model)->FinalizeRestoredState());
  if (header_out != nullptr) *header_out = header;
  return std::move(*model);
}

}  // namespace logirec::core
