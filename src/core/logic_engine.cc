#include "core/logic_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/logic_losses.h"
#include "hyper/poincare.h"
#include "math/simd.h"
#include "math/vec.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace logirec::core {

using math::Matrix;

namespace {

/// Distinguishes the relation-sampling streams from the trainer's
/// negative streams MixSeed(seed, ...) and aux streams MixSeed(~seed, ...).
constexpr uint64_t kLogicSeedSalt = 0x6c6f676963ULL;  // "logic"

/// Relations per phase-1 work unit: big enough to amortize the dispatch,
/// small enough to balance families of a few hundred relations across
/// workers. Chunk boundaries never affect values — every relation's slot
/// is an independent pure function of the inputs.
constexpr int kChunk = 128;

/// Read-only view of the per-tag ball cache plus the raw center matrix,
/// passed into the flat kernels below.
struct TagCacheView {
  const double* centers;  ///< enclosing-ball centers o_c, row-major
  const double* raw;      ///< hyperplane centers c, row-major
  const double* radius;   ///< r_c
  const double* n;        ///< max(||c||, kMinNorm)
  const double* a;        ///< (1 + n^2) / (2 n^2)
  const double* da_dn;    ///< -1 / n^3
  const double* dr_dn;    ///< -(n^2 + 1) / (2 n^2)
  int d;
};

/// out[r] = ||xbase[xids[r]] - ybase[yids[r]]||^2 for r in [begin, end).
/// Four independent accumulator chains per pass; each relation's sum adds
/// its terms in the same ascending-k order as math::SquaredNorm over the
/// explicit difference vector, so sqrt(out[r]) is bit-identical to the
/// scalar helpers' math::Norm(math::Sub(x, y)).
LOGIREC_SIMD_CLONES
void PairDistSq(const double* xbase, const int* xids, const double* ybase,
                const int* yids, int d, int begin, int end, double* out) {
  int r = begin;
  for (; r + 4 <= end; r += 4) {
    const double* x0 = xbase + static_cast<size_t>(xids[r]) * d;
    const double* x1 = xbase + static_cast<size_t>(xids[r + 1]) * d;
    const double* x2 = xbase + static_cast<size_t>(xids[r + 2]) * d;
    const double* x3 = xbase + static_cast<size_t>(xids[r + 3]) * d;
    const double* y0 = ybase + static_cast<size_t>(yids[r]) * d;
    const double* y1 = ybase + static_cast<size_t>(yids[r + 1]) * d;
    const double* y2 = ybase + static_cast<size_t>(yids[r + 2]) * d;
    const double* y3 = ybase + static_cast<size_t>(yids[r + 3]) * d;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (int k = 0; k < d; ++k) {
      const double d0 = x0[k] - y0[k];
      const double d1 = x1[k] - y1[k];
      const double d2 = x2[k] - y2[k];
      const double d3 = x3[k] - y3[k];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < end; ++r) {
    const double* x = xbase + static_cast<size_t>(xids[r]) * d;
    const double* y = ybase + static_cast<size_t>(yids[r]) * d;
    double s = 0.0;
    for (int k = 0; k < d; ++k) {
      const double dk = x[k] - y[k];
      s += dk * dk;
    }
    out[r] = s;
  }
}

/// Assigns (does not accumulate) into `out` the pullback of a ball-space
/// gradient through BallFromCenter for tag `t`: center gradient
/// g_center = (bx - by) * s_c and radius gradient `grad_radius`. This is
/// hyper::BallFromCenterVjp with the n/a/da_dn/dr_dn prefix read from the
/// cache instead of recomputed per relation — statement for statement the
/// same expressions, so every value matches the scalar path bitwise.
inline void AssignBallVjp(const double* bx, const double* by, double s_c,
                          double grad_radius, int t, const TagCacheView& tc,
                          double* out) {
  const int d = tc.d;
  const double* c = tc.raw + static_cast<size_t>(t) * d;
  // math::Dot(g_center, c): each term rounds (bx-by)*s_c first, exactly
  // like the materialized math::Scale row the legacy loop dotted with c.
  double g_dot_c = 0.0;
  for (int k = 0; k < d; ++k) {
    g_dot_c += ((bx[k] - by[k]) * s_c) * c[k];
  }
  const double n = tc.n[t];
  const double a = tc.a[t];
  const double da_dn = tc.da_dn[t];
  const double dr_dn = tc.dr_dn[t];
  for (int j = 0; j < d; ++j) {
    double g = 0.0;
    g += a * ((bx[j] - by[j]) * s_c) + (da_dn / n) * c[j] * g_dot_c;
    g += grad_radius * dr_dn * c[j] / n;
    out[j] = g;
  }
}

}  // namespace

LogicEngine::LogicEngine(const data::LogicalRelations& relations,
                         const Options& options)
    : options_(options) {
  if (options_.use_membership) {
    mem_.x.reserve(relations.memberships.size());
    mem_.y.reserve(relations.memberships.size());
    for (const auto& [item, tag] : relations.memberships) {
      mem_.x.push_back(item);
      mem_.y.push_back(tag);
      max_item_ = std::max(max_item_, item);
      max_tag_ = std::max(max_tag_, tag);
    }
  }
  if (options_.use_hierarchy) {
    hie_.x.reserve(relations.hierarchy.size());
    hie_.y.reserve(relations.hierarchy.size());
    for (const data::HierarchyPair& h : relations.hierarchy) {
      hie_.x.push_back(h.parent);
      hie_.y.push_back(h.child);
      max_tag_ = std::max({max_tag_, h.parent, h.child});
    }
  }
  if (options_.use_exclusion) {
    exc_.x.reserve(relations.exclusions.size());
    exc_.y.reserve(relations.exclusions.size());
    for (const data::ExclusionPair& e : relations.exclusions) {
      exc_.x.push_back(e.a);
      exc_.y.push_back(e.b);
      max_tag_ = std::max({max_tag_, e.a, e.b});
    }
  }
  if (options_.use_intersection) {
    int_.x.reserve(relations.intersections.size());
    int_.y.reserve(relations.intersections.size());
    for (const data::IntersectionPair& p : relations.intersections) {
      int_.x.push_back(p.a);
      int_.y.push_back(p.b);
      max_tag_ = std::max({max_tag_, p.a, p.b});
    }
  }
  mem_.base = 0;
  hie_.base = mem_.size();
  exc_.base = hie_.base + hie_.size();
  int_.base = exc_.base + exc_.size();
  total_ = int_.base + int_.size();

  // Destination CSRs for the full-pass ordered fold. Entries are appended
  // family by family in relation order, so every destination row lists
  // its relations in exactly the order the legacy loops touched it.
  item_offsets_.assign(static_cast<size_t>(max_item_ + 1) + 1, 0);
  tag_offsets_.assign(static_cast<size_t>(max_tag_ + 1) + 1, 0);
  for (int v : mem_.x) ++item_offsets_[v + 1];
  for (int t : mem_.y) ++tag_offsets_[t + 1];
  for (const Family* f : {&hie_, &exc_, &int_}) {
    for (int t : f->x) ++tag_offsets_[t + 1];
    for (int t : f->y) ++tag_offsets_[t + 1];
  }
  for (size_t i = 1; i < item_offsets_.size(); ++i) {
    item_offsets_[i] += item_offsets_[i - 1];
  }
  for (size_t i = 1; i < tag_offsets_.size(); ++i) {
    tag_offsets_[i] += tag_offsets_[i - 1];
  }
  item_rels_.resize(item_offsets_.back());
  tag_entries_.resize(tag_offsets_.back());
  std::vector<int> item_cursor(item_offsets_.begin(), item_offsets_.end() - 1);
  std::vector<int> tag_cursor(tag_offsets_.begin(), tag_offsets_.end() - 1);
  for (int r = 0; r < mem_.size(); ++r) {
    item_rels_[item_cursor[mem_.x[r]]++] = mem_.base + r;
    tag_entries_[tag_cursor[mem_.y[r]]++] =
        (static_cast<uint32_t>(mem_.base + r) << 1) | 1u;
  }
  for (const Family* f : {&hie_, &exc_, &int_}) {
    for (int r = 0; r < f->size(); ++r) {
      tag_entries_[tag_cursor[f->x[r]]++] =
          static_cast<uint32_t>(f->base + r) << 1;
      tag_entries_[tag_cursor[f->y[r]]++] =
          (static_cast<uint32_t>(f->base + r) << 1) | 1u;
    }
  }
}

void LogicEngine::AppendRelations(const data::LogicalRelations& delta) {
  const int old_mem = mem_.size();
  const int old_hie = hie_.size();
  const int old_exc = exc_.size();
  const int old_int = int_.size();

  if (options_.use_membership) {
    for (const auto& [item, tag] : delta.memberships) {
      mem_.x.push_back(item);
      mem_.y.push_back(tag);
      max_item_ = std::max(max_item_, item);
      max_tag_ = std::max(max_tag_, tag);
    }
  }
  if (options_.use_hierarchy) {
    for (const data::HierarchyPair& h : delta.hierarchy) {
      hie_.x.push_back(h.parent);
      hie_.y.push_back(h.child);
      max_tag_ = std::max({max_tag_, h.parent, h.child});
    }
  }
  if (options_.use_exclusion) {
    for (const data::ExclusionPair& e : delta.exclusions) {
      exc_.x.push_back(e.a);
      exc_.y.push_back(e.b);
      max_tag_ = std::max({max_tag_, e.a, e.b});
    }
  }
  if (options_.use_intersection) {
    for (const data::IntersectionPair& p : delta.intersections) {
      int_.x.push_back(p.a);
      int_.y.push_back(p.b);
      max_tag_ = std::max({max_tag_, p.a, p.b});
    }
  }
  const int dm = mem_.size() - old_mem;
  const int dh = hie_.size() - old_hie;
  const int de = exc_.size() - old_exc;
  const int di = int_.size() - old_int;
  if (dm + dh + de + di == 0) return;

  hie_.base = mem_.size();
  exc_.base = hie_.base + hie_.size();
  int_.base = exc_.base + exc_.size();
  total_ = int_.base + int_.size();

  // Renumber the existing tag entries to the new global indices in one
  // pass: a relation that was global index g shifts by the number of new
  // relations inserted into families BEFORE g's family. item_rels_ holds
  // membership indices only (base 0, unchanged), so it never renumbers.
  const uint32_t b1 = static_cast<uint32_t>(old_mem);
  const uint32_t b2 = b1 + static_cast<uint32_t>(old_hie);
  const uint32_t b3 = b2 + static_cast<uint32_t>(old_exc);
  for (uint32_t& e : tag_entries_) {
    const uint32_t g = e >> 1;
    const uint32_t shift = g < b1 ? 0u
                           : g < b2 ? static_cast<uint32_t>(dm)
                           : g < b3 ? static_cast<uint32_t>(dm + dh)
                                    : static_cast<uint32_t>(dm + dh + de);
    e += shift << 1;
  }

  // Grow the destination CSR offsets when new ids extend the ranges
  // (empty trailing rows, exactly as a rebuild would size them).
  while (static_cast<int>(item_offsets_.size()) < max_item_ + 2) {
    item_offsets_.push_back(item_offsets_.back());
  }
  while (static_cast<int>(tag_offsets_.size()) < max_tag_ + 2) {
    tag_offsets_.push_back(tag_offsets_.back());
  }

  // Item CSR: the new membership relations carry the largest membership
  // indices, so within each item row they belong at the tail — a
  // back-to-front splice, then fill the gaps in relation order.
  if (dm > 0) {
    std::vector<int> add_item(item_offsets_.size() - 1, 0);
    for (int r = old_mem; r < mem_.size(); ++r) ++add_item[mem_.x[r]];
    item_rels_.resize(item_rels_.size() + dm);
    long pref = dm;
    for (int r = static_cast<int>(add_item.size()) - 1; r >= 0 && pref > 0;
         --r) {
      const long begin = item_offsets_[r];
      const long end = item_offsets_[r + 1];
      const long move = pref - add_item[r];
      item_offsets_[r + 1] = static_cast<int>(end + pref);
      if (move > 0 && end > begin) {
        std::memmove(item_rels_.data() + begin + move,
                     item_rels_.data() + begin,
                     static_cast<size_t>(end - begin) * sizeof(int));
      }
      pref = move;
    }
    std::vector<int> fill(add_item.size(), 0);
    for (size_t r = 0; r < add_item.size(); ++r) {
      fill[r] = item_offsets_[r + 1] - add_item[r];
    }
    for (int r = old_mem; r < mem_.size(); ++r) {
      item_rels_[fill[mem_.x[r]]++] = mem_.base + r;
    }
  }

  // Tag CSR: new entries interleave with renumbered old ones (a new
  // membership index sorts below an old hierarchy one), so each touched
  // row gets a backward in-place sorted merge. Generating the new entries
  // family by family in relation order yields them per row already
  // ascending by encoded value — the rebuild ordering.
  std::vector<int> add_tag(tag_offsets_.size() - 1, 0);
  std::vector<std::vector<uint32_t>> fresh(tag_offsets_.size() - 1);
  const auto push_tag = [&](int t, uint32_t encoded) {
    fresh[t].push_back(encoded);
    ++add_tag[t];
  };
  for (int r = old_mem; r < mem_.size(); ++r) {
    push_tag(mem_.y[r], (static_cast<uint32_t>(mem_.base + r) << 1) | 1u);
  }
  const std::pair<const Family*, int> pair_families[] = {
      {&hie_, old_hie}, {&exc_, old_exc}, {&int_, old_int}};
  for (const auto& [f, old_size] : pair_families) {
    for (int r = old_size; r < f->size(); ++r) {
      push_tag(f->x[r], static_cast<uint32_t>(f->base + r) << 1);
      push_tag(f->y[r], (static_cast<uint32_t>(f->base + r) << 1) | 1u);
    }
  }
  long total_add = 0;
  for (int a : add_tag) total_add += a;
  if (total_add > 0) {
    tag_entries_.resize(tag_entries_.size() + total_add);
    long pref = total_add;
    for (int t = static_cast<int>(add_tag.size()) - 1; t >= 0 && pref > 0;
         --t) {
      const long begin = tag_offsets_[t];
      const long end = tag_offsets_[t + 1];
      const long move = pref - add_tag[t];
      tag_offsets_[t + 1] = static_cast<int>(end + pref);
      long w = end + pref;  // one past the last write slot
      long i = end;         // old payload read cursor (exclusive)
      int j = add_tag[t];   // fresh read cursor (exclusive)
      const std::vector<uint32_t>& ne = fresh[t];
      while (j > 0) {
        if (i > begin && tag_entries_[i - 1] > ne[j - 1]) {
          tag_entries_[--w] = tag_entries_[--i];
        } else {
          tag_entries_[--w] = ne[--j];
        }
      }
      if (move > 0 && i > begin) {
        std::memmove(tag_entries_.data() + begin + move,
                     tag_entries_.data() + begin,
                     static_cast<size_t>(i - begin) * sizeof(uint32_t));
      }
      pref = move;
    }
  }
}

const std::vector<int>& LogicEngine::family_x(int family) const {
  const Family* fams[] = {&mem_, &hie_, &exc_, &int_};
  LOGIREC_CHECK(family >= 0 && family < 4);
  return fams[family]->x;
}

const std::vector<int>& LogicEngine::family_y(int family) const {
  const Family* fams[] = {&mem_, &hie_, &exc_, &int_};
  LOGIREC_CHECK(family >= 0 && family < 4);
  return fams[family]->y;
}

int LogicEngine::family_base(int family) const {
  const Family* fams[] = {&mem_, &hie_, &exc_, &int_};
  LOGIREC_CHECK(family >= 0 && family < 4);
  return fams[family]->base;
}

long LogicEngine::relations_per_call() const {
  const int nb = options_.relation_batch;
  long per_call = 0;
  for (const Family* f : {&mem_, &hie_, &exc_, &int_}) {
    per_call += (nb > 0 && nb < f->size()) ? nb : f->size();
  }
  return per_call;
}

void LogicEngine::RefreshTagCache(const Matrix& tag_centers,
                                  int num_threads) {
  const int nt = tag_centers.rows();
  const int d = tag_centers.cols();
  if (!tags_dirty_ && ball_center_.rows() == nt && ball_center_.cols() == d) {
    return;
  }
  ball_center_.Reset(nt, d);
  radius_.resize(nt);
  norm_.resize(nt);
  scale_a_.resize(nt);
  da_dn_.resize(nt);
  dr_dn_.resize(nt);
  ParallelFor(0, nt, [&](int t) {
    // The shared prefix of hyper::BallFromCenter and BallFromCenterVjp,
    // expression for expression: cached once per tag instead of
    // recomputed (with two Vec allocations) once per relation.
    const math::ConstSpan c = tag_centers.Row(t);
    const double n = std::max(math::Norm(c), hyper::kMinNorm);
    const double a = (1.0 + n * n) / (2.0 * n * n);
    math::Span o = ball_center_.Row(t);
    for (int k = 0; k < d; ++k) o[k] = c[k] * a;
    radius_[t] = (1.0 - n * n) / (2.0 * n);
    norm_[t] = n;
    scale_a_[t] = a;
    da_dn_[t] = -1.0 / (n * n * n);
    dr_dn_[t] = -(n * n + 1.0) / (2.0 * n * n);
  }, num_threads);
  tags_dirty_ = false;
}

bool LogicEngine::BuildRuns(int epoch, int shard,
                            std::vector<FamilyRun>* runs) {
  runs->clear();
  const int nb = options_.relation_batch;
  bool sampled = false;
  int base = 0;
  const std::pair<Kind, const Family*> families[] = {{kMembership, &mem_},
                                                     {kHierarchy, &hie_},
                                                     {kExclusion, &exc_},
                                                     {kIntersection, &int_}};
  for (const auto& [kind, fam] : families) {
    if (fam->size() == 0) continue;
    FamilyRun run;
    run.kind = kind;
    run.base = base;
    run.count = (nb > 0 && nb < fam->size()) ? nb : fam->size();
    run.rescale = static_cast<double>(fam->size()) / run.count;
    if (run.count < fam->size()) sampled = true;
    runs->push_back(run);
    base += run.count;
  }
  if (!sampled) {
    for (FamilyRun& run : *runs) {
      const Family& fam = run.kind == kMembership   ? mem_
                          : run.kind == kHierarchy  ? hie_
                          : run.kind == kExclusion  ? exc_
                                                    : int_;
      run.xids = fam.x.data();
      run.yids = fam.y.data();
    }
    return false;
  }
  // Sampled call: gather every run's endpoint ids into the contiguous
  // sx_/sy_ position arrays. All draws come from one counter-based
  // stream consumed in fixed family order, so the slice is a pure
  // function of (seed, epoch, shard) — identical for every thread count
  // and for both scheduling modes.
  sx_.resize(base);
  sy_.resize(base);
  Rng rng(Rng::MixSeed(options_.seed ^ kLogicSeedSalt,
                       static_cast<uint64_t>(epoch),
                       static_cast<uint64_t>(shard)));
  for (FamilyRun& run : *runs) {
    const Family& fam = run.kind == kMembership   ? mem_
                        : run.kind == kHierarchy  ? hie_
                        : run.kind == kExclusion  ? exc_
                                                  : int_;
    if (run.count < fam.size()) {
      for (int j = 0; j < run.count; ++j) {
        const int idx = rng.UniformInt(fam.size());
        sx_[run.base + j] = fam.x[idx];
        sy_[run.base + j] = fam.y[idx];
      }
    } else {
      std::copy(fam.x.begin(), fam.x.end(), sx_.begin() + run.base);
      std::copy(fam.y.begin(), fam.y.end(), sy_.begin() + run.base);
    }
    run.xids = sx_.data() + run.base;
    run.yids = sy_.data() + run.base;
  }
  return true;
}

double LogicEngine::LossesAndGrads(const Matrix& items,
                                   const Matrix& tag_centers, double lambda,
                                   ParallelMode mode, int num_threads,
                                   int epoch, int shard, Matrix* grad_items,
                                   Matrix* grad_tags) {
  if (total_ == 0) return 0.0;
  LOGIREC_CHECK(grad_items != nullptr && grad_tags != nullptr);
  LOGIREC_CHECK(max_item_ < items.rows());
  LOGIREC_CHECK(max_tag_ < tag_centers.rows());
  LOGIREC_CHECK(grad_items->rows() == items.rows() &&
                grad_items->cols() == items.cols());
  LOGIREC_CHECK(grad_tags->rows() == tag_centers.rows() &&
                grad_tags->cols() == tag_centers.cols());
  LOGIREC_CHECK(items.cols() == tag_centers.cols());
  if (mode == ParallelMode::kSequential) {
    return SequentialPass(items, tag_centers, lambda, epoch, shard,
                          grad_items, grad_tags);
  }
  return DeterministicPass(items, tag_centers, lambda, num_threads, epoch,
                           shard, grad_items, grad_tags);
}

double LogicEngine::SequentialPass(const Matrix& items,
                                   const Matrix& tag_centers, double lambda,
                                   int epoch, int shard, Matrix* grad_items,
                                   Matrix* grad_tags) {
  std::vector<FamilyRun> runs;
  const bool sampled = BuildRuns(epoch, shard, &runs);
  double loss = 0.0;
  for (const FamilyRun& run : runs) {
    // The scalar loss helpers applied in relation order — at full pass
    // this is literally the pre-engine per-relation loop (the bit-level
    // test oracle); sampled calls rescale by |family| / n.
    const double scale = sampled ? lambda * run.rescale : lambda;
    for (int r = 0; r < run.count; ++r) {
      const int x = run.xids[r];
      const int y = run.yids[r];
      double l = 0.0;
      switch (run.kind) {
        case kMembership:
          l = MembershipLossAndGrad(items.Row(x), tag_centers.Row(y), scale,
                                    grad_items->Row(x), grad_tags->Row(y));
          break;
        case kHierarchy:
          l = HierarchyLossAndGrad(tag_centers.Row(x), tag_centers.Row(y),
                                   scale, grad_tags->Row(x),
                                   grad_tags->Row(y));
          break;
        case kExclusion:
          l = ExclusionLossAndGrad(tag_centers.Row(x), tag_centers.Row(y),
                                   scale, grad_tags->Row(x),
                                   grad_tags->Row(y));
          break;
        case kIntersection:
          l = IntersectionLossAndGrad(tag_centers.Row(x), tag_centers.Row(y),
                                      scale, grad_tags->Row(x),
                                      grad_tags->Row(y));
          break;
      }
      loss += sampled ? run.rescale * l : l;
    }
  }
  return loss;
}

double LogicEngine::DeterministicPass(const Matrix& items,
                                      const Matrix& tag_centers,
                                      double lambda, int num_threads,
                                      int epoch, int shard,
                                      Matrix* grad_items, Matrix* grad_tags) {
  RefreshTagCache(tag_centers, num_threads);
  const int d = items.cols();
  std::vector<FamilyRun> runs;
  const bool sampled = BuildRuns(epoch, shard, &runs);
  int total = 0;
  for (const FamilyRun& run : runs) total += run.count;
  slots_.Shape(total, d);
  dist_sq_.resize(total);

  const TagCacheView tc{ball_center_.Row(0).data(),
                        tag_centers.Row(0).data(),
                        radius_.data(),
                        norm_.data(),
                        scale_a_.data(),
                        da_dn_.data(),
                        dr_dn_.data(),
                        d};
  const double* items_base = items.Row(0).data();

  // ---- phase 1: parallel slot fill -----------------------------------
  // Every position's loss and endpoint gradient rows are pure functions
  // of (embeddings, relation), assigned into slots owned by that
  // position alone — chunked so the blocked distance kernel amortizes
  // across relations.
  for (const FamilyRun& run : runs) {
    const double scale = sampled ? lambda * run.rescale : lambda;
    const double* xbase = run.kind == kMembership ? items_base : tc.centers;
    const int chunks = (run.count + kChunk - 1) / kChunk;
    ParallelFor(0, chunks, [&](int ch) {
      const int r0 = ch * kChunk;
      const int r1 = std::min(run.count, r0 + kChunk);
      double* ds = dist_sq_.data() + run.base;
      PairDistSq(xbase, run.xids, tc.centers, run.yids, d, r0, r1, ds);
      for (int r = r0; r < r1; ++r) {
        const int p = run.base + r;
        const int x = run.xids[r];
        const int y = run.yids[r];
        const double dist = std::max(std::sqrt(ds[r]), kLogicDistEps);
        double loss = 0.0;
        switch (run.kind) {
          case kMembership:
            loss = dist - tc.radius[y];
            break;
          case kHierarchy:
            loss = dist + tc.radius[y] - tc.radius[x];
            break;
          case kExclusion:
            loss = tc.radius[x] + tc.radius[y] - dist;
            break;
          case kIntersection:
            loss = dist - (tc.radius[x] + tc.radius[y]);
            break;
        }
        if (loss <= 0.0) {
          slots_.Loss(p) = 0.0;
          continue;
        }
        slots_.Loss(p) = loss;
        double* gx = slots_.GradX(p);
        double* gy = slots_.GradY(p);
        switch (run.kind) {
          case kMembership: {
            const double* xv = items_base + static_cast<size_t>(x) * d;
            const double* o = tc.centers + static_cast<size_t>(y) * d;
            // math::Axpy(scale / dist, diff, grad_item), assign form.
            const double s_item = scale / dist;
            for (int k = 0; k < d; ++k) gx[k] = s_item * (xv[k] - o[k]);
            AssignBallVjp(xv, o, -scale / dist, -scale, y, tc, gy);
            break;
          }
          case kHierarchy: {
            const double* op = tc.centers + static_cast<size_t>(x) * d;
            const double* oc = tc.centers + static_cast<size_t>(y) * d;
            AssignBallVjp(op, oc, scale / dist, -scale, x, tc, gx);
            AssignBallVjp(op, oc, -scale / dist, scale, y, tc, gy);
            break;
          }
          case kExclusion: {
            const double* oa = tc.centers + static_cast<size_t>(x) * d;
            const double* ob = tc.centers + static_cast<size_t>(y) * d;
            AssignBallVjp(oa, ob, -scale / dist, scale, x, tc, gx);
            AssignBallVjp(oa, ob, scale / dist, scale, y, tc, gy);
            break;
          }
          case kIntersection: {
            const double* oa = tc.centers + static_cast<size_t>(x) * d;
            const double* ob = tc.centers + static_cast<size_t>(y) * d;
            AssignBallVjp(oa, ob, scale / dist, -scale, x, tc, gx);
            AssignBallVjp(oa, ob, -scale / dist, -scale, y, tc, gy);
            break;
          }
        }
      }
    }, num_threads);
  }

  // ---- phase 2: ordered fold ------------------------------------------
  double loss = 0.0;
  if (!sampled) {
    // Tag-conflict-free scatter: positions equal global relation indices,
    // so the static destination CSRs apply — one worker per destination
    // row, contributions added in relation order (the per-row slice of
    // the legacy accumulation order, which is all bit-identity needs).
    ParallelFor(0, static_cast<int>(item_offsets_.size()) - 1, [&](int v) {
      math::Span row = grad_items->Row(v);
      for (int e = item_offsets_[v]; e < item_offsets_[v + 1]; ++e) {
        const int p = item_rels_[e];
        if (slots_.Loss(p) <= 0.0) continue;
        const double* g = slots_.GradX(p);
        for (int k = 0; k < d; ++k) row[k] += g[k];
      }
    }, num_threads);
    ParallelFor(0, static_cast<int>(tag_offsets_.size()) - 1, [&](int t) {
      math::Span row = grad_tags->Row(t);
      for (int e = tag_offsets_[t]; e < tag_offsets_[t + 1]; ++e) {
        const uint32_t entry = tag_entries_[e];
        const int p = static_cast<int>(entry >> 1);
        if (slots_.Loss(p) <= 0.0) continue;
        const double* g = (entry & 1u) ? slots_.GradY(p) : slots_.GradX(p);
        for (int k = 0; k < d; ++k) row[k] += g[k];
      }
    }, num_threads);
    // Hinge-inactive relations contribute an exact 0.0, so the running
    // sum matches the legacy loop's term-by-term accumulation.
    for (int p = 0; p < total; ++p) loss += slots_.Loss(p);
  } else {
    // Sampled calls use positions, not relation indices, so the static
    // CSRs do not apply; the slice is small by construction, and a single
    // ordered walk keeps the result a pure function of the slice.
    for (const FamilyRun& run : runs) {
      for (int r = 0; r < run.count; ++r) {
        const int p = run.base + r;
        const double l = slots_.Loss(p);
        loss += run.rescale * l;
        if (l <= 0.0) continue;
        const int x = run.xids[r];
        const int y = run.yids[r];
        math::Span xrow = run.kind == kMembership ? grad_items->Row(x)
                                                  : grad_tags->Row(x);
        const double* gx = slots_.GradX(p);
        for (int k = 0; k < d; ++k) xrow[k] += gx[k];
        math::Span yrow = grad_tags->Row(y);
        const double* gy = slots_.GradY(p);
        for (int k = 0; k < d; ++k) yrow[k] += gy[k];
      }
    }
  }
  return loss;
}

}  // namespace logirec::core
