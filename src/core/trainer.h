#ifndef LOGIREC_CORE_TRAINER_H_
#define LOGIREC_CORE_TRAINER_H_

#include <utility>
#include <vector>

#include "core/negative_sampler.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace logirec::core {

/// Per-epoch telemetry emitted through TrainObserver::OnEpochEnd.
struct EpochStats {
  int epoch = 0;            ///< zero-based epoch index
  long samples = 0;         ///< training pairs processed this epoch
  double mean_loss = 0.0;   ///< model-defined loss, averaged over samples
  double seconds = 0.0;     ///< wall time of the epoch (incl. any probe)
  double val_metric = -1.0; ///< validation Recall@10 when probed, else -1
  bool improved = false;    ///< true when this probe set a new best
};

/// End-of-training summary emitted through TrainObserver::OnTrainEnd.
struct TrainSummary {
  int epochs_run = 0;
  bool stopped_early = false;
  int best_epoch = -1;           ///< epoch of the restored checkpoint
  double best_val_metric = -1.0; ///< its validation Recall@10
  double total_seconds = 0.0;
};

/// Telemetry hook. Attach via TrainConfig::observer; every model that
/// trains through core::Trainer reports through it.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual void OnEpochEnd(const EpochStats& stats) { (void)stats; }
  virtual void OnTrainEnd(const TrainSummary& summary) { (void)summary; }
};

/// Mutable views of a model's parameter state, registered via
/// Trainable::CollectParameters() so the Trainer can snapshot the best
/// validation checkpoint and restore it when early stopping fires.
struct ParameterSet {
  std::vector<math::Matrix*> matrices;
  std::vector<math::Vec*> vectors;
  std::vector<double*> scalars;

  void Add(math::Matrix* m) { matrices.push_back(m); }
  void Add(math::Vec* v) { vectors.push_back(v); }
  void Add(double* s) { scalars.push_back(s); }
  bool empty() const {
    return matrices.empty() && vectors.empty() && scalars.empty();
  }
};

/// One contiguous slice of the epoch's shuffled (user, positive) pairs,
/// plus the shared sampling state. Models must consume pairs in order and
/// draw negatives only through SampleNegative() so a training run is a
/// single deterministic RNG stream regardless of batching.
struct BatchContext {
  int epoch;
  const std::vector<std::pair<int, int>>& pairs;  ///< full epoch ordering
  int begin, end;  ///< this batch is pairs[begin, end)
  Rng* rng;
  NegativeSampler* sampler;
  int num_threads;   ///< TrainConfig::num_threads, for ParallelFor
  double grad_clip;  ///< TrainConfig::grad_clip, for per-row clipping

  int SampleNegative(int user) const { return sampler->Sample(user, rng); }
  int size() const { return end - begin; }
};

/// Contract a model implements to train under core::Trainer. The model
/// expresses only its per-batch (typically per-triplet) gradient step;
/// the Trainer owns shuffling, batching, negative sampling, early
/// stopping, and telemetry.
class Trainable {
 public:
  virtual ~Trainable() = default;

  /// Processes pairs[ctx.begin, ctx.end), applying parameter updates in
  /// place. Returns the summed loss over the batch (telemetry only).
  virtual double TrainOnBatch(const BatchContext& ctx) = 0;

  /// Per-epoch tail work after all batches (e.g. TransC's logic passes).
  /// Returns any extra loss to fold into the epoch telemetry.
  virtual double EpochTail(int epoch, Rng* rng) {
    (void)epoch;
    (void)rng;
    return 0.0;
  }

  /// Brings the model's scoring state in sync with its current
  /// parameters (recompute propagated embeddings, mark the model
  /// scorable). Called before every validation probe and once at the end
  /// of Train(), after any checkpoint restore.
  virtual void SyncScoringState() {}

  /// Registers the parameter tensors the early-stopping checkpoint must
  /// capture. Models that register nothing still stop early but cannot
  /// restore the best checkpoint.
  virtual void CollectParameters(ParameterSet* params) { (void)params; }
};

/// The shared epoch/batch driver. Owns the per-epoch pair shuffle
/// (ShuffledTrainPairs), batch partitioning (BatchRanges), negative
/// sampling, validation-driven early stopping with best-checkpoint
/// snapshot/restore, and EpochStats telemetry.
///
/// Determinism: for a fixed seed and TrainConfig the driver consumes the
/// model's RNG in exactly the order the legacy per-model loops did, so a
/// migrated model reproduces its pre-Trainer metrics bit-for-bit.
class Trainer {
 public:
  explicit Trainer(const TrainConfig& config) : config_(config) {}

  /// Runs the epoch/batch loop over `split.train`. `rng` is the model's
  /// generator (already used for parameter init) so the stream continues
  /// unbroken. `val_scorer` — normally the model itself — is probed on
  /// the validation fold every `eval_every` epochs when
  /// `early_stopping_patience > 0`; passing null disables early stopping.
  TrainSummary Train(Trainable* model, const data::Split& split,
                     int num_items, Rng* rng,
                     const eval::Scorer* val_scorer = nullptr);

 private:
  TrainConfig config_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_TRAINER_H_
