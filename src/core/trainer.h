#ifndef LOGIREC_CORE_TRAINER_H_
#define LOGIREC_CORE_TRAINER_H_

#include <utility>
#include <vector>

#include "core/negative_sampler.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace logirec::core {

/// Per-epoch telemetry emitted through TrainObserver::OnEpochEnd.
struct EpochStats {
  int epoch = 0;            ///< zero-based epoch index
  long samples = 0;         ///< training pairs processed this epoch
  double mean_loss = 0.0;   ///< model-defined loss, averaged over samples
  double seconds = 0.0;     ///< wall time of training only (probe excluded)
  double probe_seconds = 0.0;  ///< wall time of the validation probe
                               ///< (sync + evaluate), 0 when not probed
  /// Wall time of the logic-relation pass (LogiRec's Eqs. 3-5 kernels)
  /// summed over the epoch's batches; 0 for models without one. Included
  /// in `seconds` — this is a breakdown, not an extra cost.
  double logic_seconds = 0.0;
  /// Wall time of the LogiRec++ mining refresh (UpdateGranularity + alpha
  /// recompute) this epoch; 0 for models without mining. Also included in
  /// `seconds`.
  double mining_seconds = 0.0;
  double val_metric = -1.0; ///< validation Recall@10 when probed, else -1
  bool improved = false;    ///< true when this probe set a new best
};

/// End-of-training summary emitted through TrainObserver::OnTrainEnd.
struct TrainSummary {
  int epochs_run = 0;
  bool stopped_early = false;
  int best_epoch = -1;           ///< epoch of the restored checkpoint
  double best_val_metric = -1.0; ///< its validation Recall@10
  double total_seconds = 0.0;
};

/// Telemetry hook. Attach via TrainConfig::observer; every model that
/// trains through core::Trainer reports through it.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual void OnEpochEnd(const EpochStats& stats) { (void)stats; }
  virtual void OnTrainEnd(const TrainSummary& summary) { (void)summary; }
};

// ParameterSet (the tensor-enumeration container CollectParameters fills)
// lives in core/recommender.h, shared with the scoring-state enumeration
// that core/snapshot.h walks.

/// One contiguous slice of the epoch's shuffled (user, positive) pairs,
/// plus the shared sampling state. Models must consume pairs in order and
/// draw negatives only through Negative(), so that in kSequential mode a
/// training run is a single deterministic RNG stream regardless of
/// batching, and in kDeterministic mode every draw comes from the
/// pre-drawn per-shard buffer (thread-count invariant by construction).
struct BatchContext {
  int epoch;
  const std::vector<std::pair<int, int>>& pairs;  ///< full epoch ordering
  int begin, end;  ///< this batch is pairs[begin, end)
  Rng* rng;        ///< model stream (kSequential) or per-shard stream
  NegativeSampler* sampler;
  int num_threads;   ///< TrainConfig::num_threads, for ParallelFor
  double grad_clip;  ///< TrainConfig::grad_clip, for per-row clipping
  ParallelMode mode = ParallelMode::kSequential;
  /// kDeterministic only: flat buffer of the epoch's pre-drawn negatives,
  /// `negative_draws` per pair, indexed by absolute pair index.
  const int* negatives = nullptr;
  int negative_draws = 0;
  /// Index of this batch in the epoch's shard partition — the `s` of the
  /// per-shard counter streams Rng(MixSeed(seed, epoch, s)). Models that
  /// need additional deterministic per-batch streams (e.g. LogiRec's
  /// relation mini-batching) key their own MixSeed streams on it.
  int shard = 0;

  /// The k-th negative for pairs[pair_index] (absolute index). In
  /// kSequential mode this draws from the live sampler stream — call it
  /// exactly in pair order, k-major, to preserve the legacy stream. In
  /// kDeterministic mode it reads the pre-drawn buffer and is safe to
  /// call from any thread in any order.
  int Negative(int pair_index, int k = 0) const {
    if (negatives != nullptr) {
      return negatives[static_cast<size_t>(pair_index) * negative_draws + k];
    }
    return sampler->Sample(pairs[pair_index].first, rng);
  }
  int size() const { return end - begin; }
};

/// Contract a model implements to train under core::Trainer. The model
/// expresses only its per-batch (typically per-triplet) gradient step;
/// the Trainer owns shuffling, batching, negative sampling, early
/// stopping, and telemetry.
class Trainable {
 public:
  virtual ~Trainable() = default;

  /// Processes pairs[ctx.begin, ctx.end), applying parameter updates in
  /// place. Returns the summed loss over the batch (telemetry only).
  virtual double TrainOnBatch(const BatchContext& ctx) = 0;

  /// Number of negatives the model draws per (user, positive) pair, so the
  /// deterministic engine can pre-draw the epoch's negatives into a flat
  /// buffer. Models drawing one negative per pair keep the default.
  virtual int NegativeDrawsPerPair() const { return 1; }

  /// Per-epoch tail work after all batches (e.g. TransC's logic passes).
  /// Returns any extra loss to fold into the epoch telemetry.
  virtual double EpochTail(int epoch, Rng* rng) {
    (void)epoch;
    (void)rng;
    return 0.0;
  }

  /// Drains the per-epoch wall-time phase counters the model accumulated
  /// across its batches — the logic-relation pass and the LogiRec++
  /// mining refresh — into the epoch's telemetry. Called once per epoch,
  /// after EpochTail; implementations must reset their accumulators so
  /// the next epoch starts from zero. The default reports no breakdown.
  virtual void DrainEpochTimers(double* logic_seconds,
                                double* mining_seconds) {
    *logic_seconds = 0.0;
    *mining_seconds = 0.0;
  }

  /// Brings the model's scoring state in sync with its current
  /// parameters (recompute propagated embeddings, mark the model
  /// scorable). Called before every validation probe and once at the end
  /// of Train(), after any checkpoint restore.
  virtual void SyncScoringState() {}

  /// Registers the parameter tensors the early-stopping checkpoint must
  /// capture. Models that register nothing still stop early but cannot
  /// restore the best checkpoint.
  virtual void CollectParameters(ParameterSet* params) { (void)params; }
};

/// The shared epoch/batch driver. Owns the per-epoch pair shuffle,
/// batch/shard partitioning (BatchRanges), negative sampling, validation-
/// driven early stopping with best-checkpoint snapshot/restore, and
/// EpochStats telemetry.
///
/// Determinism contract:
///  - kSequential: for a fixed seed and TrainConfig the driver consumes
///    the model's RNG in exactly the order the legacy per-model loops
///    did, so a migrated model reproduces its pre-Trainer metrics
///    bit-for-bit.
///  - kDeterministic (default): the epoch's negatives are pre-drawn shard
///    by shard from counter-based streams Rng(MixSeed(seed, epoch,
///    shard)) — the pre-draw itself parallelizes over shards — and shards
///    are applied in order. Metrics are a pure function of (seed,
///    batch_size, config); num_threads never changes them.
class Trainer {
 public:
  explicit Trainer(const TrainConfig& config) : config_(config) {}

  /// Runs the epoch/batch loop over `split.train`. `rng` is the model's
  /// generator (already used for parameter init) so the stream continues
  /// unbroken. `val_scorer` — normally the model itself — is probed on
  /// the validation fold every `eval_every` epochs when
  /// `early_stopping_patience > 0`; passing null disables early stopping.
  /// `sampler` optionally injects a caller-owned NegativeSampler (the
  /// continuous-learning pipeline maintains one incrementally across
  /// windows); it must be consistent with `split.train` and `num_items`.
  /// Null builds a fresh sampler from the split — draws are identical
  /// either way, so injection never changes metrics.
  TrainSummary Train(Trainable* model, const data::Split& split,
                     int num_items, Rng* rng,
                     const eval::Scorer* val_scorer = nullptr,
                     NegativeSampler* sampler = nullptr);

 private:
  TrainConfig config_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_TRAINER_H_
