#include "core/trainer.h"

#include <algorithm>
#include <memory>

#include "core/train_util.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace logirec::core {

namespace {

/// Deep copy of the registered parameter state (the early-stopping
/// checkpoint).
struct Checkpoint {
  std::vector<math::Matrix> matrices;
  std::vector<math::Vec> vectors;
  std::vector<double> scalars;

  void Capture(const ParameterSet& params) {
    matrices.clear();
    vectors.clear();
    scalars.clear();
    for (const math::Matrix* m : params.matrices) matrices.push_back(*m);
    for (const math::Vec* v : params.vectors) vectors.push_back(*v);
    for (const double* s : params.scalars) scalars.push_back(*s);
  }

  void Restore(const ParameterSet& params) const {
    for (size_t i = 0; i < matrices.size(); ++i) {
      *params.matrices[i] = matrices[i];
    }
    for (size_t i = 0; i < vectors.size(); ++i) *params.vectors[i] = vectors[i];
    for (size_t i = 0; i < scalars.size(); ++i) *params.scalars[i] = scalars[i];
  }
};

}  // namespace

TrainSummary Trainer::Train(Trainable* model, const data::Split& split,
                            int num_items, Rng* rng,
                            const eval::Scorer* val_scorer,
                            NegativeSampler* sampler) {
  LOGIREC_CHECK(model != nullptr && rng != nullptr);
  Timer total_timer;
  std::unique_ptr<NegativeSampler> owned_sampler;
  if (sampler == nullptr) {
    owned_sampler = std::make_unique<NegativeSampler>(num_items, split.train);
    sampler = owned_sampler.get();
  }

  const bool early_stop =
      config_.early_stopping_patience > 0 && val_scorer != nullptr;
  std::unique_ptr<eval::Evaluator> validator;
  ParameterSet params;
  Checkpoint best;
  if (early_stop) {
    validator = std::make_unique<eval::Evaluator>(&split, num_items,
                                                  std::vector<int>{10});
    model->CollectParameters(&params);
  }
  double best_metric = -1.0;
  int best_epoch = -1;
  int evals_without_improvement = 0;

  const bool deterministic =
      config_.parallel_mode == ParallelMode::kDeterministic;
  const int draws = std::max(1, model->NegativeDrawsPerPair());

  // The epoch base ordering is built once; every epoch copies it into the
  // working vector (capacity reused) and shuffles in place, consuming the
  // model RNG exactly as the legacy rebuild-then-shuffle did.
  const auto base_pairs = TrainPairs(split.train);
  std::vector<std::pair<int, int>> pairs;
  std::vector<int> negatives;  // kDeterministic: pairs.size() * draws

  TrainSummary summary;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Timer epoch_timer;
    pairs = base_pairs;
    rng->Shuffle(&pairs);
    const auto batches =
        BatchRanges(static_cast<int>(pairs.size()), config_.batch_size);

    if (deterministic) {
      // Pre-draw the epoch's negatives, one independent counter-based
      // stream per shard: the buffer is a pure function of (seed, epoch,
      // shard partition), so the pre-draw can fan out over any number of
      // workers without changing a single draw.
      negatives.resize(pairs.size() * static_cast<size_t>(draws));
      ParallelFor(0, static_cast<int>(batches.size()), [&](int s) {
        Rng shard_rng(Rng::MixSeed(config_.seed, epoch, s));
        const auto [b0, b1] = batches[s];
        for (int i = b0; i < b1; ++i) {
          const int user = pairs[i].first;
          for (int k = 0; k < draws; ++k) {
            negatives[static_cast<size_t>(i) * draws + k] =
                sampler->Sample(user, &shard_rng);
          }
        }
      }, config_.num_threads);
    }

    double loss = 0.0;
    for (int s = 0; s < static_cast<int>(batches.size()); ++s) {
      const auto [b0, b1] = batches[s];
      // Auxiliary per-shard stream (distinct from the negative stream via
      // the inverted seed) for any model-side draws inside the shard.
      Rng aux_rng(Rng::MixSeed(~config_.seed, epoch, s));
      BatchContext ctx{epoch,
                       pairs,
                       b0,
                       b1,
                       deterministic ? &aux_rng : rng,
                       sampler,
                       config_.num_threads,
                       config_.grad_clip,
                       config_.parallel_mode,
                       deterministic ? negatives.data() : nullptr,
                       deterministic ? draws : 0,
                       s};
      loss += model->TrainOnBatch(ctx);
    }
    loss += model->EpochTail(epoch, rng);
    ++summary.epochs_run;

    EpochStats stats;
    stats.epoch = epoch;
    stats.samples = static_cast<long>(pairs.size());
    stats.mean_loss = pairs.empty() ? 0.0 : loss / pairs.size();
    stats.seconds = epoch_timer.ElapsedSeconds();
    model->DrainEpochTimers(&stats.logic_seconds, &stats.mining_seconds);

    bool stop = false;
    if (early_stop && (epoch + 1) % config_.eval_every == 0) {
      Timer probe_timer;
      model->SyncScoringState();
      stats.val_metric = validator->Evaluate(*val_scorer, /*use_validation=*/true)
                             .Get("Recall@10");
      if (stats.val_metric > best_metric) {
        best_metric = stats.val_metric;
        best_epoch = epoch;
        evals_without_improvement = 0;
        stats.improved = true;
        if (!params.empty()) best.Capture(params);
      } else if (++evals_without_improvement >=
                 config_.early_stopping_patience) {
        stop = true;
      }
      // Probe cost (scoring-state sync + validation ranking) is reported
      // separately so throughput telemetry measures training only.
      stats.probe_seconds = probe_timer.ElapsedSeconds();
    }

    if (config_.verbose && (epoch % 5 == 0 || epoch + 1 == config_.epochs)) {
      LOGIREC_LOG(kInfo) << "epoch " << epoch << " mean_loss="
                         << stats.mean_loss << " samples=" << stats.samples;
    }
    if (config_.observer != nullptr) config_.observer->OnEpochEnd(stats);
    if (stop) {
      summary.stopped_early = true;
      if (config_.verbose) {
        LOGIREC_LOG(kInfo) << "early stop at epoch " << epoch
                           << " (best val Recall@10=" << best_metric << ")";
      }
      break;
    }
  }

  if (early_stop && best_metric >= 0.0 && !params.empty()) {
    best.Restore(params);
  }
  model->SyncScoringState();

  summary.best_epoch = best_epoch;
  summary.best_val_metric = best_metric;
  summary.total_seconds = total_timer.ElapsedSeconds();
  if (config_.observer != nullptr) config_.observer->OnTrainEnd(summary);
  return summary;
}

}  // namespace logirec::core
