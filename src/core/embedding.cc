#include "core/embedding.h"

#include <cmath>

#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/poincare.h"
#include "util/logging.h"

namespace logirec::core {

void InitPoincareRows(Matrix* m, Rng* rng, double scale) {
  for (int r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    for (double& x : row) x = rng->Gaussian(0.0, scale);
    hyper::ProjectToBall(row);
  }
}

void InitLorentzRows(Matrix* m, Rng* rng, double scale) {
  LOGIREC_CHECK(m->cols() >= 2);
  for (int r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    row[0] = 0.0;
    for (size_t i = 1; i < row.size(); ++i) row[i] = rng->Gaussian(0.0, scale);
    hyper::ProjectToHyperboloid(row);
  }
}

void InitHyperplaneCenters(Matrix* m, const data::Taxonomy& taxonomy,
                           Rng* rng) {
  LOGIREC_CHECK(m->rows() == taxonomy.num_tags());
  const int levels = std::max(taxonomy.num_levels(), 1);
  // Target ||c|| per level, linearly spaced inside the clamp range.
  auto level_norm = [&](int level) {
    const double t = levels > 1
                         ? static_cast<double>(level - 1) / (levels - 1)
                         : 0.0;
    return 0.18 + t * (0.72 - 0.18);
  };

  // Tags were added top-down, so parents are initialized before children.
  for (int t = 0; t < taxonomy.num_tags(); ++t) {
    const data::Tag& tag = taxonomy.tag(t);
    auto row = m->Row(t);
    if (tag.parent < 0) {
      for (double& x : row) x = rng->Gaussian(0.0, 1.0);
    } else {
      auto parent = m->Row(tag.parent);
      // Inherit the parent's direction with moderate angular noise.
      const double pn = std::max(math::Norm(parent), 1e-9);
      for (size_t i = 0; i < row.size(); ++i) {
        row[i] = parent[i] / pn + rng->Gaussian(0.0, 0.35);
      }
    }
    const double n = std::max(math::Norm(row), 1e-9);
    const double target =
        level_norm(tag.level) * (1.0 + rng->Gaussian(0.0, 0.03));
    math::ScaleInPlace(row, target / n);
    hyper::ClampHyperplaneCenter(row);
  }
}

}  // namespace logirec::core
