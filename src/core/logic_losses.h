#ifndef LOGIREC_CORE_LOGIC_LOSSES_H_
#define LOGIREC_CORE_LOGIC_LOSSES_H_

#include "math/vec.h"

namespace logirec::core {

using math::ConstSpan;
using math::Span;

/// Floor applied to every center/item distance before dividing by it in
/// the hinge gradients below. Exported so core::LogicEngine's batched
/// kernels clamp with the exact same epsilon and stay bit-identical to
/// these scalar helpers.
inline constexpr double kLogicDistEps = 1e-12;

/// Membership loss (Eq. 3): an item point must fall inside the enclosing
/// d-ball of its tag's hyperplane,
///   L = max(0, ||v - o_t|| - r_t),
/// where (o_t, r_t) derive from the hyperplane center `tag_center`.
/// Accumulates (scaled by `scale`) the gradients w.r.t. the item embedding
/// and the tag center; either output span may be empty to skip it.
/// Returns the (unscaled) loss value.
double MembershipLossAndGrad(ConstSpan item, ConstSpan tag_center,
                             double scale, Span grad_item,
                             Span grad_tag_center);

/// Hierarchy loss (Eq. 4): the parent's ball must contain the child's,
///   L = max(0, ||o_p - o_c|| + r_c - r_p).
/// Gradients flow into both hyperplane centers.
double HierarchyLossAndGrad(ConstSpan parent_center, ConstSpan child_center,
                            double scale, Span grad_parent,
                            Span grad_child);

/// Exclusion loss (Eq. 5): the two balls must be disjoint,
///   L = max(0, r_a + r_b - ||o_a - o_b||).
double ExclusionLossAndGrad(ConstSpan center_a, ConstSpan center_b,
                            double scale, Span grad_a, Span grad_b);

/// Intersection loss (future-work relation from the paper's conclusion):
/// the two balls must overlap,
///   L = max(0, ||o_a - o_b|| - (r_a + r_b)).
/// The exact mirror of the exclusion loss.
double IntersectionLossAndGrad(ConstSpan center_a, ConstSpan center_b,
                               double scale, Span grad_a, Span grad_b);

/// Loss-only variants (used by the evaluation-side diagnostics and tests).
double MembershipLoss(ConstSpan item, ConstSpan tag_center);
double HierarchyLoss(ConstSpan parent_center, ConstSpan child_center);
double ExclusionLoss(ConstSpan center_a, ConstSpan center_b);
double IntersectionLoss(ConstSpan center_a, ConstSpan center_b);

}  // namespace logirec::core

#endif  // LOGIREC_CORE_LOGIC_LOSSES_H_
