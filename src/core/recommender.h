#ifndef LOGIREC_CORE_RECOMMENDER_H_
#define LOGIREC_CORE_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/evaluator.h"
#include "math/matrix.h"
#include "util/status.h"

namespace logirec::core {

class TrainObserver;     // core/trainer.h
struct TrainResources;   // core/train_resources.h

/// Mutable views of a model's tensor state, in a fixed model-defined
/// order. Two enumerations hand these out: Trainable::CollectParameters()
/// registers the *training parameters* (so core::Trainer can snapshot and
/// restore the best validation checkpoint), and
/// Recommender::CollectScoringState() registers the *scoring-ready state*
/// (so core::ModelSnapshot can persist a servable model to disk). Both
/// walk the same container so checkpointing and snapshotting share one
/// tensor-enumeration mechanism.
struct ParameterSet {
  std::vector<math::Matrix*> matrices;
  std::vector<math::Vec*> vectors;
  std::vector<double*> scalars;

  void Add(math::Matrix* m) { matrices.push_back(m); }
  void Add(math::Vec* v) { vectors.push_back(v); }
  void Add(double* s) { scalars.push_back(s); }
  bool empty() const {
    return matrices.empty() && vectors.empty() && scalars.empty();
  }
};

/// How core::Trainer schedules an epoch's mini-batch shards.
enum class ParallelMode {
  /// The legacy single-stream loop: one RNG stream drives shuffling and
  /// every negative draw in batch order, bit-identical to the pre-Trainer
  /// per-model loops. Used by the seed-equivalence tests.
  kSequential,
  /// Deterministic sharded SGD: the epoch's negatives are pre-drawn into a
  /// flat buffer using per-shard counter-based RNG streams (seeded by
  /// seed/epoch/shard), and models may parallelize inside a shard through
  /// per-pair gradient slots with an ordered apply. Metrics are a pure
  /// function of seed and shard (batch) size — independent of thread
  /// count — but differ from kSequential's stream.
  kDeterministic,
};

/// Scheduling override for the logic-relation pass of LogiRec/LogiRec++
/// (TrainConfig::logic_parallel). The pass normally inherits
/// TrainConfig::parallel_mode; the explicit values pin it independently
/// of how the ranking loss is scheduled (e.g. to time the legacy scalar
/// loop against the batched kernels inside one training run).
enum class LogicParallel {
  kFollowGlobal,   ///< use parallel_mode (the default)
  kSequential,     ///< per-relation scalar loop, bit-identical legacy order
  kDeterministic,  ///< batched slot-fill + ordered-fold kernels
};

/// Hyperparameters shared by every model in the repository (Section
/// VI-A4). Individual models may ignore fields that do not apply.
struct TrainConfig {
  int dim = 32;                ///< embedding dimension d
  int layers = 3;              ///< graph-convolution depth L
  double learning_rate = 0.05;
  int epochs = 150;
  /// Logic-regularizer weight (Eq. 10). NOTE: the losses are applied per
  /// optimization step, so the effective strength scales with batch_size;
  /// this default is tuned for batch_size = 256 (Table IV sweeps it).
  double lambda = 2.0;
  /// LMNN margin m (Eq. 9). The paper's optimum is 0.1 on the full-scale
  /// datasets; at our ~1/40 scale distances are larger, so the default is
  /// rescaled (Table IV regenerates the same interior-optimum shape).
  double margin = 1.0;
  int negatives_per_positive = 5;
  int batch_size = 256;        ///< triplets per optimization step (the
                               ///< paper uses 10000 at ~40x our scale)
  double l2 = 1e-4;            ///< weight decay for Euclidean models
  double grad_clip = 5.0;      ///< per-row gradient norm clip
  uint64_t seed = 7;
  bool verbose = false;

  /// Early stopping (core::Trainer, honored by every model): when > 0,
  /// validation Recall@10 is computed every `eval_every` epochs and
  /// training stops after this many evaluations without improvement,
  /// restoring the best parameters. 0 disables (fixed epoch budget, the
  /// bench default).
  int early_stopping_patience = 0;
  int eval_every = 10;

  /// Worker threads for ParallelFor inside training (0 = hardware
  /// concurrency). Results are identical across thread counts.
  int num_threads = 0;

  /// Batch scheduling mode (see ParallelMode). The deterministic sharded
  /// engine is the default; kSequential reproduces the legacy stream
  /// bit-for-bit for equivalence testing.
  ParallelMode parallel_mode = ParallelMode::kDeterministic;

  /// LogiRec/LogiRec++ only: relations sampled per logic family per
  /// optimization step (0 = every relation, the default). Sampled slices
  /// come from counter-based streams keyed by (seed, epoch, shard) —
  /// results stay a pure function of the seed and thread-count invariant
  /// — and the sampled loss/gradients are rescaled by |family| / n so the
  /// regularizer stays an unbiased estimate of the full pass.
  int logic_batch = 0;

  /// LogiRec/LogiRec++ only: scheduling mode for the logic-relation pass
  /// (see LogicParallel). kFollowGlobal inherits parallel_mode.
  LogicParallel logic_parallel = LogicParallel::kFollowGlobal;

  /// Telemetry hook (non-owning, may be null): receives EpochStats after
  /// every epoch and a TrainSummary when training ends.
  TrainObserver* observer = nullptr;
};

/// Common interface: train on the dataset's training fold, then score.
class Recommender : public eval::Scorer {
 public:
  /// Trains the model. `split.train` defines both the supervision and the
  /// propagation graph; validation/test folds must not leak in.
  virtual Status Fit(const data::Dataset& dataset,
                     const data::Split& split) = 0;

  /// Short display name used in the regenerated tables ("BPRMF", ...).
  virtual std::string name() const = 0;

  /// Geometry of the rows returned by ItemEmbeddings().
  enum class ItemSpace { kEuclidean, kLorentz, kPoincare };

  /// Optional access to the trained item representation, used by the
  /// embedding-visualization benches (Figs. 7-8). Null when the model has
  /// no single item embedding matrix (e.g. NeuMF's two towers).
  virtual const math::Matrix* ItemEmbeddings() const { return nullptr; }
  virtual ItemSpace item_space() const { return ItemSpace::kEuclidean; }

  // --- binary snapshots (core/snapshot.h) ------------------------------
  //
  // A snapshot persists the model's *scoring-ready* state — exactly the
  // tensors ScoreItems()/ScoreItemsInto() read (final post-propagation
  // embeddings, fused towers, biases), not the raw training parameters —
  // so a restored model scores bit-identically without the dataset, the
  // propagation graph, or any optimizer state. Restore protocol, driven
  // by ModelSnapshot::Read on a freshly constructed model:
  //   1. ApplySnapshotFlags(header.flags)
  //   2. PrepareForRestore()        — allocate sub-structures (NeuMF MLP)
  //   3. CollectScoringState(&s)    — hand out destination tensors
  //   4. tensors are filled in enumeration order, CRC-checked
  //   5. FinalizeRestoredState()    — rebuild ScoringViews, mark fitted

  /// Registers the tensors that constitute the scoring-ready state, in a
  /// fixed order. The default registers nothing, which ModelSnapshot
  /// reports as "snapshot unsupported" for out-of-tree models.
  virtual void CollectScoringState(ParameterSet* state) { (void)state; }

  /// Allocates sub-structures that must exist before CollectScoringState
  /// can hand out tensor pointers on a freshly constructed model.
  virtual void PrepareForRestore() {}

  /// Marks restored tensors scoring-ready (rebuild cached ScoringViews,
  /// set the fitted flag). Only called after every registered tensor has
  /// been filled and checksum-verified.
  virtual Status FinalizeRestoredState() {
    return Status::FailedPrecondition(name() +
                                      " does not support snapshot restore");
  }

  // --- warm-start fine-tuning (continuous-learning pipeline) -----------
  //
  // A warm start resumes training from the model's current tensor state
  // instead of a fresh random init: restore a snapshot (scoring state
  // plus, when present, the trainer-state trailer), then call ResumeFit
  // on the grown dataset. Models advertise support explicitly so the
  // pipeline can fail fast instead of silently cold-starting.

  /// True when ResumeFit is implemented for this model.
  virtual bool SupportsWarmStart() const { return false; }

  /// Registers the *training-parameter* tensors a warm start must carry
  /// beyond the scoring state (pre-propagation embeddings, optimizer
  /// moments), persisted as the optional trainer-state trailer of a
  /// snapshot (ModelSnapshot::Write with include_trainer_state). The
  /// default registers nothing — models whose scoring state already IS
  /// the full training state (BPRMF) resume from the snapshot alone.
  virtual void CollectTrainerState(ParameterSet* state) { (void)state; }

  /// Resumes training from the current state for `epochs` epochs
  /// (<= 0 uses the construction-time epoch budget). `resources`
  /// optionally lends incrementally-maintained training structures (see
  /// core/train_resources.h); models rebuild whatever is not provided.
  /// Each resume round draws from fresh deterministic streams — metrics
  /// after K resumes are a pure function of (seed, window schedule),
  /// independent of thread count.
  virtual Status ResumeFit(const data::Dataset& dataset,
                           const data::Split& split, int epochs = 0,
                           const TrainResources* resources = nullptr) {
    (void)dataset;
    (void)split;
    (void)epochs;
    (void)resources;
    return Status::FailedPrecondition(
        name() + " does not support warm-start fine-tuning");
  }

  /// Model-specific config bits persisted in the snapshot header (e.g.
  /// LogiRec's Euclidean-ablation flag). Zero for every stock model.
  virtual uint32_t SnapshotFlags() const { return 0; }

  /// Applies header flags before restore; unknown nonzero flags are an
  /// error so a snapshot of an unsupported variant never mis-scores.
  virtual Status ApplySnapshotFlags(uint32_t flags) {
    if (flags != 0) {
      return Status::InvalidArgument(
          name() + " snapshot carries unsupported flags");
    }
    return Status::OK();
  }
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_RECOMMENDER_H_
