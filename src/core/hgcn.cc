#include "core/hgcn.h"

#include "hyper/lorentz.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace logirec::core {

HyperbolicGcn::HyperbolicGcn(const graph::BipartiteGraph* graph, int layers,
                             graph::Norm norm, int num_threads)
    : propagator_(graph, layers, norm, num_threads),
      num_threads_(num_threads) {}

void HyperbolicGcn::Forward(const Matrix& user_lorentz,
                            const Matrix& item_lorentz, Matrix* user_out,
                            Matrix* item_out) {
  user_in_ = user_lorentz;
  item_in_ = item_lorentz;

  if (propagator_.layers() == 0) {
    *user_out = user_lorentz;
    *item_out = item_lorentz;
    has_forward_ = true;
    return;
  }

  const int dim = user_lorentz.cols();
  zu0_.Reset(user_lorentz.rows(), dim);
  zv0_.Reset(item_lorentz.rows(), dim);
  ParallelFor(0, user_lorentz.rows(), [&](int u) {
    const math::Vec z = hyper::LorentzLogOrigin(user_lorentz.Row(u));
    math::Copy(z, zu0_.Row(u));
  }, num_threads_);
  ParallelFor(0, item_lorentz.rows(), [&](int v) {
    const math::Vec z = hyper::LorentzLogOrigin(item_lorentz.Row(v));
    math::Copy(z, zv0_.Row(v));
  }, num_threads_);

  propagator_.Forward(zu0_, zv0_, &su_, &sv_, /*include_layer0=*/false);

  user_out->Reset(user_lorentz.rows(), dim);
  item_out->Reset(item_lorentz.rows(), dim);
  ParallelFor(0, user_lorentz.rows(), [&](int u) {
    const math::Vec x = hyper::LorentzExpOrigin(su_.Row(u));
    math::Copy(x, user_out->Row(u));
  }, num_threads_);
  ParallelFor(0, item_lorentz.rows(), [&](int v) {
    const math::Vec x = hyper::LorentzExpOrigin(sv_.Row(v));
    math::Copy(x, item_out->Row(v));
  }, num_threads_);
  has_forward_ = true;
}

void HyperbolicGcn::Backward(const Matrix& grad_user_out,
                             const Matrix& grad_item_out,
                             Matrix* grad_user_in, Matrix* grad_item_in) {
  LOGIREC_CHECK_MSG(has_forward_, "Backward() before Forward()");

  if (propagator_.layers() == 0) {
    for (size_t i = 0; i < grad_user_out.data().size(); ++i) {
      grad_user_in->data()[i] += grad_user_out.data()[i];
    }
    for (size_t i = 0; i < grad_item_out.data().size(); ++i) {
      grad_item_in->data()[i] += grad_item_out.data()[i];
    }
    return;
  }

  const int dim = grad_user_out.cols();
  // 1. Through exp_o.
  gsu_.Reset(grad_user_out.rows(), dim);
  gsv_.Reset(grad_item_out.rows(), dim);
  ParallelFor(0, grad_user_out.rows(), [&](int u) {
    hyper::LorentzExpOriginVjp(su_.Row(u), grad_user_out.Row(u), gsu_.Row(u));
  }, num_threads_);
  ParallelFor(0, grad_item_out.rows(), [&](int v) {
    hyper::LorentzExpOriginVjp(sv_.Row(v), grad_item_out.Row(v), gsv_.Row(v));
  }, num_threads_);

  // 2. Through the linear propagation (transpose recursion).
  gzu0_.Reset(gsu_.rows(), dim);
  gzv0_.Reset(gsv_.rows(), dim);
  propagator_.Backward(gsu_, gsv_, &gzu0_, &gzv0_, /*include_layer0=*/false);

  // 3. Through log_o back to the input Lorentz points.
  ParallelFor(0, gzu0_.rows(), [&](int u) {
    hyper::LorentzLogOriginVjp(user_in_.Row(u), gzu0_.Row(u),
                               grad_user_in->Row(u));
  }, num_threads_);
  ParallelFor(0, gzv0_.rows(), [&](int v) {
    hyper::LorentzLogOriginVjp(item_in_.Row(v), gzv0_.Row(v),
                               grad_item_in->Row(v));
  }, num_threads_);
}

}  // namespace logirec::core
