#ifndef LOGIREC_CORE_TRAIN_RESOURCES_H_
#define LOGIREC_CORE_TRAIN_RESOURCES_H_

#include <cstdint>

namespace logirec::graph {
class BipartiteGraph;
class GcnPropagator;
}  // namespace logirec::graph

namespace logirec::data {
struct LogicalRelations;
}  // namespace logirec::data

namespace logirec::core {

class HyperbolicGcn;
class LogicEngine;
class NegativeSampler;

/// Salt mixed into the model seed for warm-start fine-tune rounds, so
/// every resume draws from streams distinct from the original Fit() and
/// from every other round while staying a pure function of (seed, round).
constexpr uint64_t kWarmStartSeedSalt = 0x7761726dULL;  // "warm"

/// Borrowed training resources for Recommender::ResumeFit — the
/// continuous-learning pipeline maintains these incrementally across
/// streaming windows (graph edge splices, sampler positive inserts, logic
/// relation appends) so a warm-start fine-tune does not rebuild them from
/// scratch. All pointers are non-owning and optional: a null field makes
/// the model construct its own copy from the dataset/split, exactly as
/// Fit() would. Borrowed structures must be consistent with `split.train`
/// and with the model's config (propagator layers/norm must match), and
/// stay alive for the duration of the ResumeFit call.
struct TrainResources {
  const graph::BipartiteGraph* graph = nullptr;
  /// Euclidean-mode propagation block (LogiRec "w/o Hyper").
  graph::GcnPropagator* propagator = nullptr;
  /// Hyperbolic-mode propagation block (LogiRec, HGCF-family).
  HyperbolicGcn* hgcn = nullptr;
  /// Incrementally-grown logic relation store (LogiRec only).
  LogicEngine* logic = nullptr;
  /// Incrementally-maintained positive tables for negative sampling.
  NegativeSampler* sampler = nullptr;
  /// The relation set `logic` was grown with (LogiRec keeps a copy for
  /// its mining/weighting state and diagnostics).
  const data::LogicalRelations* relations = nullptr;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_TRAIN_RESOURCES_H_
