#ifndef LOGIREC_CORE_NEGATIVE_SAMPLER_H_
#define LOGIREC_CORE_NEGATIVE_SAMPLER_H_

#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace logirec::core {

/// Uniform negative sampling over items a user has NOT interacted with in
/// training. Rejection sampling with a bounded retry count (degenerate
/// users fall back to the last draw).
class NegativeSampler {
 public:
  NegativeSampler(int num_items,
                  const std::vector<std::vector<int>>& train_items);

  /// Draws an item id outside user's training set.
  int Sample(int user, Rng* rng) const;

  /// True if `item` is in `user`'s training set.
  bool IsPositive(int user, int item) const {
    return positives_[user].count(item) > 0;
  }

 private:
  int num_items_;
  std::vector<std::unordered_set<int>> positives_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_NEGATIVE_SAMPLER_H_
