#ifndef LOGIREC_CORE_NEGATIVE_SAMPLER_H_
#define LOGIREC_CORE_NEGATIVE_SAMPLER_H_

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace logirec::core {

/// Uniform negative sampling over items a user has NOT interacted with in
/// training. Rejection sampling with a bounded retry count (degenerate
/// users fall back to the last draw).
///
/// Membership is a sorted per-user id vector probed with binary search:
/// versus the previous per-user hash set this is a fraction of the memory
/// (and one contiguous cache-friendly read per probe) on wide catalogs,
/// while the rejection loop consumes the RNG identically — draw sequences
/// are unchanged.
class NegativeSampler {
 public:
  NegativeSampler(int num_items,
                  const std::vector<std::vector<int>>& train_items);

  /// Draws an item id outside user's training set. Thread-safe for
  /// concurrent calls with distinct `rng` instances (shared state is
  /// read-only after construction).
  int Sample(int user, Rng* rng) const;

  /// True if `item` is in `user`'s training set.
  bool IsPositive(int user, int item) const {
    const std::vector<int>& pos = positives_[user];
    return std::binary_search(pos.begin(), pos.end(), item);
  }

  /// Streaming ingest: marks `item` positive for `user` (sorted insert;
  /// duplicates are ignored). After the call the table equals one built
  /// from scratch on the extended training fold — element-wise, since
  /// both paths store sorted deduplicated rows. NOT thread-safe against
  /// concurrent Sample() calls; ingest and training alternate phases.
  void AddPositive(int user, int item);

  /// The sorted positive-item row for `user` (incremental-equals-rebuild
  /// property tests compare these directly).
  const std::vector<int>& positives(int user) const {
    return positives_[user];
  }
  int num_users() const { return static_cast<int>(positives_.size()); }
  int num_items() const { return num_items_; }

 private:
  int num_items_;
  std::vector<std::vector<int>> positives_;  ///< sorted, deduplicated
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_NEGATIVE_SAMPLER_H_
