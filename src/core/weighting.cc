#include "core/weighting.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "hyper/lorentz.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace logirec::core {

namespace {

/// Sorted (min-tag, max-tag) -> level exclusion lookup. Duplicate pairs
/// keep the last extracted level, matching the map-assignment semantics
/// the original std::map build had.
struct ExclusionIndex {
  struct Entry {
    int a, b, level;
  };
  std::vector<Entry> entries;

  explicit ExclusionIndex(const std::vector<data::ExclusionPair>& pairs) {
    entries.reserve(pairs.size());
    for (const data::ExclusionPair& e : pairs) {
      entries.push_back({std::min(e.a, e.b), std::max(e.a, e.b), e.level});
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& x, const Entry& y) {
                       return x.a != y.a ? x.a < y.a : x.b < y.b;
                     });
    // Keep the last entry of each (a, b) run.
    size_t out = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i + 1 < entries.size() && entries[i + 1].a == entries[i].a &&
          entries[i + 1].b == entries[i].b) {
        continue;
      }
      entries[out++] = entries[i];
    }
    entries.resize(out);
  }

  /// Level of the exclusion between `ta` < `tb`, or -1 when absent.
  int Find(int ta, int tb) const {
    auto it = std::lower_bound(entries.begin(), entries.end(),
                               std::pair<int, int>{ta, tb},
                               [](const Entry& e, const std::pair<int, int>& k) {
                                 return e.a != k.first ? e.a < k.first
                                                       : e.b < k.second;
                               });
    if (it == entries.end() || it->a != ta || it->b != tb) return -1;
    return it->level;
  }
};

}  // namespace

UserWeighting::UserWeighting(
    const data::Dataset& dataset,
    const std::vector<std::vector<int>>& train_items,
    const data::LogicalRelations& relations, int eta, int num_threads) {
  const int num_users = static_cast<int>(train_items.size());
  total_tags_.assign(num_users, 0);
  tag_types_.assign(num_users, 0);
  exclusive_pairs_.assign(num_users, 0);
  con_.assign(num_users, 1.0);
  gr_.assign(num_users, 1.0);
  alpha_.assign(num_users, 1.0);

  const ExclusionIndex exclusion(relations.exclusions);

  // Phase 1 (parallel over users): every user's tag counts, TF penalty,
  // and CON are functions of that user's items alone. The sorted count
  // list and the ascending a < b pair loop reproduce the original
  // std::map iteration order, so con_ is identical bit for bit.
  std::vector<std::vector<std::pair<int, int>>> counts(num_users);
  ParallelFor(0, num_users, [&](int u) {
    // T_u: all tags of the user's training items, with multiplicity.
    std::map<int, int> user_counts;
    for (int item : train_items[u]) {
      for (int tag : dataset.item_tags[item]) {
        ++user_counts[tag];
        ++total_tags_[u];
      }
    }
    counts[u].assign(user_counts.begin(), user_counts.end());
    tag_types_[u] = static_cast<int>(user_counts.size());

    // TF per tag (Eq. 11). |T_u| >= 2 keeps the log denominator positive.
    const double denom = std::log(std::max(total_tags_[u], 2));
    auto tf = [&](int count) { return std::log(count + 1.0) / denom; };

    // Exclusion-weighted penalty (Eq. 12): sum over the user's exclusive
    // tag pairs of TF_i * TF_j * exp(eta - level).
    double penalty = 0.0;
    for (size_t a = 0; a < counts[u].size(); ++a) {
      for (size_t b = a + 1; b < counts[u].size(); ++b) {
        const int level =
            exclusion.Find(counts[u][a].first, counts[u][b].first);
        if (level < 0) continue;
        ++exclusive_pairs_[u];
        penalty += tf(counts[u][a].second) * tf(counts[u][b].second) *
                   std::exp(static_cast<double>(eta - level));
      }
    }
    con_[u] = std::exp(-penalty);
  }, num_threads);

  // Phase 2 (serial): flatten the per-user lists into the CSR arrays.
  tag_offsets_.assign(num_users + 1, 0);
  for (int u = 0; u < num_users; ++u) {
    tag_offsets_[u + 1] =
        tag_offsets_[u] + static_cast<int>(counts[u].size());
  }
  tag_ids_.resize(tag_offsets_[num_users]);
  tag_counts_.resize(tag_offsets_[num_users]);
  for (int u = 0; u < num_users; ++u) {
    int p = tag_offsets_[u];
    for (const auto& [tag, count] : counts[u]) {
      tag_ids_[p] = tag;
      tag_counts_[p] = count;
      ++p;
    }
  }
}

double UserWeighting::Tf(int user, int tag) const {
  const auto begin = tag_ids_.begin() + tag_offsets_[user];
  const auto end = tag_ids_.begin() + tag_offsets_[user + 1];
  const auto it = std::lower_bound(begin, end, tag);
  if (it == end || *it != tag) return 0.0;
  const double denom = std::log(std::max(total_tags_[user], 2));
  const int count = tag_counts_[it - tag_ids_.begin()];
  return std::log(count + 1.0) / denom;
}

void UserWeighting::UpdateGranularity(const math::Matrix& user_lorentz,
                                      int num_threads) {
  LOGIREC_CHECK(user_lorentz.rows() == num_users());
  const math::Vec origin = hyper::LorentzOrigin(user_lorentz.cols());
  // Distance pass: each user's origin distance is independent of every
  // other row, so it fans out over workers; the normalization below folds
  // them serially in user order.
  ParallelFor(0, num_users(), [&](int u) {
    const double g = hyper::LorentzDistance(origin, user_lorentz.Row(u));
    // A row pushed off the hyperboloid by a diverging step can yield an
    // acosh of a value < 1 (NaN). Treat it as 0 so the shared max — and
    // through it every user's alpha — stays finite.
    gr_[u] = std::isfinite(g) ? g : 0.0;
  }, num_threads);
  double max_gr = 0.0;
  for (int u = 0; u < num_users(); ++u) {
    max_gr = std::max(max_gr, gr_[u]);
  }
  if (max_gr <= 0.0) max_gr = 1.0;
  double alpha_sum = 0.0;
  for (int u = 0; u < num_users(); ++u) {
    // Normalize GR into (0, 1] (floored so alpha never hits zero), then
    // combine with CON geometrically (Eq. 14).
    gr_[u] = std::max(gr_[u] / max_gr, 1e-3);
    alpha_[u] = std::sqrt(con_[u] * gr_[u]);
    alpha_sum += alpha_[u];
  }
  // Rescale the weights to mean 1 (capped), so Eq. 15 *redistributes*
  // gradient mass toward consistent fine-granularity users instead of
  // globally shrinking the learning rate — equivalent to the per-method
  // learning-rate tuning the paper performs, but scale-free.
  const double mean_alpha =
      std::max(alpha_sum / std::max(num_users(), 1), 1e-6);
  for (int u = 0; u < num_users(); ++u) {
    // Damped redistribution: half uniform, half the Eq. 14 weight. The
    // damping keeps every user learnable while still shifting gradient
    // mass toward consistent, fine-granularity users.
    alpha_[u] = 0.5 + 0.5 * std::min(alpha_[u] / mean_alpha, 3.0);
  }
}

}  // namespace logirec::core
