#include "core/weighting.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "hyper/lorentz.h"
#include "util/logging.h"

namespace logirec::core {

UserWeighting::UserWeighting(
    const data::Dataset& dataset,
    const std::vector<std::vector<int>>& train_items,
    const data::LogicalRelations& relations, int eta) {
  const int num_users = static_cast<int>(train_items.size());
  tag_counts_.resize(num_users);
  total_tags_.assign(num_users, 0);
  tag_types_.assign(num_users, 0);
  exclusive_pairs_.assign(num_users, 0);
  con_.assign(num_users, 1.0);
  gr_.assign(num_users, 1.0);
  alpha_.assign(num_users, 1.0);

  // Exclusion lookup: (min, max) tag pair -> level.
  std::map<std::pair<int, int>, int> exclusion;
  for (const data::ExclusionPair& e : relations.exclusions) {
    exclusion[{std::min(e.a, e.b), std::max(e.a, e.b)}] = e.level;
  }

  for (int u = 0; u < num_users; ++u) {
    // T_u: all tags of the user's training items, with multiplicity.
    std::map<int, int> counts;
    for (int item : train_items[u]) {
      for (int tag : dataset.item_tags[item]) {
        ++counts[tag];
        ++total_tags_[u];
      }
    }
    tag_counts_[u].assign(counts.begin(), counts.end());
    tag_types_[u] = static_cast<int>(counts.size());

    // TF per tag (Eq. 11). |T_u| >= 2 keeps the log denominator positive.
    const double denom = std::log(std::max(total_tags_[u], 2));
    auto tf = [&](int count) { return std::log(count + 1.0) / denom; };

    // Exclusion-weighted penalty (Eq. 12): sum over the user's exclusive
    // tag pairs of TF_i * TF_j * exp(eta - level).
    double penalty = 0.0;
    for (size_t a = 0; a < tag_counts_[u].size(); ++a) {
      for (size_t b = a + 1; b < tag_counts_[u].size(); ++b) {
        const int ta = tag_counts_[u][a].first;
        const int tb = tag_counts_[u][b].first;
        auto it = exclusion.find({ta, tb});
        if (it == exclusion.end()) continue;
        ++exclusive_pairs_[u];
        const int level = it->second;
        penalty += tf(tag_counts_[u][a].second) *
                   tf(tag_counts_[u][b].second) *
                   std::exp(static_cast<double>(eta - level));
      }
    }
    con_[u] = std::exp(-penalty);
  }
}

double UserWeighting::Tf(int user, int tag) const {
  const double denom = std::log(std::max(total_tags_[user], 2));
  for (const auto& [t, count] : tag_counts_[user]) {
    if (t == tag) return std::log(count + 1.0) / denom;
  }
  return 0.0;
}

void UserWeighting::UpdateGranularity(const math::Matrix& user_lorentz) {
  LOGIREC_CHECK(user_lorentz.rows() == num_users());
  const math::Vec origin = hyper::LorentzOrigin(user_lorentz.cols());
  double max_gr = 0.0;
  for (int u = 0; u < num_users(); ++u) {
    gr_[u] = hyper::LorentzDistance(origin, user_lorentz.Row(u));
    max_gr = std::max(max_gr, gr_[u]);
  }
  if (max_gr <= 0.0) max_gr = 1.0;
  double alpha_sum = 0.0;
  for (int u = 0; u < num_users(); ++u) {
    // Normalize GR into (0, 1] (floored so alpha never hits zero), then
    // combine with CON geometrically (Eq. 14).
    gr_[u] = std::max(gr_[u] / max_gr, 1e-3);
    alpha_[u] = std::sqrt(con_[u] * gr_[u]);
    alpha_sum += alpha_[u];
  }
  // Rescale the weights to mean 1 (capped), so Eq. 15 *redistributes*
  // gradient mass toward consistent fine-granularity users instead of
  // globally shrinking the learning rate — equivalent to the per-method
  // learning-rate tuning the paper performs, but scale-free.
  const double mean_alpha =
      std::max(alpha_sum / std::max(num_users(), 1), 1e-6);
  for (int u = 0; u < num_users(); ++u) {
    // Damped redistribution: half uniform, half the Eq. 14 weight. The
    // damping keeps every user learnable while still shifting gradient
    // mass toward consistent, fine-granularity users.
    alpha_[u] = 0.5 + 0.5 * std::min(alpha_[u] / mean_alpha, 3.0);
  }
}

}  // namespace logirec::core
