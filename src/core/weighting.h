#ifndef LOGIREC_CORE_WEIGHTING_H_
#define LOGIREC_CORE_WEIGHTING_H_

#include <vector>

#include "data/dataset.h"
#include "math/matrix.h"

namespace logirec::core {

/// Per-user weighting state for LogiRec++ (Section V). Consistency CON_u
/// (Eq. 12) is static — it depends only on interacted tags and extracted
/// exclusions — while granularity GR_u (Eq. 13) is recomputed from the
/// current user embeddings each epoch.
///
/// The per-user tag statistics live in a CSR layout (one flat id/count
/// array pair indexed by per-user offsets) so TF/CON lookups are binary
/// searches over contiguous memory, and both the construction pass and
/// the granularity refresh parallelize over users: every user's counts,
/// penalty, and origin distance are independent, and the serial
/// normalization that follows consumes them in user order, so results are
/// identical for every thread count.
class UserWeighting {
 public:
  /// `train_items[u]` lists user u's training items. `eta` is the number
  /// of taxonomy levels (the paper sets η = 4). `num_threads` fans the
  /// per-user statistics pass out over workers (0 = hardware concurrency).
  UserWeighting(const data::Dataset& dataset,
                const std::vector<std::vector<int>>& train_items,
                const data::LogicalRelations& relations, int eta,
                int num_threads = 0);

  /// Normalized tag frequency TF(t, T_u) (Eq. 11); 0 when the user never
  /// interacted with the tag.
  double Tf(int user, int tag) const;

  /// Consistency CON_u (Eq. 12), in (0, 1].
  double Con(int user) const { return con_[user]; }

  /// Recomputes granularity GR_u (Eq. 13) = d_H(o, u^H) from the current
  /// Lorentz user embeddings, then normalizes to (0, 1] by the maximum so
  /// the geometric mean with CON is scale-free, and refreshes the
  /// personalized weights alpha_u (Eq. 14). Non-finite distances (rows
  /// pushed off the hyperboloid by a diverging step) are treated as 0 so
  /// one bad row cannot poison every user's alpha through the shared
  /// normalizer. The distance pass runs in parallel over users.
  void UpdateGranularity(const math::Matrix& user_lorentz,
                         int num_threads = 0);

  double Gr(int user) const { return gr_[user]; }
  double Alpha(int user) const { return alpha_[user]; }

  int num_users() const { return static_cast<int>(con_.size()); }

  /// Number of exclusive tag pairs inside user u's interacted tag list
  /// (diagnostic for Fig. 5-style analyses).
  int ExclusivePairCount(int user) const { return exclusive_pairs_[user]; }

  /// Number of distinct tag types user u interacted with.
  int TagTypeCount(int user) const { return tag_types_[user]; }

 private:
  // Per-user tag occurrence counts in CSR form: user u's distinct tags
  // are tag_ids_[tag_offsets_[u], tag_offsets_[u+1]) in ascending order,
  // with occurrence counts in the parallel tag_counts_ array.
  std::vector<int> tag_offsets_;
  std::vector<int> tag_ids_;
  std::vector<int> tag_counts_;
  std::vector<int> total_tags_;    ///< |T_u| with multiplicity
  std::vector<int> tag_types_;     ///< distinct tags
  std::vector<int> exclusive_pairs_;
  std::vector<double> con_;
  std::vector<double> gr_;
  std::vector<double> alpha_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_WEIGHTING_H_
