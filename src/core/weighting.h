#ifndef LOGIREC_CORE_WEIGHTING_H_
#define LOGIREC_CORE_WEIGHTING_H_

#include <vector>

#include "data/dataset.h"
#include "math/matrix.h"

namespace logirec::core {

/// Per-user weighting state for LogiRec++ (Section V). Consistency CON_u
/// (Eq. 12) is static — it depends only on interacted tags and extracted
/// exclusions — while granularity GR_u (Eq. 13) is recomputed from the
/// current user embeddings each epoch.
class UserWeighting {
 public:
  /// `train_items[u]` lists user u's training items. `eta` is the number
  /// of taxonomy levels (the paper sets η = 4).
  UserWeighting(const data::Dataset& dataset,
                const std::vector<std::vector<int>>& train_items,
                const data::LogicalRelations& relations, int eta);

  /// Normalized tag frequency TF(t, T_u) (Eq. 11); 0 when the user never
  /// interacted with the tag.
  double Tf(int user, int tag) const;

  /// Consistency CON_u (Eq. 12), in (0, 1].
  double Con(int user) const { return con_[user]; }

  /// Recomputes granularity GR_u (Eq. 13) = d_H(o, u^H) from the current
  /// Lorentz user embeddings, then normalizes to (0, 1] by the maximum so
  /// the geometric mean with CON is scale-free, and refreshes the
  /// personalized weights alpha_u (Eq. 14).
  void UpdateGranularity(const math::Matrix& user_lorentz);

  double Gr(int user) const { return gr_[user]; }
  double Alpha(int user) const { return alpha_[user]; }

  int num_users() const { return static_cast<int>(con_.size()); }

  /// Number of exclusive tag pairs inside user u's interacted tag list
  /// (diagnostic for Fig. 5-style analyses).
  int ExclusivePairCount(int user) const { return exclusive_pairs_[user]; }

  /// Number of distinct tag types user u interacted with.
  int TagTypeCount(int user) const { return tag_types_[user]; }

 private:
  // Sparse per-user tag occurrence counts (tag id -> count).
  std::vector<std::vector<std::pair<int, int>>> tag_counts_;
  std::vector<int> total_tags_;    ///< |T_u| with multiplicity
  std::vector<int> tag_types_;     ///< distinct tags
  std::vector<int> exclusive_pairs_;
  std::vector<double> con_;
  std::vector<double> gr_;
  std::vector<double> alpha_;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_WEIGHTING_H_
