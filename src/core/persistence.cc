#include "core/persistence.h"

#include "util/csv.h"
#include "util/string_util.h"

namespace logirec::core {

Status SaveMatrixCsv(const math::Matrix& m, const std::string& path) {
  CsvTable table;
  table.header = {StrFormat("%d", m.rows()), StrFormat("%d", m.cols())};
  table.rows.reserve(m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(m.cols());
    for (int c = 0; c < m.cols(); ++c) {
      row.push_back(StrFormat("%.17g", m.At(r, c)));
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(path, table);
}

Result<math::Matrix> LoadMatrixCsv(const std::string& path) {
  auto table = ReadCsv(path);
  if (!table.ok()) return table.status();
  if (table->header.size() != 2) {
    return Status::IoError("matrix csv needs a rows,cols header: " + path);
  }
  auto rows = ParseInt(table->header[0]);
  auto cols = ParseInt(table->header[1]);
  if (!rows.ok() || !cols.ok()) {
    return Status::IoError(StrFormat(
        "bad matrix header \"%s,%s\" in %s (want integer rows,cols)",
        table->header[0].c_str(), table->header[1].c_str(), path.c_str()));
  }
  if (*rows < 0 || *cols < 0) {
    return Status::IoError(StrFormat(
        "negative matrix dimensions %dx%d in %s", *rows, *cols,
        path.c_str()));
  }
  if (static_cast<int>(table->rows.size()) != *rows) {
    return Status::IoError(StrFormat("expected %d rows, found %zu in %s",
                                     *rows, table->rows.size(),
                                     path.c_str()));
  }
  math::Matrix m(*rows, *cols);
  for (int r = 0; r < *rows; ++r) {
    if (static_cast<int>(table->rows[r].size()) != *cols) {
      return Status::IoError(StrFormat(
          "row %d has %zu cells, expected %d in %s", r,
          table->rows[r].size(), *cols, path.c_str()));
    }
    for (int c = 0; c < *cols; ++c) {
      auto value = ParseDouble(table->rows[r][c]);
      if (!value.ok()) {
        return Status::IoError(StrFormat(
            "unparseable cell \"%s\" at row %d col %d in %s",
            table->rows[r][c].c_str(), r, c, path.c_str()));
      }
      m.At(r, c) = *value;
    }
  }
  return m;
}

}  // namespace logirec::core
