#ifndef LOGIREC_CORE_LOGIREC_MODEL_H_
#define LOGIREC_CORE_LOGIREC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hgcn.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "core/weighting.h"
#include "graph/bipartite_graph.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace logirec::core {

/// Configuration for LogiRec / LogiRec++ and its ablations (Table III).
struct LogiRecConfig : TrainConfig {
  // Ablation switches (all true = LogiRec++; mining=false = LogiRec).
  bool use_membership = true;   ///< L_Mem (Eq. 3)
  bool use_hierarchy = true;    ///< L_Hie (Eq. 4)
  bool use_exclusion = true;    ///< L_Ex (Eq. 5)
  bool use_hgcn = true;         ///< Eqs. 6-8; false = no propagation
  bool use_mining = true;       ///< LogiRec++ weighting (Eqs. 11-15)
  bool use_hyperbolic = true;   ///< false = "w/o Hyper" Euclidean variant

  /// Co-occurrence tolerance when extracting exclusions from the taxonomy
  /// (Section IV-B / Xiong et al.).
  int exclusion_overlap_tolerance = 0;

  /// Future-work extension (paper's conclusion): also model intersection
  /// relations — tag pairs co-occurring on >= `intersection_min_support`
  /// items must keep overlapping enclosing balls. Off by default (the
  /// published model).
  bool use_intersection = false;
  int intersection_min_support = 3;

  // --- design-choice ablations (DESIGN.md §4; defaults = the paper) ----
  /// Eq. 7 normalizes by the receiver degree; LightGCN-style symmetric
  /// normalization is the alternative.
  bool symmetric_gcn_norm = false;
  /// Use the paper's literal Eq. 17 Möbius step (no conformal factor on
  /// the tanh argument) instead of the standard Poincaré exponential map.
  bool use_eq17_exp_map = false;
  /// Truncated backpropagation: treat the GCN as constant in the backward
  /// pass (gradients hit the base embeddings directly) instead of running
  /// the exact transpose recursion.
  bool detach_gcn_backward = false;
};

/// The paper's model: items live in the Poincaré ball (shared with the tag
/// hyperplanes and the logic losses), users on the Lorentz hyperboloid;
/// the recommendation loss is an LMNN hinge on Lorentz distances after a
/// hyperbolic graph convolution; optimization is Riemannian SGD.
///
/// LogiRec++ (use_mining) re-weights each user's hinge terms by
/// alpha_u = sqrt(CON_u * GR_u).
class LogiRecModel final : public Recommender, private Trainable {
 public:
  explicit LogiRecModel(LogiRecConfig config);
  ~LogiRecModel() override;
  LogiRecModel(LogiRecModel&&) noexcept;
  LogiRecModel& operator=(LogiRecModel&&) noexcept;

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override {
    return config_.use_mining ? "LogiRec++" : "LogiRec";
  }

  // kRanking surrogate for ANN retrieval: the raw Lorentz inner product
  // on the hyperboloid, or -||u - v||^2 for the Euclidean ablation.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = config_.use_hyperbolic
                    ? eval::RankingSurrogateSpec::Kind::kLorentzDot
                    : eval::RankingSurrogateSpec::Kind::kNegSquaredEuclidean;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return final_user_.Row(user);
  }

  /// Persists the trained model (all embedding tables plus a meta file)
  /// into the existing directory `dir`. Optimizer state and the per-user
  /// weighting are not saved; a loaded model is scoring-ready only.
  Status Save(const std::string& dir) const;

  /// Restores a model saved by Save() into a scoring-ready state.
  static Result<LogiRecModel> Load(const std::string& dir);

  // Snapshot scoring state (core/snapshot.h): the post-GCN Lorentz tables
  // plus the logic-constrained Poincaré items and tag centers, mirroring
  // the CSV Save() set. The Euclidean "w/o Hyper" variant is recorded in
  // the snapshot flag word so a restore scores with the right metric.
  static constexpr uint32_t kSnapshotFlagEuclidean = 1u << 0;
  void CollectScoringState(ParameterSet* state) override;
  Status FinalizeRestoredState() override;
  uint32_t SnapshotFlags() const override {
    return config_.use_hyperbolic ? 0u : kSnapshotFlagEuclidean;
  }
  Status ApplySnapshotFlags(uint32_t flags) override;

  // Warm-start fine-tuning: the scoring state already carries the
  // logic-constrained Poincaré items and tag centers; the trainer-state
  // trailer adds the pre-propagation user table (Lorentz or Euclidean
  // per the ablation flag). ResumeFit borrows the pipeline's
  // incrementally-maintained graph/propagator/logic/sampler when
  // provided and rebuilds whatever is missing; a scoring-only snapshot
  // degrades gracefully by re-initializing the user table.
  bool SupportsWarmStart() const override { return true; }
  void CollectTrainerState(ParameterSet* state) override;
  Status ResumeFit(const data::Dataset& dataset, const data::Split& split,
                   int epochs = 0,
                   const TrainResources* resources = nullptr) override;

  const LogiRecConfig& config() const { return config_; }

  /// For visualization we expose the logic-constrained Poincaré item
  /// embedding (the space the logic losses act on), matching the item
  /// embeddings the paper plots in Figs. 7-8.
  const math::Matrix* ItemEmbeddings() const override {
    return &item_poincare_;
  }
  ItemSpace item_space() const override {
    return config_.use_hyperbolic ? ItemSpace::kPoincare
                                  : ItemSpace::kEuclidean;
  }

  // --- post-training introspection (case studies, Figs. 5/7/8) ----------

  /// Poincaré item embeddings (the logic-constrained representation).
  const math::Matrix& item_poincare() const { return item_poincare_; }
  /// Tag hyperplane centers.
  const math::Matrix& tag_centers() const { return tag_centers_; }
  /// Final (post-GCN) Lorentz user embeddings.
  const math::Matrix& final_user() const { return final_user_; }
  /// Final (post-GCN) Lorentz item embeddings.
  const math::Matrix& final_item() const { return final_item_; }
  /// The LogiRec++ weighting state; null unless use_mining was set.
  const UserWeighting* weighting() const { return weighting_.get(); }

  /// Mean logic-loss values on the trained embeddings (diagnostics).
  struct LogicReport {
    double mean_membership = 0.0;
    double mean_hierarchy = 0.0;
    double mean_exclusion = 0.0;
  };
  LogicReport ReportLogicLosses(const data::Dataset& dataset) const;

 private:
  /// Training-only resources (graph, propagators, optimizers, lifted item
  /// cache). Allocated by Fit(), alive only while the Trainer runs.
  struct TrainState;

  double TrainOnBatch(const BatchContext& ctx) override;
  int NegativeDrawsPerPair() const override {
    return config_.negatives_per_positive;
  }
  void DrainEpochTimers(double* logic_seconds,
                        double* mining_seconds) override;
  void SyncScoringState() override;
  void CollectParameters(ParameterSet* params) override;

  double TrainOnBatchHyperbolic(const BatchContext& ctx);
  double TrainOnBatchEuclidean(const BatchContext& ctx);
  /// Accumulates the logic losses (Eqs. 3-5) into `gv` (item grads) and
  /// `gt` (tag grads) through the batched core::LogicEngine; returns the
  /// summed loss. `ctx` supplies the scheduling mode (subject to the
  /// TrainConfig::logic_parallel override) and the (epoch, shard) key of
  /// the relation mini-batch stream.
  double LogicLossesAndGrads(const BatchContext& ctx, math::Matrix* gv,
                             math::Matrix* gt);

  void FitHyperbolic(const data::Dataset& dataset, const data::Split& split);
  void FitEuclidean(const data::Dataset& dataset, const data::Split& split);

  LogiRecConfig config_;
  data::LogicalRelations relations_;

  // Parameters.
  math::Matrix user_lorentz_;   // num_users x (d+1)
  math::Matrix item_poincare_;  // num_items x d
  math::Matrix tag_centers_;    // num_tags x d

  // Euclidean-mode parameters (w/o Hyper ablation).
  math::Matrix user_euclidean_;  // num_users x d
  // item embeddings reuse item_poincare_ (plain R^d in this mode).

  // Cached final embeddings for scoring.
  math::Matrix final_user_;
  math::Matrix final_item_;
  math::ScoringView item_view_;

  std::unique_ptr<UserWeighting> weighting_;
  std::unique_ptr<TrainState> ts_;
  bool fitted_ = false;
  int resume_round_ = 0;  ///< warm-start rounds run (seeds their streams)
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_LOGIREC_MODEL_H_
