#ifndef LOGIREC_CORE_PERSISTENCE_H_
#define LOGIREC_CORE_PERSISTENCE_H_

#include <string>

#include "math/matrix.h"
#include "util/status.h"

namespace logirec::core {

/// Writes `m` as CSV: first row "rows,cols", then one line per matrix row.
Status SaveMatrixCsv(const math::Matrix& m, const std::string& path);

/// Reads a matrix written by SaveMatrixCsv.
Result<math::Matrix> LoadMatrixCsv(const std::string& path);

}  // namespace logirec::core

#endif  // LOGIREC_CORE_PERSISTENCE_H_
