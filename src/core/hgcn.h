#ifndef LOGIREC_CORE_HGCN_H_
#define LOGIREC_CORE_HGCN_H_

#include "graph/propagation.h"
#include "math/matrix.h"

namespace logirec::core {

using math::Matrix;

/// Hyperbolic graph convolution (Eqs. 6-8): maps Lorentz embeddings to the
/// tangent space at the origin (log_o), runs the linear bipartite
/// propagation of Eq. 7, and maps back (exp_o).
///
/// The propagation itself is linear, so backpropagation through the whole
/// block is: exp_o VJP -> transpose propagation -> log_o VJP. The class
/// caches the forward intermediates needed by Backward(); all caches are
/// persistent across calls (capacity-reusing Reset), so steady-state
/// Forward/Backward do not allocate.
class HyperbolicGcn {
 public:
  /// `layers` is L in Eq. 7. Rows of all matrices are ambient
  /// (d+1)-dimensional Lorentz vectors. `norm` selects the aggregation
  /// normalization (Eq. 7 uses the receiver degree; symmetric is the
  /// LightGCN-style ablation). `num_threads` bounds the worker count of
  /// the row-parallel map/propagation kernels (0 = hardware concurrency);
  /// results never depend on it.
  HyperbolicGcn(const graph::BipartiteGraph* graph, int layers,
                graph::Norm norm = graph::Norm::kReceiver,
                int num_threads = 0);

  /// Computes final Lorentz embeddings for all users and items from the
  /// input Lorentz embeddings. With layers == 0 the block degenerates to
  /// the identity (used by the "w/o HGCN" ablation).
  void Forward(const Matrix& user_lorentz, const Matrix& item_lorentz,
               Matrix* user_out, Matrix* item_out);

  /// Accumulates into `grad_user_in` / `grad_item_in` the ambient
  /// gradients w.r.t. the *input* Lorentz embeddings, given ambient
  /// gradients w.r.t. the outputs of the last Forward() call.
  void Backward(const Matrix& grad_user_out, const Matrix& grad_item_out,
                Matrix* grad_user_in, Matrix* grad_item_in);

  int layers() const { return propagator_.layers(); }

  /// Streaming ingest: exposes the propagator so the pipeline can splice
  /// new edges in place (GcnPropagator::ApplyEdgeUpdates) instead of
  /// rebuilding the whole block. Tangent/scratch caches are shape-stable
  /// under edge appends, so no other state needs invalidation.
  graph::GcnPropagator* mutable_propagator() { return &propagator_; }

 private:
  graph::GcnPropagator propagator_;
  int num_threads_ = 0;
  // Forward caches.
  Matrix zu0_, zv0_;  // tangent inputs (log_o of the input embeddings)
  Matrix su_, sv_;    // tangent sums (Eq. 7 outputs)
  Matrix user_in_, item_in_;  // input Lorentz points (for the log VJP)
  // Backward scratch (tangent gradients), persistent like the caches.
  Matrix gsu_, gsv_, gzu0_, gzv0_;
  bool has_forward_ = false;
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_HGCN_H_
