#include "core/train_util.h"

#include <algorithm>

#include "util/logging.h"

namespace logirec::core {

std::vector<std::pair<int, int>> TrainPairs(
    const std::vector<std::vector<int>>& train_items) {
  std::vector<std::pair<int, int>> pairs;
  for (size_t u = 0; u < train_items.size(); ++u) {
    for (int v : train_items[u]) pairs.emplace_back(static_cast<int>(u), v);
  }
  return pairs;
}

std::vector<std::pair<int, int>> ShuffledTrainPairs(
    const std::vector<std::vector<int>>& train_items, Rng* rng) {
  auto pairs = TrainPairs(train_items);
  rng->Shuffle(&pairs);
  return pairs;
}

std::vector<std::pair<int, int>> BatchRanges(int total, int batch_size) {
  LOGIREC_CHECK(batch_size > 0);
  std::vector<std::pair<int, int>> ranges;
  for (int begin = 0; begin < total; begin += batch_size) {
    ranges.emplace_back(begin, std::min(begin + batch_size, total));
  }
  return ranges;
}

}  // namespace logirec::core
