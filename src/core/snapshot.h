#ifndef LOGIREC_CORE_SNAPSHOT_H_
#define LOGIREC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/recommender.h"
#include "util/status.h"

namespace logirec::core {

/// On-disk storage dtype of a snapshot's matrix tensors. The wire codes
/// are part of the format — never renumber.
enum class SnapshotDtype : uint32_t {
  kF64 = 0,   ///< exact f64 payload (the bit-identical default)
  kF32 = 1,   ///< f32 payload, widened exactly to f64 on load
  kInt8 = 2,  ///< symmetric per-row int8 codes + f32 scales
};

/// "f64" | "f32" | "int8" (the --save-precision flag vocabulary).
std::string SnapshotDtypeName(SnapshotDtype dtype);
Result<SnapshotDtype> ParseSnapshotDtype(const std::string& name);

/// The parsed header of a binary model snapshot.
struct SnapshotHeader {
  std::string model;   ///< zoo name ("BPRMF", ..., "LogiRec++")
  int dim = 0;         ///< embedding dimension the model was built with
  int layers = 0;      ///< GCN depth (informational; propagation is baked
                       ///< into the stored final embeddings)
  int num_users = 0;
  int num_items = 0;
  uint32_t flags = 0;  ///< Recommender::SnapshotFlags() bits
  /// Matrix storage dtype (v1 files are implicitly kF64). Vectors and
  /// scalars always store f64 — they are tiny (biases, curvatures) and
  /// keeping them exact costs nothing.
  SnapshotDtype dtype = SnapshotDtype::kF64;
  uint64_t file_bytes = 0;  ///< on-disk size, filled by Peek/Read
  /// True when the file carries the optional trainer-state trailer and
  /// Read() restored it into the model (warm-start resumes exactly).
  /// Filled by Read() only — Peek() stops at the header and leaves false.
  bool has_trainer_state = false;
};

/// Constructs an untrained model by zoo name — the signature of
/// baselines::MakeModel, injected so core does not depend on the zoo.
using ModelFactory = std::function<Result<std::unique_ptr<Recommender>>(
    const std::string& name, const TrainConfig& config)>;

/// Versioned, checksummed, little-endian binary model snapshots — the
/// canonical on-disk format for trained models (CSV via core/persistence
/// stays available as a debug/export format).
///
/// Version 1 layout (all integers little-endian):
///
///   u32 magic "LRSn"   u32 version   u32 flags
///   i32 dim   i32 layers   i32 num_users   i32 num_items
///   u32 name_len, name bytes
///   u32 n_matrices   u32 n_vectors   u32 n_scalars
///   u32 header_crc32 (over everything above)
///   per matrix:  i32 rows, i32 cols, u32 crc32, f64 payload (row-major)
///   per vector:  i32 len,            u32 crc32, f64 payload
///   scalar blk:  (n_scalars > 0)     u32 crc32, f64 payload
///
/// Version 2 (compact dtypes) inserts `u32 dtype` after the name bytes
/// and prefixes every tensor record with its own `u32 dtype` tag:
///
///   per matrix:  u32 dtype, i32 rows, i32 cols, u32 crc32, payload
///     kF32 payload:  f32 values (row-major)
///     kInt8 payload: f32 scales[rows], i8 codes[rows * cols] (row-major)
///   per vector:  u32 dtype (always kF64), i32 len, u32 crc32, f64 payload
///   scalar blk:  u32 dtype (always kF64), u32 crc32, f64 payload
///
/// Write() emits version 1 for kF64 — byte-identical to pre-dtype builds,
/// so the back-compat path is exercised by every f64 round trip — and
/// version 2 for compact dtypes. Read() accepts both.
///
/// Either version may append an OPTIONAL trainer-state trailer (written
/// when include_trainer_state is set and the model registers trainer
/// state via Recommender::CollectTrainerState), so a warm-start resume
/// recovers the exact pre-propagation training parameters:
///
///   u32 trailer magic "LRTr"
///   u32 n_matrices   u32 n_vectors   u32 n_scalars   (trainer state)
///   per matrix:  i32 rows, i32 cols, u32 crc32, f64 payload (row-major)
///   per vector:  i32 len,            u32 crc32, f64 payload
///   scalar blk:  (n_scalars > 0)     u32 crc32, f64 payload
///
/// Trailer tensors always store exact f64 regardless of the header dtype
/// — a lossy resume point would break the determinism contract. Read()
/// restores the trailer when present (header_out->has_trainer_state) and
/// falls back gracefully on scoring-only snapshots: the trainer-state
/// tensors simply stay empty and ResumeFit re-initializes them.
///
/// The payload tensors are the model's *scoring-ready* state, walked via
/// Recommender::CollectScoringState() in its fixed enumeration order, so
/// a restored f64 model scores bit-identically to the saved one without
/// the dataset or any training state. Compact snapshots are lossy by
/// design: Read() widens f32 exactly (or dequantizes int8 as scale *
/// code) back into the model's f64 tensors, and re-quantizing the
/// restored state reproduces the encoded values bit-for-bit (f32
/// narrowing and int8 quantization are both idempotent), so serving a
/// compact snapshot at its own precision is exact. Every CRC32 is over
/// the raw payload bytes; Read() loads the whole file with a single fread,
/// verifies checksums, and rejects non-finite tensor values (NaN/Inf)
/// before handing tensors to the model.
class ModelSnapshot {
 public:
  static constexpr uint32_t kMagic = 0x6E53524Cu;  // "LRSn"
  static constexpr uint32_t kVersion = 1;
  /// Version written for kF32/kInt8 (per-tensor dtype tags).
  static constexpr uint32_t kVersionCompact = 2;
  /// Magic of the optional trainer-state trailer.
  static constexpr uint32_t kTrailerMagic = 0x7254524Cu;  // "LRTr"

  /// Serializes `model`'s scoring state to `path` (overwriting).
  /// `header.model` and `header.flags` are filled from the model; the
  /// caller supplies dim/layers/num_users/num_items. `dtype` selects the
  /// matrix storage precision (vectors/scalars always store f64). Fails
  /// on models that register no scoring state. When
  /// `include_trainer_state` is set and the model registers trainer
  /// state, the exact-f64 trailer is appended so ResumeFit resumes from
  /// the identical optimization point; models registering nothing write
  /// the same bytes as before (no empty trailer).
  static Status Write(Recommender& model, SnapshotHeader header,
                      const std::string& path,
                      SnapshotDtype dtype = SnapshotDtype::kF64,
                      bool include_trainer_state = false);

  /// Reads and validates the header only (magic, version, header CRC).
  static Result<SnapshotHeader> Peek(const std::string& path);

  /// Restores a scoring-ready model: constructs it through `factory`
  /// (pass baselines::MakeModel), then fills its scoring-state tensors
  /// from the snapshot, verifying shapes and per-tensor checksums. Any
  /// corruption — bad magic, unknown version, flipped payload byte,
  /// truncated tensor — yields a descriptive error, never a crash.
  static Result<std::unique_ptr<Recommender>> Read(
      const std::string& path, const ModelFactory& factory,
      SnapshotHeader* header_out = nullptr);
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_SNAPSHOT_H_
