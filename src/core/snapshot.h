#ifndef LOGIREC_CORE_SNAPSHOT_H_
#define LOGIREC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/recommender.h"
#include "util/status.h"

namespace logirec::core {

/// The parsed header of a binary model snapshot.
struct SnapshotHeader {
  std::string model;   ///< zoo name ("BPRMF", ..., "LogiRec++")
  int dim = 0;         ///< embedding dimension the model was built with
  int layers = 0;      ///< GCN depth (informational; propagation is baked
                       ///< into the stored final embeddings)
  int num_users = 0;
  int num_items = 0;
  uint32_t flags = 0;  ///< Recommender::SnapshotFlags() bits
};

/// Constructs an untrained model by zoo name — the signature of
/// baselines::MakeModel, injected so core does not depend on the zoo.
using ModelFactory = std::function<Result<std::unique_ptr<Recommender>>(
    const std::string& name, const TrainConfig& config)>;

/// Versioned, checksummed, little-endian binary model snapshots — the
/// canonical on-disk format for trained models (CSV via core/persistence
/// stays available as a debug/export format).
///
/// Layout (all integers little-endian):
///
///   u32 magic "LRSn"   u32 version   u32 flags
///   i32 dim   i32 layers   i32 num_users   i32 num_items
///   u32 name_len, name bytes
///   u32 n_matrices   u32 n_vectors   u32 n_scalars
///   u32 header_crc32 (over everything above)
///   per matrix:  i32 rows, i32 cols, u32 crc32, f64 payload (row-major)
///   per vector:  i32 len,            u32 crc32, f64 payload
///   scalar blk:  (n_scalars > 0)     u32 crc32, f64 payload
///
/// The payload tensors are the model's *scoring-ready* state, walked via
/// Recommender::CollectScoringState() in its fixed enumeration order, so
/// a restored model scores bit-identically to the saved one without the
/// dataset or any training state. Every CRC32 is over the raw payload
/// bytes; Read() loads the whole file with a single fread and verifies
/// checksums before handing tensors to the model.
class ModelSnapshot {
 public:
  static constexpr uint32_t kMagic = 0x6E53524Cu;  // "LRSn"
  static constexpr uint32_t kVersion = 1;

  /// Serializes `model`'s scoring state to `path` (overwriting).
  /// `header.model` and `header.flags` are filled from the model; the
  /// caller supplies dim/layers/num_users/num_items. Fails on models that
  /// register no scoring state.
  static Status Write(Recommender& model, SnapshotHeader header,
                      const std::string& path);

  /// Reads and validates the header only (magic, version, header CRC).
  static Result<SnapshotHeader> Peek(const std::string& path);

  /// Restores a scoring-ready model: constructs it through `factory`
  /// (pass baselines::MakeModel), then fills its scoring-state tensors
  /// from the snapshot, verifying shapes and per-tensor checksums. Any
  /// corruption — bad magic, unknown version, flipped payload byte,
  /// truncated tensor — yields a descriptive error, never a crash.
  static Result<std::unique_ptr<Recommender>> Read(
      const std::string& path, const ModelFactory& factory,
      SnapshotHeader* header_out = nullptr);
};

}  // namespace logirec::core

#endif  // LOGIREC_CORE_SNAPSHOT_H_
