#include "core/logic_losses.h"

#include <cmath>

#include "hyper/hyperplane.h"
#include "util/logging.h"

namespace logirec::core {

using hyper::Ball;
using hyper::BallFromCenter;
using hyper::BallFromCenterVjp;
using math::Vec;

namespace {
constexpr double kEps = kLogicDistEps;
}  // namespace

double MembershipLossAndGrad(ConstSpan item, ConstSpan tag_center,
                             double scale, Span grad_item,
                             Span grad_tag_center) {
  const Ball ball = BallFromCenter(tag_center);
  const Vec diff = math::Sub(item, ball.center);
  const double dist = std::max(math::Norm(diff), kEps);
  const double loss = dist - ball.radius;
  if (loss <= 0.0) return 0.0;

  // d loss / d item = diff / dist; d loss / d o = -diff / dist;
  // d loss / d r = -1.
  if (!grad_item.empty()) {
    math::Axpy(scale / dist, diff, grad_item);
  }
  if (!grad_tag_center.empty()) {
    Vec g_center = math::Scale(diff, -scale / dist);
    BallFromCenterVjp(tag_center, g_center, -scale, grad_tag_center);
  }
  return loss;
}

double HierarchyLossAndGrad(ConstSpan parent_center, ConstSpan child_center,
                            double scale, Span grad_parent,
                            Span grad_child) {
  const Ball parent = BallFromCenter(parent_center);
  const Ball child = BallFromCenter(child_center);
  const Vec diff = math::Sub(parent.center, child.center);
  const double dist = std::max(math::Norm(diff), kEps);
  const double loss = dist + child.radius - parent.radius;
  if (loss <= 0.0) return 0.0;

  // d loss / d o_p = diff/dist; d loss / d o_c = -diff/dist;
  // d loss / d r_p = -1; d loss / d r_c = +1.
  if (!grad_parent.empty()) {
    Vec g_center = math::Scale(diff, scale / dist);
    BallFromCenterVjp(parent_center, g_center, -scale, grad_parent);
  }
  if (!grad_child.empty()) {
    Vec g_center = math::Scale(diff, -scale / dist);
    BallFromCenterVjp(child_center, g_center, scale, grad_child);
  }
  return loss;
}

double ExclusionLossAndGrad(ConstSpan center_a, ConstSpan center_b,
                            double scale, Span grad_a, Span grad_b) {
  const Ball a = BallFromCenter(center_a);
  const Ball b = BallFromCenter(center_b);
  const Vec diff = math::Sub(a.center, b.center);
  const double dist = std::max(math::Norm(diff), kEps);
  const double loss = a.radius + b.radius - dist;
  if (loss <= 0.0) return 0.0;

  // d loss / d o_a = -diff/dist; d loss / d o_b = diff/dist;
  // d loss / d r_a = d loss / d r_b = +1.
  if (!grad_a.empty()) {
    Vec g_center = math::Scale(diff, -scale / dist);
    BallFromCenterVjp(center_a, g_center, scale, grad_a);
  }
  if (!grad_b.empty()) {
    Vec g_center = math::Scale(diff, scale / dist);
    BallFromCenterVjp(center_b, g_center, scale, grad_b);
  }
  return loss;
}

double IntersectionLossAndGrad(ConstSpan center_a, ConstSpan center_b,
                               double scale, Span grad_a, Span grad_b) {
  const Ball a = BallFromCenter(center_a);
  const Ball b = BallFromCenter(center_b);
  const Vec diff = math::Sub(a.center, b.center);
  const double dist = std::max(math::Norm(diff), kEps);
  const double loss = dist - (a.radius + b.radius);
  if (loss <= 0.0) return 0.0;

  // d loss / d o_a = diff/dist; d loss / d o_b = -diff/dist;
  // d loss / d r_a = d loss / d r_b = -1.
  if (!grad_a.empty()) {
    Vec g_center = math::Scale(diff, scale / dist);
    BallFromCenterVjp(center_a, g_center, -scale, grad_a);
  }
  if (!grad_b.empty()) {
    Vec g_center = math::Scale(diff, -scale / dist);
    BallFromCenterVjp(center_b, g_center, -scale, grad_b);
  }
  return loss;
}

double MembershipLoss(ConstSpan item, ConstSpan tag_center) {
  const Ball ball = BallFromCenter(tag_center);
  const double dist = math::Distance(item, ball.center);
  return std::max(0.0, dist - ball.radius);
}

double HierarchyLoss(ConstSpan parent_center, ConstSpan child_center) {
  const Ball parent = BallFromCenter(parent_center);
  const Ball child = BallFromCenter(child_center);
  const double dist = math::Distance(parent.center, child.center);
  return std::max(0.0, dist + child.radius - parent.radius);
}

double ExclusionLoss(ConstSpan center_a, ConstSpan center_b) {
  const Ball a = BallFromCenter(center_a);
  const Ball b = BallFromCenter(center_b);
  const double dist = math::Distance(a.center, b.center);
  return std::max(0.0, a.radius + b.radius - dist);
}

double IntersectionLoss(ConstSpan center_a, ConstSpan center_b) {
  const Ball a = BallFromCenter(center_a);
  const Ball b = BallFromCenter(center_b);
  const double dist = math::Distance(a.center, b.center);
  return std::max(0.0, dist - (a.radius + b.radius));
}

}  // namespace logirec::core
