#include "baselines/lightgcn.h"

#include "baselines/baseline_util.h"
#include "core/negative_sampler.h"
#include "core/train_util.h"
#include "graph/propagation.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace logirec::baselines {

Status LightGcn::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  Rng rng(config_.seed);
  user_ = math::Matrix(nu, d);
  item_ = math::Matrix(ni, d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);

  graph::BipartiteGraph graph(nu, ni, split.train);
  graph::GcnPropagator prop(&graph, config_.layers,
                            graph::Norm::kSymmetric);
  core::NegativeSampler sampler(ni, split.train);
  const double lr = config_.learning_rate;
  const double reg = config_.l2;
  const double layer_avg = 1.0 / (config_.layers + 1);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    auto pairs = core::ShuffledTrainPairs(split.train, &rng);
    const auto batches = core::BatchRanges(static_cast<int>(pairs.size()),
                                           config_.batch_size);
    for (const auto& [b0, b1] : batches) {
      math::Matrix fu, fv;
      prop.Forward(user_, item_, &fu, &fv, /*include_layer0=*/true);
      // Layer averaging (absorb the 1/(L+1) factor explicitly).
      for (double& x : fu.data()) x *= layer_avg;
      for (double& x : fv.data()) x *= layer_avg;

      math::Matrix gfu(nu, d), gfv(ni, d);
      for (int i = b0; i < b1; ++i) {
        const auto [u, pos] = pairs[i];
        auto eu = fu.Row(u);
        const int neg = sampler.Sample(u, &rng);
        auto ei = fv.Row(pos);
        auto ej = fv.Row(neg);
        const double x = math::Dot(eu, ei) - math::Dot(eu, ej);
        const double g = Sigmoid(-x);  // BPR
        auto gu = gfu.Row(u);
        auto gi = gfv.Row(pos);
        auto gj = gfv.Row(neg);
        for (int k = 0; k < d; ++k) {
          gu[k] += -g * (ei[k] - ej[k]);
          gi[k] += -g * eu[k];
          gj[k] += g * eu[k];
        }
      }
      for (double& x : gfu.data()) x *= layer_avg;
      for (double& x : gfv.data()) x *= layer_avg;

      math::Matrix gu0(nu, d), gv0(ni, d);
      prop.Backward(gfu, gfv, &gu0, &gv0, /*include_layer0=*/true);

      ParallelFor(0, nu, [&](int u) {
        auto row = user_.Row(u);
        auto g = gu0.Row(u);
        for (int k = 0; k < d; ++k) row[k] -= lr * (g[k] + reg * row[k]);
      });
      ParallelFor(0, ni, [&](int v) {
        auto row = item_.Row(v);
        auto g = gv0.Row(v);
        for (int k = 0; k < d; ++k) row[k] -= lr * (g[k] + reg * row[k]);
      });
    }
  }

  prop.Forward(user_, item_, &final_user_, &final_item_,
               /*include_layer0=*/true);
  for (double& x : final_user_.data()) x *= layer_avg;
  for (double& x : final_item_.data()) x *= layer_avg;
  fitted_ = true;
  return Status::OK();
}

void LightGcn::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(final_item_.rows());
  auto eu = final_user_.Row(user);
  for (int v = 0; v < final_item_.rows(); ++v) {
    (*out)[v] = math::Dot(eu, final_item_.Row(v));
  }
}

}  // namespace logirec::baselines
