#include "baselines/lightgcn.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace logirec::baselines {

Status LightGcn::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  Rng rng(config_.seed);
  user_ = math::Matrix(nu, d);
  item_ = math::Matrix(ni, d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);

  graph_ = std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
  prop_ = std::make_unique<graph::GcnPropagator>(graph_.get(), config_.layers,
                                                 graph::Norm::kSymmetric,
                                                 config_.num_threads);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  graph_.reset();
  prop_.reset();
  fu_ = math::Matrix();
  fv_ = math::Matrix();
  gfu_ = math::Matrix();
  gfv_ = math::Matrix();
  gu0_ = math::Matrix();
  gv0_ = math::Matrix();
  slots_ = core::PairGradSlots();
  return Status::OK();
}

double LightGcn::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const int nu = user_.rows();
  const int ni = item_.rows();
  const double lr = config_.learning_rate;
  const double reg = config_.l2;
  const double layer_avg = 1.0 / (config_.layers + 1);
  double loss = 0.0;

  math::Matrix& fu = fu_;
  math::Matrix& fv = fv_;
  prop_->Forward(user_, item_, &fu, &fv, /*include_layer0=*/true);
  // Layer averaging (absorb the 1/(L+1) factor explicitly).
  for (double& x : fu.data()) x *= layer_avg;
  for (double& x : fv.data()) x *= layer_avg;

  // One BPR triplet per pair; its gradient is a pure function of the
  // batch-start embeddings, so the slot fill parallelizes per pair.
  auto triplet = [&](int u, int pos, int neg, math::Span gu, math::Span gi,
                     math::Span gj) {
    auto eu = fu.Row(u);
    auto ei = fv.Row(pos);
    auto ej = fv.Row(neg);
    const double x = math::Dot(eu, ei) - math::Dot(eu, ej);
    const double g = Sigmoid(-x);  // BPR
    for (int k = 0; k < d; ++k) {
      gu[k] += -g * (ei[k] - ej[k]);
      gi[k] += -g * eu[k];
      gj[k] += g * eu[k];
    }
    return -std::log(std::max(Sigmoid(x), 1e-300));
  };
  math::Matrix& gfu = gfu_;
  math::Matrix& gfv = gfv_;
  gfu.Reset(nu, d);
  gfv.Reset(ni, d);
  if (ctx.mode == core::ParallelMode::kDeterministic) {
    slots_.Shape(ctx.size(), /*draws=*/1, d);
    ParallelFor(0, ctx.size(), [&](int p) {
      const int i = ctx.begin + p;
      const auto [u, pos] = ctx.pairs[i];
      const int neg = ctx.Negative(i);
      slots_.NegId(p, 0) = neg;
      slots_.Clear(p);
      slots_.Loss(p) = triplet(u, pos, neg, slots_.GradUser(p),
                               slots_.GradPos(p), slots_.GradNeg(p, 0));
    }, ctx.num_threads);
    for (int p = 0; p < ctx.size(); ++p) {
      const auto [u, pos] = ctx.pairs[ctx.begin + p];
      loss += slots_.Loss(p);
      math::Axpy(1.0, slots_.GradUser(p), gfu.Row(u));
      math::Axpy(1.0, slots_.GradPos(p), gfv.Row(pos));
      math::Axpy(1.0, slots_.GradNeg(p, 0), gfv.Row(slots_.NegId(p, 0)));
    }
  } else {
    for (int i = ctx.begin; i < ctx.end; ++i) {
      const auto [u, pos] = ctx.pairs[i];
      const int neg = ctx.Negative(i);
      loss += triplet(u, pos, neg, gfu.Row(u), gfv.Row(pos), gfv.Row(neg));
    }
  }
  for (double& x : gfu.data()) x *= layer_avg;
  for (double& x : gfv.data()) x *= layer_avg;

  math::Matrix& gu0 = gu0_;
  math::Matrix& gv0 = gv0_;
  gu0.Reset(nu, d);
  gv0.Reset(ni, d);
  prop_->Backward(gfu, gfv, &gu0, &gv0, /*include_layer0=*/true);

  ParallelFor(0, nu, [&](int u) {
    auto row = user_.Row(u);
    auto g = gu0.Row(u);
    for (int k = 0; k < d; ++k) row[k] -= lr * (g[k] + reg * row[k]);
  }, ctx.num_threads);
  ParallelFor(0, ni, [&](int v) {
    auto row = item_.Row(v);
    auto g = gv0.Row(v);
    for (int k = 0; k < d; ++k) row[k] -= lr * (g[k] + reg * row[k]);
  }, ctx.num_threads);
  return loss;
}

void LightGcn::SyncScoringState() {
  const double layer_avg = 1.0 / (config_.layers + 1);
  prop_->Forward(user_, item_, &final_user_, &final_item_,
                 /*include_layer0=*/true);
  for (double& x : final_user_.data()) x *= layer_avg;
  for (double& x : final_item_.data()) x *= layer_avg;
  item_view_.Assign(final_item_);
  fitted_ = true;
}

void LightGcn::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
}

void LightGcn::CollectScoringState(core::ParameterSet* state) {
  state->Add(&final_user_);
  state->Add(&final_item_);
}

Status LightGcn::FinalizeRestoredState() {
  // SyncScoringState() would re-run propagation, which needs the training
  // graph; the snapshot stores the propagated embeddings directly.
  item_view_.Assign(final_item_);
  fitted_ = true;
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void LightGcn::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(final_item_.rows());
  auto eu = final_user_.Row(user);
  for (int v = 0; v < final_item_.rows(); ++v) {
    (*out)[v] = math::Dot(eu, final_item_.Row(v));
  }
}

void LightGcn::ScoreItemsInto(int user, math::Span out,
                              eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::DotsInto(final_user_.Row(user), final_item_, out);
  } else {
    math::DotsInto(final_user_.Row(user), item_view_, out);
  }
}

}  // namespace logirec::baselines
