#ifndef LOGIREC_BASELINES_GDCF_H_
#define LOGIREC_BASELINES_GDCF_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// GDCF (Zhang et al. 2022): Geometric Disentangled Collaborative
/// Filtering. Embeddings are split into `kChunks` intent chunks, each
/// scored under its own geometry — alternating Euclidean and hyperbolic
/// (Poincaré) metrics — and fused with learned softmax chunk weights.
/// Hinge ranking loss, per-sample SGD (RSGD inside the hyperbolic chunks).
class Gdcf final : public core::Recommender, private core::Trainable {
 public:
  explicit Gdcf(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "GDCF"; }

  // Snapshot scoring state (core/snapshot.h): chunked embeddings plus
  // the softmax fusion logits.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  static constexpr int kChunks = 4;

  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override { fitted_ = true; }
  void CollectParameters(core::ParameterSet* params) override;

  int ChunkDim() const;
  bool IsHyperbolicChunk(int c) const { return c % 2 == 1; }
  /// Fused (weighted) distance between user u and item v under the
  /// current chunk weights; optionally returns the per-chunk distances.
  double FusedDistance(int u, int v, std::vector<double>* per_chunk) const;
  std::vector<double> ChunkWeights() const;

  core::TrainConfig config_;
  math::Matrix user_, item_;
  math::Vec chunk_logits_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_GDCF_H_
