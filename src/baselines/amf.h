#ifndef LOGIREC_BASELINES_AMF_H_
#define LOGIREC_BASELINES_AMF_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// Aspect-aware Matrix Factorization (Hou et al. 2019, constrained to item
/// tags as aspects): score(u, v) = <p_u, q_v + mean tag embedding of v>,
/// optimized with BPR. Items sharing tags share part of their latent
/// representation through the aspect term.
class Amf final : public core::Recommender, private core::Trainable {
 public:
  explicit Amf(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "AMF"; }

  // kRanking surrogate for ANN retrieval: <p_u, fused item row>.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kDot;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return user_.Row(user);
  }

  // Snapshot scoring state (core/snapshot.h): the materialized
  // aspect-fused item rows — scoring never needs the tag lists back.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override;
  void CollectParameters(core::ParameterSet* params) override;

  math::Vec EffectiveItem(int item) const;

  core::TrainConfig config_;
  math::Matrix user_, item_, tag_;
  /// Materialized EffectiveItem() rows, rebuilt by SyncScoringState() so
  /// the batched scoring kernel can run over one contiguous matrix.
  math::Matrix effective_item_;
  math::ScoringView item_view_;
  std::vector<std::vector<int>> item_tags_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_AMF_H_
