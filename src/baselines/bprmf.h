#ifndef LOGIREC_BASELINES_BPRMF_H_
#define LOGIREC_BASELINES_BPRMF_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// Bayesian Personalized Ranking over matrix factorization (Rendle et al.
/// 2009): score(u, v) = <p_u, q_v> + b_v, optimized with per-sample SGD on
/// the BPR criterion -ln sigmoid(score(u,i) - score(u,j)).
class Bprmf final : public core::Recommender, private core::Trainable {
 public:
  explicit Bprmf(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "BPRMF"; }

  // kRanking surrogate for ANN retrieval: <p_u, q_v> + b_v.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kDotBias;
    spec.items = &item_view_;
    spec.bias = item_bias_.data();
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return user_.Row(user);
  }

  // Snapshot scoring state (core/snapshot.h): user/item factors + bias.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

  // Warm-start fine-tuning: the scoring state IS the full training state
  // (plain SGD, no optimizer moments), so BPRMF resumes from any
  // snapshot without a trainer-state trailer.
  bool SupportsWarmStart() const override { return true; }
  Status ResumeFit(const data::Dataset& dataset, const data::Split& split,
                   int epochs = 0,
                   const core::TrainResources* resources = nullptr) override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override {
    item_view_.Assign(item_);
    fitted_ = true;
  }
  void CollectParameters(core::ParameterSet* params) override;

  core::TrainConfig config_;
  math::Matrix user_, item_;
  math::ScoringView item_view_;
  std::vector<double> item_bias_;
  bool fitted_ = false;
  int resume_round_ = 0;  ///< warm-start rounds run (seeds their streams)
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_BPRMF_H_
