#ifndef LOGIREC_BASELINES_BASELINE_UTIL_H_
#define LOGIREC_BASELINES_BASELINE_UTIL_H_

#include <vector>

#include "data/dataset.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace logirec::baselines {

/// Logistic sigmoid.
double Sigmoid(double x);

// Epoch shuffling lives in core::ShuffledTrainPairs (core/train_util.h),
// consumed by core::Trainer for every model.

/// Clips every row of `m` to at most unit Euclidean norm (the CML-family
/// constraint keeping embeddings inside the unit sphere).
void ClipRowsToUnitBall(math::Matrix* m);

/// Per-item mean tag embedding: out = mean_{t in tags(v)} tag_emb[t]
/// (zero vector for untagged items). Used by the tag-fusion baselines.
math::Vec MeanTagEmbedding(const math::Matrix& tag_emb,
                           const std::vector<int>& tags);

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_BASELINE_UTIL_H_
