#ifndef LOGIREC_BASELINES_HGCF_H_
#define LOGIREC_BASELINES_HGCF_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hgcn.h"
#include "core/recommender.h"
#include "core/shard_grads.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "graph/bipartite_graph.h"
#include "math/matrix.h"
#include "opt/optimizer.h"

namespace logirec::baselines {

/// HGCF (Sun et al. 2021): users and items on the Lorentz hyperboloid,
/// tangent-space skip-GCN (the same Eqs. 6-8 block LogiRec uses), margin
/// ranking loss on hyperbolic distances, Riemannian SGD.
class Hgcf : public core::Recommender, private core::Trainable {
 public:
  explicit Hgcf(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "HGCF"; }

  // kRanking surrogate for ANN retrieval: the raw Lorentz inner product
  // <final_u, final_v>_L (d = acosh(-dot), acosh monotone). Hrcf
  // inherits the same scoring state and surrogate.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kLorentzDot;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return final_user_.Row(user);
  }
  const math::Matrix* ItemEmbeddings() const override {
    return &final_item_;
  }
  ItemSpace item_space() const override { return ItemSpace::kLorentz; }

  // Snapshot scoring state (core/snapshot.h): the post-GCN Lorentz
  // embeddings — shared by HRCF, whose extra regularizer only shapes
  // training. Propagation is baked in.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

  // Warm-start fine-tuning: the snapshot scoring state holds the
  // *post-GCN* embeddings, so the trainer-state trailer carries the base
  // (pre-propagation) Lorentz tables. A scoring-only snapshot falls back
  // to seeding the base tables from the propagated finals — still valid
  // hyperboloid points, a degraded but functional warm start.
  bool SupportsWarmStart() const override { return true; }
  void CollectTrainerState(core::ParameterSet* state) override;
  Status ResumeFit(const data::Dataset& dataset, const data::Split& split,
                   int epochs = 0,
                   const core::TrainResources* resources = nullptr) override;

 protected:
  /// Hook for HRCF: extra gradient contributions on the *final* (post-GCN)
  /// embeddings, added before backpropagation. Default: none.
  virtual void AddRegularizerGrad(const math::Matrix& final_user,
                                  const math::Matrix& final_item,
                                  math::Matrix* grad_user,
                                  math::Matrix* grad_item) const;

  core::TrainConfig config_;
  math::Matrix user_, item_;  // Lorentz points, (d+1) wide
  math::Matrix final_user_, final_item_;
  math::ScoringView item_view_;
  bool fitted_ = false;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  int NegativeDrawsPerPair() const override {
    return config_.negatives_per_positive;
  }
  void SyncScoringState() override;
  void CollectParameters(core::ParameterSet* params) override;

  // Training-time state, alive only while Fit() runs.
  std::unique_ptr<graph::BipartiteGraph> graph_;
  std::unique_ptr<core::HyperbolicGcn> hgcn_;
  std::unique_ptr<opt::LorentzRsgd> user_opt_, item_opt_;
  // Persistent per-batch scratch (capacity reused; freed after Fit()).
  math::Matrix fu_, fv_, gfu_, gfv_, gu_, gv_;
  core::PairGradSlots slots_;
  int resume_round_ = 0;  ///< warm-start rounds run (seeds their streams)
};

/// HRCF (Yang et al. 2022): HGCF plus a hyperbolic geometric regularizer
/// that pushes embeddings away from the origin (root alignment), boosting
/// the use of hyperbolic volume:
///   L_HGR = lambda_r * sum_x 1 / (d_H(o, x) + eps).
class Hrcf final : public Hgcf {
 public:
  explicit Hrcf(core::TrainConfig config, double reg_weight = 0.02)
      : Hgcf(config), reg_weight_(reg_weight) {}
  std::string name() const override { return "HRCF"; }

 protected:
  void AddRegularizerGrad(const math::Matrix& final_user,
                          const math::Matrix& final_item,
                          math::Matrix* grad_user,
                          math::Matrix* grad_item) const override;

 private:
  double reg_weight_;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_HGCF_H_
