#ifndef LOGIREC_BASELINES_TRANSC_H_
#define LOGIREC_BASELINES_TRANSC_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "data/dataset.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// TransC (Lv et al. 2018), constrained as in the paper to model user-item,
/// item-tag, and tag-tag relations. Tags (concepts) are Euclidean spheres
/// (center, radius); items (instances) are points.
///   instanceOf:  [ ||v - o_t|| - r_t ]_+
///   subClassOf:  [ ||o_c - o_p|| + r_c - r_p ]_+
///   user-item:   translation ranking on -||u + r_rel - v||.
/// This is the closest Euclidean analogue of LogiRec's logic losses.
class TransC final : public core::Recommender, private core::Trainable {
 public:
  explicit TransC(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "TransC"; }

  // kRanking surrogate for ANN retrieval: -||(p_u + r) - q_v||. The
  // query is computed (translation), so it fills the caller's scratch
  // with the exact same u[k] + r[k] rounding as ScoreItemsInto.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kNegEuclidean;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* scratch) const override {
    const int d = static_cast<int>(relation_.size());
    scratch->resize(d);
    const math::ConstSpan pu = user_.Row(user);
    for (int k = 0; k < d; ++k) (*scratch)[k] = pu[k] + relation_[k];
    return math::ConstSpan(*scratch);
  }

  // Snapshot scoring state (core/snapshot.h): user/item points plus the
  // shared translation (the concept spheres only shape training).
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  double EpochTail(int epoch, Rng* rng) override;
  void SyncScoringState() override {
    item_view_.Assign(item_);
    fitted_ = true;
  }
  void CollectParameters(core::ParameterSet* params) override;

  core::TrainConfig config_;
  math::Matrix user_, item_, tag_center_;
  math::ScoringView item_view_;
  std::vector<double> tag_radius_;
  math::Vec relation_;  ///< the shared user->item translation vector
  data::LogicalRelations relations_;  ///< logic triples, frozen at Fit()
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_TRANSC_H_
