#include "baselines/amf.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

math::Vec Amf::EffectiveItem(int item) const {
  math::Vec eff(item_.Row(item).begin(), item_.Row(item).end());
  const math::Vec tag_mean = MeanTagEmbedding(tag_, item_tags_[item]);
  for (size_t k = 0; k < eff.size(); ++k) eff[k] += tag_mean[k];
  return eff;
}

Status Amf::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  tag_ = math::Matrix(dataset.taxonomy.num_tags(), d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  tag_.FillGaussian(&rng, 0.1);
  item_tags_ = dataset.item_tags;

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double Amf::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double reg = config_.l2;
  double loss = 0.0;
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    const math::Vec qi = EffectiveItem(pos);
    const math::Vec qj = EffectiveItem(neg);
    const double x = math::Dot(pu, qi) - math::Dot(pu, qj);
    const double g = Sigmoid(-x);
    loss += -std::log(std::max(Sigmoid(x), 1e-300));

    auto vi = item_.Row(pos);
    auto vj = item_.Row(neg);
    const auto& tags_i = item_tags_[pos];
    const auto& tags_j = item_tags_[neg];
    for (int k = 0; k < d; ++k) {
      const double pu_k = pu[k];
      pu[k] += lr * (g * (qi[k] - qj[k]) - reg * pu_k);
      vi[k] += lr * (g * pu_k - reg * vi[k]);
      vj[k] += lr * (-g * pu_k - reg * vj[k]);
      if (!tags_i.empty()) {
        for (int t : tags_i) {
          tag_.Row(t)[k] += lr * (g * pu_k / tags_i.size());
        }
      }
      if (!tags_j.empty()) {
        for (int t : tags_j) {
          tag_.Row(t)[k] += lr * (-g * pu_k / tags_j.size());
        }
      }
    }
  }
  return loss;
}

void Amf::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&tag_);
}

void Amf::SyncScoringState() {
  effective_item_ = math::Matrix(item_.rows(), item_.cols());
  for (int v = 0; v < item_.rows(); ++v) {
    math::Copy(EffectiveItem(v), effective_item_.Row(v));
  }
  item_view_.Assign(effective_item_);
  fitted_ = true;
}

void Amf::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&effective_item_);
}

Status Amf::FinalizeRestoredState() {
  // SyncScoringState() would re-fuse from the tag lists, which a restored
  // model does not carry; the snapshot stores the fused rows directly.
  item_view_.Assign(effective_item_);
  fitted_ = true;
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
// Reads the materialized effective rows (value-identical to re-fusing
// EffectiveItem(v), which a snapshot-restored model cannot do).
void Amf::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(effective_item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < effective_item_.rows(); ++v) {
    (*out)[v] = math::Dot(pu, effective_item_.Row(v));
  }
}

void Amf::ScoreItemsInto(int user, math::Span out,
                         eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::DotsInto(user_.Row(user), effective_item_, out);
  } else {
    math::DotsInto(user_.Row(user), item_view_, out);
  }
}

}  // namespace logirec::baselines
