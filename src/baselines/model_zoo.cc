#include "baselines/model_zoo.h"

#include "baselines/agcn.h"
#include "baselines/amf.h"
#include "baselines/bprmf.h"
#include "baselines/cml.h"
#include "baselines/gdcf.h"
#include "baselines/hgcf.h"
#include "baselines/hyperml.h"
#include "baselines/lightgcn.h"
#include "baselines/neumf.h"
#include "baselines/sml.h"
#include "baselines/transc.h"

namespace logirec::baselines {

Result<std::unique_ptr<core::Recommender>> MakeModel(
    const std::string& name, const core::TrainConfig& config) {
  if (name == "BPRMF") {
    return std::unique_ptr<core::Recommender>(new Bprmf(config));
  }
  if (name == "NeuMF") {
    return std::unique_ptr<core::Recommender>(new NeuMf(config));
  }
  if (name == "CML") {
    return std::unique_ptr<core::Recommender>(new Cml(config));
  }
  if (name == "SML") {
    return std::unique_ptr<core::Recommender>(new Sml(config));
  }
  if (name == "HyperML") {
    return std::unique_ptr<core::Recommender>(new HyperMl(config));
  }
  if (name == "CMLF") {
    return std::unique_ptr<core::Recommender>(new Cmlf(config));
  }
  if (name == "AMF") {
    return std::unique_ptr<core::Recommender>(new Amf(config));
  }
  if (name == "TransC") {
    return std::unique_ptr<core::Recommender>(new TransC(config));
  }
  if (name == "AGCN") {
    return std::unique_ptr<core::Recommender>(new Agcn(config));
  }
  if (name == "LightGCN") {
    return std::unique_ptr<core::Recommender>(new LightGcn(config));
  }
  if (name == "HGCF") {
    return std::unique_ptr<core::Recommender>(new Hgcf(config));
  }
  if (name == "GDCF") {
    return std::unique_ptr<core::Recommender>(new Gdcf(config));
  }
  if (name == "HRCF") {
    return std::unique_ptr<core::Recommender>(new Hrcf(config));
  }
  if (name == "LogiRec" || name == "LogiRec++") {
    core::LogiRecConfig lc;
    static_cast<core::TrainConfig&>(lc) = config;
    lc.use_mining = (name == "LogiRec++");
    return std::unique_ptr<core::Recommender>(
        new core::LogiRecModel(lc));
  }
  return Status::InvalidArgument("unknown model: " + name);
}

std::vector<std::string> BaselineNames() {
  return {"BPRMF", "NeuMF", "CML",      "SML",  "HyperML",
          "CMLF",  "AMF",   "TransC",   "AGCN", "LightGCN",
          "HGCF",  "GDCF",  "HRCF"};
}

std::vector<std::string> AllModelNames() {
  auto names = BaselineNames();
  names.push_back("LogiRec");
  names.push_back("LogiRec++");
  return names;
}

}  // namespace logirec::baselines
