#ifndef LOGIREC_BASELINES_HYPERML_H_
#define LOGIREC_BASELINES_HYPERML_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// HyperML (Vinh Tran et al. 2020): metric learning in the Poincaré ball —
/// a pull-push hinge on Poincaré distances,
///   [m + d_P(u,i) - d_P(u,j)]_+,
/// plus a distortion regularizer tying the hyperbolic distance to the
/// Euclidean one, optimized with Riemannian SGD in the ball.
class HyperMl final : public core::Recommender, private core::Trainable {
 public:
  explicit HyperMl(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "HyperML"; }

  // kRanking surrogate for ANN retrieval: -gamma(p_u, q_v) on the
  // Poincaré ball (d_P = acosh(gamma)).
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kNegPoincareGamma;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return user_.Row(user);
  }

  // Snapshot scoring state (core/snapshot.h): the Poincaré-ball points.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override {
    item_view_.Assign(item_);
    fitted_ = true;
  }
  void CollectParameters(core::ParameterSet* params) override;

  core::TrainConfig config_;
  math::Matrix user_, item_;
  math::ScoringView item_view_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_HYPERML_H_
