#include "baselines/bprmf.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "core/train_resources.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace logirec::baselines {

Status Bprmf::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  item_bias_.assign(dataset.num_items, 0.0);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

Status Bprmf::ResumeFit(const data::Dataset& dataset,
                        const data::Split& split, int epochs,
                        const core::TrainResources* resources) {
  if (user_.rows() == 0 || item_.rows() == 0) {
    return Status::FailedPrecondition(
        "BPRMF::ResumeFit needs a fitted or snapshot-restored model");
  }
  if (user_.rows() != dataset.num_users ||
      item_.rows() != dataset.num_items) {
    return Status::InvalidArgument(StrFormat(
        "BPRMF::ResumeFit: model is %dx%d users/items but the dataset has "
        "%d/%d",
        user_.rows(), item_.rows(), dataset.num_users, dataset.num_items));
  }
  if (static_cast<int>(split.train.size()) != dataset.num_users) {
    return Status::InvalidArgument("split does not match dataset");
  }
  // Fresh deterministic streams per resume round: distinct from Fit()'s
  // and from every other round, yet a pure function of (seed, round).
  core::TrainConfig cfg = config_;
  if (epochs > 0) cfg.epochs = epochs;
  cfg.seed = Rng::MixSeed(config_.seed ^ core::kWarmStartSeedSalt,
                          static_cast<uint64_t>(++resume_round_));
  Rng rng(cfg.seed);
  core::Trainer trainer(cfg);
  trainer.Train(this, split, dataset.num_items, &rng, this,
                resources != nullptr ? resources->sampler : nullptr);
  return Status::OK();
}

double Bprmf::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double reg = config_.l2;
  double loss = 0.0;
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    auto qi = item_.Row(pos);
    auto qj = item_.Row(neg);
    const double x = math::Dot(pu, qi) + item_bias_[pos] -
                     math::Dot(pu, qj) - item_bias_[neg];
    const double g = Sigmoid(-x);  // d(-ln sigma(x))/dx = -sigma(-x)
    loss += -std::log(std::max(Sigmoid(x), 1e-300));
    for (int k = 0; k < d; ++k) {
      const double pu_k = pu[k];
      pu[k] += lr * (g * (qi[k] - qj[k]) - reg * pu_k);
      qi[k] += lr * (g * pu_k - reg * qi[k]);
      qj[k] += lr * (-g * pu_k - reg * qj[k]);
    }
    item_bias_[pos] += lr * (g - reg * item_bias_[pos]);
    item_bias_[neg] += lr * (-g - reg * item_bias_[neg]);
  }
  return loss;
}

void Bprmf::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&item_bias_);
}

void Bprmf::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
  state->Add(&item_bias_);
}

Status Bprmf::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void Bprmf::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    (*out)[v] = math::Dot(pu, item_.Row(v)) + item_bias_[v];
  }
}

void Bprmf::ScoreItemsInto(int user, math::Span out,
                           eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::DotsInto(user_.Row(user), item_, out);
  } else {
    math::DotsInto(user_.Row(user), item_view_, out);
  }
  for (int v = 0; v < item_.rows(); ++v) out[v] += item_bias_[v];
}

}  // namespace logirec::baselines
