#include "baselines/gdcf.h"

#include <algorithm>
#include <cmath>

#include "hyper/poincare.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

int Gdcf::ChunkDim() const {
  return std::max(config_.dim / kChunks, 1);
}

std::vector<double> Gdcf::ChunkWeights() const {
  std::vector<double> w(kChunks);
  double mx = chunk_logits_[0];
  for (int c = 1; c < kChunks; ++c) mx = std::max(mx, chunk_logits_[c]);
  double sum = 0.0;
  for (int c = 0; c < kChunks; ++c) {
    w[c] = std::exp(chunk_logits_[c] - mx);
    sum += w[c];
  }
  for (double& x : w) x /= sum;
  return w;
}

double Gdcf::FusedDistance(int u, int v,
                           std::vector<double>* per_chunk) const {
  const int cd = ChunkDim();
  const auto weights = ChunkWeights();
  auto pu = user_.Row(u);
  auto qv = item_.Row(v);
  double fused = 0.0;
  for (int c = 0; c < kChunks; ++c) {
    math::ConstSpan uc = pu.subspan(static_cast<size_t>(c) * cd, cd);
    math::ConstSpan vc = qv.subspan(static_cast<size_t>(c) * cd, cd);
    const double dist = IsHyperbolicChunk(c)
                            ? hyper::PoincareDistance(uc, vc)
                            : math::Distance(uc, vc);
    if (per_chunk) (*per_chunk)[c] = dist;
    fused += weights[c] * dist;
  }
  return fused;
}

Status Gdcf::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int cd = ChunkDim();
  const int total = cd * kChunks;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, total);
  item_ = math::Matrix(dataset.num_items, total);
  user_.FillGaussian(&rng, 0.05);
  item_.FillGaussian(&rng, 0.05);
  // Keep hyperbolic chunks inside the ball.
  auto project = [&](math::Matrix* m, int row) {
    for (int c = 0; c < kChunks; ++c) {
      if (IsHyperbolicChunk(c)) {
        hyper::ProjectToBall(
            m->Row(row).subspan(static_cast<size_t>(c) * cd, cd));
      }
    }
  };
  for (int r = 0; r < user_.rows(); ++r) project(&user_, r);
  for (int r = 0; r < item_.rows(); ++r) project(&item_, r);
  chunk_logits_.assign(kChunks, 0.0);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double Gdcf::TrainOnBatch(const core::BatchContext& ctx) {
  const int cd = ChunkDim();
  const double lr = config_.learning_rate;
  const double margin = config_.margin > 0.0 ? config_.margin : 0.3;
  double loss = 0.0;

  std::vector<double> dist_pos(kChunks), dist_neg(kChunks);
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    const double dp = FusedDistance(u, pos, &dist_pos);
    const double dn = FusedDistance(u, neg, &dist_neg);
    const double hinge = margin + dp - dn;
    if (hinge <= 0.0) continue;
    loss += hinge;
    const auto weights = ChunkWeights();

    auto pu = user_.Row(u);
    auto qi = item_.Row(pos);
    auto qj = item_.Row(neg);
    for (int c = 0; c < kChunks; ++c) {
      auto uc = pu.subspan(static_cast<size_t>(c) * cd, cd);
      auto ic = qi.subspan(static_cast<size_t>(c) * cd, cd);
      auto jc = qj.subspan(static_cast<size_t>(c) * cd, cd);
      math::Vec gu(cd, 0.0), gi(cd, 0.0), gj(cd, 0.0);
      if (IsHyperbolicChunk(c)) {
        hyper::PoincareDistanceGrad(uc, ic, weights[c], math::Span(gu),
                                    math::Span(gi));
        hyper::PoincareDistanceGrad(uc, jc, -weights[c], math::Span(gu),
                                    math::Span(gj));
        hyper::RsgdStepPoincare(uc, gu, lr);
        hyper::RsgdStepPoincare(ic, gi, lr);
        hyper::RsgdStepPoincare(jc, gj, lr);
      } else {
        const double np = std::max(math::Distance(uc, ic), 1e-9);
        const double nn = std::max(math::Distance(uc, jc), 1e-9);
        for (int k = 0; k < cd; ++k) {
          const double gp = weights[c] * (uc[k] - ic[k]) / np;
          const double gn = weights[c] * (uc[k] - jc[k]) / nn;
          gu[k] = gp - gn;
          gi[k] = -gp;
          gj[k] = gn;
        }
        for (int k = 0; k < cd; ++k) {
          uc[k] -= lr * gu[k];
          ic[k] -= lr * gi[k];
          jc[k] -= lr * gj[k];
        }
      }
      // Chunk-weight gradient via softmax: dL/dlogit_c =
      // sum_c' (d_pos - d_neg)_c' * w_c' * (delta_cc' - w_c).
      double glogit = 0.0;
      for (int c2 = 0; c2 < kChunks; ++c2) {
        const double diff = dist_pos[c2] - dist_neg[c2];
        glogit += diff * weights[c2] * ((c2 == c ? 1.0 : 0.0) - weights[c]);
      }
      chunk_logits_[c] -= lr * 0.1 * glogit;
    }
  }
  return loss;
}

void Gdcf::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&chunk_logits_);
}

void Gdcf::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
  state->Add(&chunk_logits_);
}

Status Gdcf::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void Gdcf::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(item_.rows());
  for (int v = 0; v < item_.rows(); ++v) {
    (*out)[v] = -FusedDistance(user, v, nullptr);
  }
}

void Gdcf::ScoreItemsInto(int user, math::Span out,
                          eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  LOGIREC_CHECK(static_cast<int>(out.size()) == item_.rows());
  // The fused score sums an acosh per hyperbolic chunk, so no monotone
  // shortcut exists; both modes run the exact fusion. The win over the
  // scalar path is hoisting the softmax chunk weights (an allocation and
  // kChunks exps per item in FusedDistance) out of the item loop.
  const int cd = ChunkDim();
  const auto weights = ChunkWeights();
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    auto qv = item_.Row(v);
    double fused = 0.0;
    for (int c = 0; c < kChunks; ++c) {
      math::ConstSpan uc = pu.subspan(static_cast<size_t>(c) * cd, cd);
      math::ConstSpan vc = qv.subspan(static_cast<size_t>(c) * cd, cd);
      const double dist = IsHyperbolicChunk(c)
                              ? hyper::PoincareDistance(uc, vc)
                              : math::Distance(uc, vc);
      fused += weights[c] * dist;
    }
    out[v] = -fused;
  }
}

}  // namespace logirec::baselines
