#include "baselines/neumf.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

double NeuMf::Predict(int user, int item) const {
  const int d = config_.dim;
  double logit = bias_;
  // GMF head.
  auto gu = gmf_user_.Row(user);
  auto gi = gmf_item_.Row(item);
  for (int k = 0; k < d; ++k) logit += gmf_out_[k] * gu[k] * gi[k];
  // MLP head.
  math::Vec in(2 * d);
  auto mu = mlp_user_.Row(user);
  auto mi = mlp_item_.Row(item);
  for (int k = 0; k < d; ++k) {
    in[k] = mu[k];
    in[d + k] = mi[k];
  }
  logit += mlp_->Infer(in)[0];
  return logit;
}

double NeuMf::Step(int user, int item, double label) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double reg = config_.l2;

  auto gu = gmf_user_.Row(user);
  auto gi = gmf_item_.Row(item);
  math::Vec in(2 * d);
  auto mu = mlp_user_.Row(user);
  auto mi = mlp_item_.Row(item);
  for (int k = 0; k < d; ++k) {
    in[k] = mu[k];
    in[d + k] = mi[k];
  }

  double logit = bias_;
  for (int k = 0; k < d; ++k) logit += gmf_out_[k] * gu[k] * gi[k];
  const math::Vec mlp_out = mlp_->Forward(in);
  logit += mlp_out[0];

  // Logistic loss gradient dL/dlogit = sigmoid(logit) - label.
  const double p = Sigmoid(logit);
  const double g = p - label;
  const double loss = label > 0.5 ? -std::log(std::max(p, 1e-300))
                                  : -std::log(std::max(1.0 - p, 1e-300));

  bias_ -= lr * g;
  for (int k = 0; k < d; ++k) {
    const double gu_k = gu[k];
    const double w_k = gmf_out_[k];
    gmf_out_[k] -= lr * (g * gu_k * gi[k] + reg * w_k);
    gu[k] -= lr * (g * w_k * gi[k] + reg * gu_k);
    gi[k] -= lr * (g * w_k * gu_k + reg * gi[k]);
  }
  const math::Vec grad_in = mlp_->Backward(math::Vec{g});
  mlp_->Step(lr, 1.0, reg);
  for (int k = 0; k < d; ++k) {
    mu[k] -= lr * (grad_in[k] + reg * mu[k]);
    mi[k] -= lr * (grad_in[d + k] + reg * mi[k]);
  }
  return loss;
}

Status NeuMf::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  gmf_user_ = math::Matrix(dataset.num_users, d);
  gmf_item_ = math::Matrix(dataset.num_items, d);
  mlp_user_ = math::Matrix(dataset.num_users, d);
  mlp_item_ = math::Matrix(dataset.num_items, d);
  gmf_user_.FillGaussian(&rng, 0.1);
  gmf_item_.FillGaussian(&rng, 0.1);
  mlp_user_.FillGaussian(&rng, 0.1);
  mlp_item_.FillGaussian(&rng, 0.1);
  gmf_out_.assign(d, 1.0 / d);
  mlp_ = std::make_unique<math::Mlp>(
      std::vector<int>{2 * d, d, d / 2 > 0 ? d / 2 : 1, 1},
      math::Activation::kRelu, &rng);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double NeuMf::TrainOnBatch(const core::BatchContext& ctx) {
  double loss = 0.0;
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    loss += Step(u, pos, 1.0);
    for (int k = 0; k < config_.negatives_per_positive; ++k) {
      loss += Step(u, ctx.Negative(i, k), 0.0);
    }
  }
  return loss;
}

void NeuMf::CollectParameters(core::ParameterSet* params) {
  params->Add(&gmf_user_);
  params->Add(&gmf_item_);
  params->Add(&mlp_user_);
  params->Add(&mlp_item_);
  params->Add(&gmf_out_);
  params->Add(&bias_);
  for (math::Vec* tensor : mlp_->ParameterTensors()) params->Add(tensor);
}

void NeuMf::CollectScoringState(core::ParameterSet* state) {
  state->Add(&gmf_user_);
  state->Add(&gmf_item_);
  state->Add(&mlp_user_);
  state->Add(&mlp_item_);
  state->Add(&gmf_out_);
  state->Add(&bias_);
  // Unfitted and not prepared for restore: no MLP tensors to walk. The
  // snapshot reader's tensor-count check turns that into an error.
  if (mlp_ == nullptr) return;
  for (math::Vec* tensor : mlp_->ParameterTensors()) state->Add(tensor);
}

void NeuMf::PrepareForRestore() {
  if (mlp_ != nullptr) return;
  // Same tower shape as Fit(); the He-initialized weights are fully
  // overwritten by the snapshot payload.
  const int d = config_.dim;
  Rng rng(config_.seed);
  mlp_ = std::make_unique<math::Mlp>(
      std::vector<int>{2 * d, d, d / 2 > 0 ? d / 2 : 1, 1},
      math::Activation::kRelu, &rng);
}

Status NeuMf::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void NeuMf::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(gmf_item_.rows());
  for (int v = 0; v < gmf_item_.rows(); ++v) {
    (*out)[v] = Predict(user, v);
  }
}

void NeuMf::ScoreItemsInto(int user, math::Span out,
                           eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  LOGIREC_CHECK(static_cast<int>(out.size()) == gmf_item_.rows());
  const int d = config_.dim;
  auto gu = gmf_user_.Row(user);
  auto mu = mlp_user_.Row(user);
  // The user half of the MLP input and the MLP activations are hoisted
  // out of the item loop; Predict() rebuilt all of them per item.
  math::Vec in(2 * d);
  for (int k = 0; k < d; ++k) in[k] = mu[k];
  math::Vec scratch_a, scratch_b;
  for (int v = 0; v < gmf_item_.rows(); ++v) {
    auto gi = gmf_item_.Row(v);
    auto mi = mlp_item_.Row(v);
    double logit = bias_;
    for (int k = 0; k < d; ++k) logit += gmf_out_[k] * gu[k] * gi[k];
    for (int k = 0; k < d; ++k) in[d + k] = mi[k];
    logit += mlp_->InferInto(in, &scratch_a, &scratch_b)[0];
    out[v] = logit;
  }
}

}  // namespace logirec::baselines
