#include "baselines/agcn.h"

#include <algorithm>
#include <cmath>

#include "baselines/baseline_util.h"
#include "graph/bipartite_graph.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace logirec::baselines {

// Faithful to Wu et al. 2020: the graph convolution runs over the
// user-item interaction graph only; item attributes (tags) enter as part
// of the item *input* representation, z_v^0 = free_v + mean of the item's
// tag embeddings. Tag embeddings receive gradients through that fusion,
// which plays the role of the original's attribute-inference feedback
// (the inference head itself is the documented simplification).

Status Agcn::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  const int nt = dataset.taxonomy.num_tags();
  Rng rng(config_.seed);
  user_ = math::Matrix(nu, d);
  item_ = math::Matrix(ni, d);
  tag_ = math::Matrix(nt, d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  tag_.FillGaussian(&rng, 0.1);

  graph_ = std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
  prop_ = std::make_unique<graph::GcnPropagator>(graph_.get(), config_.layers,
                                                 graph::Norm::kSymmetric);
  fused_ = math::Matrix(ni, d);
  item_tags_ = &dataset.item_tags;

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  graph_.reset();
  prop_.reset();
  fused_ = math::Matrix();
  item_tags_ = nullptr;
  return Status::OK();
}

void Agcn::FuseItems(int num_threads) {
  const int d = config_.dim;
  ParallelFor(0, item_.rows(), [&](int v) {
    auto dst = fused_.Row(v);
    auto src = item_.Row(v);
    const math::Vec tag_mean = MeanTagEmbedding(tag_, (*item_tags_)[v]);
    for (int k = 0; k < d; ++k) dst[k] = src[k] + tag_mean[k];
  }, num_threads);
}

double Agcn::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const int nu = user_.rows();
  const int ni = item_.rows();
  const double lr = config_.learning_rate;
  const double reg = config_.l2;
  const double layer_avg = 1.0 / (config_.layers + 1);
  double loss = 0.0;

  FuseItems(ctx.num_threads);
  math::Matrix fu, fv;
  prop_->Forward(user_, fused_, &fu, &fv, /*include_layer0=*/true);
  for (double& x : fu.data()) x *= layer_avg;
  for (double& x : fv.data()) x *= layer_avg;

  math::Matrix gfu(nu, d), gfv(ni, d);
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    auto eu = fu.Row(u);
    const int neg = ctx.SampleNegative(u);
    auto ei = fv.Row(pos);
    auto ej = fv.Row(neg);
    const double x = math::Dot(eu, ei) - math::Dot(eu, ej);
    const double g = Sigmoid(-x);
    loss += -std::log(std::max(Sigmoid(x), 1e-300));
    auto gu_row = gfu.Row(u);
    auto gi = gfv.Row(pos);
    auto gj = gfv.Row(neg);
    for (int k = 0; k < d; ++k) {
      gu_row[k] += -g * (ei[k] - ej[k]);
      gi[k] += -g * eu[k];
      gj[k] += g * eu[k];
    }
  }
  for (double& x : gfu.data()) x *= layer_avg;
  for (double& x : gfv.data()) x *= layer_avg;

  math::Matrix gu(nu, d), gv(ni, d);
  prop_->Backward(gfu, gfv, &gu, &gv, /*include_layer0=*/true);

  ParallelFor(0, nu, [&](int u) {
    auto row = user_.Row(u);
    auto g = gu.Row(u);
    for (int k = 0; k < d; ++k) row[k] -= lr * (g[k] + reg * row[k]);
  }, ctx.num_threads);
  // The fused input splits its gradient between the free item vector
  // and the (mean-shared) tag embeddings.
  ParallelFor(0, ni, [&](int v) {
    auto row = item_.Row(v);
    auto g = gv.Row(v);
    for (int k = 0; k < d; ++k) row[k] -= lr * (g[k] + reg * row[k]);
  }, ctx.num_threads);
  for (int v = 0; v < ni; ++v) {
    const auto& tags = (*item_tags_)[v];
    if (tags.empty()) continue;
    auto g = gv.Row(v);
    const double share = 1.0 / tags.size();
    for (int t : tags) {
      auto row = tag_.Row(t);
      for (int k = 0; k < d; ++k) {
        row[k] -= lr * (share * g[k] + reg * row[k] / ni);
      }
    }
  }
  return loss;
}

void Agcn::SyncScoringState() {
  const double layer_avg = 1.0 / (config_.layers + 1);
  FuseItems(config_.num_threads);
  prop_->Forward(user_, fused_, &final_user_, &final_item_,
                 /*include_layer0=*/true);
  for (double& x : final_user_.data()) x *= layer_avg;
  for (double& x : final_item_.data()) x *= layer_avg;
  item_view_.Assign(final_item_);
  fitted_ = true;
}

void Agcn::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&tag_);
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void Agcn::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(final_item_.rows());
  auto eu = final_user_.Row(user);
  for (int v = 0; v < final_item_.rows(); ++v) {
    (*out)[v] = math::Dot(eu, final_item_.Row(v));
  }
}

void Agcn::ScoreItemsInto(int user, math::Span out,
                          eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::DotsInto(final_user_.Row(user), final_item_, out);
  } else {
    math::DotsInto(final_user_.Row(user), item_view_, out);
  }
}

}  // namespace logirec::baselines
