#include "baselines/cml.h"

#include "baselines/baseline_util.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

Status Cml::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  ClipRowsToUnitBall(&user_);
  ClipRowsToUnitBall(&item_);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double Cml::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double margin = config_.margin > 0.0 ? config_.margin : 0.5;
  double loss = 0.0;
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    auto qi = item_.Row(pos);
    auto qj = item_.Row(neg);
    const double dpos = math::SquaredDistance(pu, qi);
    const double dneg = math::SquaredDistance(pu, qj);
    const double hinge = margin + dpos - dneg;
    if (hinge <= 0.0) continue;
    loss += hinge;
    // d d^2(a,b)/da = 2(a-b).
    for (int k = 0; k < d; ++k) {
      const double gu = 2.0 * (pu[k] - qi[k]) - 2.0 * (pu[k] - qj[k]);
      const double gi = -2.0 * (pu[k] - qi[k]);
      const double gj = 2.0 * (pu[k] - qj[k]);
      pu[k] -= lr * gu;
      qi[k] -= lr * gi;
      qj[k] -= lr * gj;
    }
    math::ClipNorm(pu, 1.0);
    math::ClipNorm(qi, 1.0);
    math::ClipNorm(qj, 1.0);
  }
  return loss;
}

void Cml::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
}

void Cml::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
}

Status Cml::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void Cml::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    (*out)[v] = -math::SquaredDistance(pu, item_.Row(v));
  }
}

void Cml::ScoreItemsInto(int user, math::Span out,
                         eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::NegSquaredEuclideanDistancesInto(user_.Row(user), item_, out);
  } else {
    math::NegSquaredEuclideanDistancesInto(user_.Row(user), item_view_, out);
  }
}

math::Vec Cmlf::EffectiveItem(int item) const {
  math::Vec eff(item_.Row(item).begin(), item_.Row(item).end());
  const math::Vec tag_mean =
      MeanTagEmbedding(tag_, (*item_tags_)[item]);
  for (size_t k = 0; k < eff.size(); ++k) eff[k] += tag_mean[k];
  return eff;
}

Status Cmlf::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  tag_ = math::Matrix(dataset.taxonomy.num_tags(), d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  tag_.FillGaussian(&rng, 0.1);
  ClipRowsToUnitBall(&user_);
  ClipRowsToUnitBall(&item_);
  item_tags_copy_ = dataset.item_tags;
  item_tags_ = &item_tags_copy_;

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double Cmlf::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double margin = config_.margin > 0.0 ? config_.margin : 0.5;
  double loss = 0.0;
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    const math::Vec qi = EffectiveItem(pos);
    const math::Vec qj = EffectiveItem(neg);
    const double dpos = math::SquaredDistance(pu, qi);
    const double dneg = math::SquaredDistance(pu, qj);
    const double hinge = margin + dpos - dneg;
    if (hinge <= 0.0) continue;
    loss += hinge;

    auto vi = item_.Row(pos);
    auto vj = item_.Row(neg);
    const auto& tags_i = (*item_tags_)[pos];
    const auto& tags_j = (*item_tags_)[neg];
    for (int k = 0; k < d; ++k) {
      const double gi = -2.0 * (pu[k] - qi[k]);  // d/d(effective item i)
      const double gj = 2.0 * (pu[k] - qj[k]);
      const double gu = -gi - gj;
      pu[k] -= lr * gu;
      vi[k] -= lr * gi;
      vj[k] -= lr * gj;
      // Tag embeddings receive the mean-shared slice of the item grad.
      if (!tags_i.empty()) {
        for (int t : tags_i) tag_.Row(t)[k] -= lr * gi / tags_i.size();
      }
      if (!tags_j.empty()) {
        for (int t : tags_j) tag_.Row(t)[k] -= lr * gj / tags_j.size();
      }
    }
    math::ClipNorm(pu, 1.0);
    math::ClipNorm(vi, 1.0);
    math::ClipNorm(vj, 1.0);
  }
  return loss;
}

void Cmlf::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&tag_);
}

void Cmlf::SyncScoringState() {
  effective_item_ = math::Matrix(item_.rows(), item_.cols());
  for (int v = 0; v < item_.rows(); ++v) {
    math::Copy(EffectiveItem(v), effective_item_.Row(v));
  }
  item_view_.Assign(effective_item_);
  fitted_ = true;
}

void Cmlf::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&effective_item_);
}

Status Cmlf::FinalizeRestoredState() {
  // SyncScoringState() would re-fuse from the tag lists, which a restored
  // model does not carry; the snapshot stores the fused rows directly.
  item_view_.Assign(effective_item_);
  fitted_ = true;
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
// Reads the materialized effective rows (value-identical to re-fusing
// EffectiveItem(v), which a snapshot-restored model cannot do).
void Cmlf::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(effective_item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < effective_item_.rows(); ++v) {
    (*out)[v] = -math::SquaredDistance(pu, effective_item_.Row(v));
  }
}

void Cmlf::ScoreItemsInto(int user, math::Span out,
                          eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::NegSquaredEuclideanDistancesInto(user_.Row(user), effective_item_,
                                           out);
  } else {
    math::NegSquaredEuclideanDistancesInto(user_.Row(user), item_view_, out);
  }
}

}  // namespace logirec::baselines
