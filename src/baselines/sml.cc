#include "baselines/sml.h"

#include <algorithm>

#include "baselines/baseline_util.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

Status Sml::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  ClipRowsToUnitBall(&user_);
  ClipRowsToUnitBall(&item_);
  user_margin_.assign(dataset.num_users, 0.5);
  item_margin_.assign(dataset.num_items, 0.5);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double Sml::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double gamma = 0.1;         // adaptive-margin bonus weight
  const double item_weight = 0.5;   // weight of the symmetric hinge
  double loss = 0.0;

  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    auto qi = item_.Row(pos);
    auto qj = item_.Row(neg);
    const double d_ui = math::SquaredDistance(pu, qi);
    const double d_uj = math::SquaredDistance(pu, qj);
    const double d_ij = math::SquaredDistance(qi, qj);

    const double user_hinge = d_ui - d_uj + user_margin_[u];
    const double item_hinge = d_ui - d_ij + item_margin_[pos];
    const bool user_active = user_hinge > 0.0;
    const bool item_active = item_hinge > 0.0;
    if (user_active) loss += user_hinge;
    if (item_active) loss += item_weight * item_hinge;

    for (int k = 0; k < d; ++k) {
      double gu = 0.0, gi = 0.0, gj = 0.0;
      if (user_active) {
        gu += 2.0 * (pu[k] - qi[k]) - 2.0 * (pu[k] - qj[k]);
        gi += -2.0 * (pu[k] - qi[k]);
        gj += 2.0 * (pu[k] - qj[k]);
      }
      if (item_active) {
        gu += item_weight * 2.0 * (pu[k] - qi[k]);
        gi += item_weight *
              (-2.0 * (pu[k] - qi[k]) + 2.0 * (qi[k] - qj[k]));
        gj += item_weight * (-2.0 * (qi[k] - qj[k]));
      }
      pu[k] -= lr * gu;
      qi[k] -= lr * gi;
      qj[k] -= lr * gj;
    }
    // Adaptive margins: hinge pushes them down when active, the -gamma*m
    // bonus pushes them up; clamp into the allowed interval.
    if (user_active) user_margin_[u] -= lr * (1.0 - gamma);
    else user_margin_[u] += lr * gamma;
    if (item_active) item_margin_[pos] -= lr * item_weight * (1.0 - gamma);
    else item_margin_[pos] += lr * gamma;
    user_margin_[u] = std::clamp(user_margin_[u], kMarginLo, kMarginHi);
    item_margin_[pos] = std::clamp(item_margin_[pos], kMarginLo, kMarginHi);

    math::ClipNorm(pu, 1.0);
    math::ClipNorm(qi, 1.0);
    math::ClipNorm(qj, 1.0);
  }
  return loss;
}

void Sml::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&user_margin_);
  params->Add(&item_margin_);
}

void Sml::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
}

Status Sml::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void Sml::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    (*out)[v] = -math::SquaredDistance(pu, item_.Row(v));
  }
}

void Sml::ScoreItemsInto(int user, math::Span out,
                         eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  if (item_view_.empty()) {
    math::NegSquaredEuclideanDistancesInto(user_.Row(user), item_, out);
  } else {
    math::NegSquaredEuclideanDistancesInto(user_.Row(user), item_view_, out);
  }
}

}  // namespace logirec::baselines
