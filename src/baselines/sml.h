#ifndef LOGIREC_BASELINES_SML_H_
#define LOGIREC_BASELINES_SML_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// Symmetric Metric Learning with adaptive margins (Li et al. 2020):
/// a user-centric hinge [d^2(u,i) - d^2(u,j) + m_u]_+ plus a symmetric
/// item-centric hinge [d^2(u,i) - d^2(i,j) + m_i]_+, where the margins
/// m_u, m_i are learnable in [kMarginLo, kMarginHi] with a -gamma * m
/// bonus that keeps them from collapsing to zero.
class Sml final : public core::Recommender, private core::Trainable {
 public:
  explicit Sml(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "SML"; }

  // kRanking surrogate for ANN retrieval: -||p_u - q_v||^2.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kNegSquaredEuclidean;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return user_.Row(user);
  }

  // Snapshot scoring state (core/snapshot.h): the metric-space points
  // (the adaptive margins only shape training, never scoring).
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  static constexpr double kMarginLo = 0.05;
  static constexpr double kMarginHi = 1.0;

  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override {
    item_view_.Assign(item_);
    fitted_ = true;
  }
  void CollectParameters(core::ParameterSet* params) override;

  core::TrainConfig config_;
  math::Matrix user_, item_;
  math::ScoringView item_view_;
  std::vector<double> user_margin_, item_margin_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_SML_H_
