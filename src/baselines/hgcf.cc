#include "baselines/hgcf.h"

#include <cmath>

#include "core/embedding.h"
#include "core/train_resources.h"
#include "hyper/lorentz.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace logirec::baselines {

void Hgcf::AddRegularizerGrad(const math::Matrix& /*final_user*/,
                              const math::Matrix& /*final_item*/,
                              math::Matrix* /*grad_user*/,
                              math::Matrix* /*grad_item*/) const {}

Status Hgcf::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  Rng rng(config_.seed);
  user_ = math::Matrix(nu, d + 1);
  item_ = math::Matrix(ni, d + 1);
  core::InitLorentzRows(&user_, &rng, 0.05);
  core::InitLorentzRows(&item_, &rng, 0.05);

  graph_ = std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
  hgcn_ = std::make_unique<core::HyperbolicGcn>(graph_.get(), config_.layers,
                                                graph::Norm::kReceiver,
                                                config_.num_threads);
  user_opt_ = std::make_unique<opt::LorentzRsgd>(config_.learning_rate,
                                                 config_.grad_clip);
  item_opt_ = std::make_unique<opt::LorentzRsgd>(config_.learning_rate,
                                                 config_.grad_clip);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  graph_.reset();
  hgcn_.reset();
  user_opt_.reset();
  item_opt_.reset();
  fu_ = math::Matrix();
  fv_ = math::Matrix();
  gfu_ = math::Matrix();
  gfv_ = math::Matrix();
  gu_ = math::Matrix();
  gv_ = math::Matrix();
  slots_ = core::PairGradSlots();
  return Status::OK();
}

void Hgcf::CollectTrainerState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
}

Status Hgcf::ResumeFit(const data::Dataset& dataset,
                       const data::Split& split, int epochs,
                       const core::TrainResources* resources) {
  const int d = config_.dim;
  const int nu = dataset.num_users;
  const int ni = dataset.num_items;
  if (!fitted_) {
    return Status::FailedPrecondition(
        name() + "::ResumeFit needs a fitted or snapshot-restored model");
  }
  if (final_user_.rows() != nu || final_item_.rows() != ni) {
    return Status::InvalidArgument(StrFormat(
        "%s::ResumeFit: model is %dx%d users/items but the dataset has "
        "%d/%d",
        name().c_str(), final_user_.rows(), final_item_.rows(), nu, ni));
  }
  if (static_cast<int>(split.train.size()) != nu) {
    return Status::InvalidArgument("split does not match dataset");
  }
  // Graceful fallback for scoring-only snapshots (no trainer-state
  // trailer): seed the base tables from the propagated finals — valid
  // hyperboloid points, so training proceeds from a sensible warm point.
  if (user_.rows() != nu || user_.cols() != d + 1) user_ = final_user_;
  if (item_.rows() != ni || item_.cols() != d + 1) item_ = final_item_;

  graph_ = std::make_unique<graph::BipartiteGraph>(nu, ni, split.train);
  hgcn_ = std::make_unique<core::HyperbolicGcn>(graph_.get(), config_.layers,
                                                graph::Norm::kReceiver,
                                                config_.num_threads);
  user_opt_ = std::make_unique<opt::LorentzRsgd>(config_.learning_rate,
                                                 config_.grad_clip);
  item_opt_ = std::make_unique<opt::LorentzRsgd>(config_.learning_rate,
                                                 config_.grad_clip);

  core::TrainConfig cfg = config_;
  if (epochs > 0) cfg.epochs = epochs;
  cfg.seed = Rng::MixSeed(config_.seed ^ core::kWarmStartSeedSalt,
                          static_cast<uint64_t>(++resume_round_));
  Rng rng(cfg.seed);
  core::Trainer trainer(cfg);
  trainer.Train(this, split, ni, &rng, this,
                resources != nullptr ? resources->sampler : nullptr);
  graph_.reset();
  hgcn_.reset();
  user_opt_.reset();
  item_opt_.reset();
  fu_ = math::Matrix();
  fv_ = math::Matrix();
  gfu_ = math::Matrix();
  gfv_ = math::Matrix();
  gu_ = math::Matrix();
  gv_ = math::Matrix();
  slots_ = core::PairGradSlots();
  return Status::OK();
}

double Hgcf::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const int nu = user_.rows();
  const int ni = item_.rows();
  double loss = 0.0;

  math::Matrix& fu = fu_;
  math::Matrix& fv = fv_;
  hgcn_->Forward(user_, item_, &fu, &fv);

  // Per-model tuning (Section VI-A4 tunes every baseline): the pure
  // Lorentz metric models prefer a wider margin than the shared
  // default at this data scale (grid-searched over {1, 2, 4}x).
  const double margin = config_.margin * 2.0;
  const int npp = config_.negatives_per_positive;
  math::Matrix& gfu = gfu_;
  math::Matrix& gfv = gfv_;
  gfu.Reset(nu, d + 1);
  gfv.Reset(ni, d + 1);
  if (ctx.mode == core::ParallelMode::kDeterministic) {
    // Two-phase deterministic pipeline: parallel per-pair slot fill from
    // the batch-start embeddings and pre-drawn negatives, then an ordered
    // single-thread fold — bit-identical for every thread count.
    slots_.Shape(ctx.size(), npp, d + 1);
    ParallelFor(0, ctx.size(), [&](int p) {
      const int i = ctx.begin + p;
      const auto [u, pos] = ctx.pairs[i];
      slots_.Clear(p);
      double pair_loss = 0.0;
      for (int k = 0; k < npp; ++k) {
        const int neg = ctx.Negative(i, k);
        slots_.NegId(p, k) = neg;
        const double dpos = hyper::LorentzDistance(fu.Row(u), fv.Row(pos));
        const double dneg = hyper::LorentzDistance(fu.Row(u), fv.Row(neg));
        const double hinge = margin + dpos - dneg;
        if (hinge <= 0.0) continue;
        pair_loss += hinge;
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(pos), 1.0,
                                   slots_.GradUser(p), slots_.GradPos(p));
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(neg), -1.0,
                                   slots_.GradUser(p), slots_.GradNeg(p, k));
      }
      slots_.Loss(p) = pair_loss;
    }, ctx.num_threads);
    for (int p = 0; p < ctx.size(); ++p) {
      const auto [u, pos] = ctx.pairs[ctx.begin + p];
      loss += slots_.Loss(p);
      math::Axpy(1.0, slots_.GradUser(p), gfu.Row(u));
      math::Axpy(1.0, slots_.GradPos(p), gfv.Row(pos));
      for (int k = 0; k < npp; ++k) {
        math::Axpy(1.0, slots_.GradNeg(p, k), gfv.Row(slots_.NegId(p, k)));
      }
    }
  } else {
    for (int i = ctx.begin; i < ctx.end; ++i) {
      const auto [u, pos] = ctx.pairs[i];
      for (int k = 0; k < npp; ++k) {
        const int neg = ctx.Negative(i, k);
        const double dpos = hyper::LorentzDistance(fu.Row(u), fv.Row(pos));
        const double dneg = hyper::LorentzDistance(fu.Row(u), fv.Row(neg));
        const double hinge = margin + dpos - dneg;
        if (hinge <= 0.0) continue;
        loss += hinge;
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(pos), 1.0, gfu.Row(u),
                                   gfv.Row(pos));
        hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(neg), -1.0,
                                   gfu.Row(u), gfv.Row(neg));
      }
    }
  }
  AddRegularizerGrad(fu, fv, &gfu, &gfv);

  math::Matrix& gu = gu_;
  math::Matrix& gv = gv_;
  gu.Reset(nu, d + 1);
  gv.Reset(ni, d + 1);
  hgcn_->Backward(gfu, gfv, &gu, &gv);

  // Stability clamp: bound the distance-to-origin of the base
  // embeddings. Without it the margin race inflates norms until all
  // distances saturate and ranking collapses (the skip-sum GCN then
  // amplifies the blow-up). LogiRec avoids this implicitly via its
  // Poincaré ball projection; HGCF/HRCF need the explicit bound.
  constexpr double kMaxRadius = 6.0;
  const double max_spatial = std::sinh(kMaxRadius);
  auto clamp_radius = [max_spatial](math::Span row) {
    double spatial = 0.0;
    for (size_t i = 1; i < row.size(); ++i) spatial += row[i] * row[i];
    spatial = std::sqrt(spatial);
    if (spatial > max_spatial) {
      const double s = max_spatial / spatial;
      for (size_t i = 1; i < row.size(); ++i) row[i] *= s;
      hyper::ProjectToHyperboloid(row);
    }
  };
  ParallelFor(0, nu, [&](int u) {
    user_opt_->Step(u, user_.Row(u), gu.Row(u));
    clamp_radius(user_.Row(u));
  }, ctx.num_threads);
  ParallelFor(0, ni, [&](int v) {
    item_opt_->Step(v, item_.Row(v), gv.Row(v));
    clamp_radius(item_.Row(v));
  }, ctx.num_threads);
  return loss;
}

void Hgcf::SyncScoringState() {
  hgcn_->Forward(user_, item_, &final_user_, &final_item_);
  item_view_.Assign(final_item_);
  fitted_ = true;
}

void Hgcf::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
}

void Hgcf::CollectScoringState(core::ParameterSet* state) {
  state->Add(&final_user_);
  state->Add(&final_item_);
}

Status Hgcf::FinalizeRestoredState() {
  // SyncScoringState() would re-run the hyperbolic GCN, which needs the
  // training graph; the snapshot stores the propagated embeddings.
  item_view_.Assign(final_item_);
  fitted_ = true;
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void Hgcf::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(final_item_.rows());
  auto eu = final_user_.Row(user);
  for (int v = 0; v < final_item_.rows(); ++v) {
    (*out)[v] = -hyper::LorentzDistance(eu, final_item_.Row(v));
  }
}

void Hgcf::ScoreItemsInto(int user, math::Span out,
                          eval::ScoreMode mode) const {
  LOGIREC_CHECK(fitted_);
  auto eu = final_user_.Row(user);
  if (mode == eval::ScoreMode::kRanking) {
    // d = acosh(-<u,v>_L) and acosh is monotone, so the Lorentz dot ranks
    // identically to the negated geodesic distance — no acosh per item.
    if (item_view_.empty()) {
      math::LorentzDotsInto(eu, final_item_, out);
    } else {
      math::LorentzDotsInto(eu, item_view_, out);
    }
  } else if (item_view_.empty()) {
    math::NegLorentzDistancesInto(eu, final_item_, out);
  } else {
    math::NegLorentzDistancesInto(eu, item_view_, out);
  }
}

void Hrcf::AddRegularizerGrad(const math::Matrix& final_user,
                              const math::Matrix& final_item,
                              math::Matrix* grad_user,
                              math::Matrix* grad_item) const {
  // d/dx [ w / (d_H(o,x) + eps) ] = -w / (d+eps)^2 * d d_H(o,x)/dx.
  constexpr double kEps = 0.1;
  const math::Vec origin_u = hyper::LorentzOrigin(final_user.cols());
  auto push = [&](const math::Matrix& emb, math::Matrix* grad) {
    ParallelFor(0, emb.rows(), [&](int r) {
      const double dist =
          hyper::LorentzDistance(origin_u, emb.Row(r)) + kEps;
      const double scale = -reg_weight_ / (dist * dist);
      // Gradient of d_H(x, o) w.r.t. x, accumulated scaled.
      hyper::LorentzDistanceGrad(emb.Row(r), origin_u, scale, grad->Row(r),
                                 math::Span());
    });
  };
  push(final_user, grad_user);
  push(final_item, grad_item);
}

}  // namespace logirec::baselines
