#ifndef LOGIREC_BASELINES_MODEL_ZOO_H_
#define LOGIREC_BASELINES_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/logirec_model.h"
#include "core/recommender.h"

namespace logirec::baselines {

/// Constructs any model in the repository by its table name ("BPRMF",
/// "NeuMF", "CML", "SML", "HyperML", "CMLF", "AMF", "TransC", "AGCN",
/// "LightGCN", "HGCF", "GDCF", "HRCF", "LogiRec", "LogiRec++").
/// Returns an error for unknown names.
Result<std::unique_ptr<core::Recommender>> MakeModel(
    const std::string& name, const core::TrainConfig& config);

/// The 13 baseline names, in Table II order.
std::vector<std::string> BaselineNames();

/// All model names (baselines + LogiRec + LogiRec++), in Table II order.
std::vector<std::string> AllModelNames();

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_MODEL_ZOO_H_
