#ifndef LOGIREC_BASELINES_AGCN_H_
#define LOGIREC_BASELINES_AGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/shard_grads.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "graph/propagation.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// Adaptive Graph Convolutional Network (Wu et al. 2020), constrained to
/// item tags as attributes. Propagation runs over the user-item
/// interaction graph (symmetric normalization, layer averaging); item
/// attributes enter as part of the item input representation
/// z_v^0 = free_v + mean tag embedding — the pathway that makes AGCN
/// strong on tag-rich datasets. Scoring is dot-product with BPR loss.
///
/// Simplification vs. the original: the explicit attribute-inference head
/// is replaced by gradient feedback into the tag embeddings through the
/// fusion (the same adaptive signal, without the inference loss).
class Agcn final : public core::Recommender, private core::Trainable {
 public:
  explicit Agcn(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "AGCN"; }

  // kRanking surrogate for ANN retrieval: <final_u, final_v>.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kDot;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return final_user_.Row(user);
  }
  const math::Matrix* ItemEmbeddings() const override {
    return &final_item_;
  }

  // Snapshot scoring state (core/snapshot.h): the layer-averaged final
  // embeddings with the tag fusion already baked in.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override;
  void CollectParameters(core::ParameterSet* params) override;

  /// Recomputes `fused_` = free item embedding + mean tag embedding.
  void FuseItems(int num_threads);

  core::TrainConfig config_;
  math::Matrix user_, item_, tag_;  // base embeddings
  math::Matrix final_user_, final_item_;
  math::ScoringView item_view_;
  // Training-time state, alive only while Fit() runs.
  std::unique_ptr<graph::BipartiteGraph> graph_;
  std::unique_ptr<graph::GcnPropagator> prop_;
  math::Matrix fused_;
  const std::vector<std::vector<int>>* item_tags_ = nullptr;
  // Persistent per-batch scratch (capacity reused; freed after Fit()).
  math::Matrix fu_, fv_, gfu_, gfv_, gu_, gv_;
  core::PairGradSlots slots_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_AGCN_H_
