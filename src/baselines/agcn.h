#ifndef LOGIREC_BASELINES_AGCN_H_
#define LOGIREC_BASELINES_AGCN_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// Adaptive Graph Convolutional Network (Wu et al. 2020), constrained to
/// item tags as attributes. Propagation runs over the user-item
/// interaction graph (symmetric normalization, layer averaging); item
/// attributes enter as part of the item input representation
/// z_v^0 = free_v + mean tag embedding — the pathway that makes AGCN
/// strong on tag-rich datasets. Scoring is dot-product with BPR loss.
///
/// Simplification vs. the original: the explicit attribute-inference head
/// is replaced by gradient feedback into the tag embeddings through the
/// fusion (the same adaptive signal, without the inference loss).
class Agcn final : public core::Recommender {
 public:
  explicit Agcn(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  std::string name() const override { return "AGCN"; }
  const math::Matrix* ItemEmbeddings() const override {
    return &final_item_;
  }

 private:
  core::TrainConfig config_;
  math::Matrix user_, item_, tag_;  // base embeddings
  math::Matrix final_user_, final_item_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_AGCN_H_
