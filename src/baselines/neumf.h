#ifndef LOGIREC_BASELINES_NEUMF_H_
#define LOGIREC_BASELINES_NEUMF_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/matrix.h"
#include "math/mlp.h"

namespace logirec::baselines {

/// Neural Collaborative Filtering (He et al. 2017): fuses a Generalized
/// Matrix Factorization head (elementwise product, learned output weights)
/// with an MLP tower over concatenated user/item embeddings. Trained with
/// a logistic loss over positive interactions and sampled negatives.
class NeuMf final : public core::Recommender, private core::Trainable {
 public:
  explicit NeuMf(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "NeuMF"; }

  // Snapshot scoring state (core/snapshot.h): both towers, the fusion
  // weights/bias, and every MLP layer tensor. PrepareForRestore()
  // allocates the MLP so the enumeration has destinations to fill on a
  // freshly constructed model.
  void CollectScoringState(core::ParameterSet* state) override;
  void PrepareForRestore() override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  int NegativeDrawsPerPair() const override {
    return config_.negatives_per_positive;
  }
  void SyncScoringState() override { fitted_ = true; }
  void CollectParameters(core::ParameterSet* params) override;

  double Predict(int user, int item) const;
  /// One logistic-SGD step on (user, item, label); returns the loss.
  double Step(int user, int item, double label);

  core::TrainConfig config_;
  // GMF tower.
  math::Matrix gmf_user_, gmf_item_;
  math::Vec gmf_out_;  ///< output weights over the elementwise product
  // MLP tower.
  math::Matrix mlp_user_, mlp_item_;
  std::unique_ptr<math::Mlp> mlp_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_NEUMF_H_
