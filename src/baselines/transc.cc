#include "baselines/transc.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

Status TransC::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  tag_center_ = math::Matrix(dataset.taxonomy.num_tags(), d);
  user_.FillGaussian(&rng, 0.1);
  item_.FillGaussian(&rng, 0.1);
  tag_center_.FillGaussian(&rng, 0.1);
  tag_radius_.assign(dataset.taxonomy.num_tags(), 0.0);
  // Coarser tags start with larger spheres.
  for (int t = 0; t < dataset.taxonomy.num_tags(); ++t) {
    const int level = dataset.taxonomy.tag(t).level;
    tag_radius_[t] = 1.0 / level;
  }
  relation_.assign(d, 0.0);
  for (double& x : relation_) x = rng.Gaussian(0.0, 0.1);

  relations_ = dataset.ExtractRelations();

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  relations_ = data::LogicalRelations{};
  return Status::OK();
}

double TransC::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double margin = config_.margin > 0.0 ? config_.margin : 0.5;
  double loss = 0.0;

  // Ranking over user-item triples (translation scoring).
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    auto qi = item_.Row(pos);
    auto qj = item_.Row(neg);
    double dpos = 0.0, dneg = 0.0;
    for (int k = 0; k < d; ++k) {
      const double ep = pu[k] + relation_[k] - qi[k];
      const double en = pu[k] + relation_[k] - qj[k];
      dpos += ep * ep;
      dneg += en * en;
    }
    dpos = std::sqrt(dpos);
    dneg = std::sqrt(dneg);
    const double hinge = margin + dpos - dneg;
    if (hinge <= 0.0) continue;
    loss += hinge;
    const double ip = std::max(dpos, 1e-9);
    const double in = std::max(dneg, 1e-9);
    for (int k = 0; k < d; ++k) {
      const double gp = (pu[k] + relation_[k] - qi[k]) / ip;
      const double gn = (pu[k] + relation_[k] - qj[k]) / in;
      pu[k] -= lr * (gp - gn);
      relation_[k] -= lr * (gp - gn);
      qi[k] -= lr * (-gp);
      qj[k] -= lr * (gn);
    }
  }
  return loss;
}

double TransC::EpochTail(int /*epoch*/, Rng* /*rng*/) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double logic_weight = 0.3;
  double loss = 0.0;

  // instanceOf: items inside their tag spheres.
  for (const auto& [item, tag] : relations_.memberships) {
    auto v = item_.Row(item);
    auto o = tag_center_.Row(tag);
    const double dist = std::max(math::Distance(v, o), 1e-9);
    const double violation = dist - tag_radius_[tag];
    if (violation <= 0.0) continue;
    loss += logic_weight * violation;
    for (int k = 0; k < d; ++k) {
      const double g = logic_weight * (v[k] - o[k]) / dist;
      v[k] -= lr * g;
      o[k] += lr * g;
    }
    tag_radius_[tag] += lr * logic_weight;
  }

  // subClassOf: child sphere inside parent sphere.
  for (const data::HierarchyPair& h : relations_.hierarchy) {
    auto op = tag_center_.Row(h.parent);
    auto oc = tag_center_.Row(h.child);
    const double dist = std::max(math::Distance(op, oc), 1e-9);
    const double violation = dist + tag_radius_[h.child] - tag_radius_[h.parent];
    if (violation <= 0.0) continue;
    loss += logic_weight * violation;
    for (int k = 0; k < d; ++k) {
      const double g = logic_weight * (op[k] - oc[k]) / dist;
      op[k] -= lr * g;
      oc[k] += lr * g;
    }
    tag_radius_[h.parent] += lr * logic_weight;
    tag_radius_[h.child] -= lr * logic_weight;
    tag_radius_[h.child] = std::max(tag_radius_[h.child], 0.05);
  }
  return loss;
}

void TransC::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
  params->Add(&tag_center_);
  params->Add(&tag_radius_);
  params->Add(&relation_);
}

void TransC::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
  state->Add(&relation_);
}

Status TransC::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void TransC::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  const int d = static_cast<int>(relation_.size());
  out->resize(item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    auto qv = item_.Row(v);
    double dist = 0.0;
    for (int k = 0; k < d; ++k) {
      const double e = pu[k] + relation_[k] - qv[k];
      dist += e * e;
    }
    (*out)[v] = -std::sqrt(dist);
  }
}

void TransC::ScoreItemsInto(int user, math::Span out,
                            eval::ScoreMode /*mode*/) const {
  LOGIREC_CHECK(fitted_);
  const int d = static_cast<int>(relation_.size());
  // Hoist the translated query u + r out of the item loop; (u[k] + r[k])
  // - v[k] rounds exactly like the scalar path's u[k] + r[k] - v[k].
  math::Vec translated(d);
  auto pu = user_.Row(user);
  for (int k = 0; k < d; ++k) translated[k] = pu[k] + relation_[k];
  if (item_view_.empty()) {
    math::NegEuclideanDistancesInto(translated, item_, out);
  } else {
    math::NegEuclideanDistancesInto(translated, item_view_, out);
  }
}

}  // namespace logirec::baselines
