#ifndef LOGIREC_BASELINES_LIGHTGCN_H_
#define LOGIREC_BASELINES_LIGHTGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/shard_grads.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "graph/propagation.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// LightGCN (He et al. 2020): symmetric-normalized linear propagation over
/// the user-item graph, layer-averaged embeddings, dot-product scoring,
/// BPR loss. Trained full-batch per epoch; gradients flow through the
/// propagation via its transpose (the propagation is linear).
class LightGcn final : public core::Recommender, private core::Trainable {
 public:
  explicit LightGcn(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "LightGCN"; }

  // kRanking surrogate for ANN retrieval: <final_u, final_v>.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kDot;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return final_user_.Row(user);
  }
  const math::Matrix* ItemEmbeddings() const override {
    return &final_item_;
  }

  // Snapshot scoring state (core/snapshot.h): the layer-averaged final
  // embeddings — propagation is baked in, so a restored model never
  // needs the interaction graph.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override;
  void CollectParameters(core::ParameterSet* params) override;

  core::TrainConfig config_;
  math::Matrix user_, item_;        // base (layer-0) embeddings
  math::Matrix final_user_, final_item_;
  math::ScoringView item_view_;
  // Training-time state, alive only while Fit() runs.
  std::unique_ptr<graph::BipartiteGraph> graph_;
  std::unique_ptr<graph::GcnPropagator> prop_;
  // Persistent per-batch scratch (capacity reused; freed after Fit()).
  math::Matrix fu_, fv_, gfu_, gfv_, gu0_, gv0_;
  core::PairGradSlots slots_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_LIGHTGCN_H_
