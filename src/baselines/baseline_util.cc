#include "baselines/baseline_util.h"

#include <cmath>

namespace logirec::baselines {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

void ClipRowsToUnitBall(math::Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    math::ClipNorm(m->Row(r), 1.0);
  }
}

math::Vec MeanTagEmbedding(const math::Matrix& tag_emb,
                           const std::vector<int>& tags) {
  math::Vec out(tag_emb.cols(), 0.0);
  if (tags.empty()) return out;
  for (int t : tags) {
    math::Axpy(1.0 / tags.size(), tag_emb.Row(t), math::Span(out));
  }
  return out;
}

}  // namespace logirec::baselines
