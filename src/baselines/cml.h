#ifndef LOGIREC_BASELINES_CML_H_
#define LOGIREC_BASELINES_CML_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/trainer.h"
#include "math/kernels.h"
#include "math/matrix.h"

namespace logirec::baselines {

/// Collaborative Metric Learning (Hsieh et al. 2017): users and items in a
/// shared Euclidean metric space, hinge loss on squared distances
///   [m + d^2(u,i) - d^2(u,j)]_+,
/// with all embeddings clipped into the unit ball after each update.
class Cml final : public core::Recommender, private core::Trainable {
 public:
  explicit Cml(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "CML"; }

  // kRanking surrogate for ANN retrieval: -||p_u - q_v||^2.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kNegSquaredEuclidean;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return user_.Row(user);
  }

  // Snapshot scoring state (core/snapshot.h): the metric-space points.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override {
    item_view_.Assign(item_);
    fitted_ = true;
  }
  void CollectParameters(core::ParameterSet* params) override;

  core::TrainConfig config_;
  math::Matrix user_, item_;
  math::ScoringView item_view_;
  bool fitted_ = false;
};

/// CML with tag Features (the paper's "CMLF" variant of Hsieh et al.):
/// the effective item point is v + mean of its tag embeddings, so items
/// sharing tags are pulled together in the metric space.
class Cmlf final : public core::Recommender, private core::Trainable {
 public:
  explicit Cmlf(core::TrainConfig config) : config_(config) {}

  Status Fit(const data::Dataset& dataset, const data::Split& split) override;
  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out,
                      eval::ScoreMode mode) const override;
  std::string name() const override { return "CMLF"; }

  // kRanking surrogate for ANN retrieval: -||p_u - fused item row||^2.
  eval::RankingSurrogateSpec RankingSurrogate() const override {
    eval::RankingSurrogateSpec spec;
    if (item_view_.empty()) return spec;
    spec.kind = eval::RankingSurrogateSpec::Kind::kNegSquaredEuclidean;
    spec.items = &item_view_;
    return spec;
  }
  math::ConstSpan RankingQuery(int user,
                               math::Vec* /*scratch*/) const override {
    return user_.Row(user);
  }

  // Snapshot scoring state (core/snapshot.h): the materialized effective
  // items — scoring never needs the tag lists back.
  void CollectScoringState(core::ParameterSet* state) override;
  Status FinalizeRestoredState() override;

 private:
  double TrainOnBatch(const core::BatchContext& ctx) override;
  void SyncScoringState() override;
  void CollectParameters(core::ParameterSet* params) override;

  /// Effective item embedding (free part + tag mean).
  math::Vec EffectiveItem(int item) const;

  core::TrainConfig config_;
  math::Matrix user_, item_, tag_;
  /// Materialized EffectiveItem() rows, rebuilt by SyncScoringState() so
  /// the batched scoring kernel can run over one contiguous matrix.
  math::Matrix effective_item_;
  math::ScoringView item_view_;
  const std::vector<std::vector<int>>* item_tags_ = nullptr;
  std::vector<std::vector<int>> item_tags_copy_;
  bool fitted_ = false;
};

}  // namespace logirec::baselines

#endif  // LOGIREC_BASELINES_CML_H_
