#include "baselines/hyperml.h"

#include "baselines/baseline_util.h"
#include "core/embedding.h"
#include "core/negative_sampler.h"
#include "hyper/poincare.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

Status HyperMl::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  core::InitPoincareRows(&user_, &rng, 0.05);
  core::InitPoincareRows(&item_, &rng, 0.05);

  core::NegativeSampler sampler(dataset.num_items, split.train);
  const double lr = config_.learning_rate;
  const double margin = config_.margin > 0.0 ? config_.margin : 0.3;
  const double distortion_weight = 0.05;

  math::Vec gu(d), gi(d), gj(d);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    auto pairs = ShuffledTrainPairs(split.train, &rng);
    for (const auto& [u, pos] : pairs) {
      const int neg = sampler.Sample(u, &rng);
      auto pu = user_.Row(u);
      auto qi = item_.Row(pos);
      auto qj = item_.Row(neg);
      math::Zero(math::Span(gu));
      math::Zero(math::Span(gi));
      math::Zero(math::Span(gj));

      const double dpos = hyper::PoincareDistance(pu, qi);
      const double dneg = hyper::PoincareDistance(pu, qj);
      bool any = false;
      if (margin + dpos - dneg > 0.0) {
        hyper::PoincareDistanceGrad(pu, qi, 1.0, math::Span(gu),
                                    math::Span(gi));
        hyper::PoincareDistanceGrad(pu, qj, -1.0, math::Span(gu),
                                    math::Span(gj));
        any = true;
      }
      // Distortion regularizer: keep the hyperbolic distance of positive
      // pairs commensurate with the Euclidean one (HyperML's "mapping"
      // term). Gradient of 0.5 * w * (d_P - d_E)^2.
      const double de = math::Distance(pu, qi);
      const double gap = dpos - de;
      if (distortion_weight > 0.0 && de > 1e-9) {
        hyper::PoincareDistanceGrad(pu, qi, distortion_weight * gap,
                                    math::Span(gu), math::Span(gi));
        for (int k = 0; k < d; ++k) {
          const double ge = distortion_weight * gap * (pu[k] - qi[k]) / de;
          gu[k] -= ge;
          gi[k] += ge;
        }
        any = true;
      }
      if (!any) continue;
      hyper::RsgdStepPoincare(pu, gu, lr);
      hyper::RsgdStepPoincare(qi, gi, lr);
      hyper::RsgdStepPoincare(qj, gj, lr);
    }
  }
  fitted_ = true;
  return Status::OK();
}

void HyperMl::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    (*out)[v] = -hyper::PoincareDistance(pu, item_.Row(v));
  }
}

}  // namespace logirec::baselines
