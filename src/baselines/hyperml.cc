#include "baselines/hyperml.h"

#include "core/embedding.h"
#include "hyper/poincare.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace logirec::baselines {

Status HyperMl::Fit(const data::Dataset& dataset, const data::Split& split) {
  const int d = config_.dim;
  Rng rng(config_.seed);
  user_ = math::Matrix(dataset.num_users, d);
  item_ = math::Matrix(dataset.num_items, d);
  core::InitPoincareRows(&user_, &rng, 0.05);
  core::InitPoincareRows(&item_, &rng, 0.05);

  core::Trainer trainer(config_);
  trainer.Train(this, split, dataset.num_items, &rng, this);
  return Status::OK();
}

double HyperMl::TrainOnBatch(const core::BatchContext& ctx) {
  const int d = config_.dim;
  const double lr = config_.learning_rate;
  const double margin = config_.margin > 0.0 ? config_.margin : 0.3;
  const double distortion_weight = 0.05;
  double loss = 0.0;

  // Local gradient scratch keeps TrainOnBatch free of shared mutable state
  // (shard-safe); the vectors are reused across all pairs in the batch.
  math::Vec grad_u(d), grad_i(d), grad_j(d);
  for (int i = ctx.begin; i < ctx.end; ++i) {
    const auto [u, pos] = ctx.pairs[i];
    const int neg = ctx.Negative(i);
    auto pu = user_.Row(u);
    auto qi = item_.Row(pos);
    auto qj = item_.Row(neg);
    math::Zero(math::Span(grad_u));
    math::Zero(math::Span(grad_i));
    math::Zero(math::Span(grad_j));

    const double dpos = hyper::PoincareDistance(pu, qi);
    const double dneg = hyper::PoincareDistance(pu, qj);
    bool any = false;
    const double hinge = margin + dpos - dneg;
    if (hinge > 0.0) {
      loss += hinge;
      hyper::PoincareDistanceGrad(pu, qi, 1.0, math::Span(grad_u),
                                  math::Span(grad_i));
      hyper::PoincareDistanceGrad(pu, qj, -1.0, math::Span(grad_u),
                                  math::Span(grad_j));
      any = true;
    }
    // Distortion regularizer: keep the hyperbolic distance of positive
    // pairs commensurate with the Euclidean one (HyperML's "mapping"
    // term). Gradient of 0.5 * w * (d_P - d_E)^2.
    const double de = math::Distance(pu, qi);
    const double gap = dpos - de;
    if (distortion_weight > 0.0 && de > 1e-9) {
      loss += 0.5 * distortion_weight * gap * gap;
      hyper::PoincareDistanceGrad(pu, qi, distortion_weight * gap,
                                  math::Span(grad_u), math::Span(grad_i));
      for (int k = 0; k < d; ++k) {
        const double ge = distortion_weight * gap * (pu[k] - qi[k]) / de;
        grad_u[k] -= ge;
        grad_i[k] += ge;
      }
      any = true;
    }
    if (!any) continue;
    hyper::RsgdStepPoincare(pu, grad_u, lr);
    hyper::RsgdStepPoincare(qi, grad_i, lr);
    hyper::RsgdStepPoincare(qj, grad_j, lr);
  }
  return loss;
}

void HyperMl::CollectParameters(core::ParameterSet* params) {
  params->Add(&user_);
  params->Add(&item_);
}

void HyperMl::CollectScoringState(core::ParameterSet* state) {
  state->Add(&user_);
  state->Add(&item_);
}

Status HyperMl::FinalizeRestoredState() {
  SyncScoringState();
  return Status::OK();
}

// Scalar reference scoring; the ranking hot path is ScoreItemsInto().
void HyperMl::ScoreItems(int user, std::vector<double>* out) const {
  LOGIREC_CHECK(fitted_);
  out->resize(item_.rows());
  auto pu = user_.Row(user);
  for (int v = 0; v < item_.rows(); ++v) {
    (*out)[v] = -hyper::PoincareDistance(pu, item_.Row(v));
  }
}

void HyperMl::ScoreItemsInto(int user, math::Span out,
                             eval::ScoreMode mode) const {
  LOGIREC_CHECK(fitted_);
  auto pu = user_.Row(user);
  if (mode == eval::ScoreMode::kRanking) {
    // acosh is monotone: ranking by -gamma equals ranking by -d_P.
    if (item_view_.empty()) {
      math::NegPoincareGammasInto(pu, item_, out);
    } else {
      math::NegPoincareGammasInto(pu, item_view_, out);
    }
  } else if (item_view_.empty()) {
    math::NegPoincareDistancesInto(pu, item_, out);
  } else {
    math::NegPoincareDistancesInto(pu, item_view_, out);
  }
}

}  // namespace logirec::baselines
