#ifndef LOGIREC_EVAL_EVALUATOR_H_
#define LOGIREC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "math/kernels.h"
#include "math/vec.h"

namespace logirec::eval {

/// What a ScoreItemsInto() caller needs from the scores.
enum class ScoreMode {
  /// Scores equal the model's canonical preference score (bit-identical
  /// to ScoreItems). Use for telemetry, serving responses, and tests.
  kExact,
  /// Scores may be any strictly increasing transform of the exact score
  /// (e.g. the Lorentz dot instead of -acosh(-dot)): Top-K order and all
  /// equal-score ties are preserved, but the values are not comparable
  /// across modes. This is the ranking hot path.
  kRanking,
};

/// Description of a scorer's kRanking surrogate space, for sublinear
/// retrieval (src/retrieval/). When `kind != kNone`, the scorer promises
/// that its kRanking scores are exactly
///
///   score(u, v) = Finish_kind(query(u), items.column v [, bias[v]])
///
/// where Finish_kind is the per-item reduction of the matching
/// math/kernels.h kernel (kDot -> DotsInto, kLorentzDot ->
/// LorentzDotsInto, ...). Every kind reduces to an *inner product in an
/// augmented space* (see retrieval/surrogate.h), which is what makes
/// hyperbolic top-k indexable by standard IVF / graph ANN structures.
struct RankingSurrogateSpec {
  enum class Kind {
    kNone,                 ///< no linear surrogate (e.g. NeuMF's MLP tower)
    kDot,                  ///< <q, v>
    kDotBias,              ///< <q, v> + bias[v]
    kNegSquaredEuclidean,  ///< -||q - v||^2
    kNegEuclidean,         ///< -||q - v||
    kLorentzDot,           ///< <q, v>_L (raw Lorentz inner product)
    kNegPoincareGamma,     ///< -gamma(q, v), d_P = acosh(gamma)
  };
  Kind kind = Kind::kNone;
  /// Column-major item catalog (with cached squared norms). Non-null and
  /// non-empty whenever kind != kNone.
  const math::ScoringView* items = nullptr;
  /// kDotBias only: per-item additive bias, items->items() entries.
  const double* bias = nullptr;
};

/// Serve-time exclusion predicate for retrieval (e.g. "the user has
/// already seen this item"). Called per *candidate*, not per catalog
/// item, so a virtual call is fine here.
class ItemFilter {
 public:
  virtual ~ItemFilter() = default;
  virtual bool Excluded(int item) const = 0;
};

/// Reusable per-thread scratch for Scorer::RetrieveInto and the retrieval
/// indexes behind it. All buffers keep their capacity across calls, so a
/// serving worker ranking many users steady-states allocation-free. The
/// fields are deliberately generic — each index repurposes them (IVF:
/// cell scores + candidate pairs; HNSW: beam heaps + epoch-stamped
/// visited marks).
struct RetrieveScratch {
  math::Vec scores;      ///< full-catalog scores (exact-scan fallback)
  math::Vec query;       ///< RankingQuery storage for computed queries
  math::Vec aug_query;   ///< augmented-space query
  std::vector<int> ids;  ///< candidate item ids
  std::vector<int> topk; ///< TopKInto candidate scratch
  std::vector<std::pair<double, int>> heap_a;  ///< (score, id) working sets
  std::vector<std::pair<double, int>> heap_b;
  std::vector<uint32_t> marks;  ///< epoch-stamped visited flags
  uint32_t mark_epoch = 0;
  math::VecF scores_f;  ///< compact-path full-catalog scores (f32/int8)
  math::VecF query_f;   ///< compact-path narrowed query
};

class Scorer;

/// Candidate generation + exact rerank behind Scorer::RetrieveInto,
/// implemented by the ANN indexes in src/retrieval/. Kept abstract here
/// so eval does not depend on the retrieval library.
class CandidateRetriever {
 public:
  virtual ~CandidateRetriever() = default;

  /// Fills `out` with the top-k items for `user` (best first), excluding
  /// filtered items. `min_candidates` is the breadth floor the caller
  /// needs (typically k + the user's filtered-item count) — the index
  /// widens its probe until it reaches it or the catalog is exhausted.
  /// The contract (see DESIGN.md §2h): candidate scores are bit-identical
  /// to the scorer's kRanking scan, so whenever the candidate set covers
  /// the true top-k the result equals the exact full scan exactly.
  virtual void RetrieveTopK(const Scorer& scorer, int user, int k,
                            int min_candidates, const ItemFilter* filter,
                            RetrieveScratch* scratch,
                            std::vector<int>* out) const = 0;

  /// Bytes of resident index state (coordinate slabs, adjacency,
  /// centroids), for serving telemetry. 0 when the index does not track
  /// it.
  virtual size_t ResidentBytes() const { return 0; }
};

/// Scoring interface the evaluator consumes. Higher score = better item.
/// Implemented by every recommender in this repository.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Writes a preference score for every item (out.size() == num_items).
  virtual void ScoreItems(int user, std::vector<double>* out) const = 0;

  /// Batched scoring into a caller-owned buffer (out.size() == num_items).
  /// In-tree models override this with allocation-free kernel passes
  /// (math/kernels.h); the default bridges to ScoreItems() so out-of-tree
  /// scorers keep working unchanged (the bridge allocates and always
  /// returns exact scores, which is valid in either mode).
  virtual void ScoreItemsInto(int user, math::Span out, ScoreMode mode) const;

  /// Describes this scorer's kRanking surrogate space so an ANN index can
  /// be built over it. The default (kind == kNone) opts out: retrieval
  /// falls back to the exact scan. Only valid once the model is
  /// scoring-ready (after Fit() or snapshot restore).
  virtual RankingSurrogateSpec RankingSurrogate() const { return {}; }

  /// The user-side query vector of the surrogate space. Models whose
  /// query is a plain embedding row return a view into their state;
  /// models with a computed query (e.g. TransC's u + r translation) fill
  /// `*scratch` and return a view into it.
  virtual math::ConstSpan RankingQuery(int user, math::Vec* scratch) const {
    (void)user;
    (void)scratch;
    return {};
  }

  /// Attaches a retrieval index built over this scorer's surrogate space
  /// (serve::ServableModel does this at snapshot-restore time). Non-owning;
  /// the retriever must outlive the scorer or be detached (nullptr).
  void AttachRetriever(const CandidateRetriever* retriever) {
    retriever_ = retriever;
  }
  const CandidateRetriever* retriever() const { return retriever_; }

  /// Sublinear top-k entry point: with a retriever attached, candidates
  /// come from the ANN index and are exactly reranked (bit-identical to
  /// the kRanking scan); without one this is the exact O(items) scan.
  /// Either way `out` holds at most k unfiltered item ids, best first,
  /// with the TopKInto tie-break (descending score, ascending id).
  /// `min_candidates` (default: k) lets callers that filter widen the
  /// index probe, e.g. k + the user's seen-item count.
  void RetrieveInto(int user, int k, const ItemFilter* filter,
                    RetrieveScratch* scratch, std::vector<int>* out,
                    int min_candidates = 0) const;

 private:
  const CandidateRetriever* retriever_ = nullptr;
};

/// Aggregate metrics across users, plus per-user vectors for significance
/// testing.
struct EvalResult {
  /// Keyed by "Recall@10", "NDCG@20", ... — mean over evaluated users, as
  /// a percentage (matching the paper's tables).
  std::map<std::string, double> mean;
  /// Per-user values (same keys), for the Wilcoxon test.
  std::map<std::string, std::vector<double>> per_user;
  int users_evaluated = 0;

  double Get(const std::string& key) const;
};

/// Full (unsampled) ranking evaluation: for each user with a non-empty
/// test set, score all items, mask the user's training and validation
/// items, and compute Recall@K / NDCG@K over the remainder.
class Evaluator {
 public:
  /// `ks` lists the cutoffs (default {10, 20} as in the paper).
  Evaluator(const data::Split* split, int num_items,
            std::vector<int> ks = {10, 20});

  /// Evaluates on the test fold (or the validation fold when
  /// `use_validation` — used for model selection during training).
  EvalResult Evaluate(const Scorer& scorer, bool use_validation = false) const;

 private:
  const data::Split* split_;
  int num_items_;
  std::vector<int> ks_;
};

}  // namespace logirec::eval

#endif  // LOGIREC_EVAL_EVALUATOR_H_
