#ifndef LOGIREC_EVAL_EVALUATOR_H_
#define LOGIREC_EVAL_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "math/vec.h"

namespace logirec::eval {

/// What a ScoreItemsInto() caller needs from the scores.
enum class ScoreMode {
  /// Scores equal the model's canonical preference score (bit-identical
  /// to ScoreItems). Use for telemetry, serving responses, and tests.
  kExact,
  /// Scores may be any strictly increasing transform of the exact score
  /// (e.g. the Lorentz dot instead of -acosh(-dot)): Top-K order and all
  /// equal-score ties are preserved, but the values are not comparable
  /// across modes. This is the ranking hot path.
  kRanking,
};

/// Scoring interface the evaluator consumes. Higher score = better item.
/// Implemented by every recommender in this repository.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Writes a preference score for every item (out.size() == num_items).
  virtual void ScoreItems(int user, std::vector<double>* out) const = 0;

  /// Batched scoring into a caller-owned buffer (out.size() == num_items).
  /// In-tree models override this with allocation-free kernel passes
  /// (math/kernels.h); the default bridges to ScoreItems() so out-of-tree
  /// scorers keep working unchanged (the bridge allocates and always
  /// returns exact scores, which is valid in either mode).
  virtual void ScoreItemsInto(int user, math::Span out, ScoreMode mode) const;
};

/// Aggregate metrics across users, plus per-user vectors for significance
/// testing.
struct EvalResult {
  /// Keyed by "Recall@10", "NDCG@20", ... — mean over evaluated users, as
  /// a percentage (matching the paper's tables).
  std::map<std::string, double> mean;
  /// Per-user values (same keys), for the Wilcoxon test.
  std::map<std::string, std::vector<double>> per_user;
  int users_evaluated = 0;

  double Get(const std::string& key) const;
};

/// Full (unsampled) ranking evaluation: for each user with a non-empty
/// test set, score all items, mask the user's training and validation
/// items, and compute Recall@K / NDCG@K over the remainder.
class Evaluator {
 public:
  /// `ks` lists the cutoffs (default {10, 20} as in the paper).
  Evaluator(const data::Split* split, int num_items,
            std::vector<int> ks = {10, 20});

  /// Evaluates on the test fold (or the validation fold when
  /// `use_validation` — used for model selection during training).
  EvalResult Evaluate(const Scorer& scorer, bool use_validation = false) const;

 private:
  const data::Split* split_;
  int num_items_;
  std::vector<int> ks_;
};

}  // namespace logirec::eval

#endif  // LOGIREC_EVAL_EVALUATOR_H_
