#ifndef LOGIREC_EVAL_SIGNIFICANCE_H_
#define LOGIREC_EVAL_SIGNIFICANCE_H_

#include <vector>

namespace logirec::eval {

/// Result of a paired Wilcoxon signed-rank test.
struct WilcoxonResult {
  double w_statistic = 0.0;  ///< sum of positive-difference ranks
  double z_score = 0.0;      ///< normal approximation
  double p_value = 1.0;      ///< two-sided
  int n_effective = 0;       ///< pairs with non-zero difference
};

/// Paired two-sided Wilcoxon signed-rank test between per-user metric
/// vectors `a` and `b` (same users, same order). Uses the normal
/// approximation with tie correction — the paper cites Woolson (2007).
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace logirec::eval

#endif  // LOGIREC_EVAL_SIGNIFICANCE_H_
