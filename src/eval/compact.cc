#include "eval/compact.h"

#include <algorithm>
#include <cmath>

#include "hyper/poincare.h"
#include "util/logging.h"

namespace logirec::eval {

using Kind = RankingSurrogateSpec::Kind;

const char* ScorePrecisionName(ScorePrecision precision) {
  switch (precision) {
    case ScorePrecision::kF64: return "f64";
    case ScorePrecision::kF32: return "f32";
    case ScorePrecision::kInt8: return "int8";
  }
  return "unknown";
}

bool ParseScorePrecision(const std::string& text, ScorePrecision* out) {
  if (text == "f64") {
    *out = ScorePrecision::kF64;
  } else if (text == "f32") {
    *out = ScorePrecision::kF32;
  } else if (text == "int8") {
    *out = ScorePrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

Status CompactCatalog::Build(const RankingSurrogateSpec& spec,
                             ScorePrecision precision) {
  if (precision == ScorePrecision::kF64) {
    return Status::InvalidArgument(
        "CompactCatalog: precision f64 is the native path; nothing to build");
  }
  if (spec.kind == Kind::kNone || spec.items == nullptr ||
      spec.items->empty()) {
    return Status::FailedPrecondition(
        "CompactCatalog: scorer has no linear ranking surrogate "
        "(kind=none); compact serving requires one");
  }
  kind_ = spec.kind;
  precision_ = precision;
  items_ = spec.items->items();
  dim_ = spec.items->dim();
  if (precision == ScorePrecision::kF32) {
    view_f_.Assign(*spec.items);
    catalog_i8_ = math::Int8Catalog();
  } else {
    catalog_i8_.Assign(*spec.items);
    view_f_ = math::ScoringViewF();
  }
  bias_.clear();
  if (kind_ == Kind::kDotBias) {
    LOGIREC_CHECK(spec.bias != nullptr);
    bias_.resize(items_);
    for (int v = 0; v < items_; ++v) bias_[v] = static_cast<float>(spec.bias[v]);
  }
  return Status::OK();
}

size_t CompactCatalog::ResidentBytes() const {
  size_t bytes = bias_.size() * sizeof(float);
  if (precision_ == ScorePrecision::kF32) {
    bytes += view_f_.ResidentBytes();
  } else {
    bytes += catalog_i8_.ResidentBytes();
  }
  return bytes;
}

void CompactCatalog::NarrowQuery(math::ConstSpan query, math::VecF* out) {
  out->resize(query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    (*out)[i] = static_cast<float>(query[i]);
  }
}

namespace {

/// Shared dispatch over the two compact slab types (identical kernel
/// names, different catalogs).
template <typename Catalog>
void CompactScanIntoImpl(Kind kind, math::ConstSpanF query,
                         const Catalog& items, const float* bias,
                         math::SpanF out) {
  switch (kind) {
    case Kind::kDot:
      math::DotsInto(query, items, out);
      break;
    case Kind::kDotBias:
      LOGIREC_CHECK(bias != nullptr);
      math::DotsInto(query, items, out);
      for (size_t v = 0; v < out.size(); ++v) out[v] += bias[v];
      break;
    case Kind::kNegSquaredEuclidean:
      math::NegSquaredEuclideanDistancesInto(query, items, out);
      break;
    case Kind::kNegEuclidean:
      math::NegEuclideanDistancesInto(query, items, out);
      break;
    case Kind::kLorentzDot:
      math::LorentzDotsInto(query, items, out);
      break;
    case Kind::kNegPoincareGamma:
      math::NegPoincareGammasInto(query, items, out);
      break;
    case Kind::kNone:
      LOGIREC_CHECK(false);
  }
}

}  // namespace

void CompactScanInto(Kind kind, math::ConstSpanF query,
                     const math::ScoringViewF& items, const float* bias,
                     math::SpanF out) {
  CompactScanIntoImpl(kind, query, items, bias, out);
}

void CompactScanInto(Kind kind, math::ConstSpanF query,
                     const math::Int8Catalog& items, const float* bias,
                     math::SpanF out) {
  CompactScanIntoImpl(kind, query, items, bias, out);
}

void CompactCatalog::ScoreInto(math::ConstSpanF query, math::SpanF out) const {
  LOGIREC_CHECK(built());
  const float* bias = bias_.empty() ? nullptr : bias_.data();
  if (precision_ == ScorePrecision::kF32) {
    CompactScanIntoImpl(kind_, query, view_f_, bias, out);
  } else {
    CompactScanIntoImpl(kind_, query, catalog_i8_, bias, out);
  }
}

namespace {

/// Per-item f32 dot in the kernels' ascending-k order (the grouped column
/// passes reduce each item as one serial ascending-k chain, so this
/// scalar loop reproduces the scan bit-for-bit).
inline float SubsetDot(const float* q, const math::ScoringViewF& view, int v,
                       float sign0) {
  float t = (sign0 * q[0]) * view.Col(0)[v];
  const int d = view.dim();
  for (int k = 1; k < d; ++k) t += q[k] * view.Col(k)[v];
  return t;
}

inline float SubsetSquaredDiff(const float* q, const math::ScoringViewF& view,
                               int v) {
  float diff = q[0] - view.Col(0)[v];
  float t = diff * diff;
  const int d = view.dim();
  for (int k = 1; k < d; ++k) {
    diff = q[k] - view.Col(k)[v];
    t += diff * diff;
  }
  return t;
}

inline float SubsetCodeDot(const float* q, const math::Int8Catalog& cat, int v,
                           float sign0) {
  float t = (sign0 * q[0]) * static_cast<float>(cat.Col(0)[v]);
  const int d = cat.dim();
  for (int k = 1; k < d; ++k) t += q[k] * static_cast<float>(cat.Col(k)[v]);
  return t;
}

/// The int8 squared-distance factorization, identical expression (and
/// zero clamp) to RawDotsToSquaredDistances in math/compact.cc.
inline float SubsetCodeSquaredDistance(float unorm,
                                       const math::Int8Catalog& cat, int v,
                                       float raw) {
  const float d2 = unorm - 2.0f * cat.Scales()[v] * raw + cat.NormsSq()[v];
  return d2 > 0.0f ? d2 : 0.0f;
}

inline float GammaOf(float alpha, float beta_arg, float dist_sq) {
  const float beta = std::max(beta_arg, static_cast<float>(hyper::kBallEps));
  return 1.0f + 2.0f * dist_sq / (alpha * beta);
}

}  // namespace

void CompactCatalog::ScoreSubset(math::ConstSpanF query,
                                 std::span<const int> ids,
                                 math::SpanF out) const {
  LOGIREC_CHECK(built());
  LOGIREC_CHECK(ids.size() == out.size());
  LOGIREC_CHECK(static_cast<int>(query.size()) == dim_);
  const float* q = query.data();
  if (precision_ == ScorePrecision::kF32) {
    switch (kind_) {
      case Kind::kDot:
        for (size_t i = 0; i < ids.size(); ++i)
          out[i] = SubsetDot(q, view_f_, ids[i], 1.0f);
        break;
      case Kind::kDotBias:
        for (size_t i = 0; i < ids.size(); ++i)
          out[i] = SubsetDot(q, view_f_, ids[i], 1.0f) + bias_[ids[i]];
        break;
      case Kind::kNegSquaredEuclidean:
        for (size_t i = 0; i < ids.size(); ++i)
          out[i] = -SubsetSquaredDiff(q, view_f_, ids[i]);
        break;
      case Kind::kNegEuclidean:
        for (size_t i = 0; i < ids.size(); ++i)
          out[i] = -std::sqrt(SubsetSquaredDiff(q, view_f_, ids[i]));
        break;
      case Kind::kLorentzDot:
        for (size_t i = 0; i < ids.size(); ++i)
          out[i] = SubsetDot(q, view_f_, ids[i], -1.0f);
        break;
      case Kind::kNegPoincareGamma: {
        const float alpha = std::max(1.0f - math::SquaredNormF(query),
                                     static_cast<float>(hyper::kBallEps));
        for (size_t i = 0; i < ids.size(); ++i) {
          const int v = ids[i];
          out[i] = -GammaOf(alpha, 1.0f - view_f_.NormsSq()[v],
                            SubsetSquaredDiff(q, view_f_, v));
        }
        break;
      }
      case Kind::kNone:
        LOGIREC_CHECK(false);
    }
    return;
  }
  switch (kind_) {
    case Kind::kDot:
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        out[i] = catalog_i8_.Scales()[v] * SubsetCodeDot(q, catalog_i8_, v, 1.0f);
      }
      break;
    case Kind::kDotBias:
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        out[i] =
            catalog_i8_.Scales()[v] * SubsetCodeDot(q, catalog_i8_, v, 1.0f) +
            bias_[v];
      }
      break;
    case Kind::kNegSquaredEuclidean: {
      const float unorm = math::SquaredNormF(query);
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        out[i] = -SubsetCodeSquaredDistance(
            unorm, catalog_i8_, v, SubsetCodeDot(q, catalog_i8_, v, 1.0f));
      }
      break;
    }
    case Kind::kNegEuclidean: {
      const float unorm = math::SquaredNormF(query);
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        out[i] = -std::sqrt(SubsetCodeSquaredDistance(
            unorm, catalog_i8_, v, SubsetCodeDot(q, catalog_i8_, v, 1.0f)));
      }
      break;
    }
    case Kind::kLorentzDot:
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        out[i] =
            catalog_i8_.Scales()[v] * SubsetCodeDot(q, catalog_i8_, v, -1.0f);
      }
      break;
    case Kind::kNegPoincareGamma: {
      const float unorm = math::SquaredNormF(query);
      const float alpha =
          std::max(1.0f - unorm, static_cast<float>(hyper::kBallEps));
      for (size_t i = 0; i < ids.size(); ++i) {
        const int v = ids[i];
        out[i] = -GammaOf(alpha, 1.0f - catalog_i8_.NormsSq()[v],
                          SubsetCodeSquaredDistance(
                              unorm, catalog_i8_, v,
                              SubsetCodeDot(q, catalog_i8_, v, 1.0f)));
      }
      break;
    }
    case Kind::kNone:
      LOGIREC_CHECK(false);
  }
}

void CompactScorer::ScoreItems(int user, std::vector<double>* out) const {
  out->resize(catalog_->items());
  ScoreItemsInto(user, math::Span(out->data(), out->size()), ScoreMode::kExact);
}

void CompactScorer::ScoreItemsInto(int user, math::Span out,
                                   ScoreMode mode) const {
  (void)mode;  // compact scores are the surrogate in both modes
  math::Vec query_scratch;
  const math::ConstSpan query = base_->RankingQuery(user, &query_scratch);
  LOGIREC_CHECK(!query.empty());
  math::VecF query_f;
  CompactCatalog::NarrowQuery(query, &query_f);
  math::VecF scores_f(out.size());
  catalog_->ScoreInto(math::ConstSpanF(query_f.data(), query_f.size()),
                      math::SpanF(scores_f.data(), scores_f.size()));
  for (size_t v = 0; v < out.size(); ++v) out[v] = scores_f[v];
}

}  // namespace logirec::eval
