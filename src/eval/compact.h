#ifndef LOGIREC_EVAL_COMPACT_H_
#define LOGIREC_EVAL_COMPACT_H_

#include <span>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "math/compact.h"
#include "math/kernels.h"
#include "math/vec.h"
#include "util/status.h"

namespace logirec::eval {

/// Serving-side scoring precision. Training and evaluation default to
/// kF64, the bit-identical path; kF32 and kInt8 are compact serving
/// variants whose rankings are tolerance-gated against the f64 oracle
/// (DESIGN.md §2i) and deterministic per precision.
enum class ScorePrecision {
  kF64,   ///< double coordinates (the bit-identity contract)
  kF32,   ///< float coordinates, 8 AVX2 lanes per register
  kInt8,  ///< int8 codes + per-item f32 scales, dequantized in-kernel
};

/// Stable lowercase name: "f64", "f32", "int8".
const char* ScorePrecisionName(ScorePrecision precision);

/// Parses "f64" / "f32" / "int8". Returns false on anything else.
bool ParseScorePrecision(const std::string& text, ScorePrecision* out);

/// Compact full-scan dispatch: scores every item of a compact catalog
/// slab (a ScoringViewF or an Int8Catalog — e.g. one IVF cell) with the
/// kRanking surrogate for `kind`. `bias` may be null except for kDotBias
/// (one float per item of this slab). These are the compact counterparts
/// of retrieval::SurrogateScanInto.
void CompactScanInto(RankingSurrogateSpec::Kind kind, math::ConstSpanF query,
                     const math::ScoringViewF& items, const float* bias,
                     math::SpanF out);
void CompactScanInto(RankingSurrogateSpec::Kind kind, math::ConstSpanF query,
                     const math::Int8Catalog& items, const float* bias,
                     math::SpanF out);

/// Compact clone of a scorer's kRanking surrogate catalog: the item side
/// of a RankingSurrogateSpec re-encoded as float columns (kF32) or int8
/// codes with per-item scales (kInt8), plus a narrowed copy of the
/// per-item bias when the surrogate has one.
///
/// Scores are the same surrogate family as the f64 kRanking scan — only
/// the arithmetic precision differs — so Top-K order agrees with the f64
/// oracle up to rounding-induced flips of near-tied items (the measured
/// NDCG/Recall delta the scale bench gates on). ScoreInto and ScoreSubset
/// accumulate each item in the identical ascending-k order, so subset
/// rerank is bit-identical to the full compact scan, and both are
/// bit-identical run-to-run at any thread count.
class CompactCatalog {
 public:
  CompactCatalog() = default;

  /// Re-encodes `spec` at `precision`. Fails with kFailedPrecondition when
  /// the scorer has no linear surrogate (spec.kind == kNone) — models
  /// like NeuMF cannot be served compactly — or kInvalidArgument for
  /// precision kF64 (the f64 path serves straight from the model).
  Status Build(const RankingSurrogateSpec& spec, ScorePrecision precision);

  bool built() const { return kind_ != RankingSurrogateSpec::Kind::kNone; }
  ScorePrecision precision() const { return precision_; }
  RankingSurrogateSpec::Kind kind() const { return kind_; }
  int items() const { return items_; }
  int dim() const { return dim_; }

  /// Bytes resident in the compact catalog (codes/columns + norms +
  /// scales + bias).
  size_t ResidentBytes() const;

  /// Narrows a f64 ranking query into `*out` (resized to query.size()).
  static void NarrowQuery(math::ConstSpan query, math::VecF* out);

  /// Full-catalog compact scan: out[v] = surrogate score of item v
  /// (out.size() == items()).
  void ScoreInto(math::ConstSpanF query, math::SpanF out) const;

  /// Gathered rerank: out[i] = surrogate score of ids[i], bit-identical
  /// to the corresponding ScoreInto entries.
  void ScoreSubset(math::ConstSpanF query, std::span<const int> ids,
                   math::SpanF out) const;

 private:
  RankingSurrogateSpec::Kind kind_ = RankingSurrogateSpec::Kind::kNone;
  ScorePrecision precision_ = ScorePrecision::kF32;
  int items_ = 0;
  int dim_ = 0;
  math::ScoringViewF view_f_;    // kF32
  math::Int8Catalog catalog_i8_; // kInt8
  math::VecF bias_;              // kDotBias only
};

/// Scorer adapter that routes ScoreItemsInto through a CompactCatalog,
/// so the standard Evaluator can measure compact-precision NDCG/Recall
/// against the f64 oracle with zero bespoke metric code. The base scorer
/// supplies the per-user ranking query; scores are widened back to
/// double for the evaluator. Allocates per call — this is an evaluation
/// harness, not the serving hot path (serve::ServableModel drives the
/// catalog directly with reusable scratch).
class CompactScorer : public Scorer {
 public:
  CompactScorer(const Scorer* base, const CompactCatalog* catalog)
      : base_(base), catalog_(catalog) {}

  void ScoreItems(int user, std::vector<double>* out) const override;
  void ScoreItemsInto(int user, math::Span out, ScoreMode mode) const override;

 private:
  const Scorer* base_;
  const CompactCatalog* catalog_;
};

}  // namespace logirec::eval

#endif  // LOGIREC_EVAL_COMPACT_H_
