#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace logirec::eval {
namespace {

/// Standard normal survival function via erfc.
double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  LOGIREC_CHECK(a.size() == b.size());
  struct Diff {
    double abs;
    int sign;
  };
  std::vector<Diff> diffs;
  diffs.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back({std::fabs(d), d > 0 ? 1 : -1});
  }
  WilcoxonResult result;
  result.n_effective = static_cast<int>(diffs.size());
  if (diffs.size() < 5) return result;  // too few pairs; report p=1

  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& x, const Diff& y) { return x.abs < y.abs; });

  // Average ranks with tie correction.
  const size_t n = diffs.size();
  std::vector<double> ranks(n);
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && diffs[j + 1].abs == diffs[i].abs) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) tie_correction += t * t * t - t;
    for (size_t k = i; k <= j; ++k) ranks[k] = avg;
    i = j + 1;
  }

  double w_plus = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (diffs[k].sign > 0) w_plus += ranks[k];
  }
  result.w_statistic = w_plus;

  const double nn = static_cast<double>(n);
  const double mean = nn * (nn + 1.0) / 4.0;
  double var = nn * (nn + 1.0) * (2.0 * nn + 1.0) / 24.0;
  var -= tie_correction / 48.0;
  if (var <= 0.0) return result;
  result.z_score = (w_plus - mean) / std::sqrt(var);
  result.p_value = 2.0 * NormalSf(std::fabs(result.z_score));
  result.p_value = std::min(result.p_value, 1.0);
  return result;
}

}  // namespace logirec::eval
