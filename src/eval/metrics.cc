#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

namespace logirec::eval {

double RecallAtK(const std::vector<int>& ranked,
                 const std::vector<int>& truth, int k) {
  if (truth.empty()) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  int hits = 0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double NdcgAtK(const std::vector<int>& ranked, const std::vector<int>& truth,
               int k) {
  if (truth.empty()) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  double dcg = 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) dcg += 1.0 / std::log2(i + 2.0);
  }
  double idcg = 0.0;
  const int ideal = std::min<int>(k, static_cast<int>(truth.size()));
  for (int i = 0; i < ideal; ++i) idcg += 1.0 / std::log2(i + 2.0);
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<int>& ranked,
                    const std::vector<int>& truth, int k) {
  if (truth.empty() || k <= 0) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  int hits = 0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / k;
}

double HitRateAtK(const std::vector<int>& ranked,
                  const std::vector<int>& truth, int k) {
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) return 1.0;
  }
  return 0.0;
}

double Mrr(const std::vector<int>& ranked, const std::vector<int>& truth) {
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (truth_set.count(ranked[i])) return 1.0 / (i + 1.0);
  }
  return 0.0;
}

double ApAtK(const std::vector<int>& ranked, const std::vector<int>& truth,
             int k) {
  if (truth.empty() || k <= 0) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  double sum = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) {
      ++hits;
      sum += static_cast<double>(hits) / (i + 1.0);
    }
  }
  const int denom = std::min<int>(k, static_cast<int>(truth.size()));
  return denom > 0 ? sum / denom : 0.0;
}

std::vector<int> TopK(const std::vector<double>& scores, int k) {
  using Entry = std::pair<double, int>;  // (score, item); min-heap by score
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break: larger id evicted
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    if (scores[i] == neg_inf) continue;
    if (static_cast<int>(heap.size()) < k) {
      heap.push({scores[i], i});
    } else if (!heap.empty() && cmp({scores[i], i}, heap.top())) {
      heap.pop();
      heap.push({scores[i], i});
    }
  }
  std::vector<int> out(heap.size());
  for (int i = static_cast<int>(heap.size()) - 1; i >= 0; --i) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

}  // namespace logirec::eval
