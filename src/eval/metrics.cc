#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace logirec::eval {

double RecallAtK(const std::vector<int>& ranked,
                 const std::vector<int>& truth, int k) {
  if (truth.empty()) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  int hits = 0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double NdcgAtK(const std::vector<int>& ranked, const std::vector<int>& truth,
               int k) {
  if (truth.empty()) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  double dcg = 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) dcg += 1.0 / std::log2(i + 2.0);
  }
  double idcg = 0.0;
  const int ideal = std::min<int>(k, static_cast<int>(truth.size()));
  for (int i = 0; i < ideal; ++i) idcg += 1.0 / std::log2(i + 2.0);
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<int>& ranked,
                    const std::vector<int>& truth, int k) {
  if (truth.empty() || k <= 0) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  int hits = 0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / k;
}

double HitRateAtK(const std::vector<int>& ranked,
                  const std::vector<int>& truth, int k) {
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) return 1.0;
  }
  return 0.0;
}

double Mrr(const std::vector<int>& ranked, const std::vector<int>& truth) {
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (truth_set.count(ranked[i])) return 1.0 / (i + 1.0);
  }
  return 0.0;
}

double ApAtK(const std::vector<int>& ranked, const std::vector<int>& truth,
             int k) {
  if (truth.empty() || k <= 0) return 0.0;
  std::unordered_set<int> truth_set(truth.begin(), truth.end());
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  double sum = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (truth_set.count(ranked[i])) {
      ++hits;
      sum += static_cast<double>(hits) / (i + 1.0);
    }
  }
  const int denom = std::min<int>(k, static_cast<int>(truth.size()));
  return denom > 0 ? sum / denom : 0.0;
}

namespace {

template <typename T>
void TopKIntoImpl(std::span<const T> scores, int k, std::vector<int>* scratch,
                  std::vector<int>* out) {
  out->clear();
  if (k <= 0) return;
  const T neg_inf = -std::numeric_limits<T>::infinity();
  const int n = static_cast<int>(scores.size());
  // Fast path for k << n: one threshold scan over the raw scores, keeping
  // the running top-k id list (best first) in `scratch`. Almost every item
  // fails the single comparison against the current k-th best, so the scan
  // costs ~1 compare/item with no candidate materialization; insertions
  // are rare and O(k). Implements the exact strict total order of the
  // sort-based paths below (descending score, ascending id on ties), so
  // every path returns the identical prefix.
  if (static_cast<long>(k) * 8 < n) {
    scratch->resize(k);
    int* top = scratch->data();
    int size = 0;
    T worst{0};  // k-th best score/id, valid once size == k
    int worst_id = -1;
    for (int i = 0; i < n; ++i) {
      const T s = scores[i];
      if (size == k) {
        if (s < worst || (s == worst && i > worst_id)) continue;
      }
      if (s == neg_inf) continue;
      int pos = size == k ? k - 1 : size;
      while (pos > 0) {
        const int above = top[pos - 1];
        if (scores[above] > s || (scores[above] == s && above < i)) break;
        top[pos] = above;
        --pos;
      }
      top[pos] = i;
      if (size < k) ++size;
      worst = scores[top[size - 1]];
      worst_id = top[size - 1];
    }
    out->assign(scratch->begin(), scratch->begin() + size);
    return;
  }
  scratch->clear();
  for (int i = 0; i < n; ++i) {
    if (scores[i] != neg_inf) scratch->push_back(i);
  }
  // Total order: descending score, ascending item id at equal score — the
  // same ranking the original heap-based TopK produced.
  auto better = [&scores](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  const int m = static_cast<int>(scratch->size());
  const int take = std::min(k, m);
  // `better` is a strict total order, so every branch below yields the
  // same ranked prefix. partial_sort keeps a k-element heap and rejects
  // most candidates with one comparison — faster than nth_element's
  // partitioning when k << m, slower when k is a large fraction of m.
  if (take == m) {
    std::sort(scratch->begin(), scratch->end(), better);
  } else if (static_cast<long>(take) * 8 < m) {
    std::partial_sort(scratch->begin(), scratch->begin() + take,
                      scratch->end(), better);
  } else {
    std::nth_element(scratch->begin(), scratch->begin() + take,
                     scratch->end(), better);
    std::sort(scratch->begin(), scratch->begin() + take, better);
  }
  out->assign(scratch->begin(), scratch->begin() + take);
}

}  // namespace

void TopKInto(math::ConstSpan scores, int k, std::vector<int>* scratch,
              std::vector<int>* out) {
  TopKIntoImpl<double>(scores, k, scratch, out);
}

void TopKInto(math::ConstSpanF scores, int k, std::vector<int>* scratch,
              std::vector<int>* out) {
  TopKIntoImpl<float>(scores, k, scratch, out);
}

std::vector<int> TopK(const std::vector<double>& scores, int k) {
  std::vector<int> scratch, out;
  TopKInto(math::ConstSpan(scores.data(), scores.size()), k, &scratch, &out);
  return out;
}

}  // namespace logirec::eval
