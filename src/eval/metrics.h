#ifndef LOGIREC_EVAL_METRICS_H_
#define LOGIREC_EVAL_METRICS_H_

#include <vector>

#include "math/vec.h"

namespace logirec::eval {

/// Recall@K for one user: |top-K hits| / |ground truth|.
/// `ranked` is the recommended list (best first, already truncated or not);
/// `truth` is the user's held-out items.
double RecallAtK(const std::vector<int>& ranked,
                 const std::vector<int>& truth, int k);

/// NDCG@K for one user with binary relevance:
///   DCG  = sum_{pos p of hits, p < k} 1 / log2(p + 2)
///   IDCG = sum_{p=0}^{min(k,|truth|)-1} 1 / log2(p + 2).
double NdcgAtK(const std::vector<int>& ranked, const std::vector<int>& truth,
               int k);

/// Precision@K: |top-K hits| / K.
double PrecisionAtK(const std::vector<int>& ranked,
                    const std::vector<int>& truth, int k);

/// Hit-rate@K: 1 if any truth item appears in the top K, else 0.
double HitRateAtK(const std::vector<int>& ranked,
                  const std::vector<int>& truth, int k);

/// Mean reciprocal rank of the first hit (0 when no hit), over the whole
/// ranked list.
double Mrr(const std::vector<int>& ranked, const std::vector<int>& truth);

/// Average precision at K (AP@K), normalized by min(K, |truth|).
double ApAtK(const std::vector<int>& ranked, const std::vector<int>& truth,
             int k);

/// Returns the indices of the `k` largest scores, best first. Items whose
/// score is -infinity are never returned. Deterministic tie-break: at
/// equal score the smaller item id ranks first.
std::vector<int> TopK(const std::vector<double>& scores, int k);

/// Allocation-free Top-K: selects into `*out` (resized to at most `k`)
/// using `*scratch` as candidate storage. Both vectors retain their
/// capacity across calls, so a caller ranking many users reuses the same
/// buffers. Selection is nth_element + partial sort — O(n + k log k)
/// instead of the heap's O(n log k) — with the same results and
/// deterministic tie-break as TopK().
void TopKInto(math::ConstSpan scores, int k, std::vector<int>* scratch,
              std::vector<int>* out);

/// Float overload for the compact (f32/int8) scoring path: identical
/// selection logic and the identical tie-break contract. Note that f32
/// rounding can create equal scores where the f64 path has none — the
/// ascending-id tie-break keeps the result deterministic either way.
void TopKInto(math::ConstSpanF scores, int k, std::vector<int>* scratch,
              std::vector<int>* out);

}  // namespace logirec::eval

#endif  // LOGIREC_EVAL_METRICS_H_
