#include "eval/evaluator.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace logirec::eval {

double EvalResult::Get(const std::string& key) const {
  auto it = mean.find(key);
  LOGIREC_CHECK_MSG(it != mean.end(), "missing metric " + key);
  return it->second;
}

Evaluator::Evaluator(const data::Split* split, int num_items,
                     std::vector<int> ks)
    : split_(split), num_items_(num_items), ks_(std::move(ks)) {
  LOGIREC_CHECK(!ks_.empty());
}

EvalResult Evaluator::Evaluate(const Scorer& scorer,
                               bool use_validation) const {
  const int num_users = static_cast<int>(split_->train.size());
  const int max_k = *std::max_element(ks_.begin(), ks_.end());
  const double neg_inf = -std::numeric_limits<double>::infinity();

  // Per-user metric rows (kept in user order, empty-test users skipped).
  struct Row {
    int user;
    std::vector<double> values;  // ks_ x {recall, ndcg}
  };
  std::vector<Row> rows(num_users);
  std::vector<char> active(num_users, 0);

  ParallelFor(0, num_users, [&](int u) {
    const std::vector<int>& truth =
        use_validation ? split_->validation[u] : split_->test[u];
    if (truth.empty()) return;

    std::vector<double> scores(num_items_);
    scorer.ScoreItems(u, &scores);
    // Mask items the model has already seen for this user.
    for (int v : split_->train[u]) scores[v] = neg_inf;
    if (!use_validation) {
      for (int v : split_->validation[u]) scores[v] = neg_inf;
    }

    const std::vector<int> ranked = TopK(scores, max_k);
    Row row;
    row.user = u;
    for (int k : ks_) {
      row.values.push_back(100.0 * RecallAtK(ranked, truth, k));
      row.values.push_back(100.0 * NdcgAtK(ranked, truth, k));
    }
    rows[u] = std::move(row);
    active[u] = 1;
  });

  EvalResult result;
  for (size_t ki = 0; ki < ks_.size(); ++ki) {
    const std::string recall_key = StrFormat("Recall@%d", ks_[ki]);
    const std::string ndcg_key = StrFormat("NDCG@%d", ks_[ki]);
    auto& recall_vec = result.per_user[recall_key];
    auto& ndcg_vec = result.per_user[ndcg_key];
    for (int u = 0; u < num_users; ++u) {
      if (!active[u]) continue;
      recall_vec.push_back(rows[u].values[2 * ki]);
      ndcg_vec.push_back(rows[u].values[2 * ki + 1]);
    }
  }
  for (const auto& [key, vec] : result.per_user) {
    double sum = 0.0;
    for (double v : vec) sum += v;
    result.mean[key] = vec.empty() ? 0.0 : sum / vec.size();
  }
  result.users_evaluated = static_cast<int>(
      result.per_user.empty() ? 0 : result.per_user.begin()->second.size());
  return result;
}

}  // namespace logirec::eval
