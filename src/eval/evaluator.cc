#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace logirec::eval {

void Scorer::ScoreItemsInto(int user, math::Span out, ScoreMode /*mode*/) const {
  std::vector<double> tmp;
  ScoreItems(user, &tmp);
  LOGIREC_CHECK_MSG(tmp.size() == out.size(),
                    "ScoreItems() wrote an unexpected number of scores");
  std::copy(tmp.begin(), tmp.end(), out.begin());
}

void Scorer::RetrieveInto(int user, int k, const ItemFilter* filter,
                          RetrieveScratch* scratch, std::vector<int>* out,
                          int min_candidates) const {
  if (retriever_ != nullptr) {
    retriever_->RetrieveTopK(*this, user, k, std::max(min_candidates, k),
                             filter, scratch, out);
    return;
  }
  // Exact-scan fallback: the oracle the ANN indexes are verified against.
  // Filtered items are masked to -inf, which TopKInto never returns.
  scratch->scores.resize(0);  // keep capacity, force resize below
  std::vector<double>& scores = scratch->scores;
  // The scorer knows its catalog size only implicitly; size the buffer
  // from the surrogate spec when available, else from ScoreItems.
  const RankingSurrogateSpec spec = RankingSurrogate();
  if (spec.kind != RankingSurrogateSpec::Kind::kNone) {
    scores.resize(spec.items->items());
    ScoreItemsInto(user, math::Span(scores), ScoreMode::kRanking);
  } else {
    ScoreItems(user, &scores);
  }
  if (filter != nullptr) {
    const double neg_inf = -std::numeric_limits<double>::infinity();
    for (size_t v = 0; v < scores.size(); ++v) {
      if (filter->Excluded(static_cast<int>(v))) scores[v] = neg_inf;
    }
  }
  TopKInto(math::ConstSpan(scores), k, &scratch->topk, out);
}

double EvalResult::Get(const std::string& key) const {
  auto it = mean.find(key);
  LOGIREC_CHECK_MSG(it != mean.end(), "missing metric " + key);
  return it->second;
}

Evaluator::Evaluator(const data::Split* split, int num_items,
                     std::vector<int> ks)
    : split_(split), num_items_(num_items), ks_(std::move(ks)) {
  LOGIREC_CHECK(!ks_.empty());
}

namespace {

/// Linear membership test against a user's (small) truth list. For the
/// list sizes seen in evaluation (tens of items) this beats building an
/// unordered_set per user and allocates nothing.
inline bool Contains(const std::vector<int>& truth, int item) {
  for (int t : truth) {
    if (t == item) return true;
  }
  return false;
}

/// Recall@K over an already-ranked list; same arithmetic as
/// metrics.cc::RecallAtK (hit count divided by |truth|).
inline double RecallFromRanked(const std::vector<int>& ranked,
                               const std::vector<int>& truth, int k) {
  int hits = 0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (Contains(truth, ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

/// NDCG@K over an already-ranked list; same accumulation order as
/// metrics.cc::NdcgAtK.
inline double NdcgFromRanked(const std::vector<int>& ranked,
                             const std::vector<int>& truth, int k) {
  double dcg = 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (Contains(truth, ranked[i])) dcg += 1.0 / std::log2(i + 2.0);
  }
  double idcg = 0.0;
  const int ideal = std::min<int>(k, static_cast<int>(truth.size()));
  for (int i = 0; i < ideal; ++i) idcg += 1.0 / std::log2(i + 2.0);
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

}  // namespace

EvalResult Evaluator::Evaluate(const Scorer& scorer,
                               bool use_validation) const {
  const int num_users = static_cast<int>(split_->train.size());
  const int max_k = *std::max_element(ks_.begin(), ks_.end());
  const double neg_inf = -std::numeric_limits<double>::infinity();
  const int stride = 2 * static_cast<int>(ks_.size());

  // Flat per-user metric storage (ks_ x {recall, ndcg} per user), filled
  // in parallel and compacted sequentially below.
  std::vector<double> values(static_cast<size_t>(num_users) * stride, 0.0);
  std::vector<char> active(num_users, 0);

  // Per-worker scratch, reused across every user a worker ranks: the
  // full-catalog score buffer, the Top-K candidate indices, and the
  // ranked output. Nothing inside the parallel loop allocates after a
  // worker's first user.
  struct Scratch {
    std::vector<double> scores;
    std::vector<int> candidates;
    std::vector<int> ranked;
  };
  const int workers = ResolveWorkerCount(/*num_threads=*/0, num_users);
  std::vector<Scratch> scratch(std::max(workers, 1));

  ParallelForWorker(0, num_users, [&](int worker, int u) {
    const std::vector<int>& truth =
        use_validation ? split_->validation[u] : split_->test[u];
    if (truth.empty()) return;

    Scratch& s = scratch[worker];
    s.scores.resize(num_items_);
    scorer.ScoreItemsInto(u, math::Span(s.scores), ScoreMode::kRanking);
    // Mask items the model has already seen for this user.
    for (int v : split_->train[u]) s.scores[v] = neg_inf;
    if (!use_validation) {
      for (int v : split_->validation[u]) s.scores[v] = neg_inf;
    }

    TopKInto(math::ConstSpan(s.scores), max_k, &s.candidates, &s.ranked);
    double* row = values.data() + static_cast<size_t>(u) * stride;
    for (size_t ki = 0; ki < ks_.size(); ++ki) {
      row[2 * ki] = 100.0 * RecallFromRanked(s.ranked, truth, ks_[ki]);
      row[2 * ki + 1] = 100.0 * NdcgFromRanked(s.ranked, truth, ks_[ki]);
    }
    active[u] = 1;
  });

  EvalResult result;
  for (size_t ki = 0; ki < ks_.size(); ++ki) {
    const std::string recall_key = StrFormat("Recall@%d", ks_[ki]);
    const std::string ndcg_key = StrFormat("NDCG@%d", ks_[ki]);
    auto& recall_vec = result.per_user[recall_key];
    auto& ndcg_vec = result.per_user[ndcg_key];
    for (int u = 0; u < num_users; ++u) {
      if (!active[u]) continue;
      const double* row = values.data() + static_cast<size_t>(u) * stride;
      recall_vec.push_back(row[2 * ki]);
      ndcg_vec.push_back(row[2 * ki + 1]);
    }
  }
  for (const auto& [key, vec] : result.per_user) {
    double sum = 0.0;
    for (double v : vec) sum += v;
    result.mean[key] = vec.empty() ? 0.0 : sum / vec.size();
  }
  result.users_evaluated = static_cast<int>(
      result.per_user.empty() ? 0 : result.per_user.begin()->second.size());
  return result;
}

}  // namespace logirec::eval
