#include "serve/servable.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "eval/metrics.h"
#include "util/string_util.h"

namespace logirec::serve {

namespace {

/// Seen-item exclusion for the retrieval path: binary search over the
/// user's sorted CSR row. Called per ANN *candidate* (hundreds), not per
/// catalog item, so the log(seen) probe is cheap.
class SeenFilter : public eval::ItemFilter {
 public:
  SeenFilter(const int32_t* begin, const int32_t* end)
      : begin_(begin), end_(end) {}
  bool Excluded(int item) const override {
    return std::binary_search(begin_, end_, item);
  }

 private:
  const int32_t* begin_;
  const int32_t* end_;
};

}  // namespace

Result<std::shared_ptr<const ServableModel>> ServableModel::Create(
    std::unique_ptr<core::Recommender> model, int num_users, int num_items,
    const data::Split* split, uint64_t generation,
    const retrieval::RetrievalOptions& retrieval) {
  if (model == nullptr) {
    return Status::InvalidArgument("ServableModel needs a model");
  }
  if (num_users <= 0 || num_items <= 0) {
    return Status::InvalidArgument(StrFormat(
        "ServableModel needs positive dimensions, got %d users x %d items",
        num_users, num_items));
  }
  if (split != nullptr &&
      static_cast<int>(split->train.size()) != num_users) {
    return Status::InvalidArgument(StrFormat(
        "split covers %zu users but the model serves %d",
        split->train.size(), num_users));
  }
  auto servable = std::shared_ptr<ServableModel>(
      new ServableModel(std::move(model), num_users, num_items, generation));
  if (split != nullptr) {
    // Seen = train + validation, the same mask the evaluator applies to
    // the test fold, so served rankings match offline evaluation.
    servable->seen_offsets_.resize(num_users + 1, 0);
    for (int u = 0; u < num_users; ++u) {
      servable->seen_offsets_[u + 1] =
          servable->seen_offsets_[u] +
          static_cast<int64_t>(split->train[u].size()) +
          static_cast<int64_t>(split->validation[u].size());
    }
    servable->seen_items_.reserve(
        static_cast<size_t>(servable->seen_offsets_[num_users]));
    for (int u = 0; u < num_users; ++u) {
      for (int v : split->train[u]) servable->seen_items_.push_back(v);
      for (int v : split->validation[u]) servable->seen_items_.push_back(v);
      // Sorted rows: MaskSeen is order-insensitive and the retrieval
      // filter binary-searches.
      std::sort(servable->seen_items_.begin() +
                    servable->seen_offsets_[u],
                servable->seen_items_.begin() +
                    servable->seen_offsets_[u + 1]);
    }
  }
  servable->precision_ = retrieval.precision;
  if (retrieval.kind != retrieval::RetrievalKind::kExact) {
    // Built before the generation is published: the index shares the
    // immutable lifetime of the model whose ScoringView it references.
    // A compact precision is carried inside the index (compact cells /
    // rerank catalog), so no separate catalog is built here.
    auto retriever =
        retrieval::BuildRetriever(*servable->model_, retrieval);
    if (!retriever.ok()) return retriever.status();
    servable->retriever_ = std::move(*retriever);
    servable->retrieval_kind_ = retrieval.kind;
    servable->model_->AttachRetriever(servable->retriever_.get());
  } else if (retrieval.precision != eval::ScorePrecision::kF64) {
    // Compact exact serving: the generation owns the narrowed/quantized
    // catalog and scans it instead of the model's f64 state. Models
    // without a linear surrogate cannot be served compactly — surface
    // that at generation-build time, not per request.
    const Status built = servable->compact_.Build(
        servable->model_->RankingSurrogate(), retrieval.precision);
    if (!built.ok()) return built;
  }
  return std::shared_ptr<const ServableModel>(std::move(servable));
}

Result<std::shared_ptr<const ServableModel>> ServableModel::FromSnapshot(
    const std::string& path, const core::ModelFactory& factory,
    const data::Split* split, uint64_t generation,
    const retrieval::RetrievalOptions& retrieval) {
  core::SnapshotHeader header;
  const auto load_start = std::chrono::steady_clock::now();
  auto model = core::ModelSnapshot::Read(path, factory, &header);
  const double load_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - load_start)
                             .count();
  if (!model.ok()) return model.status();
  auto servable = Create(std::move(*model), header.num_users,
                         header.num_items, split, generation, retrieval);
  if (!servable.ok()) return servable.status();
  // Stamp snapshot provenance for `!stats`. The generation is still
  // private to this thread (published by the caller's Swap), so the
  // const_cast mutates before any concurrent reader exists.
  auto* mutable_servable = const_cast<ServableModel*>(servable->get());
  mutable_servable->snapshot_dtype_ = header.dtype;
  mutable_servable->snapshot_bytes_ = header.file_bytes;
  mutable_servable->snapshot_load_ms_ = load_ms;
  return servable;
}

void ServableModel::MaskSeen(int user, math::Span scores) const {
  if (seen_offsets_.empty()) return;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  for (int64_t i = seen_offsets_[user]; i < seen_offsets_[user + 1]; ++i) {
    scores[seen_items_[i]] = kNegInf;
  }
}

void ServableModel::MaskSeen(int user, math::SpanF scores) const {
  if (seen_offsets_.empty()) return;
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int64_t i = seen_offsets_[user]; i < seen_offsets_[user + 1]; ++i) {
    scores[seen_items_[i]] = kNegInf;
  }
}

size_t ServableModel::ResidentScoringBytes() const {
  if (retriever_ != nullptr) return retriever_->ResidentBytes();
  if (compact_.built()) return compact_.ResidentBytes();
  const eval::RankingSurrogateSpec spec = model_->RankingSurrogate();
  if (spec.kind == eval::RankingSurrogateSpec::Kind::kNone ||
      spec.items == nullptr) {
    return 0;
  }
  size_t bytes = spec.items->ResidentBytes();
  if (spec.bias != nullptr) {
    bytes += static_cast<size_t>(spec.items->items()) * sizeof(double);
  }
  return bytes;
}

void ServableModel::RetrieveRanked(int user, int k,
                                   eval::RetrieveScratch* scratch,
                                   std::vector<int>* out) const {
  if (retriever_ == nullptr && compact_.built()) {
    // Compact exact scan: narrowed query, compact kernels over the whole
    // catalog, float masking, float TopKInto (same descending-score /
    // ascending-id tie-break as the f64 path).
    const math::ConstSpan query =
        model_->RankingQuery(user, &scratch->query);
    eval::CompactCatalog::NarrowQuery(query, &scratch->query_f);
    scratch->scores_f.resize(compact_.items());
    compact_.ScoreInto(
        math::ConstSpanF(scratch->query_f.data(), scratch->query_f.size()),
        math::SpanF(scratch->scores_f));
    MaskSeen(user, math::SpanF(scratch->scores_f));
    eval::TopKInto(
        math::ConstSpanF(scratch->scores_f.data(), scratch->scores_f.size()),
        k, &scratch->topk, out);
    return;
  }
  if (seen_offsets_.empty()) {
    model_->RetrieveInto(user, k, nullptr, scratch, out, k);
    return;
  }
  const SeenFilter filter(seen_items_.data() + seen_offsets_[user],
                          seen_items_.data() + seen_offsets_[user + 1]);
  model_->RetrieveInto(user, k, &filter, scratch, out,
                       k + SeenCount(user));
}

}  // namespace logirec::serve
