#include "serve/servable.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/string_util.h"

namespace logirec::serve {

namespace {

/// Seen-item exclusion for the retrieval path: binary search over the
/// user's sorted CSR row. Called per ANN *candidate* (hundreds), not per
/// catalog item, so the log(seen) probe is cheap.
class SeenFilter : public eval::ItemFilter {
 public:
  SeenFilter(const int32_t* begin, const int32_t* end)
      : begin_(begin), end_(end) {}
  bool Excluded(int item) const override {
    return std::binary_search(begin_, end_, item);
  }

 private:
  const int32_t* begin_;
  const int32_t* end_;
};

}  // namespace

Result<std::shared_ptr<const ServableModel>> ServableModel::Create(
    std::unique_ptr<core::Recommender> model, int num_users, int num_items,
    const data::Split* split, uint64_t generation,
    const retrieval::RetrievalOptions& retrieval) {
  if (model == nullptr) {
    return Status::InvalidArgument("ServableModel needs a model");
  }
  if (num_users <= 0 || num_items <= 0) {
    return Status::InvalidArgument(StrFormat(
        "ServableModel needs positive dimensions, got %d users x %d items",
        num_users, num_items));
  }
  if (split != nullptr &&
      static_cast<int>(split->train.size()) != num_users) {
    return Status::InvalidArgument(StrFormat(
        "split covers %zu users but the model serves %d",
        split->train.size(), num_users));
  }
  auto servable = std::shared_ptr<ServableModel>(
      new ServableModel(std::move(model), num_users, num_items, generation));
  if (split != nullptr) {
    // Seen = train + validation, the same mask the evaluator applies to
    // the test fold, so served rankings match offline evaluation.
    servable->seen_offsets_.resize(num_users + 1, 0);
    for (int u = 0; u < num_users; ++u) {
      servable->seen_offsets_[u + 1] =
          servable->seen_offsets_[u] +
          static_cast<int64_t>(split->train[u].size()) +
          static_cast<int64_t>(split->validation[u].size());
    }
    servable->seen_items_.reserve(
        static_cast<size_t>(servable->seen_offsets_[num_users]));
    for (int u = 0; u < num_users; ++u) {
      for (int v : split->train[u]) servable->seen_items_.push_back(v);
      for (int v : split->validation[u]) servable->seen_items_.push_back(v);
      // Sorted rows: MaskSeen is order-insensitive and the retrieval
      // filter binary-searches.
      std::sort(servable->seen_items_.begin() +
                    servable->seen_offsets_[u],
                servable->seen_items_.begin() +
                    servable->seen_offsets_[u + 1]);
    }
  }
  if (retrieval.kind != retrieval::RetrievalKind::kExact) {
    // Built before the generation is published: the index shares the
    // immutable lifetime of the model whose ScoringView it references.
    auto retriever =
        retrieval::BuildRetriever(*servable->model_, retrieval);
    if (!retriever.ok()) return retriever.status();
    servable->retriever_ = std::move(*retriever);
    servable->retrieval_kind_ = retrieval.kind;
    servable->model_->AttachRetriever(servable->retriever_.get());
  }
  return std::shared_ptr<const ServableModel>(std::move(servable));
}

Result<std::shared_ptr<const ServableModel>> ServableModel::FromSnapshot(
    const std::string& path, const core::ModelFactory& factory,
    const data::Split* split, uint64_t generation,
    const retrieval::RetrievalOptions& retrieval) {
  core::SnapshotHeader header;
  auto model = core::ModelSnapshot::Read(path, factory, &header);
  if (!model.ok()) return model.status();
  return Create(std::move(*model), header.num_users, header.num_items,
                split, generation, retrieval);
}

void ServableModel::MaskSeen(int user, math::Span scores) const {
  if (seen_offsets_.empty()) return;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  for (int64_t i = seen_offsets_[user]; i < seen_offsets_[user + 1]; ++i) {
    scores[seen_items_[i]] = kNegInf;
  }
}

void ServableModel::RetrieveRanked(int user, int k,
                                   eval::RetrieveScratch* scratch,
                                   std::vector<int>* out) const {
  if (seen_offsets_.empty()) {
    model_->RetrieveInto(user, k, nullptr, scratch, out, k);
    return;
  }
  const SeenFilter filter(seen_items_.data() + seen_offsets_[user],
                          seen_items_.data() + seen_offsets_[user + 1]);
  model_->RetrieveInto(user, k, &filter, scratch, out,
                       k + SeenCount(user));
}

}  // namespace logirec::serve
