#ifndef LOGIREC_SERVE_NET_NET_SERVER_H_
#define LOGIREC_SERVE_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/net/connection.h"
#include "serve/net/event_loop.h"
#include "util/status.h"

namespace logirec::serve::net {

/// A per-connection line-protocol application. The transport feeds it
/// complete lines and writes back whatever DrainReady() yields, in
/// order. Implementations may complete replies asynchronously from other
/// threads (e.g. a model server's workers): DrainReady()/HasPending()
/// must be thread-safe, and the flush hook — which may fire on any
/// thread — tells the transport new replies may be ready.
class LineSession {
 public:
  virtual ~LineSession() = default;

  /// Handles one request line (transport thread).
  virtual void HandleLine(const std::string& line) = 0;

  /// Pops the in-order prefix of ready replies. Sets *close_after when
  /// the session wants the connection closed once these are flushed.
  /// Thread-safe.
  virtual void DrainReady(std::vector<std::string>* replies,
                          bool* close_after) = 0;

  /// True while replies are still owed (in flight or ready). Thread-safe.
  virtual bool HasPending() const = 0;

  /// Installs the new-replies notification hook (called before any
  /// HandleLine). The hook may fire on any thread.
  virtual void SetFlushHook(std::function<void()> hook) = 0;

  /// The reply line sent before closing a connection whose input framing
  /// failed (e.g. an oversized line).
  virtual std::string FramingErrorReply(const Status& error) = 0;
};

using SessionFactory = std::function<std::shared_ptr<LineSession>()>;

struct NetServerOptions {
  int port = 0;              ///< 0 = kernel-assigned; see port()
  /// Stop accepting after this many connections and return from Run()
  /// once the accepted ones drain (0 = serve until Shutdown()). The
  /// listener closes the moment the budget is spent, so "max sessions
  /// reached" is deterministic, not dependent on accept ordering.
  int max_sessions = 0;
  size_t max_line_bytes = 1 << 16;
  int listen_backlog = 64;
  EventLoop::Backend backend = EventLoop::Backend::kAuto;
};

/// Concurrent line-protocol TCP server on 127.0.0.1: a non-blocking
/// accept loop plus per-connection state machines on one event loop.
/// Request handling is delegated to LineSession instances (one per
/// connection) which may answer asynchronously; the server guarantees
/// in-order reply delivery per connection and never drops an accepted
/// request's reply short of the peer disconnecting.
///
/// Lifetime contract: asynchronous completions post back through this
/// server's event loop, so anything that can still fire a session flush
/// hook (e.g. serve::ModelServer workers) must be stopped/drained before
/// this object is destroyed.
class NetServer {
 public:
  NetServer(NetServerOptions options, SessionFactory factory);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens on 127.0.0.1. After OK, port() is the bound port.
  Status Start();

  /// Serves until Shutdown() or the max-sessions budget drains. Call
  /// from exactly one thread, after Start().
  void Run();

  /// Graceful stop from any thread: closes the listener; Run() returns
  /// once every live connection has closed. Idempotent.
  void Shutdown();

  int port() const { return port_; }
  long sessions_accepted() const {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }
  EventLoop::Backend backend() const { return loop_.backend(); }

 private:
  struct Entry {
    std::unique_ptr<Connection> connection;
    std::shared_ptr<LineSession> session;
    bool closing = false;        // reply flushed → close when drained
    bool error_reported = false; // framing-error reply already queued
  };

  void HandleAccept();
  void OnLine(uint64_t id, const std::string& line);
  /// Drains ready replies to the socket and advances the connection
  /// state machine (framing errors, EOF, quit, close-when-drained).
  void FlushSession(uint64_t id);
  void CloseConnection(uint64_t id);
  void CloseListener();
  /// Stops the loop once no listener and no connections remain.
  void CheckDone();

  const NetServerOptions options_;
  const SessionFactory factory_;
  EventLoop loop_;
  int listener_ = -1;
  int port_ = 0;
  bool shutting_down_ = false;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Entry> connections_;
  std::atomic<long> sessions_accepted_{0};
};

}  // namespace logirec::serve::net

#endif  // LOGIREC_SERVE_NET_NET_SERVER_H_
