#ifndef LOGIREC_SERVE_NET_EVENT_LOOP_H_
#define LOGIREC_SERVE_NET_EVENT_LOOP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace logirec::serve::net {

/// Single-threaded readiness event loop over non-blocking fds, with a
/// thread-safe task queue for cross-thread completion delivery.
///
/// Backends: edge-agnostic level-triggered epoll on Linux (the serving
/// default) and a portable poll() fallback; kAuto picks epoll where
/// available. Both present identical semantics, and the tests run both,
/// so the fallback cannot rot.
///
/// Threading contract: Add/Update/Remove and all fd callbacks run on the
/// loop thread (registration before Run() starts counts as loop-thread).
/// Post() and Stop() are safe from any thread — they push through a
/// self-pipe, so a completion landing on a worker thread can hand its
/// result back to the loop without touching connection state. Tasks
/// posted after the loop stops are still drained by Run() before it
/// returns; tasks posted after Run() has returned are dropped on
/// destruction (by then the owner has already torn down the endpoints).
class EventLoop {
 public:
  enum class Backend { kAuto, kEpoll, kPoll };

  struct Event {
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< peer closed / error; also flagged readable
  };
  using FdCallback = std::function<void(const Event&)>;

  explicit EventLoop(Backend backend = Backend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (must already be non-blocking) for readiness
  /// callbacks. Loop thread only.
  Status Add(int fd, bool want_read, bool want_write, FdCallback callback);
  /// Changes the interest set of a registered fd. Loop thread only.
  Status Update(int fd, bool want_read, bool want_write);
  /// Deregisters `fd` (does not close it). Safe to call from inside a
  /// callback, including for an fd with events still pending this wake.
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread. Thread-safe.
  void Post(std::function<void()> task);

  /// Runs until Stop(). Must be called from exactly one thread.
  void Run();

  /// Makes Run() return after the current wake finishes dispatching.
  /// Thread-safe, idempotent.
  void Stop();

  /// The backend actually in use (kAuto resolved).
  Backend backend() const { return backend_; }

 private:
  struct Registration {
    int fd = 0;
    bool want_read = false;
    bool want_write = false;
    FdCallback callback;
  };

  Status BackendAdd(const Registration& reg);
  Status BackendUpdate(const Registration& reg);
  void BackendRemove(int fd);
  /// Blocks for readiness; appends (fd, event) pairs.
  void BackendWait(std::vector<std::pair<int, Event>>* fired);
  void Wake();
  void DrainTasks();

  Backend backend_;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::unordered_map<int, std::shared_ptr<Registration>> registrations_;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
  std::atomic<bool> stopping_{false};
};

}  // namespace logirec::serve::net

#endif  // LOGIREC_SERVE_NET_EVENT_LOOP_H_
