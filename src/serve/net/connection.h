#ifndef LOGIREC_SERVE_NET_CONNECTION_H_
#define LOGIREC_SERVE_NET_CONNECTION_H_

#include <functional>
#include <string>

#include "serve/net/event_loop.h"
#include "serve/net/framing.h"
#include "util/status.h"

namespace logirec::serve::net {

/// One non-blocking connection on an event loop: the byte pump half of a
/// session. Reads are framed into lines through LineFramer; writes go
/// through an outbound buffer that absorbs partial write() progress and
/// arms EPOLLOUT only while bytes remain. All methods and callbacks run
/// on the loop thread; policy (when to reply, when to close) lives in
/// the owner, which reads the state flags below.
///
/// State flags the owner drives its machine from:
///  - framing_error(): an oversized line tripped the framer (sticky);
///  - eof_seen(): the peer half-closed; any unterminated remainder was
///    already delivered through on_line (so `5 4` + FIN still ranks);
///  - broken(): read/write error or hangup — flush is pointless;
///  - write_pending(): outbound bytes not yet accepted by the kernel.
class Connection {
 public:
  struct Callbacks {
    /// One complete framed line (no terminator).
    std::function<void(const std::string& line)> on_line;
    /// Fired after every burst of I/O activity or state transition; the
    /// owner re-evaluates its state machine (flush replies, close, ...).
    std::function<void()> on_state_change;
  };

  Connection(int fd, EventLoop* loop, size_t max_line_bytes,
             Callbacks callbacks);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Makes the fd non-blocking and registers with the loop.
  Status Register();

  /// Queues `line` + '\n' for writing; writes as much as the socket
  /// accepts now and buffers the rest.
  void SendLine(const std::string& line);

  /// Stops delivering further lines (input after `!quit` is ignored).
  void StopReading();

  /// Deregisters and closes the fd. Idempotent; no callbacks fire.
  void Close();

  bool closed() const { return fd_ < 0; }
  bool eof_seen() const { return eof_seen_; }
  bool broken() const { return broken_; }
  bool framing_error() const { return !framer_.status().ok(); }
  const Status& framer_status() const { return framer_.status(); }
  bool write_pending() const { return out_.size() > out_sent_; }
  int fd() const { return fd_; }

 private:
  void HandleEvent(const EventLoop::Event& event);
  void HandleReadable();
  void FlushWrites();
  void UpdateInterest();

  int fd_;
  EventLoop* loop_;
  LineFramer framer_;
  Callbacks callbacks_;
  std::string out_;
  size_t out_sent_ = 0;
  bool reading_ = true;
  bool eof_seen_ = false;
  bool broken_ = false;
  bool registered_ = false;
  bool want_write_armed_ = false;
};

}  // namespace logirec::serve::net

#endif  // LOGIREC_SERVE_NET_CONNECTION_H_
