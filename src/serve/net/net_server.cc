#include "serve/net/net_server.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/string_util.h"

namespace logirec::serve::net {

namespace {
void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}
}  // namespace

NetServer::NetServer(NetServerOptions options, SessionFactory factory)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      loop_(options_.backend) {}

NetServer::~NetServer() {
  connections_.clear();  // closes fds; loop_ outlives them
  if (listener_ >= 0) ::close(listener_);
}

Status NetServer::Start() {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listener_, options_.listen_backlog) < 0) {
    ::close(listener_);
    listener_ = -1;
    return Status::IoError(
        StrFormat("cannot listen on 127.0.0.1:%d", options_.port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listener_);
  return loop_.Add(listener_, /*want_read=*/true, /*want_write=*/false,
                   [this](const EventLoop::Event&) { HandleAccept(); });
}

void NetServer::Run() {
  loop_.Run();
  // Anything still open at shutdown is torn down here, on the loop
  // thread's stack, before the loop object can go away.
  connections_.clear();
}

void NetServer::Shutdown() {
  loop_.Post([this] {
    shutting_down_ = true;
    CloseListener();
    // Graceful drain: stop reading new input everywhere, but every reply
    // already in flight is still delivered; each connection closes the
    // moment nothing more is owed (idle ones close right here).
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, entry] : connections_) ids.push_back(id);
    for (const uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      it->second.closing = true;
      it->second.connection->StopReading();
      FlushSession(id);
    }
    CheckDone();
  });
}

void NetServer::HandleAccept() {
  for (;;) {
    if (listener_ < 0) return;
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error: wait for the next wake
    }
    const uint64_t id = next_id_++;
    Entry entry;
    entry.session = factory_();
    entry.session->SetFlushHook([this, id] {
      // Fires on worker threads when an async reply completes; bounce
      // onto the loop thread, where all connection state lives.
      loop_.Post([this, id] { FlushSession(id); });
    });
    Connection::Callbacks callbacks;
    callbacks.on_line = [this, id](const std::string& line) {
      OnLine(id, line);
    };
    callbacks.on_state_change = [this, id] { FlushSession(id); };
    entry.connection = std::make_unique<Connection>(
        fd, &loop_, options_.max_line_bytes, std::move(callbacks));
    const Status st = entry.connection->Register();
    if (!st.ok()) continue;  // Entry dtor closes the fd
    connections_.emplace(id, std::move(entry));
    const long accepted =
        sessions_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_sessions > 0 && accepted >= options_.max_sessions) {
      // Budget spent: close the listener now so the N+1th connect is
      // refused by the kernel, not left dangling in the backlog.
      CloseListener();
      return;
    }
  }
}

void NetServer::OnLine(uint64_t id, const std::string& line) {
  auto it = connections_.find(id);
  if (it == connections_.end() || it->second.closing) return;
  it->second.session->HandleLine(line);
  FlushSession(id);
}

void NetServer::FlushSession(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Entry& entry = it->second;
  Connection& conn = *entry.connection;
  if (conn.closed()) return;
  if (conn.broken()) {
    CloseConnection(id);
    return;
  }
  std::vector<std::string> replies;
  bool close_after = false;
  entry.session->DrainReady(&replies, &close_after);
  for (const std::string& reply : replies) conn.SendLine(reply);
  if (close_after && !entry.closing) {
    entry.closing = true;
    conn.StopReading();
  }
  if (conn.framing_error() && !entry.error_reported) {
    entry.error_reported = true;
    entry.closing = true;
    conn.SendLine(entry.session->FramingErrorReply(conn.framer_status()));
    conn.StopReading();
  }
  // Close once nothing is owed: the session has no replies in flight and
  // the kernel has taken every outbound byte. An EOF from the peer only
  // closes after in-flight replies flush — a half-closed client still
  // gets its answers.
  const bool done_serving = entry.closing || conn.eof_seen();
  if (done_serving && !entry.session->HasPending() &&
      !conn.write_pending()) {
    CloseConnection(id);
  }
}

void NetServer::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  it->second.connection->Close();
  // Defer the erase: we may be on this connection's callback stack.
  loop_.Post([this, id] {
    connections_.erase(id);
    CheckDone();
  });
}

void NetServer::CloseListener() {
  if (listener_ < 0) return;
  loop_.Remove(listener_);
  ::close(listener_);
  listener_ = -1;
}

void NetServer::CheckDone() {
  if (listener_ >= 0) return;  // still accepting
  // Live connections may exist but be closed-and-pending-erase.
  for (const auto& [id, entry] : connections_) {
    if (!entry.connection->closed()) return;
  }
  loop_.Stop();
}

}  // namespace logirec::serve::net
