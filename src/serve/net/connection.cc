#include "serve/net/connection.h"

#include <cerrno>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace logirec::serve::net {

Connection::Connection(int fd, EventLoop* loop, size_t max_line_bytes,
                       Callbacks callbacks)
    : fd_(fd),
      loop_(loop),
      framer_(max_line_bytes),
      callbacks_(std::move(callbacks)) {}

Connection::~Connection() { Close(); }

Status Connection::Register() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const Status st = loop_->Add(
      fd_, /*want_read=*/true, /*want_write=*/false,
      [this](const EventLoop::Event& event) { HandleEvent(event); });
  registered_ = st.ok();
  return st;
}

void Connection::HandleEvent(const EventLoop::Event& event) {
  if (closed()) return;
  if (event.writable) FlushWrites();
  if (!closed() && event.readable) HandleReadable();
  if (!closed() && event.hangup && !eof_seen_) broken_ = true;
  if (!closed() && callbacks_.on_state_change) callbacks_.on_state_change();
}

void Connection::HandleReadable() {
  if (!reading_) {
    // Drain-and-discard so a chatty peer cannot wedge level-triggered
    // wakeups after `!quit`.
    char sink[4096];
    ssize_t n;
    while ((n = ::read(fd_, sink, sizeof sink)) > 0) {
    }
    if (n == 0) eof_seen_ = true;
    return;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      framer_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_seen_ = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // level-triggered: we'll be woken again
    } else if (errno == EINTR) {
      continue;
    } else {
      broken_ = true;
    }
    break;
  }
  std::string line;
  while (reading_ && framer_.Next(&line)) {
    if (callbacks_.on_line) callbacks_.on_line(line);
    if (closed()) return;
  }
  // A half-closed peer may still be waiting for the reply to a final
  // unterminated line (getline semantics).
  if (reading_ && eof_seen_ && framer_.FlushRemainder(&line)) {
    if (callbacks_.on_line) callbacks_.on_line(line);
  }
}

void Connection::SendLine(const std::string& line) {
  if (closed() || broken_) return;
  out_.reserve(out_.size() + line.size() + 1);
  out_ += line;
  out_ += '\n';
  FlushWrites();
}

void Connection::FlushWrites() {
  if (closed() || broken_) return;
  while (out_sent_ < out_.size()) {
    const ssize_t n =
        ::write(fd_, out_.data() + out_sent_, out_.size() - out_sent_);
    if (n > 0) {
      out_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    broken_ = true;
    return;
  }
  if (out_sent_ == out_.size()) {
    out_.clear();
    out_sent_ = 0;
  } else if (out_sent_ >= 4096 && out_sent_ * 2 >= out_.size()) {
    out_.erase(0, out_sent_);
    out_sent_ = 0;
  }
  UpdateInterest();
}

void Connection::StopReading() {
  reading_ = false;
  UpdateInterest();
}

void Connection::UpdateInterest() {
  if (closed() || !registered_) return;
  const bool want_write = write_pending();
  if (want_write == want_write_armed_ && reading_) return;
  // Read interest stays on even after StopReading() so we observe EOF
  // and drain stray bytes instead of spinning the peer's send buffer.
  loop_->Update(fd_, /*want_read=*/true, want_write);
  want_write_armed_ = want_write;
}

void Connection::Close() {
  if (closed()) return;
  if (registered_) loop_->Remove(fd_);
  ::close(fd_);
  fd_ = -1;
}

}  // namespace logirec::serve::net
