#ifndef LOGIREC_SERVE_NET_FRAMING_H_
#define LOGIREC_SERVE_NET_FRAMING_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace logirec::serve::net {

/// Incremental, length-safe newline framing. Bytes arrive in arbitrary
/// fragments (partial reads across event-loop wakeups, many pipelined
/// lines in one read); Append() buffers them and Next() pops complete
/// lines in order, without the trailing '\n' (a preceding '\r' is also
/// stripped, so CRLF clients work).
///
/// Safety: an incomplete line longer than `max_line_bytes` trips a
/// sticky kOutOfRange status — the transport should reply with an error
/// and close, instead of buffering an attacker-sized "line" forever.
/// Complete lines already buffered before the oversized one are still
/// delivered first.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes = 1 << 16)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes to the buffer. No-op once errored.
  void Append(const char* data, size_t n);

  /// Pops the next complete line into `*line`. Returns false when no
  /// complete line is buffered (or the framer is errored with no earlier
  /// complete lines left).
  bool Next(std::string* line);

  /// Pops the unterminated remainder as a final line (what getline does
  /// for a last line without '\n'). Call at EOF. Returns false when the
  /// buffer is empty or errored.
  bool FlushRemainder(std::string* line);

  /// OK, or the sticky kOutOfRange oversized-line error.
  const Status& status() const { return status_; }

  /// Bytes buffered but not yet returned as lines.
  size_t buffered() const { return buf_.size() - start_; }

 private:
  void Compact();

  const size_t max_line_bytes_;
  std::string buf_;
  size_t start_ = 0;  // consumed prefix of buf_
  Status status_;
};

}  // namespace logirec::serve::net

#endif  // LOGIREC_SERVE_NET_FRAMING_H_
