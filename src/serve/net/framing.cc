#include "serve/net/framing.h"

#include "util/string_util.h"

namespace logirec::serve::net {

void LineFramer::Append(const char* data, size_t n) {
  if (!status_.ok()) return;
  buf_.append(data, n);
}

bool LineFramer::Next(std::string* line) {
  if (!status_.ok()) return false;
  const size_t eol = buf_.find('\n', start_);
  if (eol == std::string::npos) {
    // No complete line: enforce the length bound on the partial one.
    if (buffered() > max_line_bytes_) {
      status_ = Status::OutOfRange(StrFormat(
          "line exceeds %zu bytes", max_line_bytes_));
      buf_.clear();
      start_ = 0;
    }
    return false;
  }
  size_t end = eol;
  if (end > start_ && buf_[end - 1] == '\r') --end;
  if (end - start_ > max_line_bytes_) {
    status_ = Status::OutOfRange(StrFormat(
        "line exceeds %zu bytes", max_line_bytes_));
    buf_.clear();
    start_ = 0;
    return false;
  }
  line->assign(buf_, start_, end - start_);
  start_ = eol + 1;
  Compact();
  return true;
}

bool LineFramer::FlushRemainder(std::string* line) {
  if (!status_.ok() || buffered() == 0) return false;
  size_t end = buf_.size();
  if (end > start_ && buf_[end - 1] == '\r') --end;
  line->assign(buf_, start_, end - start_);
  buf_.clear();
  start_ = 0;
  return !line->empty();
}

void LineFramer::Compact() {
  // Reclaim the consumed prefix once it dominates the buffer, keeping
  // per-line work amortized O(length) even for long pipelined bursts.
  if (start_ >= 4096 && start_ * 2 >= buf_.size()) {
    buf_.erase(0, start_);
    start_ = 0;
  }
}

}  // namespace logirec::serve::net
