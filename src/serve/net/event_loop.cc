#include "serve/net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define LOGIREC_HAVE_EPOLL 1
#endif

#include "util/logging.h"
#include "util/string_util.h"

namespace logirec::serve::net {

namespace {
void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}
}  // namespace

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#if LOGIREC_HAVE_EPOLL
  if (backend_ == Backend::kAuto) backend_ = Backend::kEpoll;
#else
  if (backend_ == Backend::kAuto || backend_ == Backend::kEpoll) {
    backend_ = Backend::kPoll;
  }
#endif
#if LOGIREC_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    LOGIREC_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  }
#endif
  int pipe_fds[2];
  LOGIREC_CHECK_MSG(::pipe(pipe_fds) == 0, "wakeup pipe failed");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);
  // The wake fd participates like any other registration; its callback
  // just drains the pipe (tasks run at the end of the wake).
  const Status st = Add(wake_read_fd_, /*want_read=*/true,
                        /*want_write=*/false, [this](const Event&) {
                          char buf[256];
                          while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
                          }
                        });
  LOGIREC_CHECK_MSG(st.ok(), st.ToString());
}

EventLoop::~EventLoop() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
#if LOGIREC_HAVE_EPOLL
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

Status EventLoop::Add(int fd, bool want_read, bool want_write,
                      FdCallback callback) {
  if (registrations_.count(fd) > 0) {
    return Status::AlreadyExists(StrFormat("fd %d already registered", fd));
  }
  auto reg = std::make_shared<Registration>();
  reg->fd = fd;
  reg->want_read = want_read;
  reg->want_write = want_write;
  reg->callback = std::move(callback);
  const Status st = BackendAdd(*reg);
  if (!st.ok()) return st;
  registrations_.emplace(fd, std::move(reg));
  return Status::OK();
}

Status EventLoop::Update(int fd, bool want_read, bool want_write) {
  auto it = registrations_.find(fd);
  if (it == registrations_.end()) {
    return Status::NotFound(StrFormat("fd %d is not registered", fd));
  }
  it->second->want_read = want_read;
  it->second->want_write = want_write;
  return BackendUpdate(*it->second);
}

void EventLoop::Remove(int fd) {
  auto it = registrations_.find(fd);
  if (it == registrations_.end()) return;
  BackendRemove(fd);
  registrations_.erase(it);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Wake() {
  const char byte = 1;
  // A full pipe already guarantees a pending wake; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void EventLoop::DrainTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  std::vector<std::pair<int, Event>> fired;
  while (!stopping_.load(std::memory_order_acquire)) {
    fired.clear();
    BackendWait(&fired);
    for (const auto& [fd, event] : fired) {
      // Look up fresh: an earlier callback this wake may have removed it.
      auto it = registrations_.find(fd);
      if (it == registrations_.end()) continue;
      // Hold a ref so a callback removing its own fd stays alive.
      const std::shared_ptr<Registration> reg = it->second;
      reg->callback(event);
    }
    DrainTasks();
  }
  // Completions posted during the final wake (e.g. by a model server
  // draining its queue) still run before Run() returns.
  DrainTasks();
}

#if LOGIREC_HAVE_EPOLL
namespace {
uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = EPOLLRDHUP;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
}  // namespace
#endif

Status EventLoop::BackendAdd(const Registration& reg) {
#if LOGIREC_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(reg.want_read, reg.want_write);
    ev.data.fd = reg.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, reg.fd, &ev) != 0) {
      return Status::IoError(StrFormat("epoll_ctl(ADD, %d): %s", reg.fd,
                                       std::strerror(errno)));
    }
    return Status::OK();
  }
#endif
  (void)reg;
  return Status::OK();  // poll builds its set per wait
}

Status EventLoop::BackendUpdate(const Registration& reg) {
#if LOGIREC_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(reg.want_read, reg.want_write);
    ev.data.fd = reg.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, reg.fd, &ev) != 0) {
      return Status::IoError(StrFormat("epoll_ctl(MOD, %d): %s", reg.fd,
                                       std::strerror(errno)));
    }
  }
#endif
  (void)reg;
  return Status::OK();
}

void EventLoop::BackendRemove(int fd) {
#if LOGIREC_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  (void)fd;
}

void EventLoop::BackendWait(std::vector<std::pair<int, Event>>* fired) {
#if LOGIREC_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout=*/-1);
    for (int i = 0; i < n; ++i) {
      Event event;
      event.readable = (events[i].events & (EPOLLIN | EPOLLPRI)) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.hangup =
          (events[i].events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0;
      if (event.hangup) event.readable = true;  // let read() observe EOF
      const int fd = events[i].data.fd;
      fired->emplace_back(fd, event);
    }
    return;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(registrations_.size());
  for (const auto& [fd, reg] : registrations_) {
    pollfd pfd{};
    pfd.fd = fd;
    if (reg->want_read) pfd.events |= POLLIN;
    if (reg->want_write) pfd.events |= POLLOUT;
    pfds.push_back(pfd);
  }
  const int n = ::poll(pfds.data(), pfds.size(), /*timeout=*/-1);
  if (n <= 0) return;
  for (const pollfd& pfd : pfds) {
    if (pfd.revents == 0) continue;
    Event event;
    event.readable = (pfd.revents & (POLLIN | POLLPRI)) != 0;
    event.writable = (pfd.revents & POLLOUT) != 0;
    event.hangup = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    if (event.hangup) event.readable = true;
    fired->emplace_back(pfd.fd, event);
  }
}

}  // namespace logirec::serve::net
