#ifndef LOGIREC_SERVE_PROTOCOL_H_
#define LOGIREC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/status.h"

namespace logirec::serve {

/// The newline protocol spoken by tools/logirec_serve over stdin/stdout
/// and TCP. One request per line:
///
///   <user_id> [k]     rank: top-k item ids for the user (k defaults
///                     server-side when omitted)
///   !swap <path>      hot-swap the model from a binary snapshot
///   !reload <path>    like !swap, but the snapshot load and index build
///                     run on the server's background swap thread
///                     (ModelServer::SwapWhenReady) — the session keeps
///                     answering pipelined requests while the new
///                     generation builds, and the "ok reloaded ..." reply
///                     is delivered in request order once it is live. A
///                     corrupt or missing snapshot answers "error ..."
///                     with the connection (and the current model) intact.
///   !stats            dump the server counters
///   !quit             close this session
///
/// Responses are single lines: "ok user=<u> gen=<g> items=<id,id,...>",
/// "stats ...", "bye", or "error <code>: <message>". Under overload the
/// server answers a rank request with "!busy" instead of queueing it —
/// the backpressure contract: every accepted line gets exactly one reply
/// in request order, and an overloaded server says so immediately rather
/// than letting latency grow without bound. Clients should back off and
/// retry on "!busy".
struct Request {
  enum class Kind { kRank, kSwap, kReload, kStats, kQuit };
  Kind kind = Kind::kRank;
  int user = 0;
  int k = 0;  ///< 0 = server default
  std::string path;  ///< kSwap / kReload only
};

/// Parses one protocol line. Blank lines and `#` comments yield
/// kNotFound (callers skip them); malformed input yields
/// kInvalidArgument with a descriptive message.
Result<Request> ParseRequestLine(const std::string& line);

std::string FormatRanking(int user, uint64_t generation,
                          const std::vector<int>& items);
std::string FormatStats(const ServerStats& stats);
std::string FormatError(const Status& status);
/// The shed reply for a rank request the admission queue rejected.
std::string FormatBusy();

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_PROTOCOL_H_
