#ifndef LOGIREC_SERVE_SERVABLE_H_
#define LOGIREC_SERVE_SERVABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/snapshot.h"
#include "data/dataset.h"
#include "eval/compact.h"
#include "math/vec.h"
#include "retrieval/retriever.h"
#include "util/status.h"

namespace logirec::serve {

/// One immutable generation of servable state: a scoring-ready model plus
/// the request-time context serving needs — per-user seen-item lists (CSR)
/// for exclusion masking. Construction is the only mutation; after that a
/// ServableModel is shared read-only across every serving thread, so the
/// hot-swap path can publish a new generation by swapping one pointer.
class ServableModel {
 public:
  /// Wraps a scoring-ready model. `split` (optional) supplies the seen
  /// items to exclude from rankings — train + validation folds, matching
  /// the evaluator's masking; pass null to rank over all items.
  /// `retrieval` (default: exact) optionally builds an ANN index over the
  /// model's kRanking surrogate space at construction time; the index
  /// lives inside this immutable generation, so hot-swap stays a single
  /// pointer assignment and in-flight requests keep the index they
  /// acquired.
  static Result<std::shared_ptr<const ServableModel>> Create(
      std::unique_ptr<core::Recommender> model, int num_users, int num_items,
      const data::Split* split, uint64_t generation,
      const retrieval::RetrievalOptions& retrieval = {});

  /// Restores a generation from a binary snapshot (core::ModelSnapshot),
  /// taking user/item counts from the snapshot header. The retrieval
  /// index (if any) is built right after restore, before the generation
  /// is published.
  static Result<std::shared_ptr<const ServableModel>> FromSnapshot(
      const std::string& path, const core::ModelFactory& factory,
      const data::Split* split, uint64_t generation,
      const retrieval::RetrievalOptions& retrieval = {});

  const core::Recommender& scorer() const { return *model_; }
  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  uint64_t generation() const { return generation_; }
  std::string model_name() const { return model_->name(); }

  /// Sets the score of every item `user` has already seen to -inf so the
  /// Top-K never re-recommends it. No-op when built without a split.
  void MaskSeen(int user, math::Span scores) const;
  /// Float variant for the compact exact-scan path.
  void MaskSeen(int user, math::SpanF scores) const;

  /// The serving-side scoring precision this generation was built with.
  eval::ScorePrecision precision() const { return precision_; }
  /// True when exact serving scores through the compact catalog (compact
  /// precision without an ANN index; with an index the compact state
  /// lives inside the index instead).
  bool compact_enabled() const { return compact_.built(); }

  /// Storage dtype of the snapshot this generation was restored from
  /// (kF64 for generations built in-process via Create).
  core::SnapshotDtype snapshot_dtype() const { return snapshot_dtype_; }
  /// On-disk snapshot size in bytes (0 when not snapshot-restored).
  uint64_t snapshot_bytes() const { return snapshot_bytes_; }
  /// Wall time ModelSnapshot::Read took (0 when not snapshot-restored).
  double snapshot_load_ms() const { return snapshot_load_ms_; }

  /// Bytes of resident scoring state on the serving path: the ANN
  /// index's slabs when retrieval is enabled, the compact catalog on the
  /// compact exact path, else the model's f64 scoring view (0 when the
  /// model has no linear surrogate to measure).
  size_t ResidentScoringBytes() const;

  /// The number of seen (masked) items for `user`.
  int SeenCount(int user) const {
    return seen_offsets_.empty()
               ? 0
               : static_cast<int>(seen_offsets_[user + 1] -
                                  seen_offsets_[user]);
  }

  /// True when this generation carries an ANN retrieval index.
  bool retrieval_enabled() const { return retriever_ != nullptr; }
  /// The retrieval kind this generation was built with ("exact" when no
  /// index was requested or the model opted out).
  retrieval::RetrievalKind retrieval_kind() const { return retrieval_kind_; }

  /// Sublinear ranking through the index (Scorer::RetrieveInto): ANN
  /// candidates, exact rerank, seen-item exclusion via a binary-search
  /// filter over the CSR row (the probe is widened by SeenCount so
  /// filtering cannot starve the top-k). With a compact precision and no
  /// index, runs the compact exact scan (float scores, float masking,
  /// float TopKInto). Falls back to the f64 exact scan otherwise. `out`
  /// holds at most k items, best first.
  void RetrieveRanked(int user, int k, eval::RetrieveScratch* scratch,
                      std::vector<int>* out) const;

 private:
  ServableModel(std::unique_ptr<core::Recommender> model, int num_users,
                int num_items, uint64_t generation)
      : model_(std::move(model)),
        num_users_(num_users),
        num_items_(num_items),
        generation_(generation) {}

  std::unique_ptr<core::Recommender> model_;
  int num_users_;
  int num_items_;
  uint64_t generation_;
  // Seen-item CSR over users; empty when no split was supplied. Rows are
  // sorted ascending so the retrieval filter can binary-search them.
  std::vector<int64_t> seen_offsets_;  // num_users + 1
  std::vector<int32_t> seen_items_;
  // ANN index over the model's surrogate space (null = exact serving).
  // Owned by the generation and attached to the model's Scorer, so it
  // shares the generation's immutable lifetime.
  std::unique_ptr<eval::CandidateRetriever> retriever_;
  retrieval::RetrievalKind retrieval_kind_ = retrieval::RetrievalKind::kExact;
  // Serving precision. The compact catalog is built only for compact
  // exact serving; compact retrieval keeps its state inside the index.
  eval::ScorePrecision precision_ = eval::ScorePrecision::kF64;
  eval::CompactCatalog compact_;
  // Snapshot provenance (zero/f64 for in-process Create generations).
  core::SnapshotDtype snapshot_dtype_ = core::SnapshotDtype::kF64;
  uint64_t snapshot_bytes_ = 0;
  double snapshot_load_ms_ = 0.0;
};

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_SERVABLE_H_
