#ifndef LOGIREC_SERVE_SERVABLE_H_
#define LOGIREC_SERVE_SERVABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/snapshot.h"
#include "data/dataset.h"
#include "math/vec.h"
#include "util/status.h"

namespace logirec::serve {

/// One immutable generation of servable state: a scoring-ready model plus
/// the request-time context serving needs — per-user seen-item lists (CSR)
/// for exclusion masking. Construction is the only mutation; after that a
/// ServableModel is shared read-only across every serving thread, so the
/// hot-swap path can publish a new generation by swapping one pointer.
class ServableModel {
 public:
  /// Wraps a scoring-ready model. `split` (optional) supplies the seen
  /// items to exclude from rankings — train + validation folds, matching
  /// the evaluator's masking; pass null to rank over all items.
  static Result<std::shared_ptr<const ServableModel>> Create(
      std::unique_ptr<core::Recommender> model, int num_users, int num_items,
      const data::Split* split, uint64_t generation);

  /// Restores a generation from a binary snapshot (core::ModelSnapshot),
  /// taking user/item counts from the snapshot header.
  static Result<std::shared_ptr<const ServableModel>> FromSnapshot(
      const std::string& path, const core::ModelFactory& factory,
      const data::Split* split, uint64_t generation);

  const core::Recommender& scorer() const { return *model_; }
  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  uint64_t generation() const { return generation_; }
  std::string model_name() const { return model_->name(); }

  /// Sets the score of every item `user` has already seen to -inf so the
  /// Top-K never re-recommends it. No-op when built without a split.
  void MaskSeen(int user, math::Span scores) const;

  /// The number of seen (masked) items for `user`.
  int SeenCount(int user) const {
    return seen_offsets_.empty()
               ? 0
               : static_cast<int>(seen_offsets_[user + 1] -
                                  seen_offsets_[user]);
  }

 private:
  ServableModel(std::unique_ptr<core::Recommender> model, int num_users,
                int num_items, uint64_t generation)
      : model_(std::move(model)),
        num_users_(num_users),
        num_items_(num_items),
        generation_(generation) {}

  std::unique_ptr<core::Recommender> model_;
  int num_users_;
  int num_items_;
  uint64_t generation_;
  // Seen-item CSR over users; empty when no split was supplied.
  std::vector<int64_t> seen_offsets_;  // num_users + 1
  std::vector<int32_t> seen_items_;
};

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_SERVABLE_H_
