#ifndef LOGIREC_SERVE_SERVER_H_
#define LOGIREC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/latency_histogram.h"
#include "serve/servable.h"
#include "util/status.h"

namespace logirec::serve {

/// A completed ranking request.
struct RankResponse {
  Status status;
  std::vector<int> items;    ///< best first
  uint64_t generation = 0;   ///< model generation that served the request
};

/// Completion callback for TrySubmit(). Invoked exactly once, on a worker
/// thread, after the request is scored (or failed). Implementations must
/// be thread-safe and fast — they run on the serving hot path.
using RankCallback = std::function<void(RankResponse)>;

struct ServerOptions {
  /// Upper bound on requests per dispatched micro-batch.
  int max_batch = 32;
  /// Worker threads draining the admission queue (0 = hardware
  /// concurrency). Each worker serves whole micro-batches with its own
  /// reused scratch, so workers are also the scoring parallelism.
  int num_threads = 0;
  /// Default cutoff when a request asks for k <= 0.
  int default_k = 10;
  /// Admission-queue capacity. TrySubmit() sheds (kUnavailable) beyond
  /// this depth; the blocking Submit() waits for space instead. The bound
  /// is what keeps an overloaded server's latency finite: work either
  /// starts within max_queue requests or is rejected immediately.
  int max_queue = 1024;
  /// Test hook: start with the workers parked until Resume() is called,
  /// so tests can deterministically fill the admission queue.
  bool start_paused = false;
};

/// A point-in-time copy of the server's counters.
struct ServerStats {
  long requests_completed = 0;  ///< sync + async
  long requests_failed = 0;
  long requests_shed = 0;     ///< TrySubmit rejections (queue full)
  long batches_dispatched = 0;
  long swaps = 0;
  long max_queue_depth = 0;   ///< high-water mark of the admission queue
  long max_batch_size = 0;    ///< largest micro-batch dispatched
  // Async request latency, enqueue-to-completion, over the whole lifetime
  // (log-bucketed histogram; see serve/latency_histogram.h).
  long latency_count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  // Active-generation scoring state (empty/zero before the first Swap):
  // snapshot storage dtype, serving precision, resident scoring-state
  // bytes (index slabs / compact catalog / f64 view), snapshot size and
  // load wall time.
  std::string snapshot_dtype;
  std::string precision;
  unsigned long long resident_bytes = 0;
  unsigned long long snapshot_bytes = 0;
  double snapshot_load_ms = 0.0;
};

/// Hot-swappable model server with a bounded, multi-worker batching front.
///
/// The active ServableModel generation sits behind one shared_ptr
/// guarded by a tiny mutex held only for the pointer copy (libstdc++'s
/// atomic<shared_ptr> is a bit-spinlock underneath, equally lock-based
/// but opaque to TSan): Swap() publishes a new generation with a single
/// pointer assignment while in-flight requests keep scoring against the
/// generation they acquired — zero downtime, and the scoring work
/// itself never holds a lock.
///
/// Three entry points share the bit-identical Top-K contract:
///  - Rank() scores synchronously on the caller's thread with exact
///    (canonical) scores and per-call buffers — the oracle path.
///  - Submit() enqueues into the bounded admission queue, blocking for
///    space when it is full (cooperative in-process clients).
///  - TrySubmit() never blocks: when the queue is at max_queue it sheds
///    with kUnavailable so a network front end can answer `!busy`
///    immediately instead of queueing unboundedly. Accepted requests are
///    never silently dropped — the callback always fires, even on Stop().
///
/// N worker threads drain the queue in micro-batches (<= max_batch),
/// scoring through the ranking-surrogate kernels with per-worker reused
/// buffers and one generation acquire per batch. ScoreMode::kRanking
/// preserves Top-K order and ties, so every path returns identical item
/// lists regardless of worker count or batch boundaries.
class ModelServer {
 public:
  explicit ModelServer(ServerOptions options = {});
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Publishes `model` as the active generation; returns its generation
  /// number. In-flight requests finish on the generation they hold.
  uint64_t Swap(std::shared_ptr<const ServableModel> model);

  /// Builder invoked on the background swap thread. Snapshot load and
  /// ANN-index construction — the expensive parts of bringing up a new
  /// generation — both run inside it, off every serving worker.
  using ServableBuilder =
      std::function<Result<std::shared_ptr<const ServableModel>>()>;
  /// Completion hook for SwapWhenReady: the published generation on
  /// success, the builder's error otherwise (the active generation is
  /// untouched on failure). Invoked exactly once, on the swap thread.
  using SwapCallback =
      std::function<void(const Result<std::shared_ptr<const ServableModel>>&)>;

  /// Background rebuild-and-swap: runs `build` on a dedicated swap
  /// thread (started lazily, joined by Stop()), publishes the result via
  /// Swap() once it is fully constructed, then invokes `done` (may be
  /// null). The current generation keeps answering every request for the
  /// whole build — the swap itself stays the usual single pointer
  /// assignment. Queued calls run in submission order; after Stop(),
  /// `done` fires with kFailedPrecondition without building.
  void SwapWhenReady(ServableBuilder build, SwapCallback done = {});

  /// The active generation (null before the first Swap()).
  std::shared_ptr<const ServableModel> Current() const;

  /// Synchronous ranking on the caller's thread (exact scores).
  Status Rank(int user, int k, std::vector<int>* out);

  /// Enqueues a request for batched dispatch, blocking while the
  /// admission queue is full. The future is fulfilled by a worker; after
  /// Stop() new submissions fail immediately.
  std::future<RankResponse> Submit(int user, int k);

  /// Non-blocking admission: enqueues and returns OK (the callback fires
  /// later, on a worker thread), or rejects immediately with kUnavailable
  /// when the queue is at capacity (`done` is not invoked) or
  /// kFailedPrecondition after Stop().
  Status TrySubmit(int user, int k, RankCallback done);

  /// Releases workers parked by ServerOptions::start_paused. No-op
  /// otherwise.
  void Resume();

  ServerStats Stats() const;

  /// Drains the queue (pending requests complete) and joins the workers.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  struct Pending {
    int user = 0;
    int k = 0;
    RankCallback done;
    std::chrono::steady_clock::time_point enqueued;
  };
  /// Per-worker scoring scratch, reused across batches: the score buffer,
  /// the Top-K id buffers, and the retrieval scratch (beam heaps, visited
  /// marks). Steady-state batches do not allocate.
  struct WorkerScratch {
    math::Vec scores;
    std::vector<int> topk_scratch;
    std::vector<int> ranked;
    eval::RetrieveScratch retrieve;
  };

  struct SwapTask {
    ServableBuilder build;
    SwapCallback done;
  };

  void WorkerLoop(int worker);
  void ServeBatch(std::vector<Pending>* batch, int worker);
  RankResponse RankOn(const ServableModel& model, int user, int k,
                      WorkerScratch* scratch);
  void SwapLoop();

  const ServerOptions options_;

  // Guards only the generation-pointer copy; never held while scoring.
  mutable std::mutex current_mu_;
  std::shared_ptr<const ServableModel> current_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue became non-empty / stopping
  std::condition_variable space_cv_;  // queue has room (blocking Submit)
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  std::vector<std::thread> workers_;
  std::vector<WorkerScratch> scratch_;

  // Background rebuild-and-swap (SwapWhenReady). The queue shares mu_ /
  // stopping_ with the admission queue; the thread starts on first use
  // and is joined by Stop() after the workers.
  std::condition_variable swap_cv_;
  std::deque<SwapTask> swap_queue_;
  std::thread swap_thread_;

  // Counters (atomics: bumped from worker threads under TSan).
  std::atomic<long> requests_completed_{0};
  std::atomic<long> requests_failed_{0};
  std::atomic<long> requests_shed_{0};
  std::atomic<long> batches_dispatched_{0};
  std::atomic<long> swaps_{0};
  std::atomic<long> max_queue_depth_{0};
  std::atomic<long> max_batch_size_{0};

  // Enqueue-to-completion latency of async requests.
  LatencyHistogram latency_;
};

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_SERVER_H_
