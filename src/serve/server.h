#ifndef LOGIREC_SERVE_SERVER_H_
#define LOGIREC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/servable.h"
#include "util/status.h"

namespace logirec::serve {

/// A completed ranking request.
struct RankResponse {
  Status status;
  std::vector<int> items;    ///< best first
  uint64_t generation = 0;   ///< model generation that served the request
};

struct ServerOptions {
  /// Upper bound on requests per dispatched micro-batch.
  int max_batch = 32;
  /// Worker threads for batch scoring (0 = hardware concurrency).
  int num_threads = 0;
  /// Default cutoff when a request asks for k <= 0.
  int default_k = 10;
};

/// A point-in-time copy of the server's counters.
struct ServerStats {
  long requests_completed = 0;  ///< sync + async
  long requests_failed = 0;
  long batches_dispatched = 0;
  long swaps = 0;
  long max_queue_depth = 0;   ///< high-water mark of the async queue
  long max_batch_size = 0;    ///< largest micro-batch dispatched
  // Latency of recent async requests, enqueue-to-completion.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Hot-swappable model server with a request-batching front.
///
/// The active ServableModel generation sits behind one shared_ptr
/// guarded by a tiny mutex held only for the pointer copy (libstdc++'s
/// atomic<shared_ptr> is a bit-spinlock underneath, equally lock-based
/// but opaque to TSan): Swap() publishes a new generation with a single
/// pointer assignment while in-flight requests keep scoring against the
/// generation they acquired — zero downtime, and the scoring work
/// itself never holds a lock.
///
/// Two serving paths share the bit-identical Top-K contract:
///  - Rank() scores synchronously on the caller's thread with exact
///    (canonical) scores and per-call buffers — the simple path.
///  - Submit() enqueues; a dispatcher thread drains the queue into
///    micro-batches (<= max_batch) scored through the ranking-surrogate
///    kernels with per-worker reused buffers and one generation acquire
///    per batch. ScoreMode::kRanking preserves Top-K order and ties, so
///    both paths return identical item lists.
class ModelServer {
 public:
  explicit ModelServer(ServerOptions options = {});
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Publishes `model` as the active generation; returns its generation
  /// number. In-flight requests finish on the generation they hold.
  uint64_t Swap(std::shared_ptr<const ServableModel> model);

  /// The active generation (null before the first Swap()).
  std::shared_ptr<const ServableModel> Current() const;

  /// Synchronous ranking on the caller's thread (exact scores).
  Status Rank(int user, int k, std::vector<int>* out);

  /// Enqueues a request for batched dispatch. The future is fulfilled by
  /// the dispatcher; after Stop() new submissions fail immediately.
  std::future<RankResponse> Submit(int user, int k);

  ServerStats Stats() const;

  /// Drains the queue (pending requests complete) and joins the
  /// dispatcher. Idempotent; the destructor calls it.
  void Stop();

 private:
  struct Pending {
    int user = 0;
    int k = 0;
    std::promise<RankResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  /// Per-worker scoring scratch, reused across batches: the score buffer
  /// and the Top-K id buffers. Steady-state batches do not allocate.
  struct WorkerScratch {
    math::Vec scores;
    std::vector<int> topk_scratch;
    std::vector<int> ranked;
  };

  void DispatchLoop();
  void ServeBatch(std::vector<Pending>* batch);
  RankResponse RankOn(const ServableModel& model, int user, int k,
                      WorkerScratch* scratch);
  void RecordLatency(std::chrono::steady_clock::time_point enqueued);

  const ServerOptions options_;

  // Guards only the generation-pointer copy; never held while scoring.
  mutable std::mutex current_mu_;
  std::shared_ptr<const ServableModel> current_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::thread dispatcher_;
  std::vector<WorkerScratch> scratch_;

  // Counters (atomics: bumped from worker threads under TSan).
  std::atomic<long> requests_completed_{0};
  std::atomic<long> requests_failed_{0};
  std::atomic<long> batches_dispatched_{0};
  std::atomic<long> swaps_{0};
  std::atomic<long> max_queue_depth_{0};
  std::atomic<long> max_batch_size_{0};

  // Ring of recent async latencies (ms) for the percentile telemetry.
  mutable std::mutex latency_mu_;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;
};

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_SERVER_H_
