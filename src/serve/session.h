#ifndef LOGIREC_SERVE_SESSION_H_
#define LOGIREC_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "data/dataset.h"
#include "serve/net/net_server.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace logirec::serve {

/// One client's view of the newline protocol, shared by the stdio REPL
/// and every TCP connection. The session owns the reply-ordering
/// contract for pipelined input: every non-skippable request line gets
/// exactly one reply line, delivered in request order, even when rank
/// requests complete asynchronously on model-server workers while
/// `!stats`/`!swap` answer synchronously in between.
///
/// Mechanics: each request allocates a slot in a FIFO; synchronous
/// requests fill their slot immediately, rank requests fill it from the
/// completion callback (any thread), and DrainReady() releases only the
/// ready prefix. A rank the server sheds (admission queue full) fills
/// its slot with the protocol-level `!busy` reply instead — the client
/// hears about overload immediately, in order, and can back off.
class ProtocolSession
    : public net::LineSession,
      public std::enable_shared_from_this<ProtocolSession> {
 public:
  /// State shared by all sessions of one serving process. `generation`
  /// hands out unique, increasing generation numbers to concurrent
  /// `!swap`s.
  struct Context {
    ModelServer* server = nullptr;
    const data::Split* split = nullptr;  // null = no seen-item masking
    std::atomic<uint64_t>* generation = nullptr;
    core::ModelFactory factory;
    /// Retrieval configuration applied to every generation this process
    /// creates, including `!swap` restores — the swapped-in snapshot gets
    /// its ANN index rebuilt before the generation is published.
    retrieval::RetrievalOptions retrieval;
  };

  explicit ProtocolSession(std::shared_ptr<const Context> context)
      : context_(std::move(context)) {}

  // net::LineSession:
  void HandleLine(const std::string& line) override;
  void DrainReady(std::vector<std::string>* replies,
                  bool* close_after) override;
  bool HasPending() const override;
  void SetFlushHook(std::function<void()> hook) override;
  std::string FramingErrorReply(const Status& error) override;

 private:
  struct Slot {
    uint64_t seq = 0;
    bool ready = false;
    bool close_after = false;
    std::string text;
  };

  /// Appends a slot; returns its sequence number. Caller holds no lock.
  uint64_t PushSlot(bool ready, bool close_after, std::string text);
  /// Fills a pending slot and fires the flush hook. Tolerates a slot
  /// discarded by a racing `!quit` (the reply is simply dropped).
  void CompleteSlot(uint64_t seq, std::string text);
  void HandleRank(const Request& request);

  const std::shared_ptr<const Context> context_;

  mutable std::mutex mu_;
  std::deque<Slot> slots_;
  uint64_t next_seq_ = 1;
  bool quit_seen_ = false;  // ignore pipelined input after !quit
  std::function<void()> flush_hook_;
};

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_SESSION_H_
