#include "serve/protocol.h"

#include "util/string_util.h"

namespace logirec::serve {

Result<Request> ParseRequestLine(const std::string& line) {
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return Status::NotFound("blank line");
  }
  Request request;
  if (trimmed.front() == '!') {
    if (trimmed == "!quit") {
      request.kind = Request::Kind::kQuit;
      return request;
    }
    if (trimmed == "!stats") {
      request.kind = Request::Kind::kStats;
      return request;
    }
    if (StartsWith(trimmed, "!swap")) {
      const std::string_view path = Trim(trimmed.substr(5));
      if (path.empty()) {
        return Status::InvalidArgument("!swap needs a snapshot path");
      }
      request.kind = Request::Kind::kSwap;
      request.path = std::string(path);
      return request;
    }
    if (StartsWith(trimmed, "!reload")) {
      const std::string_view path = Trim(trimmed.substr(7));
      if (path.empty()) {
        return Status::InvalidArgument("!reload needs a snapshot path");
      }
      request.kind = Request::Kind::kReload;
      request.path = std::string(path);
      return request;
    }
    return Status::InvalidArgument("unknown command: " +
                                   std::string(trimmed));
  }
  // "<user_id> [k]"
  std::vector<std::string> fields;
  for (const std::string& f : Split(trimmed, ' ')) {
    if (!Trim(f).empty()) fields.push_back(std::string(Trim(f)));
  }
  if (fields.empty() || fields.size() > 2) {
    return Status::InvalidArgument(
        "expected '<user_id> [k]', got: " + std::string(trimmed));
  }
  auto user = ParseInt(fields[0]);
  if (!user.ok()) {
    return Status::InvalidArgument("bad user id: " + fields[0]);
  }
  request.user = *user;
  if (fields.size() == 2) {
    auto k = ParseInt(fields[1]);
    if (!k.ok() || *k <= 0) {
      return Status::InvalidArgument("bad k: " + fields[1]);
    }
    request.k = *k;
  }
  return request;
}

std::string FormatRanking(int user, uint64_t generation,
                          const std::vector<int>& items) {
  std::string out = StrFormat("ok user=%d gen=%llu items=", user,
                              static_cast<unsigned long long>(generation));
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += StrFormat("%d", items[i]);
  }
  return out;
}

std::string FormatStats(const ServerStats& stats) {
  std::string out = StrFormat(
      "stats requests=%ld failed=%ld shed=%ld batches=%ld swaps=%ld "
      "max_queue=%ld max_batch=%ld latency_n=%ld p50_ms=%.3f p95_ms=%.3f "
      "p99_ms=%.3f max_ms=%.3f mean_ms=%.3f",
      stats.requests_completed, stats.requests_failed, stats.requests_shed,
      stats.batches_dispatched, stats.swaps, stats.max_queue_depth,
      stats.max_batch_size, stats.latency_count, stats.p50_ms, stats.p95_ms,
      stats.p99_ms, stats.max_ms, stats.mean_ms);
  if (!stats.precision.empty()) {
    out += StrFormat(
        " dtype=%s precision=%s resident_bytes=%llu snapshot_bytes=%llu "
        "load_ms=%.3f",
        stats.snapshot_dtype.c_str(), stats.precision.c_str(),
        stats.resident_bytes, stats.snapshot_bytes, stats.snapshot_load_ms);
  }
  return out;
}

std::string FormatBusy() { return "!busy"; }

std::string FormatError(const Status& status) {
  return StrFormat("error %s: %s", StatusCodeToString(status.code()),
                   status.message().c_str());
}

}  // namespace logirec::serve
