#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "eval/metrics.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace logirec::serve {

namespace {
constexpr size_t kLatencyRingSize = 4096;

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t at = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(at, sorted->size() - 1)];
}
}  // namespace

ModelServer::ModelServer(ServerOptions options) : options_(options) {
  scratch_.resize(
      ResolveWorkerCount(options_.num_threads,
                         std::max(options_.max_batch, 1)));
  latency_ring_.resize(kLatencyRingSize, 0.0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ModelServer::~ModelServer() { Stop(); }

uint64_t ModelServer::Swap(std::shared_ptr<const ServableModel> model) {
  const uint64_t generation = model->generation();
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(model);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return generation;
}

std::shared_ptr<const ServableModel> ModelServer::Current() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

Status ModelServer::Rank(int user, int k, std::vector<int>* out) {
  // The synchronous path: canonical (exact) scores and per-call buffers.
  // Submit() serves the same items through the batched ranking-surrogate
  // path; the throughput bench measures the gap between the two.
  const std::shared_ptr<const ServableModel> model = Current();
  if (model == nullptr) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("no model has been swapped in");
  }
  if (user < 0 || user >= model->num_users()) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(StrFormat(
        "user %d out of range [0, %d)", user, model->num_users()));
  }
  if (k <= 0) k = options_.default_k;
  k = std::min(k, model->num_items());
  std::vector<double> scores(model->num_items());
  model->scorer().ScoreItemsInto(user, math::Span(scores),
                                 eval::ScoreMode::kExact);
  model->MaskSeen(user, math::Span(scores));
  *out = eval::TopK(scores, k);
  requests_completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::future<RankResponse> ModelServer::Submit(int user, int k) {
  Pending pending;
  pending.user = user;
  pending.k = k;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<RankResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      RankResponse response;
      response.status =
          Status::FailedPrecondition("server is shutting down");
      pending.promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(pending));
    const long depth = static_cast<long>(queue_.size());
    if (depth > max_queue_depth_.load(std::memory_order_relaxed)) {
      max_queue_depth_.store(depth, std::memory_order_relaxed);
    }
  }
  cv_.notify_one();
  return future;
}

void ModelServer::DispatchLoop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      const int take =
          std::min<int>(options_.max_batch, static_cast<int>(queue_.size()));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ServeBatch(&batch);
  }
}

void ModelServer::ServeBatch(std::vector<Pending>* batch) {
  const int n = static_cast<int>(batch->size());
  batches_dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (n > max_batch_size_.load(std::memory_order_relaxed)) {
    max_batch_size_.store(n, std::memory_order_relaxed);
  }
  // One generation acquire for the whole micro-batch; a concurrent Swap()
  // retires the old generation only after these requests release it.
  const std::shared_ptr<const ServableModel> model = Current();
  if (model == nullptr) {
    for (Pending& p : *batch) {
      RankResponse response;
      response.status =
          Status::FailedPrecondition("no model has been swapped in");
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_value(std::move(response));
    }
    return;
  }
  ParallelForWorker(0, n, [&](int worker, int i) {
    Pending& p = (*batch)[i];
    p.promise.set_value(RankOn(*model, p.user, p.k, &scratch_[worker]));
    RecordLatency(p.enqueued);
  }, options_.num_threads);
}

RankResponse ModelServer::RankOn(const ServableModel& model, int user,
                                 int k, WorkerScratch* scratch) {
  RankResponse response;
  response.generation = model.generation();
  if (user < 0 || user >= model.num_users()) {
    response.status = Status::InvalidArgument(StrFormat(
        "user %d out of range [0, %d)", user, model.num_users()));
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  if (k <= 0) k = options_.default_k;
  k = std::min(k, model.num_items());
  scratch->scores.resize(model.num_items());
  // kRanking: monotone surrogate scores — same Top-K order and ties as
  // the exact path (eval::ScoreMode contract), without per-item
  // transcendentals on the hyperbolic models.
  model.scorer().ScoreItemsInto(user, math::Span(scratch->scores),
                                eval::ScoreMode::kRanking);
  model.MaskSeen(user, math::Span(scratch->scores));
  eval::TopKInto(math::ConstSpan(scratch->scores.data(),
                                 scratch->scores.size()),
                 k, &scratch->topk_scratch, &scratch->ranked);
  response.items = scratch->ranked;
  requests_completed_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

void ModelServer::RecordLatency(
    std::chrono::steady_clock::time_point enqueued) {
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - enqueued)
          .count();
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

ServerStats ModelServer::Stats() const {
  ServerStats stats;
  stats.requests_completed =
      requests_completed_.load(std::memory_order_relaxed);
  stats.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  stats.batches_dispatched =
      batches_dispatched_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.max_batch_size = max_batch_size_.load(std::memory_order_relaxed);
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() + latency_count_);
  }
  std::sort(window.begin(), window.end());
  stats.p50_ms = Percentile(&window, 0.50);
  stats.p95_ms = Percentile(&window, 0.95);
  stats.p99_ms = Percentile(&window, 0.99);
  return stats;
}

void ModelServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace logirec::serve
