#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "eval/metrics.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace logirec::serve {

namespace {
void AtomicMaxLong(std::atomic<long>* target, long value) {
  long cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}
}  // namespace

ModelServer::ModelServer(ServerOptions options)
    : options_(options), paused_(options.start_paused) {
  const int workers =
      ResolveWorkerCount(options_.num_threads,
                         std::max(options_.max_batch, 1));
  scratch_.resize(workers);
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ModelServer::~ModelServer() { Stop(); }

uint64_t ModelServer::Swap(std::shared_ptr<const ServableModel> model) {
  const uint64_t generation = model->generation();
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(model);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return generation;
}

std::shared_ptr<const ServableModel> ModelServer::Current() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

void ModelServer::SwapWhenReady(ServableBuilder build, SwapCallback done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      if (!swap_thread_.joinable()) {
        swap_thread_ = std::thread([this] { SwapLoop(); });
      }
      SwapTask task;
      task.build = std::move(build);
      task.done = std::move(done);
      swap_queue_.push_back(std::move(task));
      swap_cv_.notify_one();
      return;
    }
  }
  if (done) {
    done(Result<std::shared_ptr<const ServableModel>>(
        Status::FailedPrecondition("server is shutting down")));
  }
}

void ModelServer::SwapLoop() {
  for (;;) {
    SwapTask task;
    bool aborted = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      swap_cv_.wait(lock,
                    [this] { return stopping_ || !swap_queue_.empty(); });
      if (swap_queue_.empty()) return;  // stopping_ && drained
      aborted = stopping_;
      task = std::move(swap_queue_.front());
      swap_queue_.pop_front();
    }
    if (aborted) {
      // Queued behind Stop(): building a generation nobody will serve is
      // wasted work — complete with the shutdown error instead.
      if (task.done) {
        task.done(Result<std::shared_ptr<const ServableModel>>(
            Status::FailedPrecondition("server is shutting down")));
      }
      continue;
    }
    // The expensive part — snapshot load, index build — runs here with no
    // lock held; serving threads keep draining the admission queue
    // against the current generation.
    Result<std::shared_ptr<const ServableModel>> built = task.build();
    if (built.ok()) Swap(*built);
    if (task.done) task.done(built);
  }
}

Status ModelServer::Rank(int user, int k, std::vector<int>* out) {
  // The synchronous path: canonical (exact) scores and per-call buffers.
  // Submit()/TrySubmit() serve the same items through the batched
  // ranking-surrogate path; the throughput bench measures the gap.
  const std::shared_ptr<const ServableModel> model = Current();
  if (model == nullptr) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("no model has been swapped in");
  }
  if (user < 0 || user >= model->num_users()) {
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(StrFormat(
        "user %d out of range [0, %d)", user, model->num_users()));
  }
  if (k <= 0) k = options_.default_k;
  k = std::min(k, model->num_items());
  std::vector<double> scores(model->num_items());
  model->scorer().ScoreItemsInto(user, math::Span(scores),
                                 eval::ScoreMode::kExact);
  model->MaskSeen(user, math::Span(scores));
  *out = eval::TopK(scores, k);
  requests_completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::future<RankResponse> ModelServer::Submit(int user, int k) {
  auto promise = std::make_shared<std::promise<RankResponse>>();
  std::future<RankResponse> future = promise->get_future();
  Pending pending;
  pending.user = user;
  pending.k = k;
  pending.done = [promise](RankResponse response) {
    promise->set_value(std::move(response));
  };
  pending.enqueued = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] {
      return stopping_ ||
             static_cast<int>(queue_.size()) < options_.max_queue;
    });
    if (stopping_) {
      RankResponse response;
      response.status =
          Status::FailedPrecondition("server is shutting down");
      lock.unlock();
      promise->set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(pending));
    AtomicMaxLong(&max_queue_depth_, static_cast<long>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

Status ModelServer::TrySubmit(int user, int k, RankCallback done) {
  Pending pending;
  pending.user = user;
  pending.k = k;
  pending.done = std::move(done);
  pending.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("server is shutting down");
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue) {
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(StrFormat(
          "admission queue full (%d pending)", options_.max_queue));
    }
    queue_.push_back(std::move(pending));
    AtomicMaxLong(&max_queue_depth_, static_cast<long>(queue_.size()));
  }
  cv_.notify_one();
  return Status::OK();
}

void ModelServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ModelServer::WorkerLoop(int worker) {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping_ && drained
      const int take =
          std::min<int>(options_.max_batch, static_cast<int>(queue_.size()));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Freed queue space: wake blocked Submit() callers (and peer workers,
    // if requests remain).
    space_cv_.notify_all();
    ServeBatch(&batch, worker);
  }
}

void ModelServer::ServeBatch(std::vector<Pending>* batch, int worker) {
  const int n = static_cast<int>(batch->size());
  batches_dispatched_.fetch_add(1, std::memory_order_relaxed);
  AtomicMaxLong(&max_batch_size_, n);
  // One generation acquire for the whole micro-batch; a concurrent Swap()
  // retires the old generation only after these requests release it.
  const std::shared_ptr<const ServableModel> model = Current();
  for (Pending& p : *batch) {
    RankResponse response;
    if (model == nullptr) {
      response.status =
          Status::FailedPrecondition("no model has been swapped in");
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      response = RankOn(*model, p.user, p.k, &scratch_[worker]);
    }
    latency_.Record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - p.enqueued)
                        .count());
    p.done(std::move(response));
  }
}

RankResponse ModelServer::RankOn(const ServableModel& model, int user,
                                 int k, WorkerScratch* scratch) {
  RankResponse response;
  response.generation = model.generation();
  if (user < 0 || user >= model.num_users()) {
    response.status = Status::InvalidArgument(StrFormat(
        "user %d out of range [0, %d)", user, model.num_users()));
    requests_failed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  if (k <= 0) k = options_.default_k;
  k = std::min(k, model.num_items());
  if (model.retrieval_enabled() || model.compact_enabled()) {
    // Sublinear path: ANN candidates from the generation's index, exact
    // rerank, seen-item exclusion — whenever the candidate set covers
    // the true top-k this equals the scan below item-for-item. The
    // compact exact scan (f32/int8 catalog, no index) routes through the
    // same entry point.
    model.RetrieveRanked(user, k, &scratch->retrieve, &scratch->ranked);
    response.items = scratch->ranked;
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  scratch->scores.resize(model.num_items());
  // kRanking: monotone surrogate scores — same Top-K order and ties as
  // the exact path (eval::ScoreMode contract), without per-item
  // transcendentals on the hyperbolic models.
  model.scorer().ScoreItemsInto(user, math::Span(scratch->scores),
                                eval::ScoreMode::kRanking);
  model.MaskSeen(user, math::Span(scratch->scores));
  eval::TopKInto(math::ConstSpan(scratch->scores.data(),
                                 scratch->scores.size()),
                 k, &scratch->topk_scratch, &scratch->ranked);
  response.items = scratch->ranked;
  requests_completed_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

ServerStats ModelServer::Stats() const {
  ServerStats stats;
  stats.requests_completed =
      requests_completed_.load(std::memory_order_relaxed);
  stats.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  stats.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  stats.batches_dispatched =
      batches_dispatched_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.max_batch_size = max_batch_size_.load(std::memory_order_relaxed);
  const LatencyHistogram::Snapshot latency = latency_.Take();
  stats.latency_count = latency.count;
  stats.p50_ms = latency.p50_ms;
  stats.p95_ms = latency.p95_ms;
  stats.p99_ms = latency.p99_ms;
  stats.max_ms = latency.max_ms;
  stats.mean_ms = latency.mean_ms;
  if (const std::shared_ptr<const ServableModel> model = Current()) {
    stats.snapshot_dtype = core::SnapshotDtypeName(model->snapshot_dtype());
    stats.precision = eval::ScorePrecisionName(model->precision());
    stats.resident_bytes = model->ResidentScoringBytes();
    stats.snapshot_bytes = model->snapshot_bytes();
    stats.snapshot_load_ms = model->snapshot_load_ms();
  }
  return stats;
}

void ModelServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && !swap_thread_.joinable()) return;
    stopping_ = true;
    paused_ = false;  // a paused server still drains on shutdown
  }
  cv_.notify_all();
  space_cv_.notify_all();
  swap_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Joined after the workers: an in-flight build finishes (and may still
  // publish), queued-but-unstarted tasks complete with the shutdown
  // error. Safe without mu_ — once stopping_ is set, no SwapWhenReady
  // call touches swap_thread_ again.
  if (swap_thread_.joinable()) swap_thread_.join();
}

}  // namespace logirec::serve
