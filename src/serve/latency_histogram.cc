#include "serve/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace logirec::serve {

namespace {
// Each power-of-two octave above the exact range is split into
// 2^kSubBits linear sub-buckets, bounding the relative bucket width.
constexpr int kSubBits = 5;
constexpr int kSub = 1 << kSubBits;          // 32 sub-buckets per octave
constexpr uint64_t kExactLimit = 2 * kSub;   // [0, 64) is bucket-per-value
constexpr uint64_t kMaxValueUs = (1ULL << 30) - 1;  // ~17.9 min saturation
constexpr int kOctaves = 30 - (kSubBits + 1) + 1;   // msb in [6, 30]
constexpr int kNumBuckets = static_cast<int>(kExactLimit) + kOctaves * kSub;

void AtomicMaxU64(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::num_buckets() { return kNumBuckets; }

int LatencyHistogram::BucketIndex(uint64_t us) {
  us = std::min(us, kMaxValueUs);
  if (us < kExactLimit) return static_cast<int>(us);
  const int msb = 63 - std::countl_zero(us);
  const int shift = msb - kSubBits;
  const int sub = static_cast<int>((us >> shift) - kSub);
  const int index = static_cast<int>(kExactLimit) +
                    (msb - kSubBits - 1) * kSub + sub;
  return std::min(index, kNumBuckets - 1);
}

double LatencyHistogram::BucketMidUs(int index) {
  if (index < static_cast<int>(kExactLimit)) return index;
  const int octave = (index - static_cast<int>(kExactLimit)) / kSub;
  const int sub = (index - static_cast<int>(kExactLimit)) % kSub;
  const uint64_t width = 1ULL << (octave + 1);
  const uint64_t low = static_cast<uint64_t>(kSub + sub) * width;
  return static_cast<double>(low) + static_cast<double>(width - 1) / 2.0;
}

void LatencyHistogram::Record(double ms) {
  const double us_f = std::max(ms, 0.0) * 1000.0;
  const uint64_t us =
      us_f >= static_cast<double>(kMaxValueUs)
          ? kMaxValueUs
          : static_cast<uint64_t>(std::llround(us_f));
  buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  AtomicMaxU64(&max_us_, us);
}

double LatencyHistogram::PercentileFromCounts(
    const std::vector<uint64_t>& counts, uint64_t total, double p) const {
  if (total == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(clamped * total));
  rank = std::clamp<uint64_t>(rank, 1, total);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return BucketMidUs(i) / 1000.0;
  }
  return BucketMidUs(kNumBuckets - 1) / 1000.0;
}

double LatencyHistogram::PercentileMs(double p) const {
  std::vector<uint64_t> counts(kNumBuckets);
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return PercentileFromCounts(counts, total, p);
}

LatencyHistogram::Snapshot LatencyHistogram::Take() const {
  std::vector<uint64_t> counts(kNumBuckets);
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  Snapshot snapshot;
  snapshot.count = static_cast<long>(total);
  snapshot.p50_ms = PercentileFromCounts(counts, total, 0.50);
  snapshot.p95_ms = PercentileFromCounts(counts, total, 0.95);
  snapshot.p99_ms = PercentileFromCounts(counts, total, 0.99);
  snapshot.max_ms = max_us_.load(std::memory_order_relaxed) / 1000.0;
  snapshot.mean_ms =
      total == 0 ? 0.0
                 : sum_us_.load(std::memory_order_relaxed) /
                       (1000.0 * static_cast<double>(total));
  return snapshot;
}

}  // namespace logirec::serve
