#ifndef LOGIREC_SERVE_LATENCY_HISTOGRAM_H_
#define LOGIREC_SERVE_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace logirec::serve {

/// Log-bucketed (HDR-style) latency histogram, safe for concurrent
/// recorders. Values are recorded in integer microseconds into buckets
/// that grow geometrically: each power-of-two octave is split into 32
/// linear sub-buckets, so every bucket's width is at most 1/32 of its
/// value and any extracted percentile is within ~3% of the exact sample
/// percentile (histogram_test checks this bound against a sorted-vector
/// oracle). Unlike the fixed ring it replaced, the histogram covers every
/// request ever recorded — no window truncation — at a fixed ~10KB of
/// counters.
///
/// Record() is lock-free (one relaxed fetch_add plus a CAS max); a
/// Snapshot() taken while recorders are running is a consistent-enough
/// point-in-time view for telemetry: each counter is read atomically and
/// the percentile walk uses the counts it read.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency measurement. Thread-safe. Non-positive values
  /// count in the lowest bucket; values beyond ~17 minutes saturate into
  /// the top bucket.
  void Record(double ms);

  struct Snapshot {
    long count = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    double mean_ms = 0.0;
  };

  /// Point-in-time counters and percentiles. Thread-safe.
  Snapshot Take() const;

  /// Percentile (p in [0, 1]) of everything recorded so far, in ms.
  double PercentileMs(double p) const;

  // --- exposed for tests ---
  /// The bucket index a value in microseconds lands in.
  static int BucketIndex(uint64_t us);
  /// The representative (midpoint) value of a bucket, in microseconds.
  static double BucketMidUs(int index);
  static int num_buckets();

 private:
  double PercentileFromCounts(const std::vector<uint64_t>& counts,
                              uint64_t total, double p) const;

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace logirec::serve

#endif  // LOGIREC_SERVE_LATENCY_HISTOGRAM_H_
