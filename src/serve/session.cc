#include "serve/session.h"

#include <utility>

#include "serve/servable.h"
#include "util/string_util.h"

namespace logirec::serve {

void ProtocolSession::SetFlushHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_hook_ = std::move(hook);
}

std::string ProtocolSession::FramingErrorReply(const Status& error) {
  return FormatError(error);
}

uint64_t ProtocolSession::PushSlot(bool ready, bool close_after,
                                   std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot slot;
  slot.seq = next_seq_++;
  slot.ready = ready;
  slot.close_after = close_after;
  slot.text = std::move(text);
  slots_.push_back(std::move(slot));
  return slots_.back().seq;
}

void ProtocolSession::CompleteSlot(uint64_t seq, std::string text) {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
      if (slot.seq != seq) continue;
      slot.text = std::move(text);
      slot.ready = true;
      break;
    }
    // Not found: the slot was discarded by a pipelined !quit — the
    // client renounced the reply; the completed work is simply dropped.
    hook = flush_hook_;
  }
  if (hook) hook();
}

void ProtocolSession::HandleLine(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (quit_seen_) return;
  }
  auto request = ParseRequestLine(line);
  if (!request.ok()) {
    // Blank lines and comments are skippable; anything else earns an
    // error reply on an intact connection — malformed input must never
    // silently drop the session.
    if (request.status().code() == StatusCode::kNotFound) return;
    PushSlot(/*ready=*/true, /*close_after=*/false,
             FormatError(request.status()));
    return;
  }
  switch (request->kind) {
    case Request::Kind::kQuit: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        quit_seen_ = true;
      }
      PushSlot(/*ready=*/true, /*close_after=*/true, "bye");
      return;
    }
    case Request::Kind::kStats:
      PushSlot(/*ready=*/true, /*close_after=*/false,
               FormatStats(context_->server->Stats()));
      return;
    case Request::Kind::kSwap: {
      // Loaded on the calling thread (the transport's loop): a swap
      // stalls request admission for the load duration but never fails
      // in-flight work — workers hold the generation they acquired.
      const uint64_t generation =
          context_->generation->fetch_add(1, std::memory_order_relaxed) + 1;
      auto servable = ServableModel::FromSnapshot(
          request->path, context_->factory, context_->split, generation,
          context_->retrieval);
      if (!servable.ok()) {
        PushSlot(/*ready=*/true, /*close_after=*/false,
                 FormatError(servable.status()));
        return;
      }
      context_->server->Swap(*servable);
      PushSlot(/*ready=*/true, /*close_after=*/false,
               StrFormat("ok swapped gen=%llu model=%s",
                         static_cast<unsigned long long>(generation),
                         (*servable)->model_name().c_str()));
      return;
    }
    case Request::Kind::kReload: {
      // Async variant of !swap: the load and index build run on the
      // server's swap thread, so this transport loop (and every other
      // session) keeps answering while the generation builds. The slot
      // FIFO delivers the reply in request order once the swap lands; a
      // corrupt snapshot completes the slot with an error and leaves the
      // connection and the active generation untouched.
      const uint64_t seq =
          PushSlot(/*ready=*/false, /*close_after=*/false, std::string());
      auto self = shared_from_this();
      const auto context = context_;
      const std::string path = request->path;
      const uint64_t generation =
          context->generation->fetch_add(1, std::memory_order_relaxed) + 1;
      context->server->SwapWhenReady(
          [context, path, generation] {
            return ServableModel::FromSnapshot(path, context->factory,
                                               context->split, generation,
                                               context->retrieval);
          },
          [self, seq, generation](
              const Result<std::shared_ptr<const ServableModel>>& swapped) {
            self->CompleteSlot(
                seq, swapped.ok()
                         ? StrFormat(
                               "ok reloaded gen=%llu model=%s",
                               static_cast<unsigned long long>(generation),
                               (*swapped)->model_name().c_str())
                         : FormatError(swapped.status()));
          });
      return;
    }
    case Request::Kind::kRank:
      HandleRank(*request);
      return;
  }
}

void ProtocolSession::HandleRank(const Request& request) {
  const uint64_t seq =
      PushSlot(/*ready=*/false, /*close_after=*/false, std::string());
  auto self = shared_from_this();
  const int user = request.user;
  const Status admitted = context_->server->TrySubmit(
      request.user, request.k, [self, seq, user](RankResponse response) {
        self->CompleteSlot(
            seq, response.status.ok()
                     ? FormatRanking(user, response.generation,
                                     response.items)
                     : FormatError(response.status));
      });
  if (admitted.ok()) return;
  // Shed (queue full) or shutting down: the slot answers immediately —
  // `!busy` is the backpressure contract, not an error.
  CompleteSlot(seq, admitted.code() == StatusCode::kUnavailable
                        ? FormatBusy()
                        : FormatError(admitted));
}

void ProtocolSession::DrainReady(std::vector<std::string>* replies,
                                 bool* close_after) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!slots_.empty() && slots_.front().ready) {
    replies->push_back(std::move(slots_.front().text));
    const bool close = slots_.front().close_after;
    slots_.pop_front();
    if (close) {
      *close_after = true;
      // Anything pipelined after !quit was never promised a reply.
      slots_.clear();
      return;
    }
  }
}

bool ProtocolSession::HasPending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !slots_.empty();
}

}  // namespace logirec::serve
