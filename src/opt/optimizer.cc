#include "opt/optimizer.h"

#include <cmath>

#include "hyper/lorentz.h"
#include "hyper/poincare.h"
#include "util/logging.h"

namespace logirec::opt {

void SgdOptimizer::Step(int /*row*/, Span x, ConstSpan grad) {
  LOGIREC_CHECK(x.size() == grad.size());
  math::Vec g(grad.begin(), grad.end());
  if (clip_ > 0.0) math::ClipNorm(Span(g), clip_);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] -= lr_ * (g[i] + l2_ * x[i]);
  }
}

AdamOptimizer::AdamOptimizer(double lr, int rows, int dim, double beta1,
                             double beta2, double eps)
    : RowOptimizer(lr),
      dim_(dim),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      m_(rows),
      v_(rows),
      t_(rows, 0) {}

void AdamOptimizer::Step(int row, Span x, ConstSpan grad) {
  LOGIREC_CHECK(row >= 0 && row < static_cast<int>(m_.size()));
  LOGIREC_CHECK(static_cast<int>(x.size()) == dim_);
  if (m_[row].empty()) {
    m_[row].assign(dim_, 0.0);
    v_[row].assign(dim_, 0.0);
  }
  auto& m = m_[row];
  auto& v = v_[row];
  const long t = ++t_[row];
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t));
  for (int i = 0; i < dim_; ++i) {
    m[i] = beta1_ * m[i] + (1.0 - beta1_) * grad[i];
    v[i] = beta2_ * v[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    x[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void PoincareRsgd::Step(int /*row*/, Span x, ConstSpan grad) {
  math::Vec g(grad.begin(), grad.end());
  if (clip_ > 0.0) math::ClipNorm(Span(g), clip_);
  if (use_eq17_) {
    hyper::RsgdStepPoincareEq17(x, g, lr_);
  } else {
    hyper::RsgdStepPoincare(x, g, lr_);
  }
}

void LorentzRsgd::Step(int /*row*/, Span x, ConstSpan grad) {
  math::Vec g(grad.begin(), grad.end());
  if (clip_ > 0.0) math::ClipNorm(Span(g), clip_);
  hyper::RsgdStepLorentz(x, g, lr_);
}

}  // namespace logirec::opt
