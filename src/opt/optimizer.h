#ifndef LOGIREC_OPT_OPTIMIZER_H_
#define LOGIREC_OPT_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "math/vec.h"

namespace logirec::opt {

using math::ConstSpan;
using math::Span;

/// Applies a gradient step to one embedding row. Implementations may keep
/// per-row state (e.g. Adam moments), keyed by `row`.
class RowOptimizer {
 public:
  virtual ~RowOptimizer() = default;

  /// Updates `x` in place given the (Euclidean, ambient) gradient `grad`.
  virtual void Step(int row, Span x, ConstSpan grad) = 0;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  explicit RowOptimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// Plain Euclidean SGD with optional L2 weight decay and gradient clipping.
class SgdOptimizer final : public RowOptimizer {
 public:
  explicit SgdOptimizer(double lr, double l2 = 0.0, double clip = 0.0)
      : RowOptimizer(lr), l2_(l2), clip_(clip) {}
  void Step(int row, Span x, ConstSpan grad) override;

 private:
  double l2_;
  double clip_;
};

/// Adam with per-row first/second moment state; rows are lazily allocated.
class AdamOptimizer final : public RowOptimizer {
 public:
  AdamOptimizer(double lr, int rows, int dim, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);
  void Step(int row, Span x, ConstSpan grad) override;

 private:
  int dim_;
  double beta1_, beta2_, eps_;
  std::vector<math::Vec> m_, v_;
  std::vector<long> t_;
};

/// Riemannian SGD in the Poincaré ball (Eq. 17 machinery): rescales the
/// Euclidean gradient by the inverse metric ((1-||x||^2)^2/4), walks the
/// Möbius exponential map, projects back into the ball.
class PoincareRsgd final : public RowOptimizer {
 public:
  /// `use_eq17` switches to the paper's literal Eq. 17 Möbius step (no
  /// conformal factor on the tanh argument).
  explicit PoincareRsgd(double lr, double clip = 5.0, bool use_eq17 = false)
      : RowOptimizer(lr), clip_(clip), use_eq17_(use_eq17) {}
  void Step(int row, Span x, ConstSpan grad) override;

 private:
  double clip_;
  bool use_eq17_;
};

/// Riemannian SGD on the Lorentz hyperboloid (Eqs. 16 & 18): projects the
/// ambient gradient to the tangent space and walks the exponential map.
class LorentzRsgd final : public RowOptimizer {
 public:
  explicit LorentzRsgd(double lr, double clip = 5.0)
      : RowOptimizer(lr), clip_(clip) {}
  void Step(int row, Span x, ConstSpan grad) override;

 private:
  double clip_;
};

}  // namespace logirec::opt

#endif  // LOGIREC_OPT_OPTIMIZER_H_
