#include "data/taxonomy.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace logirec::data {

int Taxonomy::AddTag(std::string name, int parent) {
  const int id = static_cast<int>(tags_.size());
  Tag tag;
  tag.name = std::move(name);
  tag.parent = parent;
  if (parent >= 0) {
    LOGIREC_CHECK(parent < id);
    tag.level = tags_[parent].level + 1;
    tags_[parent].children.push_back(id);
  } else {
    tag.level = 1;
  }
  max_level_ = std::max(max_level_, tag.level);
  tags_.push_back(std::move(tag));
  return id;
}

std::vector<int> Taxonomy::TagsAtLevel(int level) const {
  std::vector<int> out;
  for (int i = 0; i < num_tags(); ++i) {
    if (tags_[i].level == level) out.push_back(i);
  }
  return out;
}

std::vector<int> Taxonomy::Leaves() const {
  std::vector<int> out;
  for (int i = 0; i < num_tags(); ++i) {
    if (tags_[i].children.empty()) out.push_back(i);
  }
  return out;
}

std::vector<int> Taxonomy::Ancestors(int id) const {
  std::vector<int> out;
  int cur = tags_[id].parent;
  while (cur >= 0) {
    out.push_back(cur);
    cur = tags_[cur].parent;
  }
  return out;
}

bool Taxonomy::IsAncestorOrSelf(int ancestor, int id) const {
  int cur = id;
  while (cur >= 0) {
    if (cur == ancestor) return true;
    cur = tags_[cur].parent;
  }
  return false;
}

std::vector<HierarchyPair> Taxonomy::HierarchyPairs() const {
  std::vector<HierarchyPair> out;
  for (int i = 0; i < num_tags(); ++i) {
    if (tags_[i].parent >= 0) out.push_back({tags_[i].parent, i});
  }
  return out;
}

std::vector<ExclusionPair> Taxonomy::ExclusionPairs(
    const std::vector<std::vector<int>>& item_tags,
    int overlap_tolerance) const {
  // Count item co-occurrence for sibling tag pairs ("common child"
  // evidence at the item level).
  std::map<std::pair<int, int>, int> cooccur;
  for (const auto& tags_of_item : item_tags) {
    for (size_t a = 0; a < tags_of_item.size(); ++a) {
      for (size_t b = a + 1; b < tags_of_item.size(); ++b) {
        int x = tags_of_item[a], y = tags_of_item[b];
        if (x > y) std::swap(x, y);
        ++cooccur[{x, y}];
      }
    }
  }

  std::vector<ExclusionPair> out;
  for (int p = -1; p < num_tags(); ++p) {
    // Collect the sibling group under parent `p` (p == -1 is the virtual
    // root, making top-level tags mutually exclusive candidates).
    std::vector<int> siblings;
    if (p == -1) {
      for (int i = 0; i < num_tags(); ++i) {
        if (tags_[i].parent == -1) siblings.push_back(i);
      }
    } else {
      siblings = tags_[p].children;
    }
    for (size_t a = 0; a < siblings.size(); ++a) {
      for (size_t b = a + 1; b < siblings.size(); ++b) {
        int x = siblings[a], y = siblings[b];
        if (x > y) std::swap(x, y);
        auto it = cooccur.find({x, y});
        const int overlap = (it == cooccur.end()) ? 0 : it->second;
        if (overlap <= overlap_tolerance) {
          out.push_back({x, y, tags_[x].level});
        }
      }
    }
  }
  return out;
}

std::vector<IntersectionPair> Taxonomy::IntersectionPairs(
    const std::vector<std::vector<int>>& item_tags, int min_support) const {
  std::map<std::pair<int, int>, int> cooccur;
  for (const auto& tags_of_item : item_tags) {
    for (size_t a = 0; a < tags_of_item.size(); ++a) {
      for (size_t b = a + 1; b < tags_of_item.size(); ++b) {
        int x = tags_of_item[a], y = tags_of_item[b];
        if (x > y) std::swap(x, y);
        ++cooccur[{x, y}];
      }
    }
  }
  std::vector<IntersectionPair> out;
  for (const auto& [pair, support] : cooccur) {
    if (support < min_support) continue;
    // Ancestor pairs are hierarchy, not intersection.
    if (IsAncestorOrSelf(pair.first, pair.second) ||
        IsAncestorOrSelf(pair.second, pair.first)) {
      continue;
    }
    out.push_back({pair.first, pair.second, support});
  }
  return out;
}

int Taxonomy::FindByName(const std::string& name) const {
  for (int i = 0; i < num_tags(); ++i) {
    if (tags_[i].name == name) return i;
  }
  return -1;
}

}  // namespace logirec::data
