#ifndef LOGIREC_DATA_SYNTHETIC_H_
#define LOGIREC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <functional>
#include <string>

#include "data/dataset.h"

namespace logirec::data {

/// Configuration for the synthetic benchmark-dataset generator.
///
/// The generator plants the structure that drives the paper's evaluation:
///  * a tag taxonomy of `levels` levels with Zipf-popular leaves;
///  * items carrying a leaf tag plus probabilistic ancestor memberships
///    (the item-tag matrix Q);
///  * "overlapping" sibling tag pairs — the taxonomy says they are
///    exclusive but user behaviour crosses them (the <Heavy Metal> vs
///    <Metal> situation that motivates LogiRec++'s relation mining);
///  * users of three archetypes — *specific* (focus on one leaf,
///    fine granularity), *coarse* (focus on a level-2 subtree), and
///    *diverse* (several top-level genres) — matching the consistency /
///    granularity analysis of Section V.
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_users = 300;
  int num_items = 400;

  // --- taxonomy shape ---
  int levels = 4;            ///< taxonomy depth η
  int top_level_tags = 4;    ///< number of level-1 tags
  int branching_min = 2;     ///< children per internal node (uniform range)
  int branching_max = 4;
  double early_leaf_prob = 0.15;  ///< chance an internal node stops early

  // --- item/tag assignment ---
  double zipf_leaf = 0.6;         ///< leaf popularity skew for items
  double ancestor_tag_prob = 0.55; ///< chance each ancestor joins Q
  double overlap_sibling_prob = 0.12; ///< fraction of sibling pairs that
                                      ///< genuinely overlap in behaviour
  /// Tag noise (real-world taxonomies are incomplete and partly wrong —
  /// the paper's core motivation). `missing_tag_prob` items carry no tags
  /// at all; `wrong_tag_prob` items are tagged with a random other leaf
  /// (and that leaf's ancestors), while their *behavioural* cluster stays
  /// the true one.
  double missing_tag_prob = 0.05;
  double wrong_tag_prob = 0.02;

  // --- user behaviour ---
  double interactions_per_user = 18.0;
  double interactions_spread = 0.5;   ///< lognormal sigma of per-user count
  double frac_specific = 0.40;        ///< leaf-focused users
  double frac_coarse = 0.35;          ///< level-2-focused users
  double noise_interaction_prob = 0.08; ///< uniform out-of-focus clicks
  double overlap_spill_prob = 0.35;   ///< focus users crossing into an
                                      ///< overlapping sibling subtree
  double zipf_item = 0.8;             ///< item popularity skew in a subtree

  uint64_t seed = 1;
};

/// Generates a dataset from `config`. Deterministic in `config.seed`.
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Streaming variant: builds the dataset skeleton (taxonomy, item tags,
/// user/item counts) and invokes `sink` once per interaction in
/// generation order — user-major, per-user timestamps ascending — without
/// materializing the interaction vector. The million-scale preset is
/// consumed through this path: at 10^6 users the interactions dominate
/// the generator's footprint, and a consumer that only needs counts,
/// degree histograms, or a CSR build can take them one at a time.
/// GenerateSynthetic is this function plus a vector-appending sink, so
/// the two paths produce identical interactions for identical configs.
Dataset StreamSynthetic(const SyntheticConfig& config,
                        const std::function<void(const Interaction&)>& sink);

/// Presets mirroring the shape of the paper's four benchmarks (Table I) at
/// roughly 1/40 scale. `scale` multiplies user/item counts (1.0 = preset
/// default); relative density ordering (Ciao densest, Clothing sparsest,
/// Book largest) is preserved.
SyntheticConfig CiaoLikeConfig(double scale = 1.0, uint64_t seed = 11);
SyntheticConfig CdLikeConfig(double scale = 1.0, uint64_t seed = 22);
SyntheticConfig ClothingLikeConfig(double scale = 1.0, uint64_t seed = 33);
SyntheticConfig BookLikeConfig(double scale = 1.0, uint64_t seed = 44);

/// Million-scale serving preset: 1M users / 100k items at scale 1.0 with
/// a deep CD-style taxonomy and a deliberately light interaction budget
/// (~8 per user — the catalog and user-count stress serving; training
/// quality is not the point). Feeds the scale-throughput bench through
/// StreamSynthetic / GenerateSynthetic like every other preset; `scale`
/// shrinks it proportionally for CI smoke runs.
SyntheticConfig MillionScaleConfig(double scale = 1.0, uint64_t seed = 55);

/// Convenience: generates one of "ciao", "cd", "clothing", "book", or
/// "million" (the 1M-user/100k-item serving-scale preset).
Result<Dataset> GenerateBenchmarkDataset(const std::string& which,
                                         double scale = 1.0,
                                         uint64_t seed = 0);

}  // namespace logirec::data

#endif  // LOGIREC_DATA_SYNTHETIC_H_
