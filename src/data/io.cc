#include "data/io.h"

#include <algorithm>

#include "util/csv.h"
#include "util/string_util.h"

namespace logirec::data {

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  CsvTable inter;
  inter.header = {"user", "item", "timestamp"};
  for (const Interaction& x : dataset.interactions) {
    inter.rows.push_back({StrFormat("%d", x.user), StrFormat("%d", x.item),
                          StrFormat("%ld", x.timestamp)});
  }
  LOGIREC_RETURN_IF_ERROR(WriteCsv(dir + "/interactions.csv", inter));

  CsvTable tags;
  tags.header = {"item", "tag"};
  for (int i = 0; i < dataset.num_items; ++i) {
    for (int t : dataset.item_tags[i]) {
      tags.rows.push_back({StrFormat("%d", i), StrFormat("%d", t)});
    }
  }
  LOGIREC_RETURN_IF_ERROR(WriteCsv(dir + "/item_tags.csv", tags));

  CsvTable taxo;
  taxo.header = {"tag", "name", "parent"};
  for (int t = 0; t < dataset.taxonomy.num_tags(); ++t) {
    const Tag& tag = dataset.taxonomy.tag(t);
    taxo.rows.push_back(
        {StrFormat("%d", t), tag.name, StrFormat("%d", tag.parent)});
  }
  return WriteCsv(dir + "/taxonomy.csv", taxo);
}

Result<Dataset> LoadDataset(const std::string& dir, const std::string& name) {
  Dataset out;
  out.name = name;

  auto taxo = ReadCsv(dir + "/taxonomy.csv");
  if (!taxo.ok()) return taxo.status();
  for (const auto& row : taxo->rows) {
    if (row.size() != 3) return Status::IoError("bad taxonomy row");
    auto parent = ParseInt(row[2]);
    if (!parent.ok()) return parent.status();
    // Tags are written top-down, so a valid parent is -1 or an already
    // loaded id; anything else is a corrupt file, not a crash.
    if (*parent < -1 || *parent >= out.taxonomy.num_tags()) {
      return Status::IoError(
          StrFormat("taxonomy row references parent %d before it exists",
                    *parent));
    }
    out.taxonomy.AddTag(row[1], *parent);
  }

  auto inter = ReadCsv(dir + "/interactions.csv");
  if (!inter.ok()) return inter.status();
  int max_user = -1, max_item = -1;
  for (const auto& row : inter->rows) {
    if (row.size() != 3) return Status::IoError("bad interaction row");
    auto user = ParseInt(row[0]);
    auto item = ParseInt(row[1]);
    auto ts = ParseInt(row[2]);
    if (!user.ok() || !item.ok() || !ts.ok()) {
      return Status::IoError("non-numeric interaction row");
    }
    if (*user < 0 || *item < 0) {
      return Status::IoError("negative id in interaction row");
    }
    out.interactions.push_back({*user, *item, static_cast<long>(*ts)});
    max_user = std::max(max_user, *user);
    max_item = std::max(max_item, *item);
  }
  out.num_users = max_user + 1;

  auto tags = ReadCsv(dir + "/item_tags.csv");
  if (!tags.ok()) return tags.status();
  for (const auto& row : tags->rows) {
    if (row.size() != 2) return Status::IoError("bad item_tags row");
    auto item = ParseInt(row[0]);
    if (!item.ok()) return item.status();
    max_item = std::max(max_item, *item);
  }
  out.num_items = max_item + 1;
  out.item_tags.resize(out.num_items);
  for (const auto& row : tags->rows) {
    auto item = ParseInt(row[0]);
    auto tag = ParseInt(row[1]);
    if (!item.ok() || !tag.ok()) return Status::IoError("non-numeric tag row");
    out.item_tags[*item].push_back(*tag);
  }

  Status valid = out.Validate();
  if (!valid.ok()) return valid;
  return out;
}

}  // namespace logirec::data
