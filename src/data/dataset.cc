#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace logirec::data {

double Dataset::DensityPercent() const {
  if (num_users == 0 || num_items == 0) return 0.0;
  return 100.0 * static_cast<double>(interactions.size()) /
         (static_cast<double>(num_users) * num_items);
}

LogicalRelations Dataset::ExtractRelations(int overlap_tolerance,
                                           int intersection_support) const {
  LogicalRelations rel;
  for (int i = 0; i < num_items; ++i) {
    for (int t : item_tags[i]) rel.memberships.emplace_back(i, t);
  }
  rel.hierarchy = taxonomy.HierarchyPairs();
  rel.exclusions = taxonomy.ExclusionPairs(item_tags, overlap_tolerance);
  if (intersection_support > 0) {
    rel.intersections =
        taxonomy.IntersectionPairs(item_tags, intersection_support);
  }
  return rel;
}

Status Dataset::Validate() const {
  if (static_cast<int>(item_tags.size()) != num_items) {
    return Status::FailedPrecondition(StrFormat(
        "item_tags has %zu rows but num_items=%d", item_tags.size(),
        num_items));
  }
  for (const Interaction& x : interactions) {
    if (x.user < 0 || x.user >= num_users) {
      return Status::OutOfRange(StrFormat("user id %d out of range", x.user));
    }
    if (x.item < 0 || x.item >= num_items) {
      return Status::OutOfRange(StrFormat("item id %d out of range", x.item));
    }
  }
  for (int i = 0; i < num_items; ++i) {
    for (int t : item_tags[i]) {
      if (t < 0 || t >= taxonomy.num_tags()) {
        return Status::OutOfRange(
            StrFormat("tag id %d out of range on item %d", t, i));
      }
    }
  }
  return Status::OK();
}

void Dataset::SyncAppendIndex() const {
  if (static_cast<int>(append_index_.size()) != num_users ||
      append_indexed_ > interactions.size()) {
    append_index_.assign(static_cast<size_t>(std::max(num_users, 0)), {});
    append_indexed_ = 0;
  }
  for (; append_indexed_ < interactions.size(); ++append_indexed_) {
    const Interaction& x = interactions[append_indexed_];
    if (x.user < 0 || x.user >= num_users) continue;  // Validate() reports
    std::vector<int>& row = append_index_[x.user];
    row.insert(std::lower_bound(row.begin(), row.end(), x.item), x.item);
  }
}

Status Dataset::Append(const Interaction& interaction) {
  if (interaction.user < 0 || interaction.user >= num_users) {
    return Status::OutOfRange(StrFormat(
        "cannot append interaction: user id %d outside [0, %d)",
        interaction.user, num_users));
  }
  if (interaction.item < 0 || interaction.item >= num_items) {
    return Status::OutOfRange(StrFormat(
        "cannot append interaction: item id %d outside [0, %d)",
        interaction.item, num_items));
  }
  SyncAppendIndex();
  std::vector<int>& row = append_index_[interaction.user];
  const auto at =
      std::lower_bound(row.begin(), row.end(), interaction.item);
  if (at != row.end() && *at == interaction.item) {
    return Status::AlreadyExists(StrFormat(
        "interaction (user=%d, item=%d) already present — duplicate "
        "pairs would corrupt the user-item CSRs",
        interaction.user, interaction.item));
  }
  row.insert(at, interaction.item);
  interactions.push_back(interaction);
  append_indexed_ = interactions.size();
  return Status::OK();
}

long Split::TrainSize() const {
  long n = 0;
  for (const auto& items : train) n += static_cast<long>(items.size());
  return n;
}

Split TemporalSplit(const Dataset& dataset, double train_fraction,
                    double validation_fraction) {
  LOGIREC_CHECK(train_fraction > 0.0 && validation_fraction >= 0.0 &&
                train_fraction + validation_fraction < 1.0 + 1e-9);
  // Bucket interactions per user, keep timestamp order (stable for ties).
  std::vector<std::vector<std::pair<long, int>>> per_user(dataset.num_users);
  for (const Interaction& x : dataset.interactions) {
    per_user[x.user].emplace_back(x.timestamp, x.item);
  }
  Split split;
  split.train.resize(dataset.num_users);
  split.validation.resize(dataset.num_users);
  split.test.resize(dataset.num_users);
  for (int u = 0; u < dataset.num_users; ++u) {
    auto& events = per_user[u];
    std::stable_sort(events.begin(), events.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const int n = static_cast<int>(events.size());
    if (n < 3) {
      for (const auto& [ts, item] : events) split.train[u].push_back(item);
      continue;
    }
    int n_train = static_cast<int>(n * train_fraction);
    int n_val = static_cast<int>(n * validation_fraction);
    n_train = std::max(n_train, 1);
    if (n_train + n_val >= n) n_val = std::max(0, n - n_train - 1);
    for (int i = 0; i < n; ++i) {
      const int item = events[i].second;
      if (i < n_train) {
        split.train[u].push_back(item);
      } else if (i < n_train + n_val) {
        split.validation[u].push_back(item);
      } else {
        split.test[u].push_back(item);
      }
    }
  }
  return split;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name;
  stats.num_users = dataset.num_users;
  stats.num_items = dataset.num_items;
  stats.num_interactions = static_cast<long>(dataset.interactions.size());
  stats.density_percent = dataset.DensityPercent();
  stats.num_tags = dataset.taxonomy.num_tags();
  const LogicalRelations rel = dataset.ExtractRelations();
  stats.num_memberships = static_cast<long>(rel.memberships.size());
  stats.num_hierarchy = static_cast<long>(rel.hierarchy.size());
  stats.num_exclusions = static_cast<long>(rel.exclusions.size());
  return stats;
}

}  // namespace logirec::data
