#ifndef LOGIREC_DATA_DATASET_H_
#define LOGIREC_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/taxonomy.h"
#include "util/status.h"

namespace logirec::data {

/// One implicit-feedback event.
struct Interaction {
  int user;
  int item;
  long timestamp;
};

/// The extracted logical relations that LogiRec consumes (Section IV-B).
struct LogicalRelations {
  /// (item, tag) membership pairs — the item-tag matrix Q in COO form.
  std::vector<std::pair<int, int>> memberships;
  std::vector<HierarchyPair> hierarchy;
  std::vector<ExclusionPair> exclusions;
  /// Future-work extension: demonstrably overlapping tag pairs. Empty
  /// unless requested through ExtractRelations' `intersection_support`.
  std::vector<IntersectionPair> intersections;

  /// Total relation count across all four families.
  long TotalCount() const {
    return static_cast<long>(memberships.size()) +
           static_cast<long>(hierarchy.size()) +
           static_cast<long>(exclusions.size()) +
           static_cast<long>(intersections.size());
  }
};

/// A tagged recommendation dataset: users, items, timestamped implicit
/// interactions, per-item tag lists and the tag taxonomy.
struct Dataset {
  std::string name;
  int num_users = 0;
  int num_items = 0;
  std::vector<Interaction> interactions;
  /// item_tags[i] lists the tfor item i (the matrix Q, row-wise).
  std::vector<std::vector<int>> item_tags;
  Taxonomy taxonomy;

  /// Interactions / (users * items), in percent (Table I convention).
  double DensityPercent() const;

  /// Extracts the membership/hierarchy/exclusion relations used by the
  /// logic losses. `overlap_tolerance` passes through to
  /// Taxonomy::ExclusionPairs. When `intersection_support` > 0, also
  /// extracts intersection pairs with at least that co-occurrence count.
  LogicalRelations ExtractRelations(int overlap_tolerance = 0,
                                    int intersection_support = 0) const;

  /// Validates index ranges; returns an error describing the first
  /// violation found.
  Status Validate() const;

  /// Appends one interaction, rejecting out-of-range user/item ids
  /// (kOutOfRange) and duplicate (user, item) pairs (kAlreadyExists) with
  /// descriptive errors instead of silently corrupting the downstream
  /// CSRs (graph adjacency, sampler tables, seen-item masks all assume
  /// the pair set is duplicate-free). Membership is probed through a
  /// lazily built per-user sorted index that stays in sync across
  /// appends, so a streaming ingest pays O(log n_u) per probe — not a
  /// rescan of the interaction log. Mutating `interactions` directly
  /// invalidates the index only when its size shrinks; streaming flows
  /// must funnel every insertion through Append().
  Status Append(const Interaction& interaction);

 private:
  /// Folds interactions appended since the last call into the duplicate
  /// index, rebuilding from scratch when the log shrank or user count
  /// changed underneath it.
  void SyncAppendIndex() const;

  mutable std::vector<std::vector<int>> append_index_;  ///< per-user, sorted
  mutable size_t append_indexed_ = 0;  ///< interactions folded into the index
};

/// Train/validation/test splits as per-user item id lists, ordered by
/// timestamp within each user.
struct Split {
  std::vector<std::vector<int>> train;       ///< indexed by user
  std::vector<std::vector<int>> validation;  ///< indexed by user
  std::vector<std::vector<int>> test;        ///< indexed by user

  /// Total interactions in the training fold.
  long TrainSize() const;
};

/// Temporal per-user split (paper Section VI-A2): the first
/// `train_fraction` of each user's interactions by timestamp go to train,
/// the next `validation_fraction` to validation, the remainder to test.
/// Users with fewer than 3 interactions put everything into train.
Split TemporalSplit(const Dataset& dataset, double train_fraction = 0.6,
                    double validation_fraction = 0.2);

/// The statistics row of Table I.
struct DatasetStats {
  std::string name;
  int num_users;
  int num_items;
  long num_interactions;
  double density_percent;
  int num_tags;
  long num_memberships;
  long num_hierarchy;
  long num_exclusions;
};

/// Computes Table I statistics (relations extracted with the default
/// tolerance).
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace logirec::data

#endif  // LOGIREC_DATA_DATASET_H_
