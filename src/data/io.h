#ifndef LOGIREC_DATA_IO_H_
#define LOGIREC_DATA_IO_H_

#include <string>

#include "data/dataset.h"

namespace logirec::data {

/// Persists `dataset` into `dir` as three CSV files:
///   interactions.csv  (user,item,timestamp)
///   item_tags.csv     (item,tag)
///   taxonomy.csv      (tag,name,parent)
/// The directory must already exist.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset. User/item counts are
/// inferred as max id + 1.
Result<Dataset> LoadDataset(const std::string& dir,
                            const std::string& name = "loaded");

}  // namespace logirec::data

#endif  // LOGIREC_DATA_IO_H_
