#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace logirec::data {
namespace {

/// Themed tag-name pools so that case studies (Table V) read like the
/// paper. Names are consumed per level; exhausted pools fall back to
/// generated names.
struct NamePools {
  std::vector<std::string> top;
  std::vector<std::string> mid;
  std::vector<std::string> fine;
};

NamePools PoolsForTheme(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower.find("cd") != std::string::npos ||
      lower.find("music") != std::string::npos) {
    return {
        {"Rock", "Classical", "Jazz", "Pop", "Electronic", "Latin Music"},
        {"Hard Rock", "Alternative Rock", "Punk Rock", "Blues Rock",
         "Opera", "Symphony", "Ballets & Dances", "Vocal Jazz", "Bebop",
         "Synth Pop", "Dance Pop", "Goth & Industrial", "Indie & Lo-Fi",
         "Hardcore & Punk", "Forms & Genres"},
        {"Heavy Metal", "Metal", "British Alternative", "American Alternative",
         "Industrial", "Industrial Dance", "EBM", "Post Punk", "Ska Punk",
         "Delta Blues", "Chicago Blues", "Chamber Music", "Baroque",
         "Romantic Era", "Free Jazz", "Cool Jazz", "Europop", "K-Pop"},
    };
  }
  if (lower.find("book") != std::string::npos) {
    return {
        {"Romance", "Mystery", "Science Fiction", "Teen & Young Adult",
         "History", "Fantasy"},
        {"Romantic Comedy", "Romantic Suspense", "Fantasy Romance",
         "Cozy Mystery", "Legal Thriller", "Hard SF", "Space Opera",
         "Epic Fantasy", "Urban Fantasy", "Ancient History",
         "Modern History", "Coming of Age"},
        {"Grumpy Sunshine", "Enemies to Lovers", "Small Town Romance",
         "Locked Room", "Police Procedural", "Cyberpunk", "First Contact",
         "Sword & Sorcery", "Mythic Retelling", "Roman Empire",
         "World War II", "High School Drama"},
    };
  }
  if (lower.find("cloth") != std::string::npos) {
    return {
        {"Men", "Women", "Kids", "Shoes", "Accessories", "Sportswear"},
        {"Shirts", "Trousers", "Dresses", "Skirts", "Jackets", "Sneakers",
         "Boots", "Sandals", "Hats", "Bags", "Running", "Yoga"},
        {"Oxford Shirts", "Flannel Shirts", "Chinos", "Denim", "Maxi Dresses",
         "Cocktail Dresses", "Bomber Jackets", "Parkas", "Trail Runners",
         "High Tops", "Beanies", "Totes"},
    };
  }
  // Ciao-like general products.
  return {
      {"Electronics", "Home & Garden", "Beauty", "Toys"},
      {"Cameras", "Audio", "Kitchen", "Furniture", "Skincare", "Makeup",
       "Board Games", "Outdoor Play"},
      {"DSLR", "Mirrorless", "Headphones", "Speakers", "Cookware",
       "Small Appliances", "Sofas", "Desks", "Moisturizers", "Serums"},
  };
}

std::string TakeName(std::vector<std::string>* pool, Rng* rng, int level,
                     int ordinal) {
  if (!pool->empty()) {
    const int idx = rng->UniformInt(static_cast<int>(pool->size()));
    std::string name = (*pool)[idx];
    pool->erase(pool->begin() + idx);
    return name;
  }
  return StrFormat("Tag-L%d-%03d", level, ordinal);
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  std::vector<Interaction> interactions;
  interactions.reserve(static_cast<size_t>(
      static_cast<double>(config.num_users) *
      std::max(config.interactions_per_user, 6.0)));
  Dataset out = StreamSynthetic(
      config, [&interactions](const Interaction& x) {
        interactions.push_back(x);
      });
  out.interactions = std::move(interactions);
  LOGIREC_CHECK(out.Validate().ok());
  return out;
}

Dataset StreamSynthetic(
    const SyntheticConfig& config,
    const std::function<void(const Interaction&)>& sink) {
  Rng rng(config.seed);
  Dataset out;
  out.name = config.name;
  out.num_users = config.num_users;
  out.num_items = config.num_items;

  // ---- 1. taxonomy -------------------------------------------------------
  NamePools pools = PoolsForTheme(config.name);
  std::vector<int> frontier;
  for (int t = 0; t < config.top_level_tags; ++t) {
    frontier.push_back(
        out.taxonomy.AddTag(TakeName(&pools.top, &rng, 1, t), -1));
  }
  for (int level = 2; level <= config.levels; ++level) {
    std::vector<int> next;
    auto* pool = (level == 2) ? &pools.mid : &pools.fine;
    int ordinal = 0;
    for (int parent : frontier) {
      if (level > 2 && rng.Bernoulli(config.early_leaf_prob)) continue;
      const int kids =
          rng.UniformInt(config.branching_min, config.branching_max);
      for (int k = 0; k < kids; ++k) {
        next.push_back(out.taxonomy.AddTag(
            TakeName(pool, &rng, level, ordinal++), parent));
      }
    }
    if (next.empty()) break;
    frontier = std::move(next);
  }

  const std::vector<int> leaves = out.taxonomy.Leaves();
  LOGIREC_CHECK(!leaves.empty());

  // ---- 2. overlapping sibling pairs --------------------------------------
  // Pairs the taxonomy will call exclusive, but whose audiences genuinely
  // overlap. Keyed by the lower tag id; maps to the overlapping sibling.
  std::vector<int> overlap_partner(out.taxonomy.num_tags(), -1);
  for (int p = 0; p < out.taxonomy.num_tags(); ++p) {
    const auto& kids = out.taxonomy.tag(p).children;
    for (size_t a = 0; a < kids.size(); ++a) {
      for (size_t b = a + 1; b < kids.size(); ++b) {
        if (overlap_partner[kids[a]] == -1 && overlap_partner[kids[b]] == -1 &&
            rng.Bernoulli(config.overlap_sibling_prob)) {
          overlap_partner[kids[a]] = kids[b];
          overlap_partner[kids[b]] = kids[a];
        }
      }
    }
  }

  // ---- 3. items -----------------------------------------------------------
  // Leaf popularity: Zipf over a shuffled leaf order.
  std::vector<int> leaf_order = leaves;
  rng.Shuffle(&leaf_order);
  std::vector<int> item_leaf(config.num_items);
  out.item_tags.resize(config.num_items);
  for (int i = 0; i < config.num_items; ++i) {
    const int leaf =
        leaf_order[rng.Zipf(static_cast<int>(leaf_order.size()),
                            config.zipf_leaf)];
    item_leaf[i] = leaf;  // behavioural cluster = true leaf, always
    if (rng.Bernoulli(config.missing_tag_prob)) {
      continue;  // untagged item (incomplete taxonomy coverage)
    }
    // Observed leaf: occasionally a mislabel onto a random other leaf;
    // the recorded ancestors follow the observed (possibly wrong) leaf so
    // Q stays lineage-consistent.
    int observed = leaf;
    if (rng.Bernoulli(config.wrong_tag_prob)) {
      observed = leaves[rng.UniformInt(static_cast<int>(leaves.size()))];
    }
    out.item_tags[i].push_back(observed);
    for (int anc : out.taxonomy.Ancestors(observed)) {
      if (rng.Bernoulli(config.ancestor_tag_prob)) {
        out.item_tags[i].push_back(anc);
      }
    }
  }

  // Items under each tag's subtree (by their leaf assignment).
  std::vector<std::vector<int>> items_under(out.taxonomy.num_tags());
  for (int i = 0; i < config.num_items; ++i) {
    int cur = item_leaf[i];
    while (cur >= 0) {
      items_under[cur].push_back(i);
      cur = out.taxonomy.tag(cur).parent;
    }
  }

  // ---- 4. users & interactions -------------------------------------------
  const std::vector<int> level2 = out.taxonomy.TagsAtLevel(
      std::min(2, out.taxonomy.num_levels()));
  const std::vector<int> level1 = out.taxonomy.TagsAtLevel(1);

  auto pick_in_subtree = [&](int tag) -> int {
    const auto& pool = items_under[tag];
    if (pool.empty()) return rng.UniformInt(config.num_items);
    return pool[rng.Zipf(static_cast<int>(pool.size()), config.zipf_item)];
  };

  for (int u = 0; u < config.num_users; ++u) {
    // Archetype.
    const double archetype = rng.Uniform();
    std::vector<int> focus_tags;
    if (archetype < config.frac_specific) {
      focus_tags.push_back(leaves[rng.UniformInt(
          static_cast<int>(leaves.size()))]);
    } else if (archetype < config.frac_specific + config.frac_coarse) {
      const auto& pool = level2.empty() ? level1 : level2;
      focus_tags.push_back(pool[rng.UniformInt(
          static_cast<int>(pool.size()))]);
    } else {
      // Diverse user: 2-4 distinct top-level genres.
      std::vector<int> tops = level1;
      rng.Shuffle(&tops);
      const int k = std::min<int>(rng.UniformInt(2, 4),
                                  static_cast<int>(tops.size()));
      focus_tags.assign(tops.begin(), tops.begin() + k);
    }

    const double raw = config.interactions_per_user *
                       std::exp(rng.Gaussian(0.0, config.interactions_spread));
    const int count = std::max(6, static_cast<int>(std::lround(raw)));

    std::set<int> seen;
    long ts = 0;
    int attempts = 0;
    while (static_cast<int>(seen.size()) < count &&
           attempts < count * 20) {
      ++attempts;
      int item;
      if (rng.Bernoulli(config.noise_interaction_prob)) {
        item = rng.UniformInt(config.num_items);
      } else {
        int focus = focus_tags[rng.UniformInt(
            static_cast<int>(focus_tags.size()))];
        // Behavioural overlap: focus users spill into the genuinely
        // overlapping sibling subtree even though the taxonomy calls the
        // two tags exclusive.
        if (overlap_partner[focus] != -1 &&
            rng.Bernoulli(config.overlap_spill_prob)) {
          focus = overlap_partner[focus];
        }
        item = pick_in_subtree(focus);
      }
      if (seen.insert(item).second) {
        sink(Interaction{u, item, ts++});
      }
    }
  }

  return out;
}

SyntheticConfig CiaoLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "Ciao";
  c.num_users = static_cast<int>(240 * scale);
  c.num_items = static_cast<int>(420 * scale);
  c.levels = 2;
  c.top_level_tags = 8;
  c.branching_min = 2;
  c.branching_max = 3;
  c.interactions_per_user = 20.0;
  c.overlap_sibling_prob = 0.10;
  c.seed = seed;
  return c;
}

SyntheticConfig CdLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "CD";
  c.num_users = static_cast<int>(560 * scale);
  c.num_items = static_cast<int>(520 * scale);
  c.levels = 4;
  c.top_level_tags = 5;
  c.branching_min = 2;
  c.branching_max = 4;
  c.interactions_per_user = 16.0;
  c.overlap_sibling_prob = 0.12;
  c.seed = seed;
  return c;
}

SyntheticConfig ClothingLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "Clothing";
  c.num_users = static_cast<int>(760 * scale);
  c.num_items = static_cast<int>(600 * scale);
  c.levels = 4;
  c.top_level_tags = 6;
  c.branching_min = 3;
  c.branching_max = 5;
  c.early_leaf_prob = 0.05;
  c.interactions_per_user = 11.0;
  c.overlap_sibling_prob = 0.16;
  c.seed = seed;
  return c;
}

SyntheticConfig BookLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "Book";
  c.num_users = static_cast<int>(820 * scale);
  c.num_items = static_cast<int>(760 * scale);
  c.levels = 4;
  c.top_level_tags = 6;
  c.branching_min = 2;
  c.branching_max = 4;
  c.interactions_per_user = 26.0;
  c.overlap_sibling_prob = 0.12;
  c.seed = seed;
  return c;
}

SyntheticConfig MillionScaleConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "MillionCD";
  c.num_users = static_cast<int>(1000000 * scale);
  c.num_items = static_cast<int>(100000 * scale);
  c.levels = 4;
  c.top_level_tags = 6;
  c.branching_min = 3;
  c.branching_max = 5;
  // Serving scale, not training scale: a light interaction budget keeps
  // generation and split cost linear in users while the user count and
  // catalog do the stressing.
  c.interactions_per_user = 8.0;
  c.interactions_spread = 0.35;
  c.overlap_sibling_prob = 0.12;
  c.seed = seed;
  return c;
}

Result<Dataset> GenerateBenchmarkDataset(const std::string& which,
                                         double scale, uint64_t seed) {
  const std::string key = ToLower(which);
  if (key == "million") {
    return GenerateSynthetic(MillionScaleConfig(scale, seed ? seed : 55));
  }
  if (key == "ciao") {
    return GenerateSynthetic(CiaoLikeConfig(scale, seed ? seed : 11));
  }
  if (key == "cd") {
    return GenerateSynthetic(CdLikeConfig(scale, seed ? seed : 22));
  }
  if (key == "clothing") {
    return GenerateSynthetic(ClothingLikeConfig(scale, seed ? seed : 33));
  }
  if (key == "book") {
    return GenerateSynthetic(BookLikeConfig(scale, seed ? seed : 44));
  }
  return Status::InvalidArgument("unknown benchmark dataset: " + which);
}

}  // namespace logirec::data
