#ifndef LOGIREC_DATA_TAXONOMY_H_
#define LOGIREC_DATA_TAXONOMY_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace logirec::data {

/// One tag node in the taxonomy tree.
struct Tag {
  std::string name;
  int parent = -1;             ///< -1 for top-level tags.
  int level = 1;               ///< 1 = top level, growing downward.
  std::vector<int> children;
};

/// A (parent, child) hierarchical relation between tags.
struct HierarchyPair {
  int parent;
  int child;
};

/// An exclusive relation between two tags at the same level.
struct ExclusionPair {
  int a;
  int b;
  int level;  ///< taxonomy level of both tags (exclusions are per-level).
};

/// An intersection relation: two tags whose extensions demonstrably
/// overlap (the set-theoretic relation the paper lists as future work).
struct IntersectionPair {
  int a;
  int b;
  int support;  ///< number of items carrying both tags
};

/// A rooted tag taxonomy (forest under a virtual root). Tags are added
/// top-down; parents must exist before their children.
class Taxonomy {
 public:
  /// Adds a tag under `parent` (-1 for top level). Returns its id.
  int AddTag(std::string name, int parent = -1);

  int num_tags() const { return static_cast<int>(tags_.size()); }
  const Tag& tag(int id) const { return tags_[id]; }
  const std::vector<Tag>& tags() const { return tags_; }

  /// Deepest level in the tree (η in the paper; 0 when empty).
  int num_levels() const { return max_level_; }

  /// Ids of all tags at `level`.
  std::vector<int> TagsAtLevel(int level) const;

  /// Ids of leaf tags (no children).
  std::vector<int> Leaves() const;

  /// All ancestors of `id`, nearest first (excludes `id` itself).
  std::vector<int> Ancestors(int id) const;

  /// True if `ancestor` lies on the path from `id` to its top-level root
  /// (or equals `id`).
  bool IsAncestorOrSelf(int ancestor, int id) const;

  /// All (parent, child) edges — the paper's hierarchical relations.
  std::vector<HierarchyPair> HierarchyPairs() const;

  /// Exclusive relations per the taxonomy-derivation rule of Xiong et al.:
  /// two same-level tags sharing the same parent with no common child are
  /// exclusive. `item_tags` (per-item tag lists) supplies the "common
  /// child" evidence: siblings that co-occur on more than
  /// `overlap_tolerance` items are NOT emitted as exclusive.
  std::vector<ExclusionPair> ExclusionPairs(
      const std::vector<std::vector<int>>& item_tags,
      int overlap_tolerance = 0) const;

  /// Intersection relations (future-work extension of the paper): pairs
  /// of tags, neither an ancestor of the other, that co-occur on at least
  /// `min_support` items.
  std::vector<IntersectionPair> IntersectionPairs(
      const std::vector<std::vector<int>>& item_tags,
      int min_support = 2) const;

  /// Finds a tag id by name (-1 if absent).
  int FindByName(const std::string& name) const;

 private:
  std::vector<Tag> tags_;
  int max_level_ = 0;
};

}  // namespace logirec::data

#endif  // LOGIREC_DATA_TAXONOMY_H_
