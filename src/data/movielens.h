#ifndef LOGIREC_DATA_MOVIELENS_H_
#define LOGIREC_DATA_MOVIELENS_H_

#include <string>

#include "data/dataset.h"

namespace logirec::data {

/// Options for loading MovieLens-style dumps into a tagged Dataset.
struct MovieLensOptions {
  /// Field separator of the ratings/items files ("::" for the classic
  /// ML-1M dumps, "\t" for ML-100k, "," for CSV exports).
  std::string separator = "::";
  /// Ratings at or above this threshold become positive implicit
  /// interactions; lower ratings are dropped.
  double positive_threshold = 4.0;
  /// Users with fewer positives than this are dropped (k-core filtering).
  int min_interactions = 5;
};

/// Loads a MovieLens-style pair of files:
///   ratings file: user<sep>item<sep>rating<sep>timestamp
///   items file:   item<sep>title<sep>genre|genre|...
/// Genres become a 1-level tag taxonomy (the paper's pipeline would build
/// deeper levels with an automatic taxonomy constructor; genre dumps only
/// carry one level). User/item ids are re-indexed densely.
Result<Dataset> LoadMovieLens(const std::string& ratings_path,
                              const std::string& items_path,
                              const MovieLensOptions& options = {});

}  // namespace logirec::data

#endif  // LOGIREC_DATA_MOVIELENS_H_
