#include "data/movielens.h"

#include <fstream>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace logirec::data {
namespace {

/// Splits on a multi-character separator.
std::vector<std::string> SplitOn(const std::string& line,
                                 const std::string& sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

}  // namespace

Result<Dataset> LoadMovieLens(const std::string& ratings_path,
                              const std::string& items_path,
                              const MovieLensOptions& options) {
  std::ifstream items_in(items_path);
  if (!items_in) return Status::IoError("cannot open " + items_path);

  // --- items & genres ------------------------------------------------------
  Dataset out;
  out.name = "movielens";
  std::map<long, int> item_index;     // raw id -> dense id
  std::map<std::string, int> genres;  // genre name -> tag id
  std::string line;
  while (std::getline(items_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = SplitOn(line, options.separator);
    if (fields.size() < 3) {
      return Status::IoError("bad items row: " + line);
    }
    auto raw_id = ParseInt(fields[0]);
    if (!raw_id.ok()) return raw_id.status();
    const int dense = static_cast<int>(item_index.size());
    if (!item_index.emplace(*raw_id, dense).second) {
      return Status::AlreadyExists(
          StrFormat("duplicate item id %d", *raw_id));
    }
    std::vector<int> tags;
    for (const std::string& genre : ::logirec::Split(fields[2], '|')) {
      const std::string name(Trim(genre));
      if (name.empty() || name == "(no genres listed)") continue;
      auto it = genres.find(name);
      if (it == genres.end()) {
        it = genres.emplace(name, out.taxonomy.AddTag(name)).first;
      }
      tags.push_back(it->second);
    }
    out.item_tags.push_back(std::move(tags));
  }
  out.num_items = static_cast<int>(item_index.size());
  if (out.num_items == 0) return Status::IoError("no items in " + items_path);

  // --- ratings -> implicit positives --------------------------------------
  std::ifstream ratings_in(ratings_path);
  if (!ratings_in) return Status::IoError("cannot open " + ratings_path);
  std::map<long, std::vector<Interaction>> per_user;  // raw user id
  while (std::getline(ratings_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = SplitOn(line, options.separator);
    if (fields.size() < 4) {
      return Status::IoError("bad ratings row: " + line);
    }
    auto user = ParseInt(fields[0]);
    auto item = ParseInt(fields[1]);
    auto rating = ParseDouble(fields[2]);
    auto ts = ParseInt(fields[3]);
    if (!user.ok() || !item.ok() || !rating.ok() || !ts.ok()) {
      return Status::IoError("non-numeric ratings row: " + line);
    }
    if (*rating < options.positive_threshold) continue;
    auto it = item_index.find(*item);
    if (it == item_index.end()) continue;  // rating for an unknown item
    per_user[*user].push_back({0, it->second, static_cast<long>(*ts)});
  }

  // --- k-core on users & dense re-indexing --------------------------------
  for (auto& [raw_user, events] : per_user) {
    if (static_cast<int>(events.size()) < options.min_interactions) continue;
    const int dense_user = out.num_users++;
    for (Interaction& x : events) {
      x.user = dense_user;
      out.interactions.push_back(x);
    }
  }
  if (out.num_users == 0) {
    return Status::FailedPrecondition(
        "no users survive the min_interactions filter");
  }
  LOGIREC_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace logirec::data
