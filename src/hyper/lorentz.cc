#include "hyper/lorentz.h"

#include <cmath>

#include "hyper/poincare.h"  // for kMinNorm
#include "util/logging.h"

namespace logirec::hyper {

using math::SafeAcosh;
using math::SafeAcoshGrad;

double LorentzDot(ConstSpan x, ConstSpan y) {
  LOGIREC_CHECK(x.size() == y.size());
  LOGIREC_CHECK(!x.empty());
  double s = -x[0] * y[0];
  for (size_t i = 1; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

Vec LorentzOrigin(int ambient_dim) {
  Vec o(ambient_dim, 0.0);
  o[0] = 1.0;
  return o;
}

void ProjectToHyperboloid(Span x) {
  double spatial = 0.0;
  for (size_t i = 1; i < x.size(); ++i) spatial += x[i] * x[i];
  x[0] = std::sqrt(1.0 + spatial);
}

double LorentzDistance(ConstSpan x, ConstSpan y) {
  return SafeAcosh(-LorentzDot(x, y));
}

void LorentzDistanceGrad(ConstSpan x, ConstSpan y, double scale,
                         Span grad_x, Span grad_y) {
  const size_t n = x.size();
  LOGIREC_CHECK(y.size() == n);
  const double u = -LorentzDot(x, y);
  const double dacosh = SafeAcoshGrad(u);
  // d(-<x,y>_L)/dx = (y_0, -y_1, ..., -y_d) = -J y.
  const double s = scale * dacosh;
  if (!grad_x.empty()) {
    LOGIREC_CHECK(grad_x.size() == n);
    grad_x[0] += s * y[0];
    for (size_t i = 1; i < n; ++i) grad_x[i] -= s * y[i];
  }
  if (!grad_y.empty()) {
    LOGIREC_CHECK(grad_y.size() == n);
    grad_y[0] += s * x[0];
    for (size_t i = 1; i < n; ++i) grad_y[i] -= s * x[i];
  }
}

namespace {

/// Spatial Euclidean norm of an ambient vector, i.e. ignoring index 0.
double SpatialNorm(ConstSpan z) {
  double s = 0.0;
  for (size_t i = 1; i < z.size(); ++i) s += z[i] * z[i];
  return std::sqrt(s);
}

}  // namespace

Vec LorentzExpOrigin(ConstSpan z) {
  const size_t n = z.size();
  Vec out(n, 0.0);
  const double r = SpatialNorm(z);
  if (r < kMinNorm) {
    out[0] = 1.0;
    for (size_t i = 1; i < n; ++i) out[i] = z[i];
    ProjectToHyperboloid(Span(out));
    return out;
  }
  const double ch = std::cosh(r);
  const double sh_over_r = std::sinh(r) / r;
  out[0] = ch;
  for (size_t i = 1; i < n; ++i) out[i] = sh_over_r * z[i];
  return out;
}

void LorentzExpOriginVjp(ConstSpan z, ConstSpan grad_out, Span grad_z) {
  const size_t n = z.size();
  LOGIREC_CHECK(grad_out.size() == n);
  LOGIREC_CHECK(grad_z.size() == n);
  const double r = SpatialNorm(z);
  if (r < 1e-7) {
    // exp_o(z) ~ o + z near the origin: identity on the spatial block.
    for (size_t i = 1; i < n; ++i) grad_z[i] += grad_out[i];
    return;
  }
  const double ch = std::cosh(r);
  const double sh = std::sinh(r);
  const double sh_over_r = sh / r;
  // c2 = (cosh(r) - sinh(r)/r) / r^2, the coefficient of the rank-1 term.
  const double c2 = (ch - sh_over_r) / (r * r);
  double g_dot_z = 0.0;
  for (size_t i = 1; i < n; ++i) g_dot_z += grad_out[i] * z[i];
  for (size_t j = 1; j < n; ++j) {
    grad_z[j] += grad_out[0] * sh_over_r * z[j]  // d out_0 / d z_j
                 + sh_over_r * grad_out[j]       // diagonal part
                 + c2 * z[j] * g_dot_z;          // rank-1 part
  }
}

Vec LorentzLogOrigin(ConstSpan x) {
  const size_t n = x.size();
  Vec z(n, 0.0);
  const double sn = SpatialNorm(x);
  if (sn < kMinNorm) return z;
  const double r = SafeAcosh(x[0]);
  const double f = r / sn;
  for (size_t i = 1; i < n; ++i) z[i] = f * x[i];
  return z;
}

void LorentzLogOriginVjp(ConstSpan x, ConstSpan grad_out, Span grad_x) {
  const size_t n = x.size();
  LOGIREC_CHECK(grad_out.size() == n);
  LOGIREC_CHECK(grad_x.size() == n);
  const double sn = SpatialNorm(x);
  if (sn < 1e-7) {
    // log_o(x) ~ x_spatial near the origin.
    for (size_t i = 1; i < n; ++i) grad_x[i] += grad_out[i];
    return;
  }
  const double r = SafeAcosh(x[0]);
  const double f = r / sn;
  const double dr_dx0 = SafeAcoshGrad(x[0]);
  double g_dot_xs = 0.0;
  for (size_t i = 1; i < n; ++i) g_dot_xs += grad_out[i] * x[i];
  // z_i = (r / sn) x_i:
  //   dz_i/dx_0 = x_i/sn * dr/dx0
  //   dz_i/dx_j = f * delta_ij - (r / sn^3) x_i x_j
  grad_x[0] += g_dot_xs * dr_dx0 / sn;
  const double c = r / (sn * sn * sn);
  for (size_t j = 1; j < n; ++j) {
    grad_x[j] += f * grad_out[j] - c * x[j] * g_dot_xs;
  }
}

Vec LorentzExpMap(ConstSpan x, ConstSpan v) {
  const size_t n = x.size();
  LOGIREC_CHECK(v.size() == n);
  // ||v||_L = sqrt(<v,v>_L) for a spacelike tangent vector.
  double vv = LorentzDot(v, v);
  if (vv < 0.0) vv = 0.0;  // numeric guard; tangent vectors are spacelike
  double r = std::sqrt(vv);
  Vec out(n);
  if (r < kMinNorm) {
    for (size_t i = 0; i < n; ++i) out[i] = x[i];
    ProjectToHyperboloid(Span(out));
    return out;
  }
  // Clamp the geodesic step: cosh/sinh overflow past ~700 and the
  // hyperboloid constraint x0^2 - ||xs||^2 = 1 loses all precision well
  // before that. Steps this long only arise from hostile gradients; the
  // clamp preserves the direction.
  constexpr double kMaxStep = 32.0;
  double scale = 1.0;
  if (r > kMaxStep) {
    scale = kMaxStep / r;
    r = kMaxStep;
  }
  const double ch = std::cosh(r);
  const double sh_over_r = std::sinh(r) / (r / scale);
  for (size_t i = 0; i < n; ++i) out[i] = ch * x[i] + sh_over_r * v[i];
  ProjectToHyperboloid(Span(out));
  return out;
}

Vec LorentzRiemannianGrad(ConstSpan x, ConstSpan euclidean_grad) {
  const size_t n = x.size();
  LOGIREC_CHECK(euclidean_grad.size() == n);
  Vec h(euclidean_grad.begin(), euclidean_grad.end());
  h[0] = -h[0];  // h = J * grad
  const double xh = LorentzDot(x, h);
  Vec riem(n);
  for (size_t i = 0; i < n; ++i) riem[i] = h[i] + xh * x[i];
  return riem;
}

void RsgdStepLorentz(Span x, ConstSpan euclidean_grad, double lr) {
  Vec riem = LorentzRiemannianGrad(x, euclidean_grad);
  math::ScaleInPlace(Span(riem), -lr);
  Vec out = LorentzExpMap(x, riem);
  // Numeric-domain guard: beyond distance ~24 from the origin the
  // hyperboloid constraint x0^2 = 1 + ||xs||^2 is no longer resolvable in
  // double precision (cosh(24)^2 ~ 7e20 swallows the +1) and a few more
  // steps overflow to inf. Training with clipped gradients never gets
  // near this; the cap only tames adversarial inputs.
  constexpr double kMaxOriginDistance = 24.0;
  static const double kMaxSpatial = std::sinh(kMaxOriginDistance);
  double spatial = 0.0;
  for (size_t i = 1; i < out.size(); ++i) spatial += out[i] * out[i];
  spatial = std::sqrt(spatial);
  if (spatial > kMaxSpatial) {
    const double s = kMaxSpatial / spatial;
    for (size_t i = 1; i < out.size(); ++i) out[i] *= s;
    ProjectToHyperboloid(Span(out));
  }
  math::Copy(out, x);
}

}  // namespace logirec::hyper
