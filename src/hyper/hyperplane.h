#ifndef LOGIREC_HYPER_HYPERPLANE_H_
#define LOGIREC_HYPER_HYPERPLANE_H_

#include "math/vec.h"

namespace logirec::hyper {

using math::ConstSpan;
using math::Span;
using math::Vec;

/// The enclosing Euclidean d-ball of the Poincaré hyperplane with center
/// point c (Section III-A):
///   o_c = ((1 + ||c||^2) / (2||c||)) * c,   r_c = (1 - ||c||^2) / (2||c||).
/// A tag is parameterized by its hyperplane center c (0 < ||c|| < 1); the
/// derived ball is what the logic losses (Eqs. 3-5) measure against.
struct Ball {
  Vec center;    ///< o_c, d-dimensional (lies OUTSIDE the unit ball).
  double radius; ///< r_c > 0; shrinks as ||c|| -> 1 (finer-grained tag).
};

/// Minimum allowed ||c||; centers are clamped away from the origin where
/// the hyperplane degenerates into a linear subspace.
inline constexpr double kMinCenterNorm = 0.05;
/// Maximum allowed ||c||; keeps r_c bounded away from zero.
inline constexpr double kMaxCenterNorm = 0.95;

/// Clamps the hyperplane center `c` in place to
/// kMinCenterNorm <= ||c|| <= kMaxCenterNorm.
void ClampHyperplaneCenter(Span c);

/// Computes the enclosing ball (o_c, r_c) from the hyperplane center c.
Ball BallFromCenter(ConstSpan c);

/// Chain rule through BallFromCenter: given dL/d o_c (`grad_center`, may be
/// empty) and dL/d r_c (`grad_radius`), accumulates dL/dc into `grad_c`.
void BallFromCenterVjp(ConstSpan c, ConstSpan grad_center,
                       double grad_radius, Span grad_c);

/// Shortest distance from the ball's hyperplane region to the origin, a
/// proxy for tag granularity (Section V-B): larger distance = finer tag.
/// Equals the Poincaré distance from the origin to the nearest point of the
/// hyperplane, which is 2*atanh(||c||) at the center point c.
double HyperplaneDistanceToOrigin(ConstSpan c);

}  // namespace logirec::hyper

#endif  // LOGIREC_HYPER_HYPERPLANE_H_
