#ifndef LOGIREC_HYPER_POINCARE_H_
#define LOGIREC_HYPER_POINCARE_H_

#include "math/vec.h"

namespace logirec::hyper {

using math::ConstSpan;
using math::Span;
using math::Vec;

/// Points are kept strictly inside the unit ball: ||x|| <= 1 - kBallEps.
inline constexpr double kBallEps = 1e-5;

/// Norms below this are treated as zero to avoid division blow-ups.
inline constexpr double kMinNorm = 1e-12;

/// Clamps `x` in place into the open unit ball (radius 1 - kBallEps).
void ProjectToBall(Span x);

/// Poincaré distance
///   d(x, y) = acosh(1 + 2||x-y||^2 / ((1-||x||^2)(1-||y||^2))).
double PoincareDistance(ConstSpan x, ConstSpan y);

/// Euclidean (ambient) gradients of PoincareDistance with respect to both
/// arguments, accumulated into `grad_x` / `grad_y` scaled by `scale`.
/// Either output span may be empty to skip that side.
void PoincareDistanceGrad(ConstSpan x, ConstSpan y, double scale,
                          Span grad_x, Span grad_y);

/// Möbius addition x ⊕ y (curvature -1).
Vec MobiusAdd(ConstSpan x, ConstSpan y);

/// Conformal factor λ_x = 2 / (1 - ||x||^2).
double ConformalFactor(ConstSpan x);

/// Exponential map at `x`:
///   exp_x(v) = x ⊕ ( tanh(λ_x ||v|| / 2) · v / ||v|| ).
/// Returns x for ||v|| ~ 0. The result is projected into the ball.
Vec PoincareExpMap(ConstSpan x, ConstSpan v);

/// The paper's Eq. 17 variant (no conformal factor on the step):
///   exp_T(η) = T ⊕ ( tanh(||η||/2) · η / ||η|| ).
Vec PoincareExpMapEq17(ConstSpan x, ConstSpan v);

/// Logarithmic map at `x` (inverse of PoincareExpMap).
Vec PoincareLogMap(ConstSpan x, ConstSpan y);

/// Riemannian SGD step in the Poincaré ball: converts the Euclidean
/// gradient to the Riemannian one with the conformal factor
/// ((1-||x||^2)^2 / 4), walks along the exponential map, and projects back
/// into the ball. Mutates `x` in place.
void RsgdStepPoincare(Span x, ConstSpan euclidean_grad, double lr);

/// Variant using the paper's literal Eq. 17 step (tanh(||η||/2) with no
/// conformal factor) — the design-choice ablation of DESIGN.md §4.
void RsgdStepPoincareEq17(Span x, ConstSpan euclidean_grad, double lr);

/// Distance from `x` to the origin: acosh(1 + 2||x||^2/(1-||x||^2)),
/// equal to 2 * atanh(||x||).
double PoincareNormToOrigin(ConstSpan x);

}  // namespace logirec::hyper

#endif  // LOGIREC_HYPER_POINCARE_H_
